"""Data-precision ablation (§5.5).

Paper: the deployed FP32 point packs 8 elements per 512-bit beat and runs
8 PEs per PEG; FP64 values with 32-bit metadata pack only 5, so "the
parallelism in each PEG reduces from 8 to 5 PEs and similarly required
URAM_sh per ScUG reduces to 5"; lower precision would allow more.

The bench schedules the same workload at each precision and checks the
parallelism, cycle and URAM relationships §5.5 states.
"""

from __future__ import annotations

import pytest

from conftest import print_banner
from repro.config import ChasonConfig
from repro.matrices import generators
from repro.precision import precision, with_precision
from repro.scheduling import schedule_crhcs


def test_ablation_precision(benchmark):
    matrix = generators.chung_lu_graph(2000, 20000, alpha=2.1, seed=88)
    base = ChasonConfig(scug_size=8)

    print_banner("Ablation: data precision (§5.5)")
    print(
        f"{'precision':<10s}{'bits/elem':>10s}{'elems/beat':>11s}"
        f"{'PEs/PEG':>8s}{'ScUG':>6s}{'cycles':>9s}{'underutil%':>11s}"
    )
    results = {}
    for name in ("fp16", "fp32", "fp64"):
        spec = precision(name)
        config = with_precision(base, name)
        schedule = schedule_crhcs(matrix, config)
        schedule.validate()
        results[name] = (config, schedule)
        print(
            f"{name:<10s}{spec.element_bits:>10d}"
            f"{spec.elements_per_word:>11d}{config.pes_per_channel:>8d}"
            f"{config.scug_size:>6d}{schedule.stream_cycles:>9d}"
            f"{100 * schedule.underutilization:>11.1f}"
        )

    fp32_config, fp32_schedule = results["fp32"]
    fp64_config, fp64_schedule = results["fp64"]

    # §5.5's statements, verbatim:
    assert precision("fp32").elements_per_word == 8
    assert precision("fp64").elements_per_word == 5
    assert fp64_config.pes_per_channel == 5
    assert fp64_config.scug_size == 5
    # Fewer PEs per beat → more streaming cycles for the same non-zeros.
    assert fp64_schedule.stream_cycles > fp32_schedule.stream_cycles
    # The cycle inflation is bounded by the parallelism ratio (8/5) plus
    # scheduling slack.
    ratio = fp64_schedule.stream_cycles / fp32_schedule.stream_cycles
    assert ratio == pytest.approx(8 / 5, rel=0.5)
    # All precisions schedule every non-zero.
    for _, schedule in results.values():
        assert schedule.nnz == matrix.nnz

    benchmark(schedule_crhcs, matrix, fp64_config)
