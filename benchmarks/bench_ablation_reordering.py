"""Ablation: software row-reordering vs hardware data migration (§2.3).

Related work accelerates SpMV by *reordering* non-zeros/rows in software
(§7.1).  The paper's key insight is that intra-channel measures cannot
fill stalls once a channel's rows run out of non-zeros — only crossing
the channel boundary can.  This bench quantifies that claim: LPT row
balancing (an idealised software preprocessing) against CrHCS, and both
combined.
"""

from __future__ import annotations

from conftest import print_banner
from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.matrices import generators
from repro.scheduling import (
    schedule_crhcs,
    schedule_pe_aware,
)
from repro.scheduling.reorder import reorder_rows


def test_ablation_row_reordering(benchmark):
    matrix = generators.chung_lu_graph(2500, 25000, alpha=2.1, seed=55)
    permuted, _ = reorder_rows(matrix, DEFAULT_SERPENS)

    variants = {
        "pe_aware": schedule_pe_aware(matrix, DEFAULT_SERPENS),
        "pe_aware + reorder": schedule_pe_aware(permuted, DEFAULT_SERPENS),
        "crhcs": schedule_crhcs(matrix, DEFAULT_CHASON),
        "crhcs + reorder": schedule_crhcs(permuted, DEFAULT_CHASON),
    }

    print_banner(
        "Ablation: software row reordering vs cross-channel migration"
    )
    print(f"{'variant':<20s}{'underutil %':>12s}{'cycles':>9s}")
    for name, schedule in variants.items():
        print(
            f"{name:<20s}{100 * schedule.underutilization:12.1f}"
            f"{schedule.stream_cycles:9d}"
        )

    # Reordering alone helps PE-aware scheduling (slightly)...
    assert (
        variants["pe_aware + reorder"].stream_cycles
        <= variants["pe_aware"].stream_cycles * 1.02
    )
    # ...but cannot approach what migration achieves (§2.3).
    assert (
        variants["crhcs"].stream_cycles
        < variants["pe_aware + reorder"].stream_cycles * 0.6
    )
    # Reordering barely moves CrHCS either way (the migration pass
    # already redistributes work dynamically, so a static permutation is
    # mostly redundant): the two CrHCS variants stay within ~15 % of each
    # other while both dwarf every reorder-only variant.
    crhcs_cycles = variants["crhcs"].stream_cycles
    combined_cycles = variants["crhcs + reorder"].stream_cycles
    assert 0.85 < combined_cycles / crhcs_cycles < 1.15
    assert combined_cycles < variants["pe_aware + reorder"].stream_cycles

    benchmark(reorder_rows, matrix, DEFAULT_SERPENS)
