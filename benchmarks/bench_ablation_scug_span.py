"""Ablations the paper discusses but could not deploy (§4.5, §6.1).

1. **Migration span** — §6.1: migrating from two or three next channels
   would fill more idle cycles and reduce the residual underutilization,
   at the cost of more on-chip memory (more ScUGs).  The deployed design
   stops at one because of the U55c's URAM budget.
2. **ScUG size** — §4.5: shrinking the ScUG from the ideal 8 URAM_sh to 4
   (deployed) or the theoretical floor does not change performance, only
   the rows processable per pass; the URAM count scales accordingly.
3. **Scheduling policy ladder** — row-based → PE-aware → greedy-OoO →
   row-split (HiSpMV-style, §2.1) → CrHCS(migrate) → CrHCS(rebuild):
   separates how much of the win comes from ordering, from breaking hub
   rows, and from crossing the channel boundary (§2.2/§2.3).  Row
   splitting and migration attack different bottlenecks: splitting
   breaks a hub row's RAW chain within its home channel (and can match
   CrHCS when channel loads are even), while only migration can feed a
   starved channel — the second workload isolates that case.
"""

from __future__ import annotations

from conftest import print_banner
from repro.config import ChasonConfig, DEFAULT_CHASON, DEFAULT_SERPENS
from repro.matrices import generators
from repro.resources.model import chason_resources
from repro.scheduling import (
    schedule_crhcs,
    schedule_greedy_ooo,
    schedule_pe_aware,
    schedule_row_based,
    schedule_row_split,
)


def _ablation_matrix():
    return generators.chung_lu_graph(2500, 25000, alpha=2.1, seed=77)


def test_ablation_migration_span(benchmark):
    matrix = _ablation_matrix()
    print_banner("Ablation: migration span (§6.1)")
    print(f"{'span':<6s}{'underutil %':>12s}{'cycles':>9s}{'URAMs':>8s}")
    results = {}
    for span in (0, 1, 2, 3):
        schedule = schedule_crhcs(matrix, DEFAULT_CHASON,
                                  migration_span=span)
        config = ChasonConfig(migration_span=max(span, 1))
        urams = chason_resources(config).urams
        results[span] = schedule
        print(
            f"{span:<6d}{100 * schedule.underutilization:12.1f}"
            f"{schedule.stream_cycles:9d}{urams:8d}"
        )

    # §6.1 shape: span 1 is the big win; wider spans keep improving the
    # residual (or hold) while URAM cost doubles per extra channel.
    assert results[1].underutilization < results[0].underutilization - 0.05
    assert results[2].total_stalls <= results[1].total_stalls * 1.02
    assert results[3].total_stalls <= results[2].total_stalls * 1.02
    assert chason_resources(ChasonConfig(migration_span=2)).urams == 1024

    benchmark(schedule_crhcs, matrix, DEFAULT_CHASON, migration_span=1)


def test_ablation_scug_size(benchmark):
    print_banner("Ablation: ScUG size (§4.5)")
    matrix = _ablation_matrix()
    print(f"{'scug':<6s}{'URAMs':>7s}{'underutil %':>13s}")
    previous = None
    for scug in (2, 4, 8):
        config = ChasonConfig(scug_size=scug)
        schedule = schedule_crhcs(matrix, config)
        urams = chason_resources(config).urams
        print(f"{scug:<6d}{urams:7d}{100 * schedule.underutilization:13.1f}")
        # §4.5: ScUG size trades memory, not performance — the schedule
        # (and hence underutilization) is identical.
        if previous is not None:
            assert schedule.total_stalls == previous.total_stalls
        previous = schedule

    benchmark(schedule_crhcs, matrix, ChasonConfig(scug_size=2))


def test_ablation_scheduling_policy_ladder(benchmark):
    matrix = _ablation_matrix()
    print_banner("Ablation: scheduling policy ladder (§2.2/§2.3)")
    schedules = {
        "row_based": schedule_row_based(matrix, DEFAULT_SERPENS),
        "pe_aware": schedule_pe_aware(matrix, DEFAULT_SERPENS),
        "greedy_ooo": schedule_greedy_ooo(matrix, DEFAULT_SERPENS),
        "row_split": schedule_row_split(matrix, DEFAULT_SERPENS),
        "crhcs": schedule_crhcs(matrix, DEFAULT_CHASON),
        "crhcs_rebuild": schedule_crhcs(matrix, DEFAULT_CHASON,
                                        mode="rebuild"),
    }
    print(f"{'scheme':<15s}{'underutil %':>12s}{'cycles':>9s}")
    for name, schedule in schedules.items():
        print(
            f"{name:<15s}{100 * schedule.underutilization:12.1f}"
            f"{schedule.stream_cycles:9d}"
        )

    # The ladder's ordering claims: OoO beats in-order; migration beats
    # every scheme that cannot break hub-row chains; row splitting and
    # CrHCS land in the same band on this channel-balanced graph (they
    # attack the same hub rows by different means).
    assert (
        schedules["pe_aware"].stream_cycles
        <= schedules["row_based"].stream_cycles
    )
    assert (
        schedules["crhcs"].stream_cycles
        < schedules["greedy_ooo"].stream_cycles
    )
    ratio = (
        schedules["crhcs"].stream_cycles
        / schedules["row_split"].stream_cycles
    )
    assert 0.5 < ratio < 1.5
    assert (
        schedules["crhcs_rebuild"].stream_cycles
        <= schedules["crhcs"].stream_cycles
    )

    # The case only migration can fix: a *striped* matrix whose non-zeros
    # live in rows of one channel's residue classes — the other channels
    # have nothing to split, so row splitting stalls where CrHCS borrows.
    from repro.formats.coo import COOMatrix
    import numpy as np

    rng = np.random.default_rng(7)
    rows = 8 * 128 + rng.integers(0, 8, size=6000) + 128 * rng.integers(
        0, 8, size=6000
    )
    cols = rng.integers(0, 4096, size=6000)
    striped = COOMatrix((2048, 4096), rows % 2048, cols,
                        rng.normal(size=6000).astype(np.float32))
    split_striped = schedule_row_split(striped, DEFAULT_SERPENS)
    migrate_striped = schedule_crhcs(striped, DEFAULT_CHASON)
    rebuild_striped = schedule_crhcs(striped, DEFAULT_CHASON,
                                     mode="rebuild")
    rebuild_span3 = schedule_crhcs(striped, DEFAULT_CHASON,
                                   migration_span=3, mode="rebuild")
    print(
        f"\nstriped (one busy channel): row_split "
        f"{split_striped.stream_cycles} vs crhcs(migrate) "
        f"{migrate_striped.stream_cycles} vs crhcs(rebuild) "
        f"{rebuild_striped.stream_cycles} vs rebuild span 3 "
        f"{rebuild_span3.stream_cycles} cycles"
    )
    # The single-pass migrate heuristic relocates the stripe but cannot
    # split it across several destinations; the joint rebuild can — and
    # wider spans keep scaling it (the §6.1 larger-FPGA argument), which
    # no intra-channel scheme can match.
    assert rebuild_striped.stream_cycles < split_striped.stream_cycles
    assert rebuild_span3.stream_cycles < rebuild_striped.stream_cycles

    benchmark(schedule_pe_aware, matrix, DEFAULT_SERPENS)
