#!/usr/bin/env python
"""Cluster scaling gate: fingerprint-affine sharding vs one device.

The cluster's scaling story is **aggregate cache capacity**, not thread
parallelism (the schedulers are GIL-bound Python): every device owns a
fixed artifact/schedule cache budget — a card with a fixed memory slice
— and the router's fingerprint affinity keeps each shard's working set
cache-resident.  One device thrashes its LRU over the whole distinct
set; four affinity-routed devices each hold their quarter warm.

Four arms over one identical workload (70 % duplicates), run by
closed-loop concurrent clients; each arm is measured at **steady
state** (a warm-up pass, then the timed pass — where the per-device
budgets actually bite):

* ``devices=1`` — the single-engine baseline (same per-device budget);
* ``devices=2`` / ``devices=4`` — affinity routing (the scaling curve);
* ``devices=4 round_robin`` — the no-affinity ablation: same fleet,
  placement ignores content, every device thrashes.

Gates (CI): the 4-device affinity arm must reach ``--gate`` × the
single-device throughput (default 2.0) with byte-identical reports, and
a **recovery phase** — one device crash-injected mid-run — must finish
with zero unhandled exceptions and every response failed over
byte-identically.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py [--quick]

Writes ``BENCH_cluster.json`` plus its run manifest.  A
``REPRO_CLUSTER_FAULTS`` plan in the environment applies to the
multi-device arms (CI smoke runs with a seeded slow-fault plan); the
single-device baseline and the recovery phase always run their own
plans so the gate denominators stay comparable.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import sys
import time
from pathlib import Path

from repro.cluster import Cluster, FaultPlan, parse_fault_plan
from repro.matrices.generators import uniform_random
from repro.pipeline.runner import PipelineRunner
from repro.scheduling.registry import get_scheme
from repro.serving import SpMVRequest
from repro.telemetry import write_manifest

DEFAULT_GATE = 2.0

#: Duplicate share of the workload (same hot-set skew as the serving
#: bench, above the 30 % acceptance floor).
DUPLICATE_FRACTION = 0.7

#: Closed-loop client threads driving every arm.
CLIENTS = 8


def report_bytes(report) -> bytes:
    return json.dumps(dataclasses.asdict(report), sort_keys=True).encode()


def build_workload(quick: bool):
    """A deterministic skewed request mix plus per-device cache budgets.

    The budgets are the experiment: the single device's budget is far
    below the workload's distinct footprint (2 store entries + 1
    schedule per job), while a quarter of the distinct set fits one
    device comfortably.
    """
    if quick:
        distinct, shape = 16, (128, 128, 1_800)
        budgets = {"store_capacity": 10, "schedule_capacity": 5}
    else:
        distinct, shape = 32, (160, 160, 3_200)
        budgets = {"store_capacity": 20, "schedule_capacity": 10}
    total = int(round(distinct / (1.0 - DUPLICATE_FRACTION)))
    n_rows, n_cols, nnz = shape
    matrices = [
        uniform_random(n_rows, n_cols, nnz, seed=2_000 + index)
        for index in range(distinct)
    ]
    schemes = ["crhcs", "pe_aware"]
    jobs = [
        (matrices[index], schemes[index % len(schemes)])
        for index in range(distinct)
    ]
    # Duplicates spread *uniformly* across the distinct set (unlike the
    # serving bench's hot-set skew): a skewed stream's hot jobs would
    # stay resident even in one device's small cache, hiding the
    # aggregate-capacity effect this bench isolates.  Uniform repeats
    # make the re-referenced working set the whole distinct set — far
    # over one budget, a comfortable quarter per device when sharded.
    counts = [total // distinct] * distinct
    for index in range(total - sum(counts)):
        counts[index] += 1
    order = [index for index, count in enumerate(counts)
             for _ in range(count)]
    random.Random(20260805).shuffle(order)
    requests = [
        SpMVRequest(jobs[index][0], scheme=jobs[index][1])
        for index in order
    ]
    fingerprints = {r.work_fingerprint() for r in requests}
    duplicate_fraction = 1.0 - len(fingerprints) / len(requests)
    return requests, duplicate_fraction, budgets


def serial_reference(requests):
    """Byte-identity reference: a fresh store-less runner per distinct
    fingerprint (every duplicate shares its job's reference report)."""
    reference = {}
    for request in requests:
        fingerprint = request.work_fingerprint()
        if fingerprint in reference:
            continue
        spec = get_scheme(request.scheme)
        config = request.resolve_config(spec)
        result = PipelineRunner().analyze(request.source, spec, config)
        reference[fingerprint] = report_bytes(result.report)
    return reference


def run_arm(label, requests, budgets, devices, routing, fault_plan,
            reference, warmup=True):
    """One benchmark arm: identical workload, one cluster shape.

    With ``warmup=True`` the workload runs twice and only the second
    pass is timed — the steady-state throughput a serving fleet
    actually delivers.  Steady state is where the budgets bite: each
    affinity shard stays cache-resident across passes, while the single
    device (working set far over budget) thrashes on pass two exactly
    as it did on pass one.  The recovery phase runs single-pass
    (``warmup=False``): it measures cold failover, not throughput.
    """
    # Exact tier: this gate compares reports byte for byte against the
    # serial reference (tiered fidelity has its own gate/bench).
    cluster = Cluster(
        devices=devices,
        replicas=2,
        routing=routing,
        fault_plan=fault_plan,
        fidelity="exact",
        **budgets,
    )
    cluster.start()
    unhandled = 0
    warmup_results = []
    try:
        if warmup:
            try:
                warmup_results = cluster.run(
                    requests, clients=CLIENTS, timeout=600.0
                )
            except Exception:
                unhandled += 1
        start = time.perf_counter()
        try:
            results = cluster.run(requests, clients=CLIENTS,
                                  timeout=600.0)
        except Exception:  # the contract under test: run never raises
            unhandled += 1
            results = []
        wall_s = time.perf_counter() - start
    finally:
        cluster.shutdown(drain=True)
    ok = sum(1 for r in results if r.ok)
    checked = list(zip(results, requests))
    checked += list(zip(warmup_results, requests))
    identical = bool(results) and all(
        report_bytes(r.response.report)
        == reference[request.work_fingerprint()]
        for r, request in checked
        if r.ok
    ) and ok == len(results)
    stats = cluster.status()["stats"]
    rps = len(requests) / wall_s if wall_s > 0 else float("inf")
    print(
        f"{label:<24s} {wall_s:7.3f}s ({rps:6.1f} req/s)  "
        f"ok {ok}/{len(results)}  "
        f"affinity {stats['affinity_hits']}/{stats['routed']}  "
        f"retries {stats['retries']}  failovers {stats['failovers']}  "
        f"reports {'identical' if identical else 'MISMATCH'}"
    )
    return {
        "label": label,
        "devices": devices,
        "routing": routing,
        "wall_s": round(wall_s, 6),
        "rps": round(rps, 3),
        "ok": ok,
        "requests": len(requests),
        "identical": identical,
        "unhandled_exceptions": unhandled,
        "stats": stats,
    }


def run_recovery(requests, budgets, quick, reference):
    """Kill one device mid-run; every response must fail over cleanly."""
    after = 5 if quick else 12
    plan = parse_fault_plan(f"crash:1:after={after},seed=7")
    arm = run_arm(
        f"recovery (crash dev1@{after})", requests, budgets,
        devices=4, routing="affinity", fault_plan=plan,
        reference=reference, warmup=False,
    )
    return {**arm, "crash_after": after}


def run(quick: bool, gate: float, output: Path) -> int:
    requests, duplicate_fraction, budgets = build_workload(quick)
    print(
        f"workload: {len(requests)} requests, "
        f"{duplicate_fraction:.0%} duplicates, {CLIENTS} clients, "
        f"per-device budget {budgets['store_capacity']} artifacts / "
        f"{budgets['schedule_capacity']} schedules"
    )
    reference = serial_reference(requests)

    import os

    env_plan = parse_fault_plan(os.environ.get("REPRO_CLUSTER_FAULTS"))
    if env_plan:
        print(f"environment fault plan (multi-device arms):\n"
              f"{env_plan.describe()}")
    arms = [
        # The baseline always runs clean: a fault plan naming dev1+
        # cannot apply to a 1-device fleet, and the gate denominator
        # must not depend on the environment.
        run_arm("devices=1 (baseline)", requests, budgets,
                devices=1, routing="affinity", fault_plan=FaultPlan(),
                reference=reference),
        run_arm("devices=2 affinity", requests, budgets,
                devices=2, routing="affinity", fault_plan=env_plan,
                reference=reference),
        run_arm("devices=4 affinity", requests, budgets,
                devices=4, routing="affinity", fault_plan=env_plan,
                reference=reference),
        run_arm("devices=4 round_robin", requests, budgets,
                devices=4, routing="round_robin", fault_plan=env_plan,
                reference=reference),
    ]
    baseline, affinity4 = arms[0], arms[2]
    rr4 = arms[3]
    speedup = (
        baseline["wall_s"] / affinity4["wall_s"]
        if affinity4["wall_s"] > 0 else float("inf")
    )
    affinity_vs_rr = (
        rr4["wall_s"] / affinity4["wall_s"]
        if affinity4["wall_s"] > 0 else float("inf")
    )
    print(
        f"4-device affinity speedup over 1 device: {speedup:.2f}x  "
        f"(gate {gate:.1f}x); over round_robin: {affinity_vs_rr:.2f}x"
    )

    recovery = run_recovery(requests, budgets, quick, reference)

    payload = {
        "quick": quick,
        "requests": len(requests),
        "duplicate_fraction": round(duplicate_fraction, 4),
        "clients": CLIENTS,
        "budgets": budgets,
        "gate": gate,
        "arms": arms,
        "speedup_4dev": round(speedup, 4),
        "affinity_vs_round_robin": round(affinity_vs_rr, 4),
        "recovery": recovery,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(
        output, extra={"bench": "cluster_scaling", "quick": quick},
    )
    print(f"wrote {manifest}")

    failures = []
    if duplicate_fraction < 0.3:
        failures.append(
            f"duplicate fraction {duplicate_fraction:.0%} below the "
            f"30% workload floor"
        )
    for arm in arms:
        if not arm["identical"]:
            failures.append(
                f"{arm['label']}: responses diverged from serial "
                f"reference"
            )
        if arm["unhandled_exceptions"]:
            failures.append(
                f"{arm['label']}: {arm['unhandled_exceptions']} "
                f"unhandled exceptions"
            )
    if speedup < gate:
        failures.append(
            f"4-device speedup {speedup:.2f}x below the "
            f"{gate:.1f}x gate"
        )
    if not recovery["identical"]:
        failures.append(
            "recovery phase: failed-over responses diverged from the "
            "serial reference"
        )
    if recovery["unhandled_exceptions"]:
        failures.append(
            f"recovery phase: {recovery['unhandled_exceptions']} "
            f"unhandled exceptions"
        )
    if not recovery["stats"]["removed_devices"]:
        failures.append(
            "recovery phase: the crashed device was never removed"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload (CI smoke mode)",
    )
    parser.add_argument(
        "--gate", type=float, default=DEFAULT_GATE,
        help="minimum 4-device/1-device throughput ratio",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_cluster.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.gate, args.output)


if __name__ == "__main__":
    sys.exit(main())
