"""Figure 3 — stall percentage under PE-aware scheduling, 800 matrices.

Paper: the PDF of the stall (PE underutilization) percentage across 800
SuiteSparse matrices peaks around 70 % — most real matrices leave the
majority of PE slots idle under intra-channel scheduling.

This bench reproduces the distribution over the synthetic corpus and
prints its mode and quartile summary; the timed kernel is the PE-aware
scheduling of one representative corpus matrix.
"""

from __future__ import annotations

import numpy as np

from conftest import print_banner
from repro.analysis.stats import describe, histogram_pdf
from repro.config import DEFAULT_SERPENS
from repro.matrices.collection import corpus_specs
from repro.scheduling.pe_aware import schedule_pe_aware


def test_fig03_pe_aware_stall_distribution(benchmark, corpus_sweep):
    values = corpus_sweep.serpens_underutilization
    pdf = histogram_pdf(values)
    summary = describe(values)

    print_banner(
        "Figure 3: PE underutilization % under PE-aware scheduling "
        f"({corpus_sweep.count} corpus matrices)"
    )
    print(f"mode            : {pdf.mode:6.1f} %   (paper: ≈70 %)")
    print(f"median          : {summary['median']:6.1f} %")
    print(f"mean            : {summary['mean']:6.1f} %")
    print(f"range           : {summary['min']:.1f} – {summary['max']:.1f} %")
    print(
        "mass above 50%  : "
        f"{100 * (1 - pdf.mass_below(50.0)):6.1f} %   "
        "(paper: the majority of matrices)"
    )
    edges = np.linspace(0, 100, 11)
    hist, _ = np.histogram(values, bins=edges)
    for lo, hi, count in zip(edges[:-1], edges[1:], hist):
        bar = "#" * int(50 * count / max(hist.max(), 1))
        print(f"  {lo:5.0f}-{hi:3.0f}%  {bar} {count}")

    # Paper shape: the distribution is dominated by heavily-stalled
    # matrices.
    assert summary["mean"] > 50.0
    assert pdf.mass_below(50.0) < 0.5

    # Timed kernel: scheduling one mid-sized corpus matrix.
    matrix = corpus_specs(count=10, nnz_cap=20_000)[3].generate()
    benchmark(schedule_pe_aware, matrix, DEFAULT_SERPENS)
