"""Figure 10 — power distribution of Chasoň on the Alveo U55c.

Paper: 48.715 W estimated total; HBM dominates at 18.95 W, Chasoň's own
logic takes only 8 % (2.76 W), BRAM/URAM 3–4 % each.

The bench prints the modelled breakdown next to the published watts and
times the (cheap) breakdown computation, plus a scaling sanity sweep.
"""

from __future__ import annotations

import pytest

from conftest import print_banner
from repro.config import ChasonConfig
from repro.power.fpga import chason_power_breakdown


PAPER_WATTS = {
    "static": 12.845,
    "clocks": 4.18,
    "signals": 2.22,
    "logic": 2.76,
    "bram": 1.24,
    "uram": 1.51,
    "dsp": 0.56,
    "gty": 4.36,
    "hbm": 18.95,
}


def test_fig10_power_breakdown(benchmark):
    breakdown = chason_power_breakdown()

    print_banner("Figure 10: Chasoň power distribution on Alveo U55c")
    print(f"{'component':<10s} {'model (W)':>10s} {'paper (W)':>10s} "
          f"{'share':>7s}")
    fractions = breakdown.fractions()
    for name, watts in breakdown.as_dict().items():
        print(
            f"{name:<10s} {watts:10.3f} {PAPER_WATTS[name]:10.3f} "
            f"{100 * fractions[name]:6.1f}%"
        )
    print(f"{'total':<10s} {breakdown.total:10.3f} {48.715:10.3f}")

    # The published configuration must reproduce Fig. 10 exactly.
    for name, watts in breakdown.as_dict().items():
        assert watts == pytest.approx(PAPER_WATTS[name], abs=1e-6)
    assert breakdown.total == pytest.approx(48.715, abs=0.15)
    assert fractions["hbm"] == max(fractions.values())
    assert fractions["logic"] == pytest.approx(0.08, abs=0.03)

    # Scaling: halving the sparse channels cuts HBM power, not static.
    half = chason_power_breakdown(ChasonConfig(sparse_channels=8))
    assert half.hbm < breakdown.hbm
    assert half.static == breakdown.static
    assert half.total < breakdown.total

    benchmark(chason_power_breakdown)
