"""Figure 11 — PE underutilization PDF, Chasoň vs Serpens, 800 matrices.

Paper: Serpens' distribution peaks at 69 % with a 19–96 % range; CrHCS
moves the bulk of the mass to ≈30 % with a 5–66 % range — "the curve
moves left".

The bench reproduces both distributions over the corpus and asserts the
ordering; the timed kernel is one full CrHCS scheduling pass.
"""

from __future__ import annotations

from conftest import print_banner
from repro.analysis.figures import render_pdf_curves
from repro.analysis.stats import describe, gaussian_kde_pdf, histogram_pdf
from repro.config import DEFAULT_CHASON
from repro.matrices.collection import corpus_specs
from repro.scheduling.crhcs import schedule_crhcs


def test_fig11_underutilization_pdf(benchmark, corpus_sweep):
    serpens_values = corpus_sweep.serpens_underutilization
    chason_values = corpus_sweep.chason_underutilization
    serpens_pdf = histogram_pdf(serpens_values)
    chason_pdf = histogram_pdf(chason_values)
    serpens_summary = describe(serpens_values)
    chason_summary = describe(chason_values)

    print_banner(
        "Figure 11: PE underutilization %, Chasoň vs Serpens "
        f"({corpus_sweep.count} corpus matrices)"
    )
    print(f"{'':<12s}{'mode':>8s}{'mean':>8s}{'min':>8s}{'max':>8s}")
    print(
        f"{'serpens':<12s}{serpens_pdf.mode:8.1f}"
        f"{serpens_summary['mean']:8.1f}{serpens_summary['min']:8.1f}"
        f"{serpens_summary['max']:8.1f}   (paper: mode 69, range 19-96)"
    )
    print(
        f"{'chason':<12s}{chason_pdf.mode:8.1f}"
        f"{chason_summary['mean']:8.1f}{chason_summary['min']:8.1f}"
        f"{chason_summary['max']:8.1f}   (paper: bulk ≈30, range 5-66)"
    )
    print()
    print(render_pdf_curves({
        "serpens": gaussian_kde_pdf(serpens_values),
        "chason": gaussian_kde_pdf(chason_values),
    }))
    improvement = [
        s - c for s, c in zip(serpens_values, chason_values)
    ]
    print(f"mean improvement: {sum(improvement) / len(improvement):.1f} "
          "percentage points")

    # Paper shape: the Chasoň curve sits strictly left of Serpens.
    assert chason_summary["mean"] < serpens_summary["mean"] - 10
    assert chason_summary["max"] <= serpens_summary["max"]
    assert chason_pdf.mass_below(50.0) > serpens_pdf.mass_below(50.0)
    assert all(c <= s + 1e-9 for c, s in zip(chason_values, serpens_values))

    matrix = corpus_specs(count=10, nnz_cap=20_000)[3].generate()
    benchmark(schedule_crhcs, matrix, DEFAULT_CHASON)
