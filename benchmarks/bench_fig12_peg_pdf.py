"""Figure 12 — PE underutilization across the 16 PEGs, per named matrix.

Paper: for each of the 20 Table 2 matrices, the per-PEG underutilization
of Chasoň sits well left of Serpens; Chasoň's wider PDF reflects its
ability to balance irregular matrices across PEGs.

The bench prints a per-matrix min/mean/max of the 16 per-PEG values for
both designs and asserts Chasoň's improvement on every matrix; the timed
kernel extracts per-PEG statistics from one schedule.
"""

from __future__ import annotations

import numpy as np

from conftest import print_banner
from repro.config import DEFAULT_CHASON
from repro.matrices.named import generate_named
from repro.scheduling.crhcs import schedule_crhcs
from repro.scheduling.stats import channel_underutilization


def test_fig12_per_peg_distributions(benchmark, named_sweep):
    print_banner(
        "Figure 12: per-PEG PE underutilization % on the Table 2 matrices"
    )
    print(f"{'ID':<4s}{'serpens min/mean/max':>26s}"
          f"{'chason min/mean/max':>26s}")
    worse = 0
    for item in named_sweep:
        serpens = np.array(item.serpens_peg_underutilization)
        chason = np.array(item.chason_peg_underutilization)
        assert serpens.size == 16 and chason.size == 16
        print(
            f"{item.matrix_id:<4s}"
            f"{serpens.min():8.1f}/{serpens.mean():6.1f}/"
            f"{serpens.max():6.1f}"
            f"{chason.min():10.1f}/{chason.mean():6.1f}/"
            f"{chason.max():6.1f}"
        )
        if chason.mean() >= serpens.mean():
            worse += 1

    # Paper shape: Chasoň's per-PEG means improve on every matrix.
    assert worse == 0

    schedule = schedule_crhcs(generate_named("CollegeMsg"), DEFAULT_CHASON)
    benchmark(channel_underutilization, schedule)
