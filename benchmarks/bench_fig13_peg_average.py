"""Figure 13 — average PE underutilization per PEG (fairness).

Paper: averaged over the 20 Table 2 matrices, every Serpens PEG sits near
95 % underutilization while Chasoň brings each PEG down to 60–65 %, with
little variation across the 16 PEGs — the scheduler spreads stalls fairly.

The bench prints the 16 per-PEG averages for both designs, asserts the
improvement and the fairness (low spread), and times the aggregation.
"""

from __future__ import annotations

import numpy as np

from conftest import print_banner


def _per_peg_average(sweep, attribute):
    rows = np.array([getattr(item, attribute) for item in sweep])
    return rows.mean(axis=0)


def test_fig13_per_peg_average(benchmark, named_sweep):
    serpens_avg = _per_peg_average(named_sweep,
                                   "serpens_peg_underutilization")
    chason_avg = _per_peg_average(named_sweep,
                                  "chason_peg_underutilization")

    print_banner(
        "Figure 13: average PE underutilization % per PEG "
        "(20 Table 2 matrices)"
    )
    print(f"{'PEG':<5s}{'serpens':>9s}{'chason':>9s}")
    for peg, (s, c) in enumerate(zip(serpens_avg, chason_avg)):
        print(f"{peg:<5d}{s:9.1f}{c:9.1f}")
    print(
        f"mean  {serpens_avg.mean():8.1f}{chason_avg.mean():9.1f}   "
        "(paper: ≈95 vs 60-65)"
    )
    print(
        f"spread (max-min): serpens {np.ptp(serpens_avg):.1f}, "
        f"chason {np.ptp(chason_avg):.1f} percentage points"
    )

    # Paper shape: every PEG improves, and Chasoň distributes stalls
    # evenly (small spread across PEGs).
    assert np.all(chason_avg < serpens_avg)
    assert serpens_avg.mean() > 75.0
    assert chason_avg.mean() < serpens_avg.mean() - 15
    assert np.ptp(chason_avg) < 20.0

    benchmark(_per_peg_average, named_sweep,
              "chason_peg_underutilization")
