"""Figure 14 — speedup and energy-efficiency gain over GPU/CPU baselines.

Paper (over 800 matrices): geometric-mean latency speedup ≈4× over the
RTX 4090 (peak 20.33×), ≈1.28× over the RTX A6000 (peak 11.65×) and <1
over the Core i9 (peak 2.67×); peak energy-efficiency gains of 34.72×,
19.48× and 14.61×.  Peak throughputs: Chasoň 30.23, 4090 19.83, A6000
44.20, i9 23.88 GFLOPS.

The bench reproduces the sweep with the analytical GPU/CPU models
(substitution documented in DESIGN.md), prints geomeans/peaks next to the
published values, and asserts the ordering relations that constitute the
figure's shape.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import print_banner
from repro.baselines.gpu import CusparseGpuModel, RTX_4090
from repro.matrices.collection import corpus_specs
from repro.metrics import geometric_mean

PAPER = {
    "rtx4090": {"geomean": 4.0, "peak": 20.33, "energy_peak": 34.72},
    "rtxa6000": {"geomean": 1.28, "peak": 11.65, "energy_peak": 19.48},
    "i9": {"geomean": 0.9, "peak": 2.67, "energy_peak": 14.61},
}


def test_fig14_gpu_cpu_comparison(benchmark, baseline_sweep,
                                  corpus_sweep):
    by_baseline = defaultdict(list)
    for row in baseline_sweep:
        by_baseline[row.baseline].append(row)

    print_banner(
        "Figure 14: Chasoň vs GPU/CPU baselines "
        f"({len(by_baseline['rtx4090'])} corpus matrices)"
    )
    print(
        f"{'baseline':<10s}{'geomean x':>11s}{'peak x':>9s}"
        f"{'e-gain peak':>13s}{'paper geo/peak/e':>22s}"
    )
    stats = {}
    for key, rows in by_baseline.items():
        speedups = [row.speedup for row in rows]
        energy_gains = [row.energy_gain for row in rows]
        stats[key] = {
            "geomean": geometric_mean(speedups),
            "peak": max(speedups),
            "energy_peak": max(energy_gains),
        }
        paper = PAPER[key]
        print(
            f"{key:<10s}{stats[key]['geomean']:11.2f}"
            f"{stats[key]['peak']:9.2f}{stats[key]['energy_peak']:13.2f}"
            f"{paper['geomean']:9.2f}/{paper['peak']:5.2f}/"
            f"{paper['energy_peak']:5.2f}"
        )
    print(
        f"peak Chasoň throughput: "
        f"{corpus_sweep.peak_chason_gflops:.2f} GFLOPS "
        "(paper: 30.23)"
    )

    # Paper shape, in order of strength:
    # 1. Chasoň wins clearly over the 4090, modestly over the A6000, and
    #    the i9 is the closest competitor (geomean below ~1, §6.2.1).
    assert (
        stats["rtx4090"]["geomean"]
        > stats["rtxa6000"]["geomean"]
        > stats["i9"]["geomean"]
    )
    assert stats["rtx4090"]["geomean"] > 2.0
    assert 0.5 < stats["rtxa6000"]["geomean"] < 4.0
    assert stats["i9"]["geomean"] < 1.3
    # 2. Peaks are far above the geomeans (small-matrix overhead cases);
    #    the i9 peak lands in the paper's ~2.7x band.
    assert stats["rtx4090"]["peak"] > 8.0
    assert 1.0 < stats["i9"]["peak"] < 6.0
    # 3. Energy efficiency always favours the 39 W FPGA design.
    for key in stats:
        assert stats[key]["energy_peak"] > 3.0

    matrix = corpus_specs(count=10, nnz_cap=20_000)[3].generate()
    model = CusparseGpuModel(RTX_4090)
    benchmark(model.latency_seconds, matrix)
