"""Figure 15 — speedup over Serpens and HBM data-transfer reduction.

Paper: geometric-mean speedup of 6.1× on the SuiteSparse subset and 4.1×
on the SNAP subset (up to 8.4×); both collections transfer ≈7× less data
because CrHCS removes the zero padding that Serpens streams.

The bench prints the per-matrix speedups and transfer reductions next to
the published per-matrix factors and asserts the aggregate shape; the
timed kernel is the CrHCS migration pass on one named matrix.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import print_banner
from repro.config import DEFAULT_CHASON
from repro.matrices.named import generate_named
from repro.metrics import geometric_mean
from repro.scheduling.crhcs import schedule_crhcs

#: Fig. 15 per-matrix data-transfer reduction factors.
PAPER_TRANSFER_REDUCTION = {
    "DY": 7.9, "RE": 8.0, "C5": 6.7, "MY": 4.4, "VS": 7.5, "TS": 7.6,
    "LO": 7.2, "HA": 8.0, "TR": 8.0, "CK": 6.2,
    "WI": 7.6, "EM": 6.9, "AS": None, "OR": None, "WK": 7.2,
    "SC": 5.7, "A7": 7.9, "CM": 7.6, "WB": 7.7, "RT": 7.8,
}


def test_fig15_speedup_and_transfer_reduction(benchmark, named_sweep):
    print_banner("Figure 15: Chasoň vs Serpens on the Table 2 matrices")
    print(
        f"{'ID':<4s}{'speedup x':>10s}{'xfer red. x':>13s}"
        f"{'paper xfer x':>14s}"
    )
    by_collection = defaultdict(lambda: {"speedups": [], "reductions": []})
    for item in named_sweep:
        paper = PAPER_TRANSFER_REDUCTION.get(item.matrix_id)
        paper_text = f"{paper:.1f}" if paper else "  -"
        print(
            f"{item.matrix_id:<4s}{item.speedup:10.2f}"
            f"{item.transfer_reduction:13.2f}{paper_text:>14s}"
        )
        bucket = by_collection[item.collection]
        bucket["speedups"].append(item.speedup)
        bucket["reductions"].append(item.transfer_reduction)

    for collection, bucket in by_collection.items():
        geo_speed = geometric_mean(bucket["speedups"])
        geo_red = geometric_mean(bucket["reductions"])
        target = 6.1 if collection == "SuiteSparse" else 4.1
        print(
            f"{collection:<12s} geomean speedup {geo_speed:5.2f}x "
            f"(paper ≈{target}x), geomean transfer reduction "
            f"{geo_red:5.2f}x (paper ≈7x)"
        )

    speedups = [item.speedup for item in named_sweep]
    reductions = [item.transfer_reduction for item in named_sweep]
    # Paper shape: Chasoň wins on every matrix, with multi-x geomeans.
    assert all(s > 1.0 for s in speedups)
    assert geometric_mean(speedups) > 3.0
    assert max(speedups) > 6.0
    assert geometric_mean(reductions) > 3.0
    # Transfer reduction never exceeds what zero-removal can provide:
    # bounded by the Serpens stall fraction.
    for item in named_sweep:
        upper = 1.0 / max(
            1.0 - item.serpens.underutilization_pct / 100.0, 1e-3
        )
        assert item.transfer_reduction <= upper * 1.05

    matrix = generate_named("CollegeMsg")
    benchmark(schedule_crhcs, matrix, DEFAULT_CHASON)
