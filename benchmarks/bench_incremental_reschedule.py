#!/usr/bin/env python
"""Incremental rescheduling benchmark (pass pipeline + artifact cache).

Schedules a multi-tile synthetic matrix cold through the Schedule-IR
pass pipeline, then applies single in-place value edits and times
``PipelineRunner.reschedule`` — which diffs per-pass input fingerprints
and re-runs only the invalidated passes.  Every incremental result is
checked byte-identical against a fresh cold schedule, and the run fails
if the mean incremental reschedule is not at least ``MIN_SPEEDUP``×
faster than the cold schedule.

Writes ``BENCH_incremental.json`` plus its run manifest so future
changes have a perf trajectory to regress against.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental_reschedule.py [--quick]

``--quick`` shrinks the matrix and trial count for CI; the ≥3× gate and
the byte-identity check apply in both modes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.formats.coo import COOMatrix
from repro.pipeline import PipelineRunner
from repro.scheduling.passes import schedules_identical
from repro.scheduling.registry import get_scheme
from repro.telemetry import write_manifest

#: The acceptance gate: mean single-edit reschedule vs cold schedule.
MIN_SPEEDUP = 3.0

#: (scheme, gated).  crhcs carries the gate — migration is the expensive
#: pass, so skipping it on unchanged tiles must pay off.  pe_aware's
#: builder is cheap enough that the non-cacheable compact/trim/verify
#: tail dominates; it is reported for trajectory but not gated.
SCHEMES = (("crhcs", True), ("pe_aware", False))


def _synthetic(n: int, nnz: int, seed: int) -> COOMatrix:
    """A uniform synthetic matrix — tiles carry comparable work, so the
    incremental speedup reflects the tile count, not load skew."""
    rng = np.random.default_rng(seed)
    return COOMatrix(
        shape=(n, n),
        rows=rng.integers(0, n, nnz),
        cols=rng.integers(0, n, nnz),
        values=rng.random(nnz) + 0.5,
    ).sum_duplicates()


def run(quick: bool, output: Path) -> int:
    n, nnz, tile_rows, trials = (
        (2048, 20_000, 256, 2) if quick else (4096, 60_000, 512, 3)
    )
    matrix = _synthetic(n, nnz, seed=42)
    rng = np.random.default_rng(7)

    results = {}
    failures = []
    for name, gated in SCHEMES:
        scheme = get_scheme(name)
        runner = PipelineRunner()

        start = time.perf_counter()
        runner.reschedule(matrix, scheme, max_rows_per_pass=tile_rows)
        cold_s = time.perf_counter() - start
        cold_stats = runner.last_reschedule_stats
        n_tiles = cold_stats.executed[scheme.passes[0]]

        warm_seconds = []
        executed = []
        identical = True
        for _ in range(trials):
            site = int(rng.integers(0, matrix.nnz))
            matrix.values[site] += 1.0
            start = time.perf_counter()
            warm = runner.reschedule(
                matrix, scheme, max_rows_per_pass=tile_rows
            )
            warm_seconds.append(time.perf_counter() - start)
            executed.append(runner.last_reschedule_stats.executed_total)
            fresh = PipelineRunner().schedule(
                matrix, scheme, max_rows_per_pass=tile_rows
            )
            if not schedules_identical(warm.schedule, fresh.schedule):
                identical = False

        mean_warm = sum(warm_seconds) / len(warm_seconds)
        speedup = cold_s / mean_warm
        results[name] = {
            "tiles": n_tiles,
            "cold_s": round(cold_s, 6),
            "incremental_s": [round(s, 6) for s in warm_seconds],
            "mean_incremental_s": round(mean_warm, 6),
            "speedup": round(speedup, 3),
            "cold_tile_passes": cold_stats.executed_total,
            "incremental_tile_passes": executed,
            "byte_identical": identical,
            "gated": gated,
        }
        print(
            f"{name:>9s}: {n_tiles} tiles, cold {cold_s * 1e3:8.1f} ms, "
            f"incremental {mean_warm * 1e3:8.1f} ms "
            f"({cold_stats.executed_total} vs "
            f"{executed} tile-passes), speedup {speedup:5.2f}x, "
            f"{'byte-identical' if identical else 'MISMATCH'}"
        )
        if not identical:
            failures.append(f"{name}: incremental output differs from cold")
        if gated and speedup < MIN_SPEEDUP:
            failures.append(
                f"{name}: incremental speedup {speedup:.2f}x "
                f"< {MIN_SPEEDUP:.0f}x gate"
            )

    payload = {
        "quick": quick,
        "n": n,
        "nnz": int(matrix.nnz),
        "tile_rows": tile_rows,
        "trials": trials,
        "min_speedup_gate": MIN_SPEEDUP,
        "schemes": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(
        output, extra={"bench": "incremental_reschedule", "quick": quick}
    )
    print(f"wrote {manifest}")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrix + fewer trials (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_incremental.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.output)


if __name__ == "__main__":
    sys.exit(main())
