#!/usr/bin/env python
"""Multi-tenant QoS gate: flood isolation plus autoscaling under flood.

Two questions a shared fleet must answer, each with its own arms:

**Who gets capacity when there is not enough?**  Two well-behaved
victim tenants (``acme``, ``beta``) run closed-loop clients against one
engine; a third tenant (``flood``) open-loops far past its quota.  The
fair queue's deficit round-robin plus the ``flood`` tenant's quota must
keep every victim's p99 within ``--gate`` × (default 2×) its unflooded
baseline, and every shed request must land on the flooding tenant —
the victims see *zero* shedding.

**How much capacity should there be?**  The same bursty multi-tenant
workload runs twice on a one-device fleet: once fixed at the minimum,
once with the hysteretic :class:`~repro.cluster.Autoscaler` allowed to
grow it to three devices off queue-depth telemetry.  Each arm gets a
warm-up pass (where the autoscaler does its scaling) and a timed pass;
autoscale-on must beat the fixed minimum on aggregate p99, and must
have actually scaled (≥ 1 up action).

Cross-cutting: every ``ok`` response in every arm — victim, flood,
cluster — must be byte-identical to a serial single-tenant
``PipelineRunner`` reference, because tenancy stays out of the work
fingerprint.

Engine arms pin ``max_batch=1``: micro-batching is throughput
machinery with its own bench; this one isolates queue fairness, and a
batch would let the flood's backlog ride one fair-share turn.

Usage::

    PYTHONPATH=src python benchmarks/bench_multitenant_qos.py [--quick]

Writes ``BENCH_multitenant.json`` plus its run manifest.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import sys
import threading
import time
from pathlib import Path

from repro.cluster import Autoscaler, Cluster
from repro.matrices.generators import uniform_random
from repro.pipeline.runner import PipelineRunner
from repro.scheduling.registry import get_scheme
from repro.serving import ServingEngine, SpMVRequest
from repro.telemetry import write_manifest
from repro.telemetry.summarize import percentile
from repro.tenancy import TenantPolicy

DEFAULT_GATE = 2.0

VICTIMS = ("acme", "beta")
FLOOD = "flood"

#: Closed-loop client threads per victim tenant (engine arms).  Two
#: threads on a two-worker engine keep the baseline *contended* — the
#: gate compares queueing fairness, not an idle queue against a busy one.
VICTIM_THREADS = 2

#: The operator lever ``REPRO_TENANT_WEIGHTS`` exposes: the bursty
#: tenant is *down*-weighted to a quarter share (it earns a dispatch
#: credit every fourth round), because closed-loop victims deactivate
#: between requests and re-enter the round with zero credit — their own
#: weights buy little, the flood's weight is what meters its backlog.
#: The quota caps the flood at half the queue so its overflow sheds
#: within the flood alone.
POLICY = TenantPolicy(
    weights={"acme": 2.0, "beta": 2.0, FLOOD: 0.25},
    quota_fraction=0.5,
)

#: Closed-loop client threads driving the cluster arms.
CLUSTER_CLIENTS = 8


def report_bytes(report) -> bytes:
    return json.dumps(dataclasses.asdict(report), sort_keys=True).encode()


class Reference:
    """Lazy serial single-tenant reference, one run per fingerprint.

    Flood submissions past the quota never execute, so the executed
    set is workload-dependent — computing references lazily, only for
    responses that actually answered ``ok``, keeps the serial pass
    proportional to the work the arms did.
    """

    def __init__(self):
        self._by_fp = {}

    def check(self, pairs) -> dict:
        ok = mismatched = 0
        for request, response in pairs:
            if not response.ok:
                continue
            ok += 1
            fingerprint = request.work_fingerprint()
            if fingerprint not in self._by_fp:
                spec = get_scheme(request.scheme)
                config = request.resolve_config(spec)
                result = PipelineRunner().analyze(
                    request.source, spec, config
                )
                self._by_fp[fingerprint] = report_bytes(result.report)
            if report_bytes(response.report) != self._by_fp[fingerprint]:
                mismatched += 1
        return {"ok": ok, "mismatched": mismatched,
                "identical": mismatched == 0 and ok > 0}


def victim_matrices(iters: int):
    """One distinct matrix per victim submission: no coalescing, no
    whole-flow cache hits — every request pays the full exact pipeline,
    so latency measures queueing, not cache luck."""
    matrices = {}
    seed = 31_000
    for tenant in VICTIMS:
        for thread in range(VICTIM_THREADS):
            for index in range(iters):
                # 128² @ ~8 ms exact-tier service: far enough above
                # OS-scheduler/GIL noise (1–5 ms) that the p99 ratio
                # measures queueing policy, not timer jitter.
                matrices[(tenant, thread, index)] = uniform_random(
                    128, 128, 1_800, seed=seed
                )
                seed += 1
    return matrices


def run_engine_arm(label, matrices, iters, flood_cap, reference):
    """One engine arm: closed-loop victims, optionally an open-loop flood.

    ``flood_cap=0`` is the unflooded baseline.  Exact tier (byte
    comparison against the serial reference), ``max_batch=1`` (see
    module docstring).
    """
    engine = ServingEngine(
        workers=2, queue_capacity=32, max_batch=1,
        fidelity="exact", tenancy=POLICY,
    )
    latencies = {tenant: [] for tenant in VICTIMS}
    pairs = []
    lock = threading.Lock()
    victims_done = threading.Event()
    flood_submitted = [0]
    unhandled = [0]

    def victim_loop(tenant, thread):
        try:
            for index in range(iters):
                request = SpMVRequest(
                    matrices[(tenant, thread, index)],
                    scheme="crhcs", tenant=tenant,
                )
                start = time.perf_counter()
                response = engine.submit_wait(request, timeout=300.0)
                elapsed_ms = (time.perf_counter() - start) * 1e3
                with lock:
                    latencies[tenant].append(elapsed_ms)
                    pairs.append((request, response))
        except Exception:
            unhandled[0] += 1

    def flood_loop():
        # Open loop: keep the flood's quota slice saturated for the
        # whole victim run instead of one upfront burst that drains.
        # Modest bursts — at weight 0.25 the flood drains one entry
        # per four rounds, so a few hundred submissions per second
        # keeps its 16 slots full; submitting faster only measures
        # the submit path's lock churn, not the queue's fairness.
        tickets = []
        seed = 77_000
        try:
            while (not victims_done.is_set()
                   and flood_submitted[0] < flood_cap):
                for _ in range(4):
                    matrix = uniform_random(128, 128, 1_800, seed=seed)
                    seed += 1
                    request = SpMVRequest(
                        matrix, scheme="crhcs", tenant=FLOOD
                    )
                    tickets.append((request, engine.submit(request)))
                    flood_submitted[0] += 1
                time.sleep(0.01)
            for request, ticket in tickets:
                response = ticket.result(timeout=300.0)
                with lock:
                    pairs.append((request, response))
        except Exception:
            unhandled[0] += 1

    start = time.perf_counter()
    with engine:
        threads = [
            threading.Thread(
                target=victim_loop, args=(tenant, thread), daemon=True
            )
            for tenant in VICTIMS
            for thread in range(VICTIM_THREADS)
        ]
        flood_thread = (
            threading.Thread(target=flood_loop, daemon=True)
            if flood_cap else None
        )
        if flood_thread is not None:
            flood_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        victims_done.set()
        if flood_thread is not None:
            flood_thread.join()
        tenants = engine.tenant_summary()
    wall_s = time.perf_counter() - start

    identity = reference.check(pairs)
    victim_p99 = {
        tenant: round(percentile(values, 99.0), 3)
        for tenant, values in latencies.items()
    }
    counters = {
        tenant: {key: row[key] for key in
                 ("accepted", "completed", "shed", "expired", "errors")}
        for tenant, row in tenants.items()
    }
    flood_shed = counters.get(FLOOD, {}).get("shed", 0)
    total_shed = sum(row["shed"] for row in counters.values())
    print(
        f"{label:<22s} {wall_s:6.3f}s  "
        + "  ".join(
            f"{tenant} p99 {victim_p99[tenant]:7.1f}ms"
            for tenant in VICTIMS
        )
        + f"  shed flood {flood_shed}/{total_shed}"
        + f"  reports "
        f"{'identical' if identity['identical'] else 'MISMATCH'}"
    )
    return {
        "label": label,
        "wall_s": round(wall_s, 6),
        "victim_p99_ms": victim_p99,
        "victim_p50_ms": {
            tenant: round(percentile(values, 50.0), 3)
            for tenant, values in latencies.items()
        },
        "victim_samples": {
            tenant: len(values) for tenant, values in latencies.items()
        },
        "flood_submitted": flood_submitted[0],
        "tenants": counters,
        "identity": identity,
        "unhandled_exceptions": unhandled[0],
    }


def build_cluster_workload(quick: bool):
    """A bursty multi-tenant mix whose distinct working set thrashes one
    device's cache budget but shards comfortably across three — the same
    aggregate-capacity effect ``bench_cluster_scaling.py`` isolates, so
    adding devices genuinely lowers latency."""
    # 24 distinct jobs against an 8-artifact per-device budget: one
    # device thrashes its LRU over the whole set, three devices hold
    # their 8-job shards resident.  The repeats make the re-referenced
    # set the whole distinct set (a pass long enough for the 50 ms
    # autoscaler loop to observe depth, act, and cool down twice).
    distinct = 24
    repeats = 4 if quick else 6
    budgets = {"store_capacity": 8, "schedule_capacity": 4}
    matrices = [
        uniform_random(256, 256, 8_000, seed=52_000 + index)
        for index in range(distinct)
    ]
    tenants = list(VICTIMS) + [FLOOD]
    requests = [
        SpMVRequest(matrices[index], scheme="crhcs",
                    tenant=tenants[(repeat * distinct + index)
                                   % len(tenants)])
        for repeat in range(repeats)
        for index in range(distinct)
    ]
    random.Random(20260808).shuffle(requests)
    return requests, budgets


def drive_cluster(cluster, requests):
    """Closed-loop clients with client-side latency timing (the
    cluster's own summaries are per-device; the gate wants the caller's
    end-to-end view)."""
    cursor = [0]
    lock = threading.Lock()
    latencies, pairs, unhandled = [], [], [0]

    def client():
        while True:
            with lock:
                index = cursor[0]
                if index >= len(requests):
                    return
                cursor[0] = index + 1
            request = requests[index]
            start = time.perf_counter()
            try:
                response = cluster.submit_wait(request, timeout=300.0)
            except Exception:
                unhandled[0] += 1
                continue
            elapsed_ms = (time.perf_counter() - start) * 1e3
            with lock:
                latencies.append(elapsed_ms)
                pairs.append((request, response))

    threads = [
        threading.Thread(target=client, daemon=True)
        for _ in range(CLUSTER_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, pairs, unhandled[0]


def run_cluster_arm(label, requests, budgets, autoscale, reference):
    """One cluster arm: warm-up pass (where the autoscaler scales),
    then the timed pass at steady state."""
    import os

    # The per-device memory slice includes the pass-artifact tier
    # (2 tile snapshots per job here): left at its 128-snapshot
    # default it holds the whole distinct set on ONE device, hiding
    # the aggregate-capacity effect scaling out buys.  24 snapshots
    # = 12 jobs: a 3-device shard stays resident, the full 24-job
    # set on one device thrashes.  Applied to both arms alike.
    previous = os.environ.get("REPRO_PASS_CACHE_SIZE")
    os.environ["REPRO_PASS_CACHE_SIZE"] = "24"
    try:
        return _run_cluster_arm(label, requests, budgets, autoscale,
                                reference)
    finally:
        if previous is None:
            os.environ.pop("REPRO_PASS_CACHE_SIZE", None)
        else:
            os.environ["REPRO_PASS_CACHE_SIZE"] = previous


def _run_cluster_arm(label, requests, budgets, autoscale, reference):
    # Hedging off (2 s >> any wait here): a one-device fleet *cannot*
    # hedge, so leaving it on would hand the multi-device arm duplicate
    # work the fixed arm never pays — the comparison must be clean.
    cluster = Cluster(devices=1, replicas=2, fidelity="exact",
                      hedge_ms=2_000, **budgets)
    cluster.start()
    scaler = None
    snapshot = None
    unhandled = 0
    warm_pairs = []
    try:
        if autoscale:
            # Fast loop, low up-threshold: CI-scale workloads must
            # trigger scaling inside the warm-up passes.  down_depth=-1
            # keeps the fleet from draining between passes (mean depth
            # can never go below -1) — the timed pass measures the
            # scaled-up steady state.
            scaler = Autoscaler(
                cluster, min_devices=1, max_devices=3,
                interval_s=0.05, up_depth=1.0, down_depth=-1.0,
            )
            scaler.start()
        # Warm passes until the fleet stops growing: the autoscaler
        # needs live queue depth to act on, and a freshly grown fleet
        # needs one more pass to warm its resharded caches.  The fixed
        # arm runs the same settle loop (it converges after two
        # passes), so both arms enter the timed pass equally warm.
        previous_ups = -1
        for _ in range(4):
            _, pass_pairs, pass_unhandled = drive_cluster(
                cluster, requests
            )
            warm_pairs += pass_pairs
            unhandled += pass_unhandled
            ups_now = scaler.snapshot()["ups"] if scaler else 0
            if ups_now == previous_ups:
                break
            previous_ups = ups_now
        if scaler is not None:
            # The fleet is sized; stopping here keeps a late scale-up
            # from billing cold resharding to the timed pass.
            scaler.stop()
            snapshot = scaler.snapshot()
        latencies, pairs, run_unhandled = drive_cluster(cluster, requests)
        unhandled += run_unhandled
        alive = cluster.alive_count()
        stats = cluster.status()["stats"]
    finally:
        if scaler is not None:
            scaler.stop()
        cluster.shutdown(drain=True)
    identity = reference.check(warm_pairs + pairs)
    p99 = round(percentile(latencies, 99.0), 3)
    ups = snapshot["ups"] if snapshot else 0
    print(
        f"{label:<22s} p99 {p99:7.1f}ms  devices {alive}  "
        f"ups {ups}  added {stats.get('added_devices', 0)}  "
        f"reports {'identical' if identity['identical'] else 'MISMATCH'}"
    )
    return {
        "label": label,
        "autoscale": autoscale,
        "p99_ms": p99,
        "p50_ms": round(percentile(latencies, 50.0), 3),
        "requests": len(requests),
        "alive_devices": alive,
        "added_devices": stats.get("added_devices", 0),
        "autoscaler": snapshot,
        "identity": identity,
        "unhandled_exceptions": unhandled,
    }


def run(quick: bool, gate: float, output: Path) -> int:
    iters = 16 if quick else 32
    flood_cap = 240 if quick else 480
    matrices = victim_matrices(iters)
    reference = Reference()
    print(
        f"victims: {len(VICTIMS)} tenants x {VICTIM_THREADS} clients x "
        f"{iters} requests each; flood cap {flood_cap}; "
        f"victim weight 2.0, flood quota "
        f"{POLICY.quota_fraction:.0%} of the queue"
    )

    baseline = run_engine_arm(
        "baseline (no flood)", matrices, iters, 0, reference
    )
    flooded = run_engine_arm(
        "flood (QoS on)", matrices, iters, flood_cap, reference
    )
    ratios = {
        tenant: (
            flooded["victim_p99_ms"][tenant]
            / baseline["victim_p99_ms"][tenant]
            if baseline["victim_p99_ms"][tenant] > 0 else float("inf")
        )
        for tenant in VICTIMS
    }
    print(
        "victim p99 flood/baseline: "
        + "  ".join(f"{tenant} {ratio:.2f}x"
                    for tenant, ratio in ratios.items())
        + f"  (gate {gate:.1f}x)"
    )

    cluster_requests, budgets = build_cluster_workload(quick)
    fixed = run_cluster_arm(
        "fixed minimum (1 dev)", cluster_requests, budgets,
        autoscale=False, reference=reference,
    )
    scaled = run_cluster_arm(
        "autoscale (1->3 dev)", cluster_requests, budgets,
        autoscale=True, reference=reference,
    )
    autoscale_win = (
        fixed["p99_ms"] / scaled["p99_ms"]
        if scaled["p99_ms"] > 0 else float("inf")
    )
    print(f"autoscale aggregate-p99 win over fixed minimum: "
          f"{autoscale_win:.2f}x")

    payload = {
        "quick": quick,
        "gate": gate,
        "policy": {
            "weights": dict(POLICY.weights),
            "quota_fraction": POLICY.quota_fraction,
        },
        "baseline": baseline,
        "flooded": flooded,
        "victim_p99_ratio": {
            tenant: round(ratio, 4) for tenant, ratio in ratios.items()
        },
        "cluster_fixed": fixed,
        "cluster_autoscale": scaled,
        "autoscale_p99_win": round(autoscale_win, 4),
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(
        output, extra={"bench": "multitenant_qos", "quick": quick},
    )
    print(f"wrote {manifest}")

    failures = []
    for tenant, ratio in ratios.items():
        if ratio > gate:
            failures.append(
                f"victim {tenant!r} p99 under flood is {ratio:.2f}x its "
                f"unflooded baseline (gate {gate:.1f}x)"
            )
    flood_counters = flooded["tenants"].get(FLOOD, {})
    if not flood_counters.get("shed", 0):
        failures.append("the flood arm shed nothing — no overload")
    for tenant in VICTIMS:
        row = flooded["tenants"].get(tenant, {})
        if row.get("shed", 0) or row.get("expired", 0):
            failures.append(
                f"victim {tenant!r} absorbed shedding "
                f"(shed={row.get('shed', 0)} "
                f"expired={row.get('expired', 0)}) — the flood must"
            )
    for arm in (baseline, flooded):
        if not arm["identity"]["identical"]:
            failures.append(
                f"{arm['label']}: responses diverged from the serial "
                f"single-tenant reference"
            )
        if arm["unhandled_exceptions"]:
            failures.append(
                f"{arm['label']}: {arm['unhandled_exceptions']} "
                f"unhandled exceptions"
            )
    for arm in (fixed, scaled):
        if not arm["identity"]["identical"]:
            failures.append(
                f"{arm['label']}: responses diverged from the serial "
                f"single-tenant reference"
            )
        if arm["unhandled_exceptions"]:
            failures.append(
                f"{arm['label']}: {arm['unhandled_exceptions']} "
                f"unhandled exceptions"
            )
    if scaled["p99_ms"] >= fixed["p99_ms"]:
        failures.append(
            f"autoscale-on p99 {scaled['p99_ms']:.1f}ms did not beat "
            f"the fixed minimum's {fixed['p99_ms']:.1f}ms"
        )
    if not (scaled["autoscaler"] or {}).get("ups"):
        failures.append("the autoscaler never scaled up")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload (CI smoke mode)",
    )
    parser.add_argument(
        "--gate", type=float, default=DEFAULT_GATE,
        help="max victim p99 ratio, flooded over unflooded baseline",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_multitenant.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.gate, args.output)


if __name__ == "__main__":
    sys.exit(main())
