"""Scaling study: channel count and migration window (§6.1's outlook).

Not a published figure — the paper deploys one design point and argues
(§6.1) that a larger FPGA could widen the migration window.  This bench
quantifies both scaling axes of the reproduction's model:

* **channels**: every sparse channel adds a PEG and 14.37 GB/s; on a
  bandwidth-bound workload cycles should shrink near-linearly until
  imbalance breaks strong scaling;
* **migration span**: span 0 → 1 is the big step (the paper's headline);
  spans 2-3 trade URAMs for marginal residual-stall reduction.
"""

from __future__ import annotations

from conftest import print_banner
from repro.analysis.sweeps import (
    scaling_efficiency,
    sweep_channels,
    sweep_migration_span,
)
from repro.matrices import generators


def test_scaling_channels(benchmark):
    matrix = generators.uniform_random(6000, 6000, 120_000, seed=21)
    points = sweep_channels(matrix)
    efficiencies = scaling_efficiency(points)

    print_banner("Scaling: sparse channel count (uniform workload)")
    print(f"{'config':<8s}{'cycles':>9s}{'latency ms':>12s}"
          f"{'GFLOPS':>8s}{'efficiency':>11s}")
    for point, efficiency in zip(points, efficiencies):
        print(
            f"{point.label:<8s}{point.cycles:>9d}"
            f"{point.report.latency_ms:>12.4f}"
            f"{point.report.throughput_gflops:>8.2f}"
            f"{efficiency:>11.2f}"
        )

    cycles = [point.cycles for point in points]
    # Monotone improvement with channel count…
    assert cycles == sorted(cycles, reverse=True)
    # …and reasonable strong scaling on this balanced workload (the
    # fixed x-load/invocation terms erode efficiency at high counts).
    assert efficiencies[0] == 1.0
    assert efficiencies[-1] > 0.4

    matrix_span = generators.chung_lu_graph(2500, 25000, alpha=2.1,
                                            seed=22)
    span_points = sweep_migration_span(matrix_span)
    print_banner("Scaling: migration span (graph workload)")
    print(f"{'config':<8s}{'cycles':>9s}{'underutil %':>12s}"
          f"{'URAMs':>7s}")
    for point in span_points:
        print(
            f"{point.label:<8s}{point.cycles:>9d}"
            f"{point.report.underutilization_pct:>12.1f}"
            f"{point.urams:>7d}"
        )
    # Span 0 → 1 is the big step; URAM cost grows linearly with span.
    assert span_points[1].cycles < span_points[0].cycles * 0.5
    assert span_points[2].urams == 2 * span_points[1].urams
    assert span_points[3].urams == 3 * span_points[1].urams

    benchmark(sweep_channels, matrix, (4, 16))
