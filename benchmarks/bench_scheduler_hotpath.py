#!/usr/bin/env python
"""Scheduler hot-path smoke benchmark (array fast path vs legacy builders).

Times PE-aware and CrHCS scheduling over a fixed seeded corpus subset —
the inner loop of every Fig. 3/11/14 sweep — for both the vectorized
array-backed path and the legacy slot-at-a-time reference, verifies the
two produce byte-identical survey metrics (stall fractions, migration
counts, stream cycle counts), and writes ``BENCH_schedulers.json`` so
future changes have a perf trajectory to regress against.

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler_hotpath.py [--quick]

``--quick`` shrinks the matrix set for CI and exits non-zero if the array
path is more than 5× slower than the legacy path (a gross-slowdown guard;
the expected state is the array path being several times *faster*).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.matrices.collection import corpus_specs
from repro.metrics import pe_underutilization_percent_batch
from repro.scheduling.crhcs import MigrationReport, schedule_crhcs
from repro.scheduling.legacy import (
    legacy_schedule_crhcs,
    legacy_schedule_pe_aware,
)
from repro.scheduling.pe_aware import schedule_pe_aware
from repro.telemetry import write_manifest

#: Gross-slowdown guard for --quick mode (CI).
MAX_QUICK_SLOWDOWN = 5.0


def _timed_pass(schedule_fn, matrices, with_report=False):
    """One survey pass: schedule, extract metrics, drop the schedule.

    Schedules are not retained — exactly like the corpus sweeps, which
    keep per-matrix metrics only — so the timing reflects the scheduling
    hot path rather than allocator pressure from dozens of live grids.
    """
    metrics = {
        "stall_fractions": [],
        "stream_cycles": [],
    }
    if with_report:
        metrics["migration_counts"] = []
    start = time.perf_counter()
    for matrix in matrices:
        if with_report:
            report = MigrationReport()
            schedule = schedule_fn(matrix, report=report)
            metrics["migration_counts"].append(report.migrated)
        else:
            schedule = schedule_fn(matrix)
        metrics["stall_fractions"].append(schedule.underutilization)
        metrics["stream_cycles"].append(schedule.stream_cycles)
    elapsed = time.perf_counter() - start
    return elapsed, metrics


def _timed_survey(schedule_fn, matrices):
    """The Fig. 3 survey computation: schedule + Eq. 4 batch per matrix."""
    start = time.perf_counter()
    stalls = []
    nnzs = []
    for matrix in matrices:
        schedule = schedule_fn(matrix)
        stalls.append(schedule.total_stalls)
        nnzs.append(schedule.nnz)
    fractions = pe_underutilization_percent_batch(stalls, nnzs)
    elapsed = time.perf_counter() - start
    return elapsed, fractions


def run(quick: bool, output: Path) -> int:
    count, nnz_cap = (6, 10_000) if quick else (24, 40_000)
    specs = corpus_specs(count=count, nnz_cap=nnz_cap)
    matrices = [spec.generate() for spec in specs]
    nnz_total = sum(matrix.nnz for matrix in matrices)

    passes = {
        "pe_aware": (
            lambda m: schedule_pe_aware(m, DEFAULT_SERPENS),
            lambda m: legacy_schedule_pe_aware(m, DEFAULT_SERPENS),
            False,
        ),
        "crhcs": (
            lambda m, report=None: schedule_crhcs(
                m, DEFAULT_CHASON, report=report
            ),
            lambda m, report=None: legacy_schedule_crhcs(
                m, DEFAULT_CHASON, report=report
            ),
            True,
        ),
    }

    results = {}
    mismatches = []
    for scheme, (fast_fn, legacy_fn, with_report) in passes.items():
        fast_s, fast_metrics = _timed_pass(fast_fn, matrices, with_report)
        legacy_s, legacy_metrics = _timed_pass(
            legacy_fn, matrices, with_report
        )
        if fast_metrics != legacy_metrics:
            mismatches.append(scheme)
        results[scheme] = {
            "wall_clock_s": round(fast_s, 6),
            "elements_per_s": round(nnz_total / fast_s, 1),
            "legacy_wall_clock_s": round(legacy_s, 6),
            "legacy_elements_per_s": round(nnz_total / legacy_s, 1),
            "speedup_vs_legacy": round(legacy_s / fast_s, 3),
            "metrics_identical": fast_metrics == legacy_metrics,
        }
        print(
            f"{scheme:>9s}: array {fast_s:7.3f}s "
            f"({nnz_total / fast_s / 1e6:6.2f} Mnnz/s)  "
            f"legacy {legacy_s:7.3f}s  "
            f"speedup {legacy_s / fast_s:5.2f}x  "
            f"metrics {'identical' if fast_metrics == legacy_metrics else 'MISMATCH'}"
        )

    # The acceptance workload: a Fig. 3-style stall survey over the
    # REPRO_CORPUS_COUNT=100 corpus (12 matrices in --quick mode),
    # timed end to end on pre-generated matrices so the measurement is
    # scheduling + Eq. 4 rather than shared matrix-generation fixture
    # cost.
    survey_count = 12 if quick else 100
    survey_specs = corpus_specs(count=survey_count, nnz_cap=nnz_cap)
    survey_matrices = [spec.generate() for spec in survey_specs]
    survey_nnz = sum(matrix.nnz for matrix in survey_matrices)
    fast_s, fast_fractions = _timed_survey(
        lambda m: schedule_pe_aware(m, DEFAULT_SERPENS), survey_matrices
    )
    legacy_s, legacy_fractions = _timed_survey(
        lambda m: legacy_schedule_pe_aware(m, DEFAULT_SERPENS),
        survey_matrices,
    )
    if fast_fractions != legacy_fractions:
        mismatches.append("survey_fig03")
    results["survey_fig03"] = {
        "matrices": survey_count,
        "wall_clock_s": round(fast_s, 6),
        "elements_per_s": round(survey_nnz / fast_s, 1),
        "legacy_wall_clock_s": round(legacy_s, 6),
        "legacy_elements_per_s": round(survey_nnz / legacy_s, 1),
        "speedup_vs_legacy": round(legacy_s / fast_s, 3),
        "metrics_identical": fast_fractions == legacy_fractions,
    }
    print(
        f"   survey: array {fast_s:7.3f}s "
        f"({survey_nnz / fast_s / 1e6:6.2f} Mnnz/s)  "
        f"legacy {legacy_s:7.3f}s  "
        f"speedup {legacy_s / fast_s:5.2f}x  "
        f"metrics "
        f"{'identical' if fast_fractions == legacy_fractions else 'MISMATCH'}"
        f"  [{survey_count} matrices]"
    )

    payload = {
        "quick": quick,
        "matrices": count,
        "nnz_cap": nnz_cap,
        "nnz_total": nnz_total,
        "schemes": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(output, extra={"bench": "scheduler_hotpath",
                                            "quick": quick})
    print(f"wrote {manifest}")

    if mismatches:
        print(f"FAIL: metric mismatch vs legacy path: {mismatches}")
        return 1
    if quick:
        slow = [
            scheme
            for scheme, entry in results.items()
            if entry["speedup_vs_legacy"] < 1.0 / MAX_QUICK_SLOWDOWN
        ]
        if slow:
            print(
                f"FAIL: array path >{MAX_QUICK_SLOWDOWN:.0f}x slower than "
                f"legacy for {slow}"
            )
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small matrix set + >5x slowdown guard (CI smoke mode)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_schedulers.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.output)


if __name__ == "__main__":
    sys.exit(main())
