"""§6.2.2's regime analysis: where Chasoň's speedup compresses.

The paper reports a geometric-mean speedup of only 1.17× on the 12
matrices the *Serpens* paper evaluated — large, regular matrices where
PE-aware scheduling already keeps the pipeline busy and "RAW dependencies
in the migrated data … reduce the opportunity for CrHCS to fully exploit
its advantages".

This bench reproduces the regime split on synthetic families: on
imbalanced matrices (graphs, skewed blocks) Chasoň wins multi-x; on
regular matrices (dense-banded, uniform with long rows) the speedup
compresses towards the 301/223 MHz clock ratio (1.35×), because migration
finds few stalls to fill.
"""

from __future__ import annotations

from conftest import print_banner
from repro.baselines.serpens import SerpensAccelerator
from repro.core.chason import ChasonAccelerator
from repro.matrices import generators
from repro.metrics import geometric_mean

CLOCK_RATIO = 301.0 / 223.0


def _regular_suite():
    """Large, regular matrices: the Serpens-paper regime."""
    return [
        ("banded-full", generators.banded(6000, 6000, bandwidth=4,
                                          fill=1.0, seed=1)),
        ("banded-wide", generators.banded(4000, 4000, bandwidth=10,
                                          fill=1.0, seed=2)),
        ("uniform-dense-rows", generators.uniform_random(
            3000, 3000, 120_000, seed=3)),
        ("block-uniform", generators.block_diagonal(
            60, 64, block_fill=0.35, row_skew=0.0, seed=4)),
    ]


def _irregular_suite():
    """Imbalanced matrices: the Table 2 regime."""
    return [
        ("graph", generators.chung_lu_graph(3000, 40_000, alpha=2.1,
                                            seed=5)),
        ("power-law", generators.power_law_rows(4000, 4000, 40_000,
                                                alpha=1.8, seed=6)),
        ("block-skewed", generators.block_diagonal(
            60, 64, block_fill=0.2, row_skew=1.4, seed=7)),
    ]


def test_serpens_regime_split(benchmark, corpus_sweep):
    chason = ChasonAccelerator()
    serpens = SerpensAccelerator()

    print_banner("§6.2.2: speedup regimes (regular vs irregular matrices)")
    print(f"{'matrix':<20s}{'serpens u%':>11s}{'chason u%':>10s}"
          f"{'speedup':>9s}")

    def run(suite):
        speedups = []
        for name, matrix in suite:
            chason_report = chason.analyze(matrix)
            serpens_report = serpens.analyze(matrix)
            speedup = serpens_report.latency_ms / chason_report.latency_ms
            speedups.append(speedup)
            print(
                f"{name:<20s}{serpens_report.underutilization_pct:>11.1f}"
                f"{chason_report.underutilization_pct:>10.1f}"
                f"{speedup:>9.2f}"
            )
        return speedups

    regular = run(_regular_suite())
    irregular = run(_irregular_suite())

    regular_geomean = geometric_mean(regular)
    irregular_geomean = geometric_mean(irregular)
    print(
        f"\nregular geomean {regular_geomean:.2f}x "
        f"(paper's Serpens-suite regime: ≈1.17x; clock ratio "
        f"{CLOCK_RATIO:.2f}x)"
    )
    print(f"irregular geomean {irregular_geomean:.2f}x "
          "(Table 2 regime: multi-x)")

    # The §6.2.2 shape: regular matrices compress towards the clock
    # ratio; irregular matrices keep the multi-x advantage.
    assert regular_geomean < 2.2
    assert irregular_geomean > 2.5
    assert irregular_geomean > regular_geomean * 1.5
    # On every regular matrix Chasoň still at least matches Serpens
    # (never a slowdown — consistent with the paper's 1.17x geomean).
    assert all(s > 0.95 for s in regular)

    matrix = _regular_suite()[0][1]
    benchmark(chason.analyze, matrix)
