#!/usr/bin/env python
"""Serving throughput gate: the coalescing engine vs naive serial dispatch.

Two phases over the same mixed workload (several schemes, skewed matrix
popularity, ≥ 30 % duplicate requests):

* **serial** — one fresh, store-less :class:`PipelineRunner` per
  request, the way a naive caller would dispatch: no coalescing, no
  cross-request reuse, one at a time;
* **engine** — everything submitted up front to a
  :class:`~repro.serving.engine.ServingEngine`, so duplicates coalesce,
  compatible neighbours micro-batch, and workers execute concurrently
  over one shared artifact store.

Both phases run in one process over identical request lists, so the
wall-clock ratio isolates what the serving layer buys.  The gate (CI)
requires the engine to reach ``--gate`` × the serial throughput
(default 2.0), byte-identical reports, and a third **overload** phase —
a burst into a deliberately tiny queue — to shed with structured
``rejected``/``expired`` responses and zero unhandled exceptions.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py [--quick]

Writes ``BENCH_serving.json`` plus its run manifest.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
import sys
import time
from pathlib import Path

from repro.matrices.generators import uniform_random
from repro.pipeline.runner import PipelineRunner
from repro.scheduling.registry import get_scheme
from repro.serving import ServingEngine, SpMVRequest
from repro.serving.slo import latency_percentiles
from repro.telemetry import write_manifest

DEFAULT_GATE = 2.0

#: Duplicate share of the mixed workload — a hot-set skew typical of
#: request streams, and comfortably above the 30 % acceptance floor.
#: The schedulers are GIL-bound Python, so the engine's speedup tracks
#: the deduplication ratio (1 / (1 - fraction)) more than worker count.
DUPLICATE_FRACTION = 0.7


def report_bytes(report) -> bytes:
    return json.dumps(dataclasses.asdict(report), sort_keys=True).encode()


def build_workload(quick: bool):
    """A deterministic, skewed request mix.

    ``distinct`` jobs (matrix × scheme) are drawn with a popularity skew
    — a few hot jobs soak up the duplicate budget, the tail appears
    once — then the request order is shuffled with a fixed seed so
    duplicates interleave instead of arriving back to back.
    """
    if quick:
        distinct, shape = 12, (96, 96, 900)
    else:
        distinct, shape = 30, (128, 128, 1_800)
    total = int(round(distinct / (1.0 - DUPLICATE_FRACTION)))
    n_rows, n_cols, nnz = shape
    matrices = [
        uniform_random(n_rows, n_cols, nnz, seed=1_000 + index)
        for index in range(distinct)
    ]
    schemes = ["crhcs", "pe_aware"]
    jobs = [
        (matrices[index], schemes[index % len(schemes)])
        for index in range(distinct)
    ]
    # Popularity skew: job i gets weight ~ 1/(i+1); the hottest jobs
    # absorb the duplicate budget.
    duplicates = total - distinct
    weights = [1.0 / (index + 1) for index in range(distinct)]
    scale = duplicates / sum(weights)
    counts = [1 + int(round(weight * scale)) for weight in weights]
    while sum(counts) > total:
        counts[counts.index(max(counts))] -= 1
    while sum(counts) < total:
        counts[0] += 1
    order = [index for index, count in enumerate(counts)
             for _ in range(count)]
    random.Random(20260805).shuffle(order)
    requests = [
        SpMVRequest(jobs[index][0], scheme=jobs[index][1],
                    priority=index % 3)
        for index in order
    ]
    fingerprints = {r.work_fingerprint() for r in requests}
    duplicate_fraction = 1.0 - len(fingerprints) / len(requests)
    return requests, duplicate_fraction


def run_serial(requests):
    """Naive dispatch: a fresh, store-less runner per request."""
    reports, latencies_ms = [], []
    start = time.perf_counter()
    for request in requests:
        began = time.perf_counter()
        spec = get_scheme(request.scheme)
        config = request.resolve_config(spec)
        result = PipelineRunner().analyze(request.source, spec, config)
        latencies_ms.append((time.perf_counter() - began) * 1e3)
        reports.append(result.report)
    return time.perf_counter() - start, reports, latencies_ms


def run_engine(requests, workers: int):
    """Everything submitted up front, then awaited in request order."""
    # Pinned to the exact tier: this gate is about coalescing/batching
    # and requires byte-identical reports against the serial baseline
    # (the estimator fast path has its own gate, bench_tiered_fidelity).
    engine = ServingEngine(
        workers=workers, queue_capacity=len(requests), fidelity="exact"
    )
    engine.start()
    start = time.perf_counter()
    tickets = [engine.submit(request) for request in requests]
    responses = [ticket.result(timeout=600.0) for ticket in tickets]
    wall_s = time.perf_counter() - start
    engine.shutdown(drain=True)
    return wall_s, responses, dict(engine.stats), engine.latency_summary()


def run_overload(quick: bool):
    """A burst into a tiny queue: overload must degrade, never raise."""
    burst = 24 if quick else 60
    requests = [
        SpMVRequest(
            uniform_random(48, 48, 240, seed=5_000 + index),
            priority=index % 5,
            deadline_ms=0.01 if index % 7 == 0 else None,
        )
        for index in range(burst)
    ]
    unhandled = 0
    engine = ServingEngine(workers=1, queue_capacity=2, max_batch=2,
                           fidelity="exact")
    engine.start()
    tickets = []
    for request in requests:
        try:
            tickets.append(engine.submit(request))
        except Exception:  # the contract under test: submit never raises
            unhandled += 1
    statuses = {}
    for ticket in tickets:
        try:
            response = ticket.result(timeout=600.0)
            statuses[response.status] = statuses.get(response.status, 0) + 1
        except Exception:
            unhandled += 1
    engine.shutdown(drain=True)
    return {
        "burst": burst,
        "statuses": statuses,
        "unhandled_exceptions": unhandled,
        "stats": dict(engine.stats),
    }


def run(quick: bool, gate: float, workers: int, output: Path) -> int:
    requests, duplicate_fraction = build_workload(quick)
    print(
        f"workload: {len(requests)} requests, "
        f"{duplicate_fraction:.0%} duplicates, {workers} workers"
    )

    # Warm imports/numpy outside both timed phases.
    PipelineRunner().analyze(
        requests[0].source, get_scheme(requests[0].scheme)
    )

    serial_s, serial_reports, serial_ms = run_serial(requests)
    engine_s, responses, stats, engine_latency = run_engine(
        requests, workers
    )

    all_ok = all(response.ok for response in responses)
    identical = all_ok and all(
        report_bytes(response.report) == report_bytes(report)
        for response, report in zip(responses, serial_reports)
    )
    speedup = serial_s / engine_s if engine_s > 0 else float("inf")
    print(
        f"serial {serial_s:7.3f}s ({len(requests) / serial_s:6.1f} req/s)"
        f"  engine {engine_s:7.3f}s "
        f"({len(requests) / engine_s:6.1f} req/s)  "
        f"speedup {speedup:.2f}x  reports "
        f"{'identical' if identical else 'MISMATCH'}"
    )
    print(
        f"engine stats: accepted {stats['accepted']}, "
        f"coalesced {stats['coalesced']}, completed {stats['completed']}"
    )

    overload = run_overload(quick)
    shed = overload["statuses"].get("rejected", 0)
    expired = overload["statuses"].get("expired", 0)
    print(
        f"overload: {overload['burst']} burst → "
        f"{overload['statuses'].get('ok', 0)} ok, {shed} rejected, "
        f"{expired} expired, "
        f"{overload['unhandled_exceptions']} unhandled exceptions"
    )

    payload = {
        "quick": quick,
        "requests": len(requests),
        "duplicate_fraction": round(duplicate_fraction, 4),
        "workers": workers,
        "serial_s": round(serial_s, 6),
        "engine_s": round(engine_s, 6),
        "serial_rps": round(len(requests) / serial_s, 3),
        "engine_rps": round(len(requests) / engine_s, 3),
        "speedup": round(speedup, 4),
        "gate": gate,
        "reports_identical": identical,
        "engine_stats": stats,
        "latency_serial": latency_percentiles(serial_ms),
        "latency_engine": engine_latency,
        "overload": overload,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(
        output, workers=workers,
        extra={"bench": "serving_throughput", "quick": quick},
    )
    print(f"wrote {manifest}")

    failures = []
    if duplicate_fraction < 0.3:
        failures.append(
            f"duplicate fraction {duplicate_fraction:.0%} below the "
            f"30% workload floor"
        )
    if not identical:
        failures.append("engine reports diverged from serial dispatch")
    if speedup < gate:
        failures.append(
            f"speedup {speedup:.2f}x below the {gate:.1f}x gate"
        )
    if overload["unhandled_exceptions"]:
        failures.append(
            f"{overload['unhandled_exceptions']} unhandled exceptions "
            f"under overload"
        )
    if not shed:
        failures.append("overload burst shed nothing (queue too large?)")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload (CI smoke mode)",
    )
    parser.add_argument(
        "--gate", type=float, default=DEFAULT_GATE,
        help="minimum engine/serial throughput ratio",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="serving worker threads for the engine phase",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_serving.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.gate, args.workers, args.output)


if __name__ == "__main__":
    sys.exit(main())
