#!/usr/bin/env python
"""Solver-session gate: device-resident iteration vs one-shot requests.

Four phases:

* **one-shot** — the pre-session client: every power-iteration step is
  submitted as its own one-shot :class:`SpMVRequest` and dispatched the
  way the serving throughput gate's serial arm does — a fresh,
  store-less :class:`PipelineRunner` per request — so each iteration
  pays the full load + fingerprint + schedule round trip before its
  single simulate step;
* **session** — the same solve through a :class:`SolverSession`: routed
  once, schedule built once at open, iterate device-resident, every
  step re-executing only the simulate stage;
* **byte-identity** — ``session.run()`` against the offline solver loop
  for every registered solver program;
* **crash-failover** — sessions on a fault-injected cluster that loses
  two of three devices mid-run; every surviving session must converge
  to the byte-identical fault-free answer.

The gate (CI) requires the session's amortized per-iteration latency —
wall clock over the whole open/step/fetch lifecycle divided by
iterations — to beat the one-shot client's by ``--gate`` × (default
5.0), byte-identical results everywhere, and at least one observed
failover in the crash phase.

The timing matrix is ``mycielskian12``: dense enough that CrHCS
schedule construction dominates a single simulate step, which is
exactly the regime sessions exist for.

Usage::

    PYTHONPATH=src python benchmarks/bench_solver_sessions.py [--quick]

Writes ``BENCH_sessions.json`` plus its run manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cluster import Cluster
from repro.cluster.faults import FaultPlan, FaultSpec
from repro.core import ChasonAccelerator
from repro.matrices import laplacian_1d
from repro.pipeline.runner import PipelineRunner
from repro.scheduling.registry import get_scheme
from repro.serving import ServingEngine, SpMVRequest
from repro.sessions import SessionManager, solver_programs
from repro.solvers import conjugate_gradient, jacobi, power_iteration
from repro.solvers.steps import power_init, power_step
from repro.telemetry import write_manifest

DEFAULT_GATE = 5.0
TIMING_MATRIX = "mycielskian12"


def _offline(solver: str, matrix, b, **kwargs):
    accelerator = ChasonAccelerator()
    if solver == "power_iteration":
        return power_iteration(accelerator, matrix, **kwargs)
    if solver == "cg":
        return conjugate_gradient(accelerator, matrix, b, **kwargs)
    return jacobi(accelerator, matrix, b, omega=0.9, **kwargs)


def _session_kwargs(solver: str, b):
    if solver == "power_iteration":
        return {"params": {"seed": 0}}
    if solver == "cg":
        return {"params": {"b": b}}
    return {"params": {"b": b, "omega": 0.9}}


def _identical(offline, result) -> bool:
    return (
        result.solution.tobytes() == offline.solution.tobytes()
        and result.iterations == offline.iterations
        and result.residual == offline.residual
        and result.converged == offline.converged
        and result.history == offline.history
    )


def run_oneshot(iterations: int):
    """Power iteration, one one-shot ``SpMVRequest`` per step.

    The solver state lives client-side; every iteration builds a fresh
    request for the same (matrix, scheme) work and dispatches it
    store-less — no cross-request artifact reuse, exactly the serial
    arm of ``bench_serving_throughput`` — then advances one step.
    """
    state = None
    wall = 0.0
    for iteration in range(1, iterations + 1):
        request = SpMVRequest(TIMING_MATRIX, scheme="crhcs")
        began = time.perf_counter()
        spec = get_scheme(request.scheme)
        config = request.resolve_config(spec)
        prepared = PipelineRunner().prepare(request.source, spec, config)
        if state is None:
            state = power_init(prepared.loaded.matrix.n_cols, seed=0)
        power_step(prepared.execute, state, iteration)
        wall += time.perf_counter() - began
    return wall, state


def run_session(iterations: int):
    """The same solve through a session: open once, step to the cap."""
    with ServingEngine() as engine:
        manager = SessionManager(engine=engine)
        began = time.perf_counter()
        with manager.open(
            TIMING_MATRIX, solver="power_iteration",
            tolerance=0.0, max_iterations=iterations,
            params={"seed": 0},
        ) as session:
            result = session.run(timeout=600.0)
        wall = time.perf_counter() - began
        stats = dict(manager.snapshot())
    return wall, result, stats


def run_byte_identity():
    """``session.run()`` vs the offline loop, every solver program."""
    matrix = laplacian_1d(48)
    b = np.random.default_rng(11).normal(size=48)
    outcomes = {}
    with ServingEngine() as engine:
        manager = SessionManager(engine=engine)
        for solver in solver_programs():
            offline = _offline(solver, matrix, b,
                               tolerance=1e-6, max_iterations=60)
            with manager.open(
                matrix, solver=solver,
                tolerance=1e-6, max_iterations=60,
                **_session_kwargs(solver, b),
            ) as session:
                result = session.run(timeout=600.0)
            outcomes[solver] = {
                "identical": _identical(offline, result),
                "iterations": result.iterations,
                "converged": result.converged,
            }
    return outcomes


def run_crash_failover(sessions: int):
    """Two of three devices crash mid-run; survivors must not notice.

    Every session's result is compared byte-for-byte against the
    offline (fault-free) loop — failover re-materializes the resident
    state deterministically, so a crash is invisible in the answer.
    """
    matrix = laplacian_1d(40)
    offline = _offline("power_iteration", matrix, None,
                       tolerance=1e-10, max_iterations=25)
    plan = FaultPlan(seed=7)
    plan.add(FaultSpec(kind="crash", device_id="dev0", after=5))
    plan.add(FaultSpec(kind="crash", device_id="dev1", after=9))
    identical = 0
    with Cluster(devices=3, fault_plan=plan) as cluster:
        manager = SessionManager(cluster=cluster)
        for _ in range(sessions):
            with manager.open(
                matrix, solver="power_iteration",
                tolerance=1e-10, max_iterations=25,
                params={"seed": 0},
            ) as session:
                result = session.run(timeout=600.0)
            if _identical(offline, result):
                identical += 1
        stats = dict(manager.snapshot())
    return {
        "sessions": sessions,
        "identical_to_fault_free": identical,
        "failovers": stats["failovers"],
        "rematerializations": stats["rematerializations"],
    }


def run(quick: bool, gate: float, output: Path) -> int:
    session_iters = 14 if quick else 30
    oneshot_iters = 2 if quick else 4
    failover_sessions = 2 if quick else 4

    # Warm imports/generators outside both timed phases.
    PipelineRunner().load(TIMING_MATRIX)

    oneshot_s, oneshot_state = run_oneshot(oneshot_iters)
    oneshot_ms = 1e3 * oneshot_s / oneshot_iters
    print(
        f"one-shot: {oneshot_iters} iterations, "
        f"{oneshot_ms:8.2f} ms/iteration"
    )

    session_s, session_result, session_stats = run_session(session_iters)
    session_ms = 1e3 * session_s / session_result.iterations
    speedup = oneshot_ms / session_ms
    print(
        f"session:  {session_result.iterations} iterations, "
        f"{session_ms:8.2f} ms/iteration  (amortized over "
        f"open + steps + fetch)  speedup {speedup:.2f}x"
    )

    # The two clients run the same math: after min(iters) iterations
    # their residual histories must agree exactly.
    shared = min(oneshot_iters, session_result.iterations)
    math_identical = (
        [float(v) for v in oneshot_state.history[:shared]]
        == [float(v) for v in session_result.history[:shared]]
    )
    print(f"shared {shared}-iteration history identical: {math_identical}")

    byte_identity = run_byte_identity()
    for solver, outcome in sorted(byte_identity.items()):
        print(
            f"byte-identity {solver}: "
            f"{'identical' if outcome['identical'] else 'MISMATCH'} "
            f"({outcome['iterations']} iterations, "
            f"converged={outcome['converged']})"
        )

    failover = run_crash_failover(failover_sessions)
    print(
        f"crash-failover: {failover['identical_to_fault_free']}/"
        f"{failover['sessions']} sessions byte-identical to the "
        f"fault-free run, {failover['failovers']} failovers, "
        f"{failover['rematerializations']} re-materializations"
    )

    payload = {
        "quick": quick,
        "matrix": TIMING_MATRIX,
        "gate": gate,
        "oneshot_iterations": oneshot_iters,
        "oneshot_ms_per_iteration": round(oneshot_ms, 3),
        "session_iterations": session_result.iterations,
        "session_ms_per_iteration": round(session_ms, 3),
        "speedup": round(speedup, 4),
        "shared_history_identical": math_identical,
        "session_stats": session_stats,
        "byte_identity": byte_identity,
        "crash_failover": failover,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(
        output, extra={"bench": "solver_sessions", "quick": quick},
    )
    print(f"wrote {manifest}")

    failures = []
    if speedup < gate:
        failures.append(
            f"amortized speedup {speedup:.2f}x below the "
            f"{gate:.1f}x gate"
        )
    if not math_identical:
        failures.append("session and one-shot residual histories diverged")
    for solver, outcome in sorted(byte_identity.items()):
        if not outcome["identical"]:
            failures.append(
                f"{solver} session diverged from the offline solver"
            )
    if failover["identical_to_fault_free"] != failover["sessions"]:
        failures.append(
            f"only {failover['identical_to_fault_free']}/"
            f"{failover['sessions']} sessions survived failover "
            f"byte-identical"
        )
    if not failover["failovers"]:
        failures.append("crash phase observed no failovers")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload (CI smoke mode)",
    )
    parser.add_argument(
        "--gate", type=float, default=DEFAULT_GATE,
        help="minimum one-shot/session per-iteration latency ratio",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_sessions.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.gate, args.output)


if __name__ == "__main__":
    sys.exit(main())
