"""The SpMM extension (§7.2).

Paper: Chasoň extends to ``C = αAB + βC`` with 29 HBM channels (sparse A
stream + 4 for dense B + 8 for C + instruction order), deeper ScUG URAMs
holding one partial sum per B column, and trivially re-configured
Reduction/Re-order units.  §7.2 is a feasibility discussion — there are
no published SpMM numbers — so this bench demonstrates the claims
operationally: functional correctness through the CrHCS schedule, the
channel budget, and throughput scaling with the B panel width.
"""

from __future__ import annotations

import numpy as np

from conftest import print_banner
from repro.core.spmm import (
    chason_spmm,
    chason_spmm_report,
    sextans_spmm_report,
    spmm_config,
)
from repro.matrices import generators


def test_spmm_extension(benchmark):
    matrix = generators.power_law_rows(1500, 1500, 15000, alpha=1.8,
                                       seed=66)
    rng = np.random.default_rng(66)

    config = spmm_config()
    print_banner("§7.2: Chasoň for SpMM")
    print(
        f"channel budget: {config.sparse_channels} for A + "
        f"{config.dense_vector_channels} for B/C/instr = "
        f"{config.used_channels} (paper: 29)"
    )
    assert config.used_channels == 29

    # Functional correctness of alpha*A@B + beta*C through the schedule.
    b = rng.normal(size=(1500, 16)).astype(np.float32)
    c = rng.normal(size=(1500, 16))
    result, report = chason_spmm(matrix, b, c=c, alpha=1.5, beta=0.25)
    expected = 1.5 * matrix.to_dense() @ b.astype(np.float64) + 0.25 * c
    assert np.allclose(result, expected, rtol=1e-4, atol=1e-5)
    print(f"functional check: C = 1.5*A@B + 0.25*C verified "
          f"({matrix.nnz} nnz x {b.shape[1]} columns)")

    # Throughput scales with the B panel: wider panels amortise the
    # per-pass overheads until streaming dominates.
    print(f"\n{'B cols':>7s}{'latency ms':>12s}{'GFLOPS':>9s}")
    previous = None
    for b_cols in (8, 16, 32, 64, 128):
        panel_report = chason_spmm_report(matrix, b_cols)
        print(
            f"{b_cols:>7d}{panel_report.latency_ms:>12.4f}"
            f"{panel_report.throughput_gflops:>9.2f}"
        )
        if previous is not None:
            assert panel_report.latency_ms > previous.latency_ms
            assert (
                panel_report.throughput_gflops
                >= previous.throughput_gflops * 0.9
            )
        previous = panel_report
    # SpMM reuses each streamed non-zero across the whole B panel
    # (8 columns per beat), so its throughput must comfortably beat the
    # same schedule's SpMV throughput (2 FLOPs per streamed element).
    from repro.core.chason import ChasonAccelerator
    from repro.config import ChasonConfig

    spmv_gflops = ChasonAccelerator(
        ChasonConfig()
    ).analyze(matrix).throughput_gflops
    print(f"\nSpMV throughput on the same matrix: {spmv_gflops:.2f} GFLOPS")
    assert previous.throughput_gflops > 2.0 * spmv_gflops

    # CrHCS carries over: the Sextans-style (intra-channel, 223 MHz)
    # baseline loses on the same SpMM, like Serpens loses on SpMV.
    chason_report = chason_spmm_report(matrix, 32)
    sextans_report = sextans_spmm_report(matrix, 32)
    speedup = sextans_report.latency_ms / chason_report.latency_ms
    print(
        f"vs Sextans-style baseline at 32 B-columns: "
        f"{chason_report.latency_ms:.4f} ms vs "
        f"{sextans_report.latency_ms:.4f} ms ({speedup:.2f}x)"
    )
    assert speedup > 1.5
    assert sextans_report.migrated == 0

    benchmark(chason_spmm_report, matrix, 32)
