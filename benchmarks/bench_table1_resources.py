"""Table 1 — Alveo U55c resource consumption, Chasoň vs Serpens.

Paper: Serpens 219K LUT (16 %) / 252K FF / 798 DSP / 1024 BRAM18K (28 %) /
384 URAM (40 %); Chasoň 346K LUT (26 %) / 418K FF / 1254 DSP / 1024
BRAM18K / 512 URAM (52 %).  §4.5 also gives the URAM ablation: the ideal
ScUG of 8 needs 1024 URAMs (exceeds the 960 available), the deployed 4
needs 512, the theoretical floor is 256.

The bench prints the modelled table next to the published numbers and
asserts both columns; the timed kernel is the resource-model evaluation.
"""

from __future__ import annotations

import pytest

from conftest import print_banner
from repro.analysis.report import format_table1
from repro.config import ChasonConfig
from repro.errors import CapacityError
from repro.resources.model import (
    chason_resources,
    serpens_resources,
    uram_count,
)

PAPER = {
    "serpens": {"luts": 219_000, "ffs": 252_000, "dsps": 798,
                "bram18k": 1024, "urams": 384},
    "chason": {"luts": 346_000, "ffs": 418_000, "dsps": 1254,
               "bram18k": 1024, "urams": 512},
}


def test_table1_resource_consumption(benchmark):
    serpens = serpens_resources()
    chason = chason_resources()

    print_banner("Table 1: Xilinx Alveo U55c resource consumption")
    print(format_table1([serpens, chason]))

    for report, name in ((serpens, "serpens"), (chason, "chason")):
        paper = PAPER[name]
        assert report.luts == pytest.approx(paper["luts"], rel=0.01)
        assert report.ffs == pytest.approx(paper["ffs"], rel=0.01)
        assert report.dsps == paper["dsps"]
        assert report.bram18k == paper["bram18k"]
        assert report.urams == paper["urams"]
        report.check_fits()

    # §4.5 URAM ablation: 1024 (ideal, too big) → 512 (deployed) → 256.
    print("\n§4.5 URAM sizing: "
          f"ideal ScUG=8 → {uram_count(16, 8, 8)}, "
          f"deployed ScUG=4 → {uram_count(16, 8, 4)}, "
          f"floor ScUG=2 → {uram_count(16, 8, 2)} (960 available)")
    assert uram_count(16, 8, 8) == 1024
    assert uram_count(16, 8, 4) == 512
    assert uram_count(16, 8, 2) == 256
    with pytest.raises(CapacityError):
        chason_resources(ChasonConfig(scug_size=8)).check_fits()

    benchmark(chason_resources)
