"""Table 2 — the 20 SuiteSparse/SNAP evaluation matrices.

Paper: ten SuiteSparse matrices (NNZ 20 278 – 820 783) and ten SNAP graph
matrices (NNZ 20 296 – 905 468), densities 0.00035 % – 4.31 %.

The bench synthesises every named matrix, checks its NNZ matches Table 2
exactly and its density closely, prints the generated table, and times
the generation of one graph matrix.
"""

from __future__ import annotations

import pytest

from conftest import print_banner
from repro.analysis.report import format_table
from repro.matrices.named import generate_named, named_specs
from repro.matrices.stats import matrix_stats


def test_table2_dataset_synthesis(benchmark):
    rows = []
    for spec in named_specs():
        matrix = generate_named(spec.name)
        stats = matrix_stats(matrix)
        rows.append([
            spec.matrix_id,
            spec.name,
            spec.collection,
            str(matrix.nnz),
            f"{100 * stats.density:.4g}%",
            f"{spec.density_pct:.4g}%",
            f"{stats.imbalance:.1f}",
        ])
        # NNZ must match Table 2 exactly; density within generator slack.
        assert matrix.nnz == spec.nnz
        assert stats.density == pytest.approx(spec.density, rel=0.25)

    print_banner("Table 2: SuiteSparse and SNAP matrices (synthesised)")
    print(format_table(
        ["ID", "Dataset", "Coll.", "NNZ", "Density", "Paper",
         "Imbalance"],
        rows,
    ))

    benchmark(generate_named, "CollegeMsg")
