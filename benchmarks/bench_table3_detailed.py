"""Table 3 — detailed per-matrix performance of Chasoň and Serpens.

Paper: for each of the 20 Table 2 matrices — latency (ms), throughput
(GFLOPS), bandwidth-efficiency improvement (2.99×–8.47×) and
energy-efficiency improvement (1.27×–3.67×).  Aggregates: 2.03× average
energy-efficiency gain (0.33 vs 0.16 GFLOPS/W), peak Chasoň throughput
30.29 GFLOPS (SuiteSparse) / 27.37 (SNAP).

The bench prints the full modelled table next to the paper's aggregate
bands, asserts the shape, and times the analysis path of one matrix.
"""

from __future__ import annotations

from conftest import print_banner
from repro.analysis.report import format_table3
from repro.core.chason import ChasonAccelerator
from repro.matrices.named import generate_named
from repro.metrics import geometric_mean


def test_table3_detailed_performance(benchmark, named_sweep):
    print_banner("Table 3: detailed performance numbers")
    print(format_table3(named_sweep))

    bw_improvements = [
        item.bandwidth_efficiency_improvement for item in named_sweep
    ]
    energy_improvements = [
        item.energy_efficiency_improvement for item in named_sweep
    ]
    chason_peak = max(
        item.chason.throughput_gflops for item in named_sweep
    )
    serpens_peak = max(
        item.serpens.throughput_gflops for item in named_sweep
    )
    mean_chason_eff = sum(
        item.chason.energy_efficiency for item in named_sweep
    ) / len(named_sweep)
    mean_serpens_eff = sum(
        item.serpens.energy_efficiency for item in named_sweep
    ) / len(named_sweep)

    print(
        f"\npeak throughput: chason {chason_peak:.2f} GFLOPS "
        "(paper 30.29), "
        f"serpens {serpens_peak:.2f} GFLOPS (paper 7.08)"
    )
    print(
        f"mean energy efficiency: chason {mean_chason_eff:.3f} "
        "(paper 0.33), "
        f"serpens {mean_serpens_eff:.3f} GFLOPS/W (paper 0.16), "
        f"gain {mean_chason_eff / mean_serpens_eff:.2f}x (paper 2.03x)"
    )

    # Paper shape: every matrix improves on both metrics; improvements
    # land in multi-x bands; Chasoň's peak throughput is an order of
    # magnitude above Serpens' on these matrices.
    assert all(improvement > 1.0 for improvement in bw_improvements)
    assert all(improvement > 1.0 for improvement in energy_improvements)
    assert geometric_mean(bw_improvements) > 2.5
    assert chason_peak > serpens_peak * 2
    assert mean_chason_eff > mean_serpens_eff * 1.5

    matrix = generate_named("as-735")
    chason = ChasonAccelerator()
    benchmark(chason.analyze, matrix)
