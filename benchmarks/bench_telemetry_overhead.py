#!/usr/bin/env python
"""Telemetry overhead gate: the scheduling hot path, telemetry off vs on.

Runs the same PE-aware + CrHCS scheduling workload twice in one process —
first with telemetry disabled (the no-op singleton), then with a JSONL
sink enabled — and compares wall clocks.  Because both passes share the
process, interpreter and matrix fixtures, the ratio isolates the cost of
the instrumentation itself, which makes it a robust CI gate where
cross-machine absolute timings are not.

Usage::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py [--quick]

Exits non-zero when the telemetry-on pass is more than ``--gate`` times
the telemetry-off pass (default 1.25, i.e. 25 % — generous against CI
noise; the expected overhead is low single-digit percent because spans
and counters fire per matrix/tile, never per element).  Writes
``BENCH_telemetry_overhead.json`` plus its run manifest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro import telemetry
from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.matrices.collection import corpus_specs
from repro.scheduling.crhcs import schedule_crhcs
from repro.scheduling.pe_aware import schedule_pe_aware
from repro.telemetry import write_manifest
from repro.telemetry.schema import validate_file

#: Telemetry-on wall clock must stay below gate × telemetry-off.
DEFAULT_GATE = 1.25


def _workload(matrices) -> tuple:
    """One full pass: both schedulers over every matrix."""
    stalls = 0
    cycles = 0
    for matrix in matrices:
        schedule = schedule_pe_aware(matrix, DEFAULT_SERPENS)
        stalls += schedule.total_stalls
        cycles += schedule.stream_cycles
        schedule = schedule_crhcs(matrix, DEFAULT_CHASON)
        stalls += schedule.total_stalls
        cycles += schedule.stream_cycles
    return stalls, cycles


def _timed(matrices, repeats: int) -> tuple:
    """Best-of-N wall clock of the workload plus its (stable) metrics."""
    best = float("inf")
    metrics = None
    for _ in range(repeats):
        start = time.perf_counter()
        metrics = _workload(matrices)
        best = min(best, time.perf_counter() - start)
    return best, metrics


def run(quick: bool, gate: float, output: Path) -> int:
    count, nnz_cap = (6, 10_000) if quick else (16, 40_000)
    repeats = 2 if quick else 3
    specs = corpus_specs(count=count, nnz_cap=nnz_cap)
    matrices = [spec.generate() for spec in specs]
    nnz_total = sum(matrix.nnz for matrix in matrices)

    telemetry.disable()
    _workload(matrices[:1])  # warm numpy/import caches outside the timing
    off_s, off_metrics = _timed(matrices, repeats)

    trace_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-telemetry-"), "overhead.jsonl"
    )
    enabled = telemetry.configure(trace_path)
    on_s, on_metrics = _timed(matrices, repeats)
    enabled.close()
    telemetry.reset()

    records = validate_file(trace_path)
    ratio = on_s / off_s
    identical = off_metrics == on_metrics
    print(
        f"telemetry off {off_s:7.3f}s  on {on_s:7.3f}s  "
        f"overhead {100 * (ratio - 1):+.2f}%  "
        f"({records} records, metrics "
        f"{'identical' if identical else 'MISMATCH'})"
    )

    payload = {
        "quick": quick,
        "matrices": count,
        "nnz_cap": nnz_cap,
        "nnz_total": nnz_total,
        "repeats": repeats,
        "telemetry_off_s": round(off_s, 6),
        "telemetry_on_s": round(on_s, 6),
        "overhead_ratio": round(ratio, 4),
        "gate": gate,
        "records": records,
        "metrics_identical": identical,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(output, extra={"bench": "telemetry_overhead",
                                             "quick": quick})
    print(f"wrote {manifest}")

    if not identical:
        print("FAIL: schedule metrics changed when telemetry was enabled")
        return 1
    if ratio > gate:
        print(
            f"FAIL: telemetry-on pass is {ratio:.3f}x the telemetry-off "
            f"pass (gate {gate:.2f}x)"
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small matrix set (CI smoke mode)",
    )
    parser.add_argument(
        "--gate", type=float, default=DEFAULT_GATE,
        help="maximum allowed on/off wall-clock ratio",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_telemetry_overhead.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.gate, args.output)


if __name__ == "__main__":
    sys.exit(main())
