#!/usr/bin/env python
"""Tiered-fidelity gate: the calibrated estimator vs the exact simulator.

Three phases over one deterministic workload that cycles every
registered scheme across distinct uniform matrices:

* **exact** — a :class:`~repro.serving.engine.ServingEngine` pinned to
  the exact tier: every request builds a schedule and runs the cycle
  accounting;
* **estimate** — a fresh engine on the estimate tier (audits off so the
  phase times the fast path alone); the wall-clock ratio is the
  throughput the tier buys;
* **audit** — a fresh estimate-tier engine with ``audit_rate=1.0``, so
  *every* response is re-run through the exact simulator and checked
  against its calibrated tolerance.

The gate (CI) requires the estimate tier to reach ``--gate`` × the
exact throughput (default 10.0), a p95 relative total-cycle error of at
most ``--error-gate`` (default 5 %) against the exact phase's reports,
zero audit violations, and no scheme demoted to the exact tier.

Usage::

    PYTHONPATH=src python benchmarks/bench_tiered_fidelity.py [--quick]

Writes ``BENCH_tiered.json`` plus its run manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.estimator import PREDICTABLE_SCHEMES
from repro.matrices.generators import uniform_random
from repro.serving import ServingEngine, SpMVRequest
from repro.telemetry import percentile, write_manifest

DEFAULT_GATE = 10.0
DEFAULT_ERROR_GATE = 0.05


def build_workload(quick: bool):
    """Distinct jobs cycling every scheme over seeded uniform matrices.

    No duplicates on purpose: coalescing and caching are the *other*
    serving levers (bench_serving_throughput), and any duplicate would
    be served from cache identically on both tiers, diluting the
    per-request cost ratio this gate measures.
    """
    # Quick is the first third of the full workload at the same matrix
    # shape: the exact phase must carry real simulation cost, or the
    # speedup gate degenerates into a measure of engine overhead and
    # turns flaky under CI machine load.
    if quick:
        distinct, shape = 12, (256, 256, 6_000)
    else:
        distinct, shape = 36, (256, 256, 6_000)
    n_rows, n_cols, nnz = shape
    requests = [
        SpMVRequest(
            uniform_random(n_rows, n_cols, nnz, seed=3_000 + index),
            scheme=PREDICTABLE_SCHEMES[index % len(PREDICTABLE_SCHEMES)],
            priority=index % 3,
        )
        for index in range(distinct)
    ]
    return requests


def run_tier(requests, fidelity: str, workers: int,
             audit_rate: float = 0.0):
    """One phase: fresh engine, everything submitted up front."""
    engine = ServingEngine(
        workers=workers,
        queue_capacity=len(requests),
        fidelity=fidelity,
        audit_rate=audit_rate,
    )
    engine.start()
    start = time.perf_counter()
    tickets = [engine.submit(request) for request in requests]
    responses = [ticket.result(timeout=600.0) for ticket in tickets]
    wall_s = time.perf_counter() - start
    engine.shutdown(drain=True)
    return wall_s, responses, engine.audit_summary()


def relative_errors(requests, exact_responses, estimate_responses):
    """Per-request |estimate − exact| / exact over total cycles."""
    exact_totals = {
        request.work_fingerprint(): response.report.total_cycles
        for request, response in zip(requests, exact_responses)
    }
    errors = []
    for request, response in zip(requests, estimate_responses):
        exact_total = exact_totals[request.work_fingerprint()]
        errors.append(
            abs(response.report.total_cycles - exact_total)
            / max(exact_total, 1)
        )
    return errors


def run(quick: bool, gate: float, error_gate: float, workers: int,
        output: Path) -> int:
    requests = build_workload(quick)
    schemes = sorted({request.scheme for request in requests})
    print(
        f"workload: {len(requests)} distinct requests over "
        f"{len(schemes)} schemes, {workers} workers"
    )

    # Warm imports/numpy outside the timed phases.
    warm = ServingEngine(workers=1, fidelity="exact")
    warm.start()
    warm.submit(requests[0]).result(timeout=600.0)
    warm.shutdown(drain=True)

    exact_s, exact_responses, _ = run_tier(requests, "exact", workers)
    estimate_s, estimate_responses, _ = run_tier(
        requests, "estimate", workers
    )

    all_ok = (
        all(response.ok for response in exact_responses)
        and all(response.ok for response in estimate_responses)
    )
    all_estimated = all(
        response.fidelity == "estimate" for response in estimate_responses
    )
    speedup = exact_s / estimate_s if estimate_s > 0 else float("inf")
    print(
        f"exact    {exact_s:7.3f}s ({len(requests) / exact_s:7.1f} req/s)"
        f"   estimate {estimate_s:7.3f}s "
        f"({len(requests) / estimate_s:7.1f} req/s)   "
        f"speedup {speedup:.1f}x"
    )

    errors = relative_errors(requests, exact_responses, estimate_responses)
    p50 = percentile(errors, 50)
    p95 = percentile(errors, 95)
    worst = max(errors)
    print(
        f"relative total-cycle error: p50 {100 * p50:.2f}%  "
        f"p95 {100 * p95:.2f}%  max {100 * worst:.2f}%"
    )

    # Audit phase: every estimate response re-run through the exact
    # simulator and checked against its calibrated tolerance.
    _, audit_responses, audit = run_tier(
        requests, "estimate", workers, audit_rate=1.0
    )
    audited_ok = all(response.ok for response in audit_responses)
    print(
        f"audit: sampled {audit['sampled']}, "
        f"violations {audit['violations']}, "
        f"max rel error {100 * audit['max_rel_error']:.2f}%, "
        f"demoted {audit['demoted'] or 'none'}"
    )

    payload = {
        "quick": quick,
        "requests": len(requests),
        "schemes": schemes,
        "workers": workers,
        "exact_s": round(exact_s, 6),
        "estimate_s": round(estimate_s, 6),
        "exact_rps": round(len(requests) / exact_s, 3),
        "estimate_rps": round(len(requests) / estimate_s, 3),
        "speedup": round(speedup, 4),
        "gate": gate,
        "error_gate": error_gate,
        "rel_error_p50": round(p50, 6),
        "rel_error_p95": round(p95, 6),
        "rel_error_max": round(worst, 6),
        "audit": audit,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(
        output, workers=workers,
        extra={"bench": "tiered_fidelity", "quick": quick},
    )
    print(f"wrote {manifest}")

    failures = []
    if not all_ok or not audited_ok:
        failures.append("a request failed on one of the tiers")
    if not all_estimated:
        failures.append(
            "an estimate-tier response fell back to the exact tier"
        )
    if speedup < gate:
        failures.append(
            f"speedup {speedup:.1f}x below the {gate:.1f}x gate"
        )
    if p95 > error_gate:
        failures.append(
            f"p95 relative cycle error {100 * p95:.2f}% above the "
            f"{100 * error_gate:.0f}% gate"
        )
    if audit["sampled"] != len(requests):
        failures.append(
            f"audit sampled {audit['sampled']}/{len(requests)} "
            f"(rate 1.0 must audit everything)"
        )
    if audit["violations"]:
        failures.append(f"{audit['violations']} audit violation(s)")
    if audit["demoted"]:
        failures.append(
            f"audit demoted scheme(s): {', '.join(audit['demoted'])}"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload (CI smoke mode)",
    )
    parser.add_argument(
        "--gate", type=float, default=DEFAULT_GATE,
        help="minimum estimate/exact throughput ratio",
    )
    parser.add_argument(
        "--error-gate", type=float, default=DEFAULT_ERROR_GATE,
        help="maximum p95 relative total-cycle error (fraction)",
    )
    parser.add_argument(
        "--workers", type=int, default=4,
        help="serving worker threads per phase",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_tiered.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.gate, args.error_gate, args.workers,
               args.output)


if __name__ == "__main__":
    sys.exit(main())
