#!/usr/bin/env python
"""Tracing overhead gate: the serving hot path with tracing off/sampled/on.

Three arms over the same serving workload in one process:

* ``off`` — telemetry disabled entirely.  This is the *tracing-disabled
  path*: every hook the tracing layer added to the engine
  (``maybe_start_trace``, ``scope(None)``, the per-span contextvar read)
  still executes, but short-circuits.
* ``sample0`` — telemetry on (JSONL sink), ``REPRO_TRACE_SAMPLE=0``:
  spans/counters/histograms are recorded but no request grows a trace
  context.
* ``sample1`` — telemetry on, every request traced: contexts propagate,
  every record carries ``trace_id``/``span_id``/``parent_span_id``.

Two gates:

1. **Disabled-path gate** (the PR acceptance criterion): the per-request
   cost of the short-circuiting hooks, measured directly by a
   microbenchmark (robust against workload wall-clock noise), must stay
   under ``--gate-disabled-pct`` (default 2 %) of the telemetry-off
   per-request latency.
2. **Tracing gate**: the fully-traced arm must stay under
   ``--gate-traced`` × the untraced-but-telemetry-on arm (default 1.25,
   the PR 2 telemetry gate), isolating the marginal cost of trace
   propagation from the cost of the JSONL sink itself.

Usage::

    PYTHONPATH=src python benchmarks/bench_tracing_overhead.py [--quick]

Writes ``BENCH_tracing_overhead.json`` plus its run manifest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Tuple

from repro import telemetry
from repro.serving import ServingEngine
from repro.serving.request import SpMVRequest
from repro.telemetry import tracing, write_manifest
from repro.telemetry.schema import load_trace_tolerant

#: Fully-traced wall clock must stay below gate × untraced (telemetry on).
DEFAULT_TRACED_GATE = 1.25

#: Disabled-path hook cost must stay below this % of request latency.
DEFAULT_DISABLED_GATE_PCT = 2.0

#: Hook executions per request on the serving path when tracing is off:
#: one sampling decision, ~4 ``scope(None)`` blocks (submit, dispatch,
#: batch item, resolve), ~8 contextvar reads (one per span/event site).
HOOKS_PER_REQUEST = {"maybe_start_trace": 1, "scope": 4, "current": 8}

MATRICES = ("wiki-Vote", "CollegeMsg", "email-Enron", "as-735")
SCHEMES = ("crhcs", "pe_aware")


def _requests(matrices, copies: int) -> List[SpMVRequest]:
    """``copies`` duplicates of each (matrix, scheme) — exercises
    coalescing exactly like the production workload tracing annotates."""
    return [
        SpMVRequest(source=name, scheme=scheme)
        for _ in range(copies)
        for name in matrices
        for scheme in SCHEMES
    ]


def _pass(requests: List[SpMVRequest]) -> Tuple[float, int]:
    """One timed pass: submit everything, wait for everything."""
    engine = ServingEngine(workers=2, fidelity="estimate")
    engine.start()
    try:
        start = time.perf_counter()
        tickets = [engine.submit(request) for request in requests]
        responses = [ticket.result(60.0) for ticket in tickets]
        elapsed = time.perf_counter() - start
    finally:
        engine.shutdown(drain=True)
    return elapsed, sum(1 for response in responses if response.ok)


def _timed(matrices, copies: int, repeats: int) -> Tuple[float, int]:
    best = float("inf")
    ok = 0
    for _ in range(repeats):
        elapsed, ok = _pass(_requests(matrices, copies))
        best = min(best, elapsed)
    return best, ok


def _hook_costs_s() -> Tuple[float, float, float]:
    """Per-call cost of each disabled-path hook (telemetry off)."""
    n = 50_000
    start = time.perf_counter()
    for i in range(n):
        tracing.maybe_start_trace(i)
    maybe_s = (time.perf_counter() - start) / n
    start = time.perf_counter()
    for _ in range(n):
        with tracing.scope(None):
            pass
    scope_s = (time.perf_counter() - start) / n
    start = time.perf_counter()
    for _ in range(n):
        tracing.current()
    current_s = (time.perf_counter() - start) / n
    return maybe_s, scope_s, current_s


def run(quick: bool, traced_gate: float, disabled_gate_pct: float,
        output: Path) -> int:
    matrices = MATRICES[:2] if quick else MATRICES
    copies = 3 if quick else 5
    repeats = 2 if quick else 3
    n_requests = copies * len(matrices) * len(SCHEMES)
    tmp = tempfile.mkdtemp(prefix="repro-tracing-")
    previous_sample = os.environ.pop(tracing.TRACE_SAMPLE_ENV, None)
    try:
        # Arm 1: telemetry off — the tracing-disabled path.
        telemetry.disable()
        _pass(_requests(matrices, 1))  # warm pipeline/import caches
        off_s, off_ok = _timed(matrices, copies, repeats)
        maybe_s, scope_s, current_s = _hook_costs_s()

        # Arm 2: telemetry on, tracing sampled out.
        os.environ[tracing.TRACE_SAMPLE_ENV] = "0"
        sample0_trace = os.path.join(tmp, "sample0.jsonl")
        enabled = telemetry.configure(sample0_trace)
        sample0_s, sample0_ok = _timed(matrices, copies, repeats)
        enabled.close()
        telemetry.reset()

        # Arm 3: telemetry on, every request traced.
        os.environ[tracing.TRACE_SAMPLE_ENV] = "1"
        sample1_trace = os.path.join(tmp, "sample1.jsonl")
        enabled = telemetry.configure(sample1_trace)
        sample1_s, sample1_ok = _timed(matrices, copies, repeats)
        enabled.close()
        telemetry.reset()
    finally:
        if previous_sample is None:
            os.environ.pop(tracing.TRACE_SAMPLE_ENV, None)
        else:
            os.environ[tracing.TRACE_SAMPLE_ENV] = previous_sample

    sample0_records, _ = load_trace_tolerant(sample0_trace)
    sample1_records, _ = load_trace_tolerant(sample1_trace)
    sample0_traced = sum(1 for r in sample0_records if "trace_id" in r)
    sample1_traced = sum(1 for r in sample1_records if "trace_id" in r)

    hook_s = (
        HOOKS_PER_REQUEST["maybe_start_trace"] * maybe_s
        + HOOKS_PER_REQUEST["scope"] * scope_s
        + HOOKS_PER_REQUEST["current"] * current_s
    )
    off_per_request_s = off_s / n_requests
    disabled_pct = 100.0 * hook_s / off_per_request_s
    traced_ratio = sample1_s / sample0_s

    print(
        f"off {off_s:7.3f}s  sample0 {sample0_s:7.3f}s  "
        f"sample1 {sample1_s:7.3f}s  ({n_requests} requests/pass)"
    )
    print(
        f"disabled-path hooks: {1e9 * hook_s:.0f} ns/request = "
        f"{disabled_pct:.4f}% of the {1e3 * off_per_request_s:.3f} ms "
        f"telemetry-off request (gate {disabled_gate_pct:.1f}%)"
    )
    print(
        f"traced/untraced ratio {traced_ratio:.3f}x "
        f"(gate {traced_gate:.2f}x); traced records: "
        f"sample0={sample0_traced} sample1={sample1_traced}"
    )

    payload = {
        "quick": quick,
        "requests_per_pass": n_requests,
        "repeats": repeats,
        "telemetry_off_s": round(off_s, 6),
        "sample0_s": round(sample0_s, 6),
        "sample1_s": round(sample1_s, 6),
        "hook_ns_per_request": round(1e9 * hook_s, 1),
        "disabled_overhead_pct": round(disabled_pct, 4),
        "disabled_gate_pct": disabled_gate_pct,
        "traced_ratio": round(traced_ratio, 4),
        "traced_gate": traced_gate,
        "sample0_traced_records": sample0_traced,
        "sample1_traced_records": sample1_traced,
        "ok": [off_ok, sample0_ok, sample1_ok],
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    manifest = write_manifest(output, extra={"bench": "tracing_overhead",
                                             "quick": quick})
    print(f"wrote {manifest}")

    failed = False
    if not (off_ok == sample0_ok == sample1_ok == n_requests):
        print(f"FAIL: response counts diverged {payload['ok']}")
        failed = True
    if sample0_traced:
        print(f"FAIL: {sample0_traced} traced records at sample rate 0")
        failed = True
    if not sample1_traced:
        print("FAIL: no traced records at sample rate 1")
        failed = True
    if disabled_pct > disabled_gate_pct:
        print(
            f"FAIL: disabled-path hooks cost {disabled_pct:.3f}% of a "
            f"request (gate {disabled_gate_pct:.1f}%)"
        )
        failed = True
    if traced_ratio > traced_gate:
        print(
            f"FAIL: traced pass is {traced_ratio:.3f}x the untraced pass "
            f"(gate {traced_gate:.2f}x)"
        )
        failed = True
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small request set (CI smoke mode)",
    )
    parser.add_argument(
        "--gate-traced", type=float, default=DEFAULT_TRACED_GATE,
        help="maximum traced/untraced wall-clock ratio",
    )
    parser.add_argument(
        "--gate-disabled-pct", type=float,
        default=DEFAULT_DISABLED_GATE_PCT,
        help="maximum disabled-path hook cost as %% of request latency",
    )
    parser.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_tracing_overhead.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args(argv)
    return run(args.quick, args.gate_traced, args.gate_disabled_pct,
               args.output)


if __name__ == "__main__":
    sys.exit(main())
