"""Shared fixtures for the benchmark harness.

Every evaluation figure/table has a dedicated ``bench_*`` file.  Expensive
sweeps (the 20 Table 2 matrices, the synthetic corpus) run once per
session and are shared; the ``benchmark`` fixture of each file times the
representative kernel of that experiment.

Scale knobs (see ``repro.analysis.experiments``):

* default — 96 corpus matrices capped at 40 000 non-zeros (minutes);
* ``REPRO_FULL_CORPUS=1`` — the full 800-matrix corpus at full size;
* ``REPRO_CORPUS_COUNT`` / ``REPRO_CORPUS_NNZ_CAP`` — manual overrides.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    compare_on_corpus,
    compare_on_named,
    gpu_cpu_comparison,
)

#: The in-depth subset used when a bench only needs a few named matrices.
FAST_NAMED = ["CollegeMsg", "as-735", "wb-cs-stanford",
              "dynamicSoaringProblem_8", "c52"]


@pytest.fixture(scope="session")
def named_sweep():
    """Chasoň vs Serpens on all 20 Table 2 matrices, with per-PEG stats."""
    return compare_on_named(include_channel_stats=True)


@pytest.fixture(scope="session")
def corpus_sweep():
    """Chasoň vs Serpens over the (capped) evaluation corpus."""
    return compare_on_corpus()


@pytest.fixture(scope="session")
def baseline_sweep():
    """Chasoň vs RTX 4090 / RTX A6000 / i9 over the corpus."""
    return gpu_cpu_comparison()


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
