#!/usr/bin/env python
"""Design-space exploration: channels × migration span × ScUG size.

The paper deploys one point of a larger design space (16 channels, span 1,
ScUG 4) dictated by the U55c's resources (§4.5, §6.1).  This example
sweeps the neighbourhood of that point on a SNAP-shaped workload and
reports, for every variant, the schedule quality (PE underutilization,
stream cycles), the modelled latency/throughput, and the URAM cost — the
trade-off a designer targeting a larger FPGA would navigate.

Run with::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import ChasonAccelerator, ChasonConfig
from repro.matrices import generators
from repro.resources.model import ALVEO_U55C, chason_resources


def main() -> None:
    workload = generators.chung_lu_graph(3000, 30000, alpha=2.1, seed=99)
    print(f"workload: {workload.shape} graph, nnz={workload.nnz}\n")

    header = (
        f"{'channels':>8s} {'span':>5s} {'scug':>5s} "
        f"{'underutil%':>11s} {'cycles':>8s} {'latency ms':>11s} "
        f"{'GFLOPS':>8s} {'URAMs':>7s} {'fits?':>6s}"
    )
    print(header)
    print("-" * len(header))

    for channels in (8, 16):
        for span in (1, 2):
            for scug in (2, 4, 8):
                config = ChasonConfig(
                    sparse_channels=channels,
                    migration_span=span,
                    scug_size=scug,
                )
                report = ChasonAccelerator(config).analyze(workload)
                resources = chason_resources(config)
                fits = resources.urams <= ALVEO_U55C.urams
                print(
                    f"{channels:>8d} {span:>5d} {scug:>5d} "
                    f"{report.underutilization_pct:>11.1f} "
                    f"{report.stream_cycles:>8d} "
                    f"{report.latency_ms:>11.4f} "
                    f"{report.throughput_gflops:>8.2f} "
                    f"{resources.urams:>7d} "
                    f"{'yes' if fits else 'NO':>6s}"
                )

    print(
        "\nReading the table:\n"
        "* span 2 shaves residual stalls (§6.1) but doubles ScUG URAMs —\n"
        "  on the U55c only span 1 fits alongside ScUG 4 (the deployed\n"
        "  point, 512 URAMs).\n"
        "* ScUG size never changes the schedule (§4.5): it trades URAM\n"
        "  budget against rows per pass, not performance.\n"
        "* Halving the channels halves the streaming parallelism: cycles\n"
        "  roughly double on this bandwidth-bound workload."
    )


if __name__ == "__main__":
    main()
