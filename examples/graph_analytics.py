#!/usr/bin/env python
"""PageRank on a SNAP-shaped graph, accelerated by Chasoň.

Graph analytics is the workload class the paper's SNAP subset represents:
power-law adjacency matrices whose hub rows starve intra-channel
schedulers.  This example runs power-iteration PageRank where every
iteration's SpMV executes on the cycle-level Chasoň model, then compares
the accelerator-time budget against Serpens for the same computation.

Run with::

    python examples/graph_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    COOMatrix,
    ChasonAccelerator,
    SerpensAccelerator,
    matrix_stats,
)
from repro.matrices import generators

DAMPING = 0.85
ITERATIONS = 15
NODES = 4000
EDGES = 40_000


def column_stochastic(adjacency: COOMatrix) -> COOMatrix:
    """Normalise columns so the matrix propagates rank mass."""
    out_degree = np.bincount(adjacency.cols, minlength=adjacency.n_cols)
    scale = np.ones_like(out_degree, dtype=np.float64)
    nonzero = out_degree > 0
    scale[nonzero] = 1.0 / out_degree[nonzero]
    return COOMatrix(
        adjacency.shape,
        adjacency.rows,
        adjacency.cols,
        adjacency.values * scale[adjacency.cols].astype(np.float32),
    )


def main() -> None:
    graph = generators.chung_lu_graph(NODES, EDGES, alpha=2.1, seed=404)
    # PageRank works on the link structure, not edge weights.
    graph = COOMatrix(
        graph.shape, graph.rows, graph.cols,
        np.ones(graph.nnz, dtype=np.float32),
    )
    transition = column_stochastic(graph)
    print("graph:", matrix_stats(transition).as_row())

    chason = ChasonAccelerator()
    serpens = SerpensAccelerator()
    # Schedule once; every iteration reuses the same data lists, exactly
    # like the paper's 1000-iteration measurement methodology (§5.2).
    chason_schedule = chason.schedule(transition)
    serpens_report = serpens.analyze(transition)

    rank = np.full(NODES, 1.0 / NODES, dtype=np.float32)
    teleport = (1.0 - DAMPING) / NODES
    accelerator_seconds = 0.0
    for iteration in range(ITERATIONS):
        execution, report = chason.run(transition, rank,
                                       schedule=chason_schedule)
        new_rank = DAMPING * execution.y + teleport
        delta = float(np.abs(new_rank - rank).sum())
        rank = new_rank.astype(np.float32)
        accelerator_seconds += report.latency_seconds
        if iteration % 5 == 0 or delta < 1e-7:
            print(f"iteration {iteration:2d}: l1 delta = {delta:.2e}")
        if delta < 1e-7:
            break

    top = np.argsort(rank)[::-1][:5]
    print("\ntop-5 nodes by PageRank:")
    for node in top:
        print(f"  node {node:5d}  rank {rank[node]:.6f}")

    chason_report = chason.analyze(transition, schedule=chason_schedule)
    per_iter_serpens = serpens_report.latency_ms
    per_iter_chason = chason_report.latency_ms
    print(
        f"\naccelerator time per iteration: chason "
        f"{per_iter_chason:.3f} ms vs serpens {per_iter_serpens:.3f} ms "
        f"({per_iter_serpens / per_iter_chason:.2f}x speedup)"
    )
    print(
        f"total modelled accelerator time for {ITERATIONS} iterations: "
        f"{1e3 * accelerator_seconds:.2f} ms"
    )


if __name__ == "__main__":
    main()
