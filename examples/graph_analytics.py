#!/usr/bin/env python
"""PageRank on a SNAP-shaped graph, served through a solver session.

Graph analytics is the workload class the paper's SNAP subset represents:
power-law adjacency matrices whose hub rows starve intra-channel
schedulers.  This example ranks nodes by the dominant eigenvector of the
column-stochastic transition matrix (the PageRank kernel), but instead of
hand-rolling the power-iteration loop it opens a
:class:`~repro.sessions.SolverSession` against a serving engine: the
schedule is built once at open, the iterate stays device-resident, and
every ``step`` re-executes only the simulate stage.  The accelerator-time
budget is then compared against Serpens for the same computation.

Run with::

    python examples/graph_analytics.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    COOMatrix,
    SerpensAccelerator,
    SessionManager,
    matrix_stats,
)
from repro.matrices import generators
from repro.serving import ServingEngine

TOLERANCE = 1e-7
MAX_ITERATIONS = 60
STEP_BATCH = 5
NODES = 4000
EDGES = 40_000


def column_stochastic(adjacency: COOMatrix) -> COOMatrix:
    """Normalise columns so the matrix propagates rank mass."""
    out_degree = np.bincount(adjacency.cols, minlength=adjacency.n_cols)
    scale = np.ones_like(out_degree, dtype=np.float64)
    nonzero = out_degree > 0
    scale[nonzero] = 1.0 / out_degree[nonzero]
    return COOMatrix(
        adjacency.shape,
        adjacency.rows,
        adjacency.cols,
        adjacency.values * scale[adjacency.cols].astype(np.float32),
    )


def main() -> None:
    graph = generators.chung_lu_graph(NODES, EDGES, alpha=2.1, seed=404)
    # PageRank works on the link structure, not edge weights.
    graph = COOMatrix(
        graph.shape, graph.rows, graph.cols,
        np.ones(graph.nnz, dtype=np.float32),
    )
    transition = column_stochastic(graph)
    print("graph:", matrix_stats(transition).as_row())

    serpens_report = SerpensAccelerator().analyze(transition)

    with ServingEngine() as engine:
        manager = SessionManager(engine=engine)
        # Open once: route, load, schedule.  The uniform rank vector is
        # the classic PageRank starting point; it lives on the device
        # from here on.
        with manager.open(
            transition,
            solver="power_iteration",
            tolerance=TOLERANCE,
            max_iterations=MAX_ITERATIONS,
            params={"x0": np.full(NODES, 1.0 / NODES)},
        ) as session:
            while not session.finished:
                payload = session.step(iterations=STEP_BATCH)
                print(
                    f"iteration {session.completed:2d}: "
                    f"residual = {session.residual:.2e}"
                    + ("  (converged)" if payload["converged"] else "")
                )
            result = session.result()
        print("resident store:", engine.resident.snapshot())

    rank = result.solution
    top = np.argsort(rank)[::-1][:5]
    print("\ntop-5 nodes by PageRank:")
    for node in top:
        print(f"  node {node:5d}  rank {rank[node]:.6f}")

    per_iter_chason = 1e3 * result.accelerator_seconds / result.iterations
    per_iter_serpens = serpens_report.latency_ms
    print(
        f"\naccelerator time per iteration: chason "
        f"{per_iter_chason:.3f} ms vs serpens {per_iter_serpens:.3f} ms "
        f"({per_iter_serpens / per_iter_chason:.2f}x speedup)"
    )
    print(
        f"total modelled accelerator time for {result.iterations} "
        f"iterations: {1e3 * result.accelerator_seconds:.2f} ms"
        f" (converged: {result.converged})"
    )


if __name__ == "__main__":
    main()
