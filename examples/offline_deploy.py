#!/usr/bin/env python
"""The deployment flow: preprocess offline, ship a binary, stream it.

A real Chasoň deployment separates roles (§4.1): a *preprocessing* host
runs CrHCS once and writes binary HBM channel images in the §3.2 wire
format; the *runtime* host uploads the image over PCIe, reconfigures the
FPGA once, and then streams thousands of SpMV iterations.  This example
walks the whole path with the library's serializer and host model, and
shows why the paper measures over 1000 iterations (§5.2).

Run with::

    python examples/offline_deploy.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import ChasonAccelerator, generate_named, reference_spmv
from repro.core.host import FPGA_PROTOCOL, estimate_deployment
from repro.scheduling import deserialize_schedule, serialize_schedule
from repro.sim import execute_schedule


def main() -> None:
    matrix = generate_named("as-735")
    chason = ChasonAccelerator()

    # --- offline: schedule once, write the channel image -----------------
    schedule = chason.schedule(matrix)
    image = serialize_schedule(schedule)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "as-735.chsn"
        path.write_bytes(image)
        print(
            f"offline preprocessing: {matrix.nnz} non-zeros scheduled, "
            f"{chason.last_migration.migrated} migrated; channel image "
            f"{len(image) / 1e6:.2f} MB -> {path.name}"
        )

        # --- runtime: load the image and stream -------------------------
        loaded = deserialize_schedule(path.read_bytes(), chason.config)

    x = np.random.default_rng(7).normal(size=matrix.n_cols)
    x = x.astype(np.float32)
    execution = execute_schedule(loaded, x, chason.config)
    assert execution.verify(reference_spmv(matrix, x), rtol=1e-4)
    print(
        f"runtime streaming: {execution.cycles.total} cycles "
        f"({execution.latency_ms:.4f} ms at 301 MHz), output verified"
    )

    # --- why the paper amortises over 1000 iterations (§5.2) -------------
    vector_bytes = 4 * (matrix.n_cols + matrix.n_rows)
    print(f"\n{'iterations':>11s}{'naive us/iter':>15s}"
          f"{'w/o reconfig':>14s}{'kernel us/iter':>16s}")
    for iterations in (1, 10, 100, FPGA_PROTOCOL.iterations):
        with_reconfig = estimate_deployment(
            kernel_seconds=execution.latency_seconds,
            schedule_bytes=len(image),
            vector_bytes=vector_bytes,
            iterations=iterations,
        )
        data_only = estimate_deployment(
            kernel_seconds=execution.latency_seconds,
            schedule_bytes=len(image),
            vector_bytes=vector_bytes,
            iterations=iterations,
            include_reconfiguration=False,
        )
        print(
            f"{iterations:>11d}"
            f"{1e6 * with_reconfig.amortised_iteration_seconds:>15.1f}"
            f"{1e6 * data_only.amortised_iteration_seconds:>14.1f}"
            f"{1e6 * data_only.per_iteration_seconds:>16.1f}"
        )
    print(
        "\nThe one-time 2 s reconfiguration amortises across the whole "
        "session (all\nmatrices share the bitstream); the per-matrix "
        "image upload amortises across\nthe paper's 1000 iterations — "
        "which is exactly why §5.2 uses that count."
    )


if __name__ == "__main__":
    main()
