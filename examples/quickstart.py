#!/usr/bin/env python
"""Quickstart: run one SpMV on Chasoň and compare against Serpens.

The five-minute tour of the library:

1. synthesise a Table 2 matrix (wiki-Vote);
2. schedule it with CrHCS and with the PE-aware baseline;
3. execute both schedules on the cycle-level simulator;
4. verify functional correctness against a float64 reference;
5. print the §5.3 metrics side by side.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ChasonAccelerator,
    SerpensAccelerator,
    generate_named,
    matrix_stats,
    reference_spmv,
)


def main() -> None:
    # 1. A SNAP-shaped graph matrix (103 689 non-zeros, Table 2).
    matrix = generate_named("wiki-Vote")
    print("matrix:", matrix_stats(matrix).as_row())

    rng = np.random.default_rng(2025)
    x = rng.normal(size=matrix.n_cols).astype(np.float32)
    reference = reference_spmv(matrix, x)

    # 2./3. Schedule and execute on both accelerators.
    chason = ChasonAccelerator()
    serpens = SerpensAccelerator()
    chason_exec, chason_report = chason.run(matrix, x)
    serpens_exec, serpens_report = serpens.run(matrix, x)

    # 4. End-to-end functional correctness (§5.1).
    assert chason_exec.verify(reference), "Chasoň output mismatch"
    assert serpens_exec.verify(reference), "Serpens output mismatch"
    print("functional check: both accelerators match the reference\n")

    # 5. The §5.3 metrics.
    for report in (chason_report, serpens_report):
        print(report.as_table_row())

    speedup = serpens_report.latency_ms / chason_report.latency_ms
    reduction = serpens_report.traffic_bytes / chason_report.traffic_bytes
    migration = chason.last_migration
    print(
        f"\nChasoň speedup over Serpens : {speedup:.2f}x\n"
        f"HBM transfer reduction      : {reduction:.2f}x\n"
        f"non-zeros migrated by CrHCS : {migration.migrated} of "
        f"{matrix.nnz} ({100 * migration.migration_fraction:.1f}%)"
    )


if __name__ == "__main__":
    main()
