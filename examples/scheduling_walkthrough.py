#!/usr/bin/env python
"""A Fig. 5-style walkthrough of CrHCS on a tiny hand-sized matrix.

Prints the channel data lists (one row of slots per cycle, ``--``
marking the explicit zeros / idle PEs) under PE-aware scheduling and
after CrHCS migration, so you can watch the non-zeros move across
channels exactly like the paper's worked example.

Run with::

    python examples/scheduling_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro import COOMatrix, ChasonConfig, SerpensConfig
from repro.scheduling import (
    schedule_crhcs,
    schedule_pe_aware,
    underutilization_percent,
)
from repro.scheduling.crhcs import MigrationReport

# A miniature machine: 3 channels x 4 PEs, dependency distance 2 —
# the same scale as the paper's Fig. 5.
CONFIG_KWARGS = dict(
    sparse_channels=3,
    pes_per_channel=4,
    accumulator_latency=2,
    column_window=64,
    row_window=64,
)
SERPENS = SerpensConfig(**CONFIG_KWARGS)
CHASON = ChasonConfig(scug_size=4, **CONFIG_KWARGS)


def build_matrix() -> COOMatrix:
    """Rows chosen so channel 0 starves while channel 1 overflows.

    With 12 total PEs, rows 4..7 map to channel 1 and rows 8..11 to
    channel 2 (Eq. 1); we give channel 1's rows many non-zeros and
    channel 0's rows almost none.
    """
    entries = []
    for row in (4, 5, 6, 7):  # channel 1: busy rows
        for col in range(6):
            entries.append((row, col, float(10 * row + col + 1)))
    for row in (8, 9):  # channel 2: a little work
        for col in range(2):
            entries.append((row, col, float(10 * row + col + 1)))
    entries.append((0, 0, 1.0))  # channel 0: nearly idle
    return COOMatrix.from_entries((12, 8), entries)


def render(schedule) -> str:
    lines = []
    for grid in schedule.tiles[0].grids:
        lines.append(f"channel {grid.channel_id}:")
        for cycle in range(len(grid)):
            cells = []
            for pe, slot in enumerate(grid.cycle_slots(cycle)):
                if slot is None:
                    cells.append(" -- ")
                else:
                    tag = "" if slot.origin_channel == grid.channel_id \
                        else f"<{slot.origin_channel}"
                    cells.append(f"r{slot.row:02d}{tag}".ljust(4))
            lines.append(f"  cycle {cycle:2d}: " + " ".join(cells))
    return "\n".join(lines)


def main() -> None:
    matrix = build_matrix()
    print(f"matrix: {matrix.shape}, nnz={matrix.nnz}")
    print("(slots show the row a non-zero belongs to; '<c' marks a value "
          "migrated in from channel c)\n")

    pe_aware = schedule_pe_aware(matrix, SERPENS)
    print("== PE-aware (Serpens) schedule ==")
    print(render(pe_aware))
    print(
        f"stalls {pe_aware.total_stalls}, underutilization "
        f"{underutilization_percent(pe_aware):.0f}%, "
        f"{pe_aware.stream_cycles} cycles\n"
    )

    report = MigrationReport()
    crhcs = schedule_crhcs(matrix, CHASON, report=report)
    print("== CrHCS schedule (after cross-channel migration) ==")
    print(render(crhcs))
    print(
        f"stalls {crhcs.total_stalls}, underutilization "
        f"{underutilization_percent(crhcs):.0f}%, "
        f"{crhcs.stream_cycles} cycles"
    )
    print(
        f"migrated {report.migrated} non-zeros "
        f"({100 * report.migration_fraction:.0f}% of all issues); "
        f"RAW-skips during migration: {report.raw_skips}"
    )
    for (dest, donor), count in sorted(report.pair_counts.items()):
        print(f"  channel {donor} -> channel {dest}: {count} values")

    # The walkthrough doubles as a correctness demo.
    from repro.sim import execute_schedule

    x = np.arange(1, 9, dtype=np.float32)
    execution = execute_schedule(crhcs, x)
    assert execution.verify(matrix.matvec(x))
    print("\nfunctional check passed: y == A @ x")


if __name__ == "__main__":
    main()
