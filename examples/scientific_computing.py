#!/usr/bin/env python
"""Iterative PDE solve (Jacobi) with Chasoň as the SpMV engine.

Scientific computing is the other workload family in the paper's intro:
banded/stencil systems from discretised PDEs.  This example assembles a
2-D five-point Poisson operator, solves ``A u = b`` with Jacobi iteration
where the off-diagonal SpMV runs on the Chasoň model, and reports how the
scheduling schemes compare on this *balanced* matrix — the regime where
the paper's gains are smallest, a useful honesty check.

Run with::

    python examples/scientific_computing.py
"""

from __future__ import annotations

import numpy as np

from repro import COOMatrix, ChasonAccelerator, SerpensAccelerator
from repro.matrices.operators import laplacian_2d
from repro.scheduling import (
    schedule_crhcs,
    schedule_pe_aware,
    schedule_row_based,
    underutilization_percent,
)

GRID = 48  # unknowns per side; matrix is GRID^2 x GRID^2


def split_off_diagonal(matrix: COOMatrix):
    """Jacobi splitting A = D + R; returns (diag, R)."""
    on_diag = matrix.rows == matrix.cols
    diagonal = np.zeros(matrix.n_rows)
    np.add.at(diagonal, matrix.rows[on_diag], matrix.values[on_diag])
    off = ~on_diag
    remainder = COOMatrix(
        matrix.shape, matrix.rows[off], matrix.cols[off],
        matrix.values[off],
    )
    return diagonal, remainder


def main() -> None:
    matrix = laplacian_2d(GRID)
    n = matrix.n_rows
    print(f"Poisson system: {n} unknowns, nnz={matrix.nnz}")

    diagonal, remainder = split_off_diagonal(matrix)
    rng = np.random.default_rng(7)
    solution = rng.normal(size=n)
    b = matrix.matvec(solution)

    chason = ChasonAccelerator()
    schedule = chason.schedule(remainder)
    u = np.zeros(n, dtype=np.float32)
    accelerator_ms = 0.0
    for iteration in range(200):
        execution, report = chason.run(remainder, u, schedule=schedule)
        u_next = ((b - execution.y) / diagonal).astype(np.float32)
        residual = float(
            np.linalg.norm(matrix.matvec(u_next) - b)
            / np.linalg.norm(b)
        )
        u = u_next
        accelerator_ms += report.latency_ms
        if iteration % 40 == 0 or residual < 1e-4:
            print(f"iteration {iteration:3d}: relative residual "
                  f"{residual:.3e}")
        if residual < 1e-4:
            break

    error = np.linalg.norm(u - solution) / np.linalg.norm(solution)
    print(f"relative solution error: {error:.3e}")
    print(f"modelled accelerator time: {accelerator_ms:.2f} ms\n")

    # Scheduling comparison on this balanced stencil matrix: PE-aware
    # already does well here (§2.2's easy case), so CrHCS's margin is
    # small — the opposite of the graph workloads.
    serpens = SerpensAccelerator()
    print("scheduling schemes on the (balanced) stencil matrix:")
    for name, tiled in (
        ("row_based", schedule_row_based(remainder, serpens.config)),
        ("pe_aware", schedule_pe_aware(remainder, serpens.config)),
        ("crhcs", schedule_crhcs(remainder, chason.config)),
    ):
        print(
            f"  {name:<10s} underutilization "
            f"{underutilization_percent(tiled):5.1f}%  "
            f"stream cycles {tiled.stream_cycles}"
        )


if __name__ == "__main__":
    main()
