#!/usr/bin/env python
"""SpMM on Chasoň: panel width, reuse, and the Sextans baseline (§7.2).

Sparse-times-dense multiplication reuses each streamed non-zero across
the whole B panel, so arithmetic intensity — and throughput — grows with
the panel until streaming saturates.  This example computes a GNN-style
feature propagation ``H' = A H`` on a graph with feature panels of
increasing width, verifies the result, and compares against the
Sextans-style (intra-channel scheduled, 223 MHz) baseline.

Run with::

    python examples/spmm_panels.py
"""

from __future__ import annotations

import numpy as np

from repro.core.spmm import (
    chason_spmm,
    chason_spmm_report,
    sextans_spmm_report,
)
from repro.matrices import generators


def main() -> None:
    graph = generators.chung_lu_graph(2000, 24000, alpha=2.1, seed=321)
    rng = np.random.default_rng(321)
    print(f"graph adjacency: {graph.shape}, nnz={graph.nnz}\n")

    # Functional check on a small panel (one GNN propagation step).
    features = rng.normal(size=(2000, 8)).astype(np.float32)
    propagated, report = chason_spmm(graph, features)
    expected = graph.to_dense() @ features.astype(np.float64)
    assert np.allclose(propagated, expected, rtol=1e-4, atol=1e-5)
    print(
        f"H' = A·H verified for 8 features "
        f"({report.latency_ms:.4f} ms, "
        f"{report.throughput_gflops:.1f} GFLOPS)\n"
    )

    print(f"{'panel':>6s}{'chason ms':>11s}{'GF':>7s}"
          f"{'sextans ms':>12s}{'GF':>7s}{'speedup':>9s}")
    for b_cols in (8, 16, 32, 64, 128, 256):
        chason = chason_spmm_report(graph, b_cols)
        sextans = sextans_spmm_report(graph, b_cols)
        print(
            f"{b_cols:>6d}{chason.latency_ms:>11.4f}"
            f"{chason.throughput_gflops:>7.1f}"
            f"{sextans.latency_ms:>12.4f}"
            f"{sextans.throughput_gflops:>7.1f}"
            f"{sextans.latency_ms / chason.latency_ms:>9.2f}x"
        )
    print(
        "\nThroughput grows with the panel while the CrHCS advantage "
        "(fewer streamed\nzeros) carries over from SpMV to SpMM — the "
        "§7.2 extension argument."
    )


if __name__ == "__main__":
    main()
