#!/usr/bin/env python
"""Sparse triangular solve (SpTRSV) on the Chasoň model.

SpTRSV is the kernel of the LevelST accelerator the paper groups Chasoň
with (§2.1) and a natural extension target (§7.2).  This example factors
a diagonally dominant system with incomplete Cholesky-style structure,
solves ``L x = b`` with level scheduling, and shows how the *level-set
shape* — wide levels (parallel) vs deep chains (serial) — determines
whether streaming or per-level overhead dominates the latency.

Run with::

    python examples/triangular_solve.py
"""

from __future__ import annotations

import numpy as np

from repro import COOMatrix
from repro.core.sptrsv import chason_sptrsv, level_sets


def wide_lower(n: int, seed: int = 0) -> COOMatrix:
    """Shallow dependencies: each row depends only on rows far above."""
    rng = np.random.default_rng(seed)
    rows, cols, values = [], [], []
    for i in range(n):
        rows.append(i)
        cols.append(i)
        values.append(4.0)
        if i >= n // 2:
            j = int(rng.integers(0, n // 4))
            rows.append(i)
            cols.append(j)
            values.append(float(rng.normal()))
    return COOMatrix((n, n), np.array(rows), np.array(cols),
                     np.array(values, dtype=np.float32))


def chain_lower(n: int) -> COOMatrix:
    """A bidiagonal chain: every row depends on the previous one."""
    entries = [(i, i, 4.0) for i in range(n)]
    entries += [(i, i - 1, -1.0) for i in range(1, n)]
    return COOMatrix.from_entries((n, n), entries)


def solve_and_report(name: str, matrix: COOMatrix) -> None:
    rng = np.random.default_rng(11)
    solution = rng.normal(size=matrix.n_rows)
    b = matrix.matvec(solution)
    x, report = chason_sptrsv(matrix, b, functional=False)
    error = np.linalg.norm(x - solution) / np.linalg.norm(solution)
    levels = level_sets(matrix)
    print(
        f"{name:<12s} n={report.n:5d} nnz={report.nnz:6d} "
        f"levels={report.levels:5d} (max width {report.max_level_width}) "
        f"latency={report.latency_ms:8.3f} ms  error={error:.2e}"
    )


def main() -> None:
    n = 1024
    print("Level-scheduled SpTRSV on the Chasoň model\n")
    print("Two systems of identical size, opposite dependency shapes:")
    solve_and_report("wide", wide_lower(n))
    solve_and_report("chain", chain_lower(n))
    print(
        "\nThe wide system solves in a handful of levels — each a "
        "well-utilised\nstreaming pass — while the chain needs one level "
        "per row and pays the\nper-invocation overhead n times: the "
        "level-set shape, not nnz, sets\nSpTRSV latency (the LevelST "
        "observation)."
    )


if __name__ == "__main__":
    main()
