#!/usr/bin/env python
"""Triage a matrix collection: who benefits from CrHCS, and how much?

A practitioner with hundreds of matrices should not schedule all of them
to find out where a Chasoň-class accelerator pays off.  The
characterization model (`repro.analysis.characterize`) predicts the
PE-aware stall fraction and the CrHCS improvement from cheap row-length
statistics; this example triages a mixed collection, then validates the
prediction by actually scheduling the extremes.

Run with::

    python examples/workload_triage.py
"""

from __future__ import annotations

from repro.analysis.characterize import rank_by_benefit
from repro.config import DEFAULT_CHASON, DEFAULT_SERPENS
from repro.matrices import generators
from repro.scheduling import schedule_crhcs, schedule_pe_aware


def collection():
    return [
        ("web-graph", generators.chung_lu_graph(3000, 30000, alpha=2.1,
                                                seed=1)),
        ("social-graph", generators.chung_lu_graph(2000, 30000, alpha=2.3,
                                                   seed=2)),
        ("lp-problem", generators.power_law_rows(4000, 4000, 24000,
                                                 alpha=1.8,
                                                 max_row_nnz=60, seed=3)),
        ("trajectory", generators.block_diagonal(30, 96, 0.05,
                                                 row_skew=1.3, seed=4)),
        ("monte-carlo", generators.uniform_random(3000, 3000, 24000,
                                                  seed=5)),
        ("stencil-pde", generators.banded(4000, 4000, 2, fill=1.0,
                                          seed=6)),
    ]


def main() -> None:
    workloads = collection()
    ranked = rank_by_benefit(workloads)

    print("Predicted CrHCS benefit (no scheduling performed):\n")
    print(f"{'workload':<14s}{'cv':>6s}{'gini':>6s}"
          f"{'pred serpens%':>14s}{'pred chason%':>13s}"
          f"{'improvement':>12s}{'verdict':>9s}")
    for name, character in ranked:
        verdict = "YES" if character.migration_worthwhile else "skip"
        print(
            f"{name:<14s}{character.row_cv:>6.2f}{character.gini:>6.2f}"
            f"{character.predicted_serpens_underutilization:>14.0f}"
            f"{character.predicted_chason_underutilization:>13.0f}"
            f"{character.predicted_improvement:>12.0f}{verdict:>9s}"
        )

    # Validate the extremes by scheduling them for real.
    by_name = dict(workloads)
    best_name = ranked[0][0]
    worst_name = ranked[-1][0]
    print("\nValidating the two extremes with real schedules:")
    for name in (best_name, worst_name):
        matrix = by_name[name]
        serpens = schedule_pe_aware(matrix, DEFAULT_SERPENS)
        chason = schedule_crhcs(matrix, DEFAULT_CHASON)
        print(
            f"  {name:<14s} measured serpens "
            f"{100 * serpens.underutilization:5.1f}% -> chason "
            f"{100 * chason.underutilization:5.1f}%  "
            f"(speedup {serpens.stream_cycles / max(chason.stream_cycles, 1):.2f}x "
            "in stream cycles)"
        )
    print(
        "\nThe predictor's ranking matches the measurement: triage first, "
        "schedule later."
    )


if __name__ == "__main__":
    main()
