#!/usr/bin/env python
"""Enforce the package layering of the reproduction.

The dependency order is::

    errors/config/precision/knobs
      → formats
        → matrices / metrics / power / telemetry / resources / hbm
          → scheduling / tenancy
            → sim
              → estimator
                → pipeline
                  → serving
                    → cluster
                      → core
                        → baselines / solvers
                          → sessions
                            → analysis
                              → cli

A module may import from its own layer or below, never from above: the
scheduling layer cannot reach into the pipeline, the pipeline cannot
reach into the accelerator façades, and only the CLI sits on top of
everything.  Only module-level imports participate — a function-local
import is the sanctioned escape hatch for the few places that need one
(and keeps import cycles impossible either way).  Run from the
repository root::

    python scripts/check_layering.py

Exit status 0 means no violations; each violation is printed as
``file:line: <importer layer> imports <imported layer>``.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Optional, Tuple

PACKAGE = "repro"
SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src", PACKAGE)

#: layer name → rank; a module may import layers of rank <= its own.
LAYERS = {
    "errors": 0,
    "config": 0,
    "precision": 0,
    "knobs": 0,
    "formats": 1,
    "matrices": 2,
    "metrics": 2,
    "power": 2,
    "telemetry": 2,
    "resources": 2,
    "hbm": 2,
    "scheduling": 3,
    "tenancy": 3,
    "sim": 4,
    "estimator": 5,
    "pipeline": 6,
    "serving": 7,
    "cluster": 8,
    "core": 9,
    "baselines": 10,
    "solvers": 10,
    "sessions": 11,
    "analysis": 12,
    "cli": 13,
    "__main__": 13,
    "__init__": 13,
}

#: Intra-``scheduling`` rule: the pass pipeline sits *below* the scheme
#: modules (they register their grid/migration kernels into it), so
#: ``scheduling/passes/`` may import only these ``scheduling`` submodules
#: at module level.  Everything else — the registry, the scheme modules,
#: the cache — would invert the kernel-registration dependency.
PASSES_ALLOWED_SCHEDULING = {"base", "stats", "window", "passes"}


def _module_layer(parts: Tuple[str, ...]) -> Optional[str]:
    """The layer of a dotted path relative to the package root."""
    return parts[0] if parts and parts[0] in LAYERS else None


def _module_level_nodes(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into ``if``/``try`` blocks but
    not into function bodies (function-local imports are exempt)."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.If, ast.Try, ast.With)):
            for block in ("body", "orelse", "finalbody", "handlers"):
                for child in getattr(node, block, []):
                    if isinstance(child, ast.ExceptHandler):
                        stack.extend(child.body)
                    else:
                        stack.append(child)


def _iter_imports(
    tree: ast.Module, package: Tuple[str, ...]
) -> Iterator[Tuple[int, Tuple[str, ...]]]:
    """Yield (lineno, imported-path-relative-to-repro) pairs.

    ``package`` is the importing module's containing package, relative
    to the ``repro`` root (empty for top-level modules).
    """
    for node in _module_level_nodes(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name.split(".")
                if name[0] == PACKAGE:
                    yield node.lineno, tuple(name[1:])
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                if node.module and node.module.split(".")[0] == PACKAGE:
                    base = tuple(node.module.split(".")[1:])
                    if base:
                        yield node.lineno, base
                    else:
                        for alias in node.names:
                            yield node.lineno, (alias.name,)
                continue
            # Relative import: ``level`` dots climb from the containing
            # package (one dot = the package itself).
            base_pkg = package[: len(package) - (node.level - 1)]
            if node.module:
                yield node.lineno, base_pkg + tuple(node.module.split("."))
            else:
                for alias in node.names:
                    yield node.lineno, base_pkg + (alias.name,)


def check() -> List[str]:
    violations: List[str] = []
    for root, _dirs, files in os.walk(SRC):
        for filename in sorted(files):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(root, filename)
            rel = os.path.relpath(path, SRC)
            parts = tuple(rel[:-3].replace(os.sep, "/").split("/"))
            if parts[-1] == "__init__":
                module_parts = parts[:-1]
                package = module_parts
            else:
                module_parts = parts
                package = parts[:-1]
            # The top-level __init__ is the public re-export hub and
            # aggregates every layer by design.
            if parts == ("__init__",):
                continue
            layer = _module_layer(module_parts) or parts[-1]
            rank = LAYERS.get(layer)
            if rank is None:
                violations.append(f"{path}: unknown layer {layer!r} "
                                  f"(add it to LAYERS)")
                continue
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            in_passes = module_parts[:2] == ("scheduling", "passes")
            for lineno, imported in _iter_imports(tree, package):
                imported_layer = _module_layer(imported)
                if imported_layer is None:
                    continue
                if LAYERS[imported_layer] > rank:
                    violations.append(
                        f"{path}:{lineno}: layer {layer!r} "
                        f"(rank {rank}) imports {imported_layer!r} "
                        f"(rank {LAYERS[imported_layer]})"
                    )
                    continue
                if in_passes and imported_layer == "scheduling":
                    sub = imported[1] if len(imported) > 1 else None
                    if sub not in PASSES_ALLOWED_SCHEDULING:
                        target = ".".join(imported)
                        violations.append(
                            f"{path}:{lineno}: scheduling.passes imports "
                            f"{target!r} (allowed scheduling submodules: "
                            f"{', '.join(sorted(PASSES_ALLOWED_SCHEDULING))})"
                        )
    return violations


def main() -> int:
    violations = check()
    for violation in violations:
        print(violation)
    if violations:
        print(f"\n{len(violations)} layering violation(s)")
        return 1
    print("layering OK: formats → scheduling → sim → estimator → "
          "pipeline → serving → cluster → core → sessions → analysis "
          "→ cli")
    return 0


if __name__ == "__main__":
    sys.exit(main())
