#!/usr/bin/env python
"""Fit the estimator calibration table against the exact simulator.

Runs every registered scheme over the golden corpus (the 20 named
matrices plus two uniform controls), compares the raw analytical
prediction with the exact pipeline result, fits the per-scheme scale
and tolerance, and prints the ``DEFAULT_CALIBRATION`` literal to paste
into ``src/repro/estimator/calibration.py``.

Usage::

    PYTHONPATH=src python scripts/fit_estimator_calibration.py
"""

from __future__ import annotations

import sys

from repro.estimator.calibration import CalibrationSample, fit_table
from repro.estimator.model import PREDICTABLE_SCHEMES, predict_schedule
from repro.matrices.generators import uniform_random
from repro.matrices.named import NAMED_MATRICES, generate_named
from repro.pipeline.runner import PipelineRunner
from repro.scheduling.registry import get_scheme


def corpus():
    mats = [(name, generate_named(name)) for name in sorted(NAMED_MATRICES)]
    mats += [
        (f"uniform_{i}", uniform_random(128, 128, 1800, seed=1000 + i))
        for i in range(2)
    ]
    return mats


def main() -> int:
    runner = PipelineRunner()
    matrices = corpus()
    samples = {}
    for scheme in PREDICTABLE_SCHEMES:
        spec = get_scheme(scheme)
        config = spec.default_config
        scheme_samples = []
        for name, matrix in matrices:
            exact = runner.analyze(matrix, spec)
            predicted = predict_schedule(matrix, scheme, config)
            fixed = predicted.cycles.total - predicted.cycles.stream
            scheme_samples.append(
                CalibrationSample(
                    raw_stream=predicted.raw_stream_cycles,
                    exact_stream=exact.report.stream_cycles,
                    predicted_fixed=fixed,
                    exact_total=exact.report.total_cycles,
                )
            )
            rel = abs(
                predicted.raw_stream_cycles - exact.report.stream_cycles
            ) / max(exact.report.stream_cycles, 1)
            print(
                f"  {scheme:14s} {name:24s} "
                f"exact={exact.report.stream_cycles:8d} "
                f"raw={predicted.raw_stream_cycles:8d} err={rel:6.3f}",
                file=sys.stderr,
            )
        samples[scheme] = scheme_samples

    table = fit_table(samples)
    print("DEFAULT_CALIBRATION = CalibrationTable(")
    print("    {")
    for scheme in table.schemes:
        e = table.for_scheme(scheme)
        print(f'        "{scheme}": SchemeCalibration(')
        print(f'            scheme="{scheme}",')
        print(f"            scale={e.scale!r},")
        print(f"            tolerance={round(e.tolerance, 4)!r},")
        print(
            f"            max_observed_error="
            f"{round(e.max_observed_error, 4)!r},"
        )
        print(f"            fitted_on={e.fitted_on},")
        print("        ),")
    print("    }")
    print(")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
