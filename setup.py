"""Legacy shim so editable installs work offline without the wheel package."""

from setuptools import setup

setup()
