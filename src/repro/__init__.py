"""Chasoň reproduction — cross-HBM-channel OoO scheduling for sparse algebra.

A cycle-level Python reproduction of *"Chasoň: Supporting Cross HBM
Channel Data Migration to Enable Efficient Sparse Algebraic Acceleration"*
(MICRO 2025): the CrHCS scheduler, the Chasoň accelerator datapath, the
Serpens / GPU / CPU baselines, and the full evaluation harness.

Quick start::

    import numpy as np
    from repro import ChasonAccelerator, SerpensAccelerator, generate_named

    matrix = generate_named("wiki-Vote")
    x = np.random.default_rng(0).normal(size=matrix.n_cols)

    chason = ChasonAccelerator()
    execution, report = chason.run(matrix, x)
    assert execution.verify(matrix.matvec(x))
    print(report.as_table_row())
"""

from .config import (
    ACCUMULATOR_LATENCY,
    COLUMN_WINDOW,
    DEFAULT_CHASON,
    DEFAULT_SERPENS,
    ELEMENTS_PER_WORD,
    AcceleratorConfig,
    ChasonConfig,
    HBMConfig,
    SerpensConfig,
    paper_configs,
)
from .core import (
    ChasonAccelerator,
    SpMMReport,
    SpMVReport,
    StreamingAccelerator,
    chason_spmm,
    chason_spmm_report,
)
from .baselines import (
    CusparseGpuModel,
    MklCpuModel,
    RTX_4090,
    RTX_A6000,
    SerpensAccelerator,
    reference_spmv,
)
from .errors import (
    CapacityError,
    ConfigError,
    DatasetError,
    FormatError,
    RawHazardError,
    ReproError,
    SchedulingError,
    ShapeError,
    SimulationError,
)
from .formats import COOMatrix, CSRMatrix, to_coo, to_csr
from .matrices import (
    generate_corpus,
    generate_named,
    matrix_stats,
    named_specs,
)
from .metrics import (
    bandwidth_efficiency,
    energy_efficiency,
    geometric_mean,
    pe_underutilization_percent,
    speedup,
    throughput_gflops,
)
from .scheduling import (
    MigrationReport,
    Schedule,
    TiledSchedule,
    schedule_crhcs,
    schedule_greedy_ooo,
    schedule_pe_aware,
    schedule_row_based,
    underutilization_percent,
)
from .precision import PRECISIONS, Precision, precision, with_precision
from .sim import SpMVExecution, estimate_cycles, execute_schedule
from .sessions import SessionManager, SessionSpec, SolverSession
from .solvers import (
    SolverResult,
    conjugate_gradient,
    jacobi,
    power_iteration,
)

__version__ = "1.0.0"

__all__ = [
    "ACCUMULATOR_LATENCY",
    "COLUMN_WINDOW",
    "DEFAULT_CHASON",
    "DEFAULT_SERPENS",
    "ELEMENTS_PER_WORD",
    "AcceleratorConfig",
    "ChasonConfig",
    "HBMConfig",
    "SerpensConfig",
    "paper_configs",
    "ChasonAccelerator",
    "SpMMReport",
    "SpMVReport",
    "StreamingAccelerator",
    "chason_spmm",
    "chason_spmm_report",
    "CusparseGpuModel",
    "MklCpuModel",
    "RTX_4090",
    "RTX_A6000",
    "SerpensAccelerator",
    "reference_spmv",
    "CapacityError",
    "ConfigError",
    "DatasetError",
    "FormatError",
    "RawHazardError",
    "ReproError",
    "SchedulingError",
    "ShapeError",
    "SimulationError",
    "COOMatrix",
    "CSRMatrix",
    "to_coo",
    "to_csr",
    "generate_corpus",
    "generate_named",
    "matrix_stats",
    "named_specs",
    "bandwidth_efficiency",
    "energy_efficiency",
    "geometric_mean",
    "pe_underutilization_percent",
    "speedup",
    "throughput_gflops",
    "MigrationReport",
    "Schedule",
    "TiledSchedule",
    "schedule_crhcs",
    "schedule_greedy_ooo",
    "schedule_pe_aware",
    "schedule_row_based",
    "underutilization_percent",
    "PRECISIONS",
    "Precision",
    "precision",
    "with_precision",
    "SpMVExecution",
    "estimate_cycles",
    "execute_schedule",
    "SessionManager",
    "SessionSpec",
    "SolverSession",
    "SolverResult",
    "conjugate_gradient",
    "jacobi",
    "power_iteration",
    "__version__",
]
