"""Statistics and experiment runners behind the evaluation section."""

from .stats import (
    DensityEstimate,
    describe,
    gaussian_kde_pdf,
    histogram_pdf,
)
from .characterize import WorkloadCharacter, characterize, rank_by_benefit
from .figures import render_bar_groups, render_histogram, render_pdf_curves
from .experiments import (
    BaselineComparison,
    CorpusResult,
    MatrixComparison,
    compare_on_corpus,
    compare_on_named,
    corpus_matrices,
    default_corpus_size,
    gpu_cpu_comparison,
)
from .export import (
    baseline_records,
    comparison_records,
    corpus_records,
    read_json,
    write_csv,
    write_json,
)
from .report import format_table, format_table3, format_table1

__all__ = [
    "DensityEstimate",
    "describe",
    "gaussian_kde_pdf",
    "histogram_pdf",
    "WorkloadCharacter",
    "characterize",
    "rank_by_benefit",
    "render_bar_groups",
    "render_histogram",
    "render_pdf_curves",
    "BaselineComparison",
    "CorpusResult",
    "MatrixComparison",
    "compare_on_corpus",
    "compare_on_named",
    "corpus_matrices",
    "default_corpus_size",
    "gpu_cpu_comparison",
    "baseline_records",
    "comparison_records",
    "corpus_records",
    "read_json",
    "write_csv",
    "write_json",
    "format_table",
    "format_table3",
    "format_table1",
]
