"""Workload characterization: when does CrHCS pay off?

§6.1/§6.2 explain Chasoň's gains through matrix structure: imbalance and
empty-row runs create the stalls migration fills, while regular matrices
leave little to recover.  This module packages that reasoning as a
predictor: from cheap matrix statistics it estimates the PE-aware stall
fraction and the CrHCS improvement *without scheduling anything*, so a
user can triage a large matrix collection before spending scheduler time.

The model is intentionally transparent (closed-form, no fitted black
box): the PE-aware round-robin window wastes ``1 - mean/max`` of each
window, which for a row-length distribution with coefficient of variation
``cv`` behaves like ``cv / (cv + c)``; CrHCS recovers the share of stalls
whose neighbouring channel has surplus work, bounded by the residual
imbalance.  The test-suite checks the predictor's *ranking* (Spearman
style) against measured schedules — the property that matters for triage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from ..formats.convert import to_csr
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..matrices.stats import matrix_stats

Matrix = Union[COOMatrix, CSRMatrix]

#: Shape constants of the closed-form predictor (see module docstring).
_WINDOW_SHAPE = 0.85
_MIGRATION_RECOVERY = 0.72


@dataclass(frozen=True)
class WorkloadCharacter:
    """Structure summary plus predicted scheduling outcomes."""

    nnz: int
    row_cv: float
    gini: float
    empty_row_fraction: float
    predicted_serpens_underutilization: float
    predicted_chason_underutilization: float

    @property
    def predicted_improvement(self) -> float:
        """Predicted drop in underutilization (percentage points)."""
        return (
            self.predicted_serpens_underutilization
            - self.predicted_chason_underutilization
        )

    @property
    def migration_worthwhile(self) -> bool:
        """Triage verdict: is cross-channel migration worth deploying?"""
        return self.predicted_improvement > 10.0


def characterize(matrix: Matrix) -> WorkloadCharacter:
    """Predict scheduling outcomes from matrix statistics alone."""
    csr = to_csr(matrix)
    stats = matrix_stats(csr)
    lengths = csr.row_lengths().astype(np.float64)
    mean = lengths.mean() if lengths.size else 0.0
    cv = float(lengths.std() / mean) if mean > 0 else 0.0

    # Round-robin windows waste roughly the max-vs-mean gap; a cv-shaped
    # saturating curve captures both the Poisson bulk (sparse uniform
    # matrices stall ~60-80%) and the heavy-tail ceiling.  The floor
    # models the residual equalisation/windowing stalls that even a
    # perfectly balanced matrix pays, and applies *after* the curve so a
    # near-zero-cv stencil predicts near the floor, not above it.
    base = cv / (cv + _WINDOW_SHAPE)
    floor = 0.45 if mean < 4 else 0.15  # short rows stall even when even
    serpens = 100.0 * min(0.99, max(base**0.5, floor))

    # Migration recovers a share of the stalls; there is little to
    # recover when rows are uniform (cv → 0: the stalls are structural,
    # not imbalance), and donors become RAW-limited when the tail is
    # extreme (gini → 1).
    recovery = (
        _MIGRATION_RECOVERY
        * (1.0 - 0.55 * stats.gini)
        * min(1.0, cv / 0.3)
    )
    chason = serpens * (1.0 - max(recovery, 0.05))

    return WorkloadCharacter(
        nnz=csr.nnz,
        row_cv=cv,
        gini=stats.gini,
        empty_row_fraction=stats.empty_row_fraction,
        predicted_serpens_underutilization=serpens,
        predicted_chason_underutilization=chason,
    )


def rank_by_benefit(
    matrices: List[Tuple[str, Matrix]]
) -> List[Tuple[str, WorkloadCharacter]]:
    """Order workloads by predicted CrHCS improvement, best first."""
    characters = [
        (name, characterize(matrix)) for name, matrix in matrices
    ]
    characters.sort(
        key=lambda item: item[1].predicted_improvement, reverse=True
    )
    return characters
