"""Shared experiment runners behind the benchmark harness.

Each evaluation figure/table reduces to one of three sweeps:

* :func:`compare_on_named` — Chasoň vs Serpens on the 20 Table 2 matrices
  (Figs. 12/13/15, Table 3);
* :func:`compare_on_corpus` — both schedulers over the 800-matrix corpus
  (Figs. 3/11);
* :func:`gpu_cpu_comparison` — Chasoň vs the GPU/CPU models (Fig. 14).

The corpus sweeps honour two environment variables so the benchmark suite
stays tractable by default but can reproduce the full-scale evaluation:

* ``REPRO_FULL_CORPUS=1`` runs all 800 matrices at full size;
* ``REPRO_CORPUS_COUNT=<n>`` / ``REPRO_CORPUS_NNZ_CAP=<m>`` override the
  defaults (96 matrices, 40 000 non-zero cap) individually.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..baselines.cpu import MklCpuModel
from ..baselines.gpu import CusparseGpuModel, RTX_4090, RTX_A6000
from ..baselines.serpens import SerpensAccelerator
from ..core.accelerator import SpMVReport
from ..core.chason import ChasonAccelerator
from ..formats.coo import COOMatrix
from ..matrices.collection import CORPUS_SIZE, CorpusSpec, corpus_specs
from ..matrices.named import generate_named, named_specs
from ..metrics import energy_efficiency, geometric_mean, speedup

DEFAULT_CORPUS_COUNT = 96
DEFAULT_CORPUS_NNZ_CAP = 40_000


def default_corpus_size() -> Tuple[int, Optional[int]]:
    """The (count, nnz_cap) the benchmarks use, after env overrides."""
    if os.environ.get("REPRO_FULL_CORPUS"):
        return CORPUS_SIZE, None
    count = int(os.environ.get("REPRO_CORPUS_COUNT", DEFAULT_CORPUS_COUNT))
    cap_raw = os.environ.get("REPRO_CORPUS_NNZ_CAP", DEFAULT_CORPUS_NNZ_CAP)
    cap = int(cap_raw) if int(cap_raw) > 0 else None
    return count, cap


def corpus_matrices(
    count: Optional[int] = None,
    nnz_cap: Optional[int] = None,
) -> Iterator[Tuple[CorpusSpec, COOMatrix]]:
    """Yield (spec, matrix) pairs of the evaluation corpus."""
    if count is None:
        count, default_cap = default_corpus_size()
        if nnz_cap is None:
            nnz_cap = default_cap
    for spec in corpus_specs(count, nnz_cap):
        yield spec, spec.generate()


@dataclass(frozen=True)
class MatrixComparison:
    """Chasoň vs Serpens on one matrix (a Table 3 / Fig. 15 row)."""

    matrix_id: str
    name: str
    collection: str
    nnz: int
    chason: SpMVReport
    serpens: SpMVReport
    #: Per-PEG underutilization % (Figs. 12/13); filled when the sweep is
    #: run with ``include_channel_stats=True``.
    chason_peg_underutilization: Tuple[float, ...] = ()
    serpens_peg_underutilization: Tuple[float, ...] = ()

    @property
    def speedup(self) -> float:
        return speedup(self.serpens.latency_ms, self.chason.latency_ms)

    @property
    def transfer_reduction(self) -> float:
        """Fig. 15 bottom: HBM transfer reduction factor."""
        return self.serpens.traffic_bytes / max(self.chason.traffic_bytes, 1)

    @property
    def bandwidth_efficiency_improvement(self) -> float:
        return (
            self.chason.bandwidth_efficiency
            / self.serpens.bandwidth_efficiency
        )

    @property
    def energy_efficiency_improvement(self) -> float:
        return self.chason.energy_efficiency / self.serpens.energy_efficiency


def compare_on_named(
    names: Optional[Sequence[str]] = None,
    collection: Optional[str] = None,
    include_channel_stats: bool = False,
) -> List[MatrixComparison]:
    """Run Chasoň and Serpens on (a subset of) the Table 2 matrices.

    Each matrix is scheduled once per accelerator; with
    ``include_channel_stats=True`` the per-PEG underutilization of
    Figs. 12/13 is extracted from the schedules before they are dropped.
    """
    from ..scheduling.stats import channel_underutilization

    if names is None:
        specs = named_specs(collection)
    else:
        all_specs = {spec.name: spec for spec in named_specs()}
        specs = [all_specs[name] for name in names]
    chason = ChasonAccelerator()
    serpens = SerpensAccelerator()
    results = []
    for spec in specs:
        matrix = generate_named(spec.name)
        chason_schedule = chason.schedule(matrix)
        serpens_schedule = serpens.schedule(matrix)
        chason_pegs: Tuple[float, ...] = ()
        serpens_pegs: Tuple[float, ...] = ()
        if include_channel_stats:
            chason_pegs = tuple(channel_underutilization(chason_schedule))
            serpens_pegs = tuple(channel_underutilization(serpens_schedule))
        results.append(
            MatrixComparison(
                matrix_id=spec.matrix_id,
                name=spec.name,
                collection=spec.collection,
                nnz=matrix.nnz,
                chason=chason.analyze(matrix, schedule=chason_schedule),
                serpens=serpens.analyze(matrix, schedule=serpens_schedule),
                chason_peg_underutilization=chason_pegs,
                serpens_peg_underutilization=serpens_pegs,
            )
        )
    return results


@dataclass
class CorpusResult:
    """Both schedulers over the corpus (Figs. 3/11 raw data)."""

    count: int
    serpens_underutilization: List[float] = field(default_factory=list)
    chason_underutilization: List[float] = field(default_factory=list)
    speedups: List[float] = field(default_factory=list)
    transfer_reductions: List[float] = field(default_factory=list)
    chason_throughputs: List[float] = field(default_factory=list)
    serpens_throughputs: List[float] = field(default_factory=list)

    @property
    def geomean_speedup(self) -> float:
        return geometric_mean(self.speedups)

    @property
    def peak_chason_gflops(self) -> float:
        return max(self.chason_throughputs)


def compare_on_corpus(
    count: Optional[int] = None,
    nnz_cap: Optional[int] = None,
) -> CorpusResult:
    """Chasoň vs Serpens over the evaluation corpus."""
    chason = ChasonAccelerator()
    serpens = SerpensAccelerator()
    result = CorpusResult(count=0)
    for _spec, matrix in corpus_matrices(count, nnz_cap):
        chason_report = chason.analyze(matrix)
        serpens_report = serpens.analyze(matrix)
        result.count += 1
        result.serpens_underutilization.append(
            serpens_report.underutilization_pct
        )
        result.chason_underutilization.append(
            chason_report.underutilization_pct
        )
        result.speedups.append(
            speedup(serpens_report.latency_ms, chason_report.latency_ms)
        )
        result.transfer_reductions.append(
            serpens_report.traffic_bytes
            / max(chason_report.traffic_bytes, 1)
        )
        result.chason_throughputs.append(chason_report.throughput_gflops)
        result.serpens_throughputs.append(serpens_report.throughput_gflops)
    return result


@dataclass(frozen=True)
class BaselineComparison:
    """Chasoň vs one GPU/CPU baseline on one matrix (Fig. 14 raw data)."""

    baseline: str
    matrix_label: str
    chason_latency_ms: float
    baseline_latency_ms: float
    chason_gflops: float
    baseline_gflops: float
    chason_eff: float
    baseline_eff: float

    @property
    def speedup(self) -> float:
        return self.baseline_latency_ms / self.chason_latency_ms

    @property
    def energy_gain(self) -> float:
        return self.chason_eff / self.baseline_eff


def gpu_cpu_comparison(
    count: Optional[int] = None,
    nnz_cap: Optional[int] = None,
) -> List[BaselineComparison]:
    """Chasoň vs RTX 4090 / RTX A6000 / Core i9 over the corpus."""
    chason = ChasonAccelerator()
    baselines = [
        ("rtx4090", CusparseGpuModel(RTX_4090)),
        ("rtxa6000", CusparseGpuModel(RTX_A6000)),
        ("i9", MklCpuModel()),
    ]
    rows: List[BaselineComparison] = []
    for spec, matrix in corpus_matrices(count, nnz_cap):
        chason_report = chason.analyze(matrix)
        for key, model in baselines:
            latency = model.latency_seconds(matrix)
            gflops = model.throughput_gflops(matrix)
            rows.append(
                BaselineComparison(
                    baseline=key,
                    matrix_label=f"corpus#{spec.index}",
                    chason_latency_ms=chason_report.latency_ms,
                    baseline_latency_ms=latency * 1e3,
                    chason_gflops=chason_report.throughput_gflops,
                    baseline_gflops=gflops,
                    chason_eff=chason_report.energy_efficiency,
                    baseline_eff=energy_efficiency(
                        gflops, model.power_watts
                    ),
                )
            )
    return rows
