"""Shared experiment runners behind the benchmark harness.

Each evaluation figure/table reduces to one of three sweeps:

* :func:`compare_on_named` — Chasoň vs Serpens on the 20 Table 2 matrices
  (Figs. 12/13/15, Table 3);
* :func:`compare_on_corpus` — both schedulers over the 800-matrix corpus
  (Figs. 3/11);
* :func:`gpu_cpu_comparison` — Chasoň vs the GPU/CPU models (Fig. 14).

The corpus sweeps honour three environment variables so the benchmark
suite stays tractable by default but can reproduce the full-scale
evaluation:

* ``REPRO_FULL_CORPUS=1`` runs all 800 matrices at full size;
* ``REPRO_CORPUS_COUNT=<n>`` / ``REPRO_CORPUS_NNZ_CAP=<m>`` override the
  defaults (96 matrices, 40 000 non-zero cap) individually;
* ``REPRO_CORPUS_WORKERS=<w>`` fans the per-matrix work out over ``w``
  processes (default serial; results are ordered by spec index either
  way, so the two modes are bit-identical).

Every worker drives a :class:`~repro.pipeline.PipelineRunner` backed by
the global artifact store, so sweeps that share matrices (Figs. 11/14,
Fig. 15/Table 3) load and schedule each input once per scheme, and a
repeated sweep recomputes only stages whose fingerprints changed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..baselines.cpu import MklCpuModel
from ..baselines.gpu import CusparseGpuModel, RTX_4090, RTX_A6000
from ..formats.coo import COOMatrix
from ..matrices.collection import CORPUS_SIZE, CorpusSpec, corpus_specs
from ..matrices.named import MatrixSpec, named_specs
from ..metrics import (
    energy_efficiency,
    geometric_mean,
    pe_underutilization_percent_batch,
    speedup,
)
from ..pipeline import PipelineRunner, SpMVReport, global_artifact_store
from .runner import run_over_specs

DEFAULT_CORPUS_COUNT = 96
DEFAULT_CORPUS_NNZ_CAP = 40_000


def default_corpus_size() -> Tuple[int, Optional[int]]:
    """The (count, nnz_cap) the benchmarks use, after env overrides."""
    if os.environ.get("REPRO_FULL_CORPUS"):
        return CORPUS_SIZE, None
    count = int(os.environ.get("REPRO_CORPUS_COUNT", DEFAULT_CORPUS_COUNT))
    cap_raw = os.environ.get("REPRO_CORPUS_NNZ_CAP", DEFAULT_CORPUS_NNZ_CAP)
    cap = int(cap_raw) if int(cap_raw) > 0 else None
    return count, cap


def _resolve_corpus_specs(
    count: Optional[int], nnz_cap: Optional[int]
) -> List[CorpusSpec]:
    """The spec list of one corpus sweep, after env-default resolution."""
    if count is None:
        count, default_cap = default_corpus_size()
        if nnz_cap is None:
            nnz_cap = default_cap
    return list(corpus_specs(count, nnz_cap))


def corpus_matrices(
    count: Optional[int] = None,
    nnz_cap: Optional[int] = None,
) -> Iterator[Tuple[CorpusSpec, COOMatrix]]:
    """Yield (spec, matrix) pairs of the evaluation corpus."""
    for spec in _resolve_corpus_specs(count, nnz_cap):
        yield spec, spec.generate()


@dataclass(frozen=True)
class MatrixComparison:
    """Chasoň vs Serpens on one matrix (a Table 3 / Fig. 15 row)."""

    matrix_id: str
    name: str
    collection: str
    nnz: int
    chason: SpMVReport
    serpens: SpMVReport
    #: Per-PEG underutilization % (Figs. 12/13); filled when the sweep is
    #: run with ``include_channel_stats=True``.
    chason_peg_underutilization: Tuple[float, ...] = ()
    serpens_peg_underutilization: Tuple[float, ...] = ()

    @property
    def speedup(self) -> float:
        return speedup(self.serpens.latency_ms, self.chason.latency_ms)

    @property
    def transfer_reduction(self) -> float:
        """Fig. 15 bottom: HBM transfer reduction factor."""
        return self.serpens.traffic_bytes / max(self.chason.traffic_bytes, 1)

    @property
    def bandwidth_efficiency_improvement(self) -> float:
        return (
            self.chason.bandwidth_efficiency
            / self.serpens.bandwidth_efficiency
        )

    @property
    def energy_efficiency_improvement(self) -> float:
        return self.chason.energy_efficiency / self.serpens.energy_efficiency


def _named_comparison_worker(
    task: Tuple[MatrixSpec, bool]
) -> MatrixComparison:
    """One Table 2 matrix through both schemes (picklable worker)."""
    from ..scheduling.stats import channel_underutilization

    spec, include_channel_stats = task
    runner = PipelineRunner(global_artifact_store())
    chason = runner.analyze(spec, "crhcs")
    serpens = runner.analyze(spec, "pe_aware")
    chason_pegs: Tuple[float, ...] = ()
    serpens_pegs: Tuple[float, ...] = ()
    if include_channel_stats:
        chason_pegs = tuple(channel_underutilization(chason.schedule))
        serpens_pegs = tuple(channel_underutilization(serpens.schedule))
    return MatrixComparison(
        matrix_id=spec.matrix_id,
        name=spec.name,
        collection=spec.collection,
        nnz=chason.loaded.nnz,
        chason=chason.report,
        serpens=serpens.report,
        chason_peg_underutilization=chason_pegs,
        serpens_peg_underutilization=serpens_pegs,
    )


def compare_on_named(
    names: Optional[Sequence[str]] = None,
    collection: Optional[str] = None,
    include_channel_stats: bool = False,
) -> List[MatrixComparison]:
    """Run Chasoň and Serpens on (a subset of) the Table 2 matrices.

    Each matrix is scheduled once per accelerator (memoised across calls
    by the schedule cache); with ``include_channel_stats=True`` the
    per-PEG underutilization of Figs. 12/13 is extracted from the
    schedules before they are dropped.
    """
    if names is None:
        specs = named_specs(collection)
    else:
        all_specs = {spec.name: spec for spec in named_specs()}
        specs = [all_specs[name] for name in names]
    return run_over_specs(
        _named_comparison_worker,
        [(spec, include_channel_stats) for spec in specs],
    )


@dataclass
class CorpusResult:
    """Both schedulers over the corpus (Figs. 3/11 raw data)."""

    count: int
    serpens_underutilization: List[float] = field(default_factory=list)
    chason_underutilization: List[float] = field(default_factory=list)
    speedups: List[float] = field(default_factory=list)
    transfer_reductions: List[float] = field(default_factory=list)
    chason_throughputs: List[float] = field(default_factory=list)
    serpens_throughputs: List[float] = field(default_factory=list)

    @property
    def geomean_speedup(self) -> float:
        return geometric_mean(self.speedups)

    @property
    def peak_chason_gflops(self) -> float:
        return max(self.chason_throughputs)


def _corpus_comparison_worker(
    spec: CorpusSpec,
) -> Tuple[float, float, float, float, float, float]:
    """Both schedulers on one corpus spec (picklable worker).

    The matrix is regenerated from the seeded spec inside the worker, so
    a parallel task ships a few integers, not the COO payload.
    """
    runner = PipelineRunner(global_artifact_store())
    chason_report = runner.analyze(spec, "crhcs").report
    serpens_report = runner.analyze(spec, "pe_aware").report
    return (
        serpens_report.underutilization_pct,
        chason_report.underutilization_pct,
        speedup(serpens_report.latency_ms, chason_report.latency_ms),
        serpens_report.traffic_bytes / max(chason_report.traffic_bytes, 1),
        chason_report.throughput_gflops,
        serpens_report.throughput_gflops,
    )


def compare_on_corpus(
    count: Optional[int] = None,
    nnz_cap: Optional[int] = None,
) -> CorpusResult:
    """Chasoň vs Serpens over the evaluation corpus."""
    specs = _resolve_corpus_specs(count, nnz_cap)
    rows = run_over_specs(_corpus_comparison_worker, specs)
    result = CorpusResult(count=len(rows))
    for (serpens_pct, chason_pct, ratio, transfer, chason_gflops,
         serpens_gflops) in rows:
        result.serpens_underutilization.append(serpens_pct)
        result.chason_underutilization.append(chason_pct)
        result.speedups.append(ratio)
        result.transfer_reductions.append(transfer)
        result.chason_throughputs.append(chason_gflops)
        result.serpens_throughputs.append(serpens_gflops)
    return result


def _stall_survey_worker(spec: CorpusSpec) -> Tuple[int, int]:
    """(stalls, nnz) of the PE-aware schedule of one corpus spec."""
    runner = PipelineRunner(global_artifact_store())
    schedule = runner.schedule(spec, "pe_aware").schedule
    return schedule.total_stalls, schedule.nnz


def pe_aware_stall_survey(
    count: Optional[int] = None,
    nnz_cap: Optional[int] = None,
) -> List[float]:
    """The Fig. 3 distribution: per-matrix Eq. 4 under PE-aware scheduling.

    Only the Serpens baseline is scheduled, making this the cheapest (and
    most parallel) of the corpus sweeps — the survey honours
    ``REPRO_CORPUS_WORKERS`` like the full comparisons.
    """
    specs = _resolve_corpus_specs(count, nnz_cap)
    counts = run_over_specs(_stall_survey_worker, specs)
    return pe_underutilization_percent_batch(
        [stalls for stalls, _ in counts],
        [nnz for _, nnz in counts],
    )


@dataclass(frozen=True)
class BaselineComparison:
    """Chasoň vs one GPU/CPU baseline on one matrix (Fig. 14 raw data)."""

    baseline: str
    matrix_label: str
    chason_latency_ms: float
    baseline_latency_ms: float
    chason_gflops: float
    baseline_gflops: float
    chason_eff: float
    baseline_eff: float

    @property
    def speedup(self) -> float:
        return self.baseline_latency_ms / self.chason_latency_ms

    @property
    def energy_gain(self) -> float:
        return self.chason_eff / self.baseline_eff


def _gpu_cpu_worker(spec: CorpusSpec) -> List[BaselineComparison]:
    """Chasoň vs every GPU/CPU baseline on one spec (picklable worker)."""
    runner = PipelineRunner(global_artifact_store())
    result = runner.analyze(spec, "crhcs")
    matrix = result.loaded.matrix
    chason_report = result.report
    rows: List[BaselineComparison] = []
    for key, model in (
        ("rtx4090", CusparseGpuModel(RTX_4090)),
        ("rtxa6000", CusparseGpuModel(RTX_A6000)),
        ("i9", MklCpuModel()),
    ):
        latency = model.latency_seconds(matrix)
        gflops = model.throughput_gflops(matrix)
        rows.append(
            BaselineComparison(
                baseline=key,
                matrix_label=f"corpus#{spec.index}",
                chason_latency_ms=chason_report.latency_ms,
                baseline_latency_ms=latency * 1e3,
                chason_gflops=chason_report.throughput_gflops,
                baseline_gflops=gflops,
                chason_eff=chason_report.energy_efficiency,
                baseline_eff=energy_efficiency(gflops, model.power_watts),
            )
        )
    return rows


def gpu_cpu_comparison(
    count: Optional[int] = None,
    nnz_cap: Optional[int] = None,
) -> List[BaselineComparison]:
    """Chasoň vs RTX 4090 / RTX A6000 / Core i9 over the corpus."""
    specs = _resolve_corpus_specs(count, nnz_cap)
    per_spec = run_over_specs(_gpu_cpu_worker, specs)
    return [row for rows in per_spec for row in rows]
