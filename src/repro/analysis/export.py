"""Exporting experiment results to JSON / CSV artifacts.

Benchmark runs should leave machine-readable traces, not just console
tables: CI can diff them, plots can be regenerated without re-running the
sweeps, and EXPERIMENTS.md entries can be audited.  These helpers
serialise the experiment-runner result objects.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import List, Sequence, Union

from ..errors import ConfigError
from .experiments import BaselineComparison, CorpusResult, MatrixComparison

_PathLike = Union[str, Path]


def comparison_records(
    comparisons: Sequence[MatrixComparison],
) -> List[dict]:
    """Flatten named-matrix comparisons into plain records."""
    records = []
    for item in comparisons:
        records.append({
            "id": item.matrix_id,
            "name": item.name,
            "collection": item.collection,
            "nnz": item.nnz,
            "chason_latency_ms": item.chason.latency_ms,
            "serpens_latency_ms": item.serpens.latency_ms,
            "chason_gflops": item.chason.throughput_gflops,
            "serpens_gflops": item.serpens.throughput_gflops,
            "chason_underutilization_pct":
                item.chason.underutilization_pct,
            "serpens_underutilization_pct":
                item.serpens.underutilization_pct,
            "speedup": item.speedup,
            "transfer_reduction": item.transfer_reduction,
            "bandwidth_efficiency_improvement":
                item.bandwidth_efficiency_improvement,
            "energy_efficiency_improvement":
                item.energy_efficiency_improvement,
        })
    return records


def baseline_records(
    comparisons: Sequence[BaselineComparison],
) -> List[dict]:
    """Flatten GPU/CPU baseline comparisons into plain records."""
    return [
        {
            "baseline": item.baseline,
            "matrix": item.matrix_label,
            "chason_latency_ms": item.chason_latency_ms,
            "baseline_latency_ms": item.baseline_latency_ms,
            "speedup": item.speedup,
            "energy_gain": item.energy_gain,
        }
        for item in comparisons
    ]


def corpus_records(result: CorpusResult) -> List[dict]:
    """Per-matrix records of a corpus sweep."""
    return [
        {
            "index": index,
            "serpens_underutilization_pct": serpens,
            "chason_underutilization_pct": chason,
            "speedup": speedup,
            "transfer_reduction": reduction,
        }
        for index, (serpens, chason, speedup, reduction) in enumerate(
            zip(
                result.serpens_underutilization,
                result.chason_underutilization,
                result.speedups,
                result.transfer_reductions,
            )
        )
    ]


def write_json(records, path: _PathLike) -> Path:
    """Write records (or any dataclass) as pretty-printed JSON."""
    path = Path(path)
    if is_dataclass(records) and not isinstance(records, type):
        records = asdict(records)
    path.write_text(json.dumps(records, indent=2, sort_keys=True))
    return path


def write_csv(records: Sequence[dict], path: _PathLike) -> Path:
    """Write a list of flat records as CSV (columns from the first row)."""
    records = list(records)
    if not records:
        raise ConfigError("nothing to export")
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(records[0]))
        writer.writeheader()
        writer.writerows(records)
    return path


def read_json(path: _PathLike):
    """Load a previously written JSON artifact."""
    return json.loads(Path(path).read_text())
