"""Terminal rendering of the paper's figure types.

The benchmark harness prints these so the distribution *shapes* — the
Fig. 3/11 PDFs, the Fig. 14/15 bar groups — are visible in a terminal
next to the numbers, without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from .stats import DensityEstimate

#: Characters from light to dark for the curve plots.
_SHADES = " .:-=+*#%@"


def render_pdf_curves(
    curves: Dict[str, DensityEstimate],
    width: int = 64,
    height: int = 12,
    value_range: Tuple[float, float] = (0.0, 100.0),
) -> str:
    """Overlay density curves as an ASCII line chart (Fig. 11 style).

    Each curve gets a marker letter (its name's first character); where
    curves overlap the later one wins.  The y axis is normalised to the
    tallest curve.
    """
    if not curves:
        raise ConfigError("nothing to render")
    if width < 8 or height < 3:
        raise ConfigError("canvas too small")
    grid = [[" "] * width for _ in range(height)]
    peak = max(float(np.max(c.density)) for c in curves.values())
    if peak <= 0:
        raise ConfigError("all curves are flat zero")
    lo, hi = value_range
    for name, curve in curves.items():
        marker = name[0].upper()
        xs = np.linspace(lo, hi, width)
        ys = np.interp(xs, curve.centers, curve.density, left=0.0,
                       right=0.0)
        for column, value in enumerate(ys):
            level = int(round((height - 1) * value / peak))
            if level <= 0 and value <= 0:
                continue
            row = height - 1 - min(level, height - 1)
            grid[row][column] = marker
    lines = ["".join(row).rstrip() for row in grid]
    axis = "-" * width
    labels = (
        f"{lo:<8.0f}{'':^{max(width - 16, 0)}}{hi:>8.0f}"
    )
    legend = "  ".join(f"{name[0].upper()}={name}" for name in curves)
    return "\n".join(lines + [axis, labels, legend])


def render_histogram(
    values: Sequence[float],
    bins: int = 10,
    value_range: Tuple[float, float] = (0.0, 100.0),
    width: int = 50,
    label: str = "",
) -> str:
    """A labelled horizontal-bar histogram (Fig. 3 style)."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ConfigError("cannot render an empty histogram")
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    peak = max(int(counts.max()), 1)
    lines = [label] if label else []
    for lo, hi, count in zip(edges[:-1], edges[1:], counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{lo:6.0f}-{hi:<4.0f} {bar} {count}")
    return "\n".join(lines)


def render_bar_groups(
    rows: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "x",
    reference: float = 0.0,
) -> str:
    """Labelled value bars (Fig. 15 style), optionally marking a
    reference value with ``|``."""
    if not rows:
        raise ConfigError("nothing to render")
    peak = max(value for _, value in rows)
    if peak <= 0:
        raise ConfigError("bar values must be positive")
    lines: List[str] = []
    for name, value in rows:
        length = int(round(width * value / peak))
        bar = list("#" * length + " " * (width - length))
        if reference > 0:
            position = min(int(round(width * reference / peak)),
                           width - 1)
            bar[position] = "|"
        lines.append(f"{name:<14s} {''.join(bar)} {value:.2f}{unit}")
    return "\n".join(lines)
