"""Plain-text tables in the paper's format.

The benchmark harness prints these so a run's output can be compared line
by line against the published tables.
"""

from __future__ import annotations

from typing import List, Sequence

from ..resources.model import ResourceReport
from .experiments import MatrixComparison


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """A fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_table1(reports: List[ResourceReport]) -> str:
    """Table 1: resource consumption per design."""
    headers = ["Resource"] + [r.design for r in reports]
    resource_rows = []
    for key, attr in [
        ("LUT", "luts"),
        ("FF", "ffs"),
        ("DSP", "dsps"),
        ("BRAM18K", "bram18k"),
        ("URAM", "urams"),
    ]:
        row = [key]
        for report in reports:
            value = getattr(report, attr)
            fraction = report.utilization()[key]
            row.append(f"{value}({fraction:.1%})")
        resource_rows.append(row)
    return format_table(
        headers, resource_rows,
        title="Table 1: Alveo U55c resource consumption",
    )


def format_table3(comparisons: List[MatrixComparison]) -> str:
    """Table 3: detailed per-matrix performance numbers."""
    headers = [
        "ID", "Latency(ms) C/S", "GFLOPS C/S", "BW-Eff C/S", "Imp.",
        "E-Eff C/S", "Imp.",
    ]
    rows = []
    for item in comparisons:
        chason, serpens = item.chason, item.serpens
        rows.append([
            item.matrix_id,
            f"{chason.latency_ms:.3f}/{serpens.latency_ms:.3f}",
            f"{chason.throughput_gflops:.3f}/{serpens.throughput_gflops:.3f}",
            f"{chason.bandwidth_efficiency:.3f}/"
            f"{serpens.bandwidth_efficiency:.3f}",
            f"{item.bandwidth_efficiency_improvement:.2f}",
            f"{chason.energy_efficiency:.3f}/{serpens.energy_efficiency:.3f}",
            f"{item.energy_efficiency_improvement:.2f}",
        ])
    return format_table(
        headers, rows,
        title="Table 3: Chasoň (C) vs Serpens (S) on the Table 2 matrices",
    )
