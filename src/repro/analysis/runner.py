"""Parallel corpus execution (the outer loop of the Fig. 3/11/14 sweeps).

The corpus experiments are embarrassingly parallel — every matrix is
generated from a seeded :class:`~repro.matrices.collection.CorpusSpec` and
scheduled independently — so the runner fans specs out over a
``ProcessPoolExecutor`` when ``REPRO_CORPUS_WORKERS`` asks for more than
one worker.  Determinism is preserved by construction:

* the default is **serial** (``REPRO_CORPUS_WORKERS`` unset, empty, or
  ``<= 1``), so CI runs never depend on multiprocessing start methods;
* parallel results come back through ``Executor.map``, which yields in
  submission order — results are ordered by spec index regardless of
  which worker finishes first;
* workers receive the *spec*, not the matrix, and regenerate it from the
  seed, so a task ships a few integers instead of megabytes of COO data.

Worker callables must be module-level functions (picklable); the
experiment runners in :mod:`repro.analysis.experiments` follow this rule.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Environment variable selecting the worker count (default: serial).
WORKERS_ENV = "REPRO_CORPUS_WORKERS"


def corpus_worker_count() -> int:
    """The configured worker count; ``1`` (serial) when unset or invalid."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        count = int(raw)
    except ValueError:
        return 1
    return count if count > 1 else 1


def run_over_specs(
    worker: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    workers: Optional[int] = None,
) -> List[_ResultT]:
    """Map ``worker`` over ``items``, preserving input order.

    ``worker`` must be a module-level (picklable) function when more than
    one worker is requested.  With ``workers <= 1`` the map runs serially
    in-process, producing bit-identical results to the parallel path.
    """
    if workers is None:
        workers = corpus_worker_count()
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    workers = min(workers, len(items))
    chunksize = max(1, len(items) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, items, chunksize=chunksize))
