"""Parallel corpus execution (the outer loop of the Fig. 3/11/14 sweeps).

The corpus experiments are embarrassingly parallel — every matrix is
generated from a seeded :class:`~repro.matrices.collection.CorpusSpec` and
scheduled independently — so the runner fans specs out over a
``ProcessPoolExecutor`` when ``REPRO_CORPUS_WORKERS`` asks for more than
one worker.  Determinism is preserved by construction:

* the default is **serial** (``REPRO_CORPUS_WORKERS`` unset, empty, or
  ``<= 1``), so CI runs never depend on multiprocessing start methods;
* parallel results come back through ``Executor.map``, which yields in
  submission order — results are ordered by spec index regardless of
  which worker finishes first;
* workers receive the *spec*, not the matrix, and regenerate it from the
  seed, so a task ships a few integers instead of megabytes of COO data.

Worker callables must be module-level functions (picklable); the
experiment runners in :mod:`repro.analysis.experiments` follow this rule.

Telemetry
=========

With telemetry enabled (``REPRO_TELEMETRY``), every item runs under a
``corpus.run/corpus.spec`` span carrying its spec index.  In parallel
mode each worker captures its records into memory and returns them with
the result; the parent merges them **in spec-index order** — exactly the
order of the results — re-stamping sequence numbers and attributing each
record to a stable worker index, so a parallel trace is deterministic in
structure (record order, counters, attribution) even though wall-clock
durations vary.  With telemetry disabled the runner is byte-identical to
the uninstrumented map.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from .. import telemetry
from ..telemetry.sinks import MemorySink

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

#: Environment variable selecting the worker count (default: serial).
WORKERS_ENV = "REPRO_CORPUS_WORKERS"


def corpus_worker_count() -> int:
    """The configured worker count; ``1`` (serial) when unset or invalid.

    An unparsable value (``REPRO_CORPUS_WORKERS=eight``) falls back to
    serial but is no longer silent: a one-time warning goes through the
    telemetry/logging path so the misconfiguration is visible in logs and
    in the trace.
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        count = int(raw)
    except ValueError:
        telemetry.warn_once(
            "invalid_corpus_workers",
            f"{WORKERS_ENV}={raw!r} is not an integer; "
            f"falling back to serial execution (1 worker)",
        )
        return 1
    return count if count > 1 else 1


class _CapturedTask:
    """Picklable worker wrapper that captures per-item telemetry.

    Runs the wrapped worker under a fresh memory-sink telemetry registry
    inside the pool process and returns ``(result, records, pid)``; the
    parent merges the records deterministically (see
    :func:`run_over_specs`).
    """

    def __init__(self, worker: Callable[[Any], Any]):
        self.worker = worker

    def __call__(
        self, task: Tuple[int, Any]
    ) -> Tuple[Any, List[Dict[str, Any]], int]:
        index, item = task
        sink = MemorySink()
        local = telemetry.Telemetry(sink)
        previous = telemetry.swap(local)
        try:
            with local.span("corpus.spec", index=index):
                result = self.worker(item)
            local.flush()
        finally:
            telemetry.swap(previous)
        return result, sink.records, os.getpid()


def _run_serial_instrumented(
    worker: Callable[[_ItemT], _ResultT],
    items: List[_ItemT],
    t: "telemetry.Telemetry",
) -> List[_ResultT]:
    results: List[_ResultT] = []
    start = time.perf_counter()
    with t.span("corpus.run", items=len(items), workers=1):
        for index, item in enumerate(items):
            with t.span("corpus.spec", index=index):
                results.append(worker(item))
    elapsed = time.perf_counter() - start
    t.counter("runner.specs", len(items))
    if elapsed > 0:
        t.gauge("runner.specs_per_s", round(len(items) / elapsed, 3))
    return results


def _run_parallel_instrumented(
    worker: Callable[[_ItemT], _ResultT],
    items: List[_ItemT],
    workers: int,
    chunksize: int,
    t: "telemetry.Telemetry",
) -> List[_ResultT]:
    start = time.perf_counter()
    with t.span("corpus.run", items=len(items), workers=workers):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(
                    _CapturedTask(worker),
                    list(enumerate(items)),
                    chunksize=chunksize,
                )
            )
        # Merge per-worker records ordered by spec index (the order of
        # ``outcomes``), attributing each to a stable worker index
        # assigned by first appearance in that same order.
        results: List[_ResultT] = []
        worker_index: Dict[int, int] = {}
        for result, records, pid in outcomes:
            index = worker_index.setdefault(pid, len(worker_index))
            for record in records:
                t.emit_merged(record, worker=index)
            results.append(result)
    elapsed = time.perf_counter() - start
    t.counter("runner.specs", len(items))
    if elapsed > 0:
        t.gauge("runner.specs_per_s", round(len(items) / elapsed, 3))
    return results


def run_over_specs(
    worker: Callable[[_ItemT], _ResultT],
    items: Sequence[_ItemT],
    workers: Optional[int] = None,
) -> List[_ResultT]:
    """Map ``worker`` over ``items``, preserving input order.

    ``worker`` must be a module-level (picklable) function when more than
    one worker is requested.  With ``workers <= 1`` the map runs serially
    in-process, producing bit-identical results to the parallel path.
    """
    if workers is None:
        workers = corpus_worker_count()
    items = list(items)
    t = telemetry.get()
    if workers <= 1 or len(items) <= 1:
        if not t.enabled:
            return [worker(item) for item in items]
        return _run_serial_instrumented(worker, items, t)
    workers = min(workers, len(items))
    chunksize = max(1, len(items) // (workers * 4))
    if not t.enabled:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, items, chunksize=chunksize))
    return _run_parallel_instrumented(worker, items, workers, chunksize, t)
