"""Distribution summaries used by the Figs. 3/11/12 reproductions.

The paper plots PE underutilization as probability density functions; this
module provides both a histogram-based and a Gaussian-KDE density estimate
plus the mode/percentile summary the text quotes ("the most likely rate
being 69 %", §6.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class DensityEstimate:
    """A discretised probability density function."""

    centers: np.ndarray
    density: np.ndarray

    @property
    def mode(self) -> float:
        """Location of the density peak — the paper's "most likely" rate."""
        return float(self.centers[int(np.argmax(self.density))])

    def mass_below(self, threshold: float) -> float:
        """Probability mass at values below ``threshold``."""
        if self.centers.size < 2:
            return float(self.centers[0] < threshold) if self.centers.size else 0.0
        step = float(self.centers[1] - self.centers[0])
        mask = self.centers < threshold
        return float(np.sum(self.density[mask]) * step)


def histogram_pdf(
    values: Sequence[float],
    bins: int = 40,
    value_range: Tuple[float, float] = (0.0, 100.0),
) -> DensityEstimate:
    """Normalised histogram density over a fixed range."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ConfigError("cannot estimate a density from no samples")
    density, edges = np.histogram(
        values, bins=bins, range=value_range, density=True
    )
    centers = 0.5 * (edges[:-1] + edges[1:])
    return DensityEstimate(centers=centers, density=density)


def gaussian_kde_pdf(
    values: Sequence[float],
    points: int = 200,
    value_range: Tuple[float, float] = (0.0, 100.0),
    bandwidth: float = 0.0,
) -> DensityEstimate:
    """Gaussian kernel density estimate (Scott's rule by default)."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ConfigError("cannot estimate a density from no samples")
    if bandwidth <= 0:
        spread = max(values.std(), 1e-3)
        bandwidth = 1.06 * spread * values.size ** (-1 / 5)
    grid = np.linspace(value_range[0], value_range[1], points)
    deltas = (grid[:, None] - values[None, :]) / bandwidth
    kernel = np.exp(-0.5 * deltas**2) / math.sqrt(2 * math.pi)
    density = kernel.sum(axis=1) / (values.size * bandwidth)
    return DensityEstimate(centers=grid, density=density)


def describe(values: Sequence[float]) -> Dict[str, float]:
    """min/max/mean/median/mode summary of a sample."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ConfigError("cannot describe an empty sample")
    pdf = histogram_pdf(values)
    return {
        "min": float(values.min()),
        "max": float(values.max()),
        "mean": float(values.mean()),
        "median": float(np.median(values)),
        "mode": pdf.mode,
        "count": float(values.size),
    }
