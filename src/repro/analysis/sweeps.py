"""Design-space sweep utilities.

§6.1 sketches how Chasoň would scale on a larger FPGA (wider migration
windows, more ScUGs); the channel count itself is the other first-order
axis — every sparse channel adds a PEG and 14.37 GB/s of streaming
bandwidth.  These helpers run a configuration axis against a fixed
workload and return tidy records the benches and examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Union

from ..config import ChasonConfig, DEFAULT_CHASON
from ..core.accelerator import SpMVReport
from ..core.chason import ChasonAccelerator
from ..errors import ConfigError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..resources.model import chason_resources

Matrix = Union[COOMatrix, CSRMatrix]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration point of a sweep."""

    label: str
    config: ChasonConfig
    report: SpMVReport
    urams: int

    @property
    def cycles(self) -> int:
        return self.report.total_cycles


def sweep_configs(
    matrix: Matrix,
    configs: Sequence[ChasonConfig],
    labeler: Optional[Callable[[ChasonConfig], str]] = None,
) -> List[SweepPoint]:
    """Analyze ``matrix`` under every configuration."""
    if not configs:
        raise ConfigError("empty sweep")
    labeler = labeler or (lambda config: config.name)
    points = []
    for config in configs:
        report = ChasonAccelerator(config).analyze(matrix)
        points.append(
            SweepPoint(
                label=labeler(config),
                config=config,
                report=report,
                urams=chason_resources(config).urams,
            )
        )
    return points


def sweep_channels(
    matrix: Matrix,
    channel_counts: Sequence[int] = (2, 4, 8, 16),
    base: Optional[ChasonConfig] = None,
) -> List[SweepPoint]:
    """Scale the sparse-channel count (the §6.1 larger-FPGA axis)."""
    base = base or DEFAULT_CHASON
    configs = [
        replace(base, sparse_channels=count) for count in channel_counts
    ]
    return sweep_configs(
        matrix, configs, labeler=lambda c: f"{c.sparse_channels}ch"
    )


def sweep_migration_span(
    matrix: Matrix,
    spans: Sequence[int] = (0, 1, 2, 3),
    base: Optional[ChasonConfig] = None,
) -> List[SweepPoint]:
    """Scale the migration window (§6.1)."""
    base = base or DEFAULT_CHASON
    configs = [replace(base, migration_span=span) for span in spans]
    return sweep_configs(
        matrix, configs, labeler=lambda c: f"span{c.migration_span}"
    )


def scaling_efficiency(points: Sequence[SweepPoint]) -> List[float]:
    """Speedup-per-resource of each point relative to the first.

    For a channel sweep this is the classic strong-scaling efficiency:
    ``(t_0 / t_i) / (channels_i / channels_0)``.
    """
    if not points:
        raise ConfigError("empty sweep")
    base = points[0]
    result = []
    for point in points:
        speedup = base.report.latency_ms / point.report.latency_ms
        scale = (
            point.config.sparse_channels / base.config.sparse_channels
        )
        result.append(speedup / scale)
    return result
