"""Baselines the paper compares against (§5.2)."""

from .serpens import SerpensAccelerator
from .gpu import RTX_4090, RTX_A6000, CusparseGpuModel, GpuSpec
from .cpu import CORE_I9_11980HK, CpuSpec, MklCpuModel
from .reference import reference_spmv

__all__ = [
    "SerpensAccelerator",
    "RTX_4090",
    "RTX_A6000",
    "CusparseGpuModel",
    "GpuSpec",
    "CORE_I9_11980HK",
    "CpuSpec",
    "MklCpuModel",
    "reference_spmv",
]
