"""Analytical CPU SpMV model (Intel MKL on Core i9-11980HK, §5.2).

The paper's matrices all fit inside the i9's 24 MB smart cache (§5.4), so
MKL's SpMV runs out of cache at high effective bandwidth with very little
launch overhead — which is why the CPU *beats both GPUs* in geometric mean
(§6.2.1) at the price of a 132 W package.  The model is

``latency = overhead + bytes / eff_bw + rows × per_row``

with an imbalance term far gentler than the GPUs' (MKL's dynamic
work-partitioning hides skew well).  Constants are calibrated to the
paper's headline numbers: peak ≈23.9 GFLOPS, Chasoň geomean speedup < 1
with a peak of ≈2.67×, and ≈14.6× peak energy-efficiency gain (§6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import ConfigError
from ..formats.convert import to_csr
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .gpu import BYTES_PER_COL, BYTES_PER_NNZ, BYTES_PER_ROW

Matrix = Union[COOMatrix, CSRMatrix]


@dataclass(frozen=True)
class CpuSpec:
    """One CPU platform (§5.2)."""

    name: str
    cache_mb: float
    cache_bandwidth_gbps: float
    base_frequency_ghz: float
    threads: int
    dispatch_overhead_s: float
    per_row_s: float
    imbalance_penalty: float
    power_watts: float

    def __post_init__(self) -> None:
        if self.cache_bandwidth_gbps <= 0 or self.power_watts <= 0:
            raise ConfigError(f"{self.name}: bandwidth/power must be positive")


CORE_I9_11980HK = CpuSpec(
    name="Intel Core i9-11980HK",
    cache_mb=24.0,
    cache_bandwidth_gbps=150.0,
    base_frequency_ghz=3.3,
    threads=16,
    dispatch_overhead_s=1.5e-6,
    per_row_s=1.2e-9,
    imbalance_penalty=0.08,
    power_watts=132.0,
)


class MklCpuModel:
    """Latency/throughput model of MKL SpMV on one CPU."""

    def __init__(self, spec: CpuSpec = CORE_I9_11980HK):
        self.spec = spec
        self.name = spec.name
        self.power_watts = spec.power_watts

    def traffic_bytes(self, matrix: Matrix) -> int:
        csr = to_csr(matrix)
        return (
            BYTES_PER_NNZ * csr.nnz
            + BYTES_PER_ROW * csr.n_rows
            + BYTES_PER_COL * csr.n_cols
        )

    def effective_bandwidth_gbps(self, matrix: Matrix) -> float:
        csr = to_csr(matrix)
        lengths = csr.row_lengths().astype(np.float64)
        mean = lengths.mean() if lengths.size else 0.0
        cv = float(lengths.std() / mean) if mean else 0.0
        in_cache = self.traffic_bytes(matrix) <= self.spec.cache_mb * 1e6
        bandwidth = self.spec.cache_bandwidth_gbps
        if not in_cache:
            # DRAM-resident working sets run at memory, not cache, speed.
            bandwidth *= 0.35
        return bandwidth / (1.0 + self.spec.imbalance_penalty * cv)

    def latency_seconds(self, matrix: Matrix) -> float:
        csr = to_csr(matrix)
        kernel = self.traffic_bytes(matrix) / (
            self.effective_bandwidth_gbps(matrix) * 1e9
        )
        return (
            self.spec.dispatch_overhead_s
            + kernel
            + csr.n_rows * self.spec.per_row_s
        )

    def throughput_gflops(self, matrix: Matrix) -> float:
        csr = to_csr(matrix)
        flops = 2.0 * (csr.nnz + csr.n_cols)
        return flops / (self.latency_seconds(matrix) * 1e9)
