"""Analytical GPU SpMV model (cuSPARSE on RTX 4090 / RTX A6000, §5.2).

The paper measures cuSPARSE's ``spmv_csr`` with CUDA events over matrices
small enough to live in the GPUs' L2 caches.  Two effects dominate those
measurements, and the model captures both:

* a **fixed launch/driver overhead** per kernel — tens of microseconds on
  the consumer-stack RTX 4090, a few on the server-class card — which
  swamps the kernel time for the small matrices of the corpus and is the
  main reason an FPGA streaming design wins there (§6.2.1);
* a **sparsity-dependent effective bandwidth**: cuSPARSE approaches a
  saturation fraction of peak bandwidth only for large non-zero counts,
  and row-length imbalance idles warps within a block (the "underutilized
  ALU pipeline in streaming multiprocessors" of §6.2.1).

``latency = overhead + bytes / eff_bw`` with

``eff_bw = peak_bw × sat × nnz/(nnz + half_sat) / (1 + imbalance × cv)``

where ``cv`` is the coefficient of variation of the row lengths.  The
constants are calibrated so the model reproduces the paper's headline
numbers: peak throughput of ≈19.8 GFLOPS (4090) / ≈44.2 GFLOPS (A6000)
and Chasoň geomean speedups of ≈4× / ≈1.28× with peaks of ≈20× / ≈12×
(§6.2.1).  Absolute numbers are a model, not a measurement — DESIGN.md
records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import ConfigError
from ..formats.convert import to_csr
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix

Matrix = Union[COOMatrix, CSRMatrix]

#: CSR traffic per non-zero: 4 B value + 4 B column index + the gathered
#: x element (4 B, cache-amortised).
BYTES_PER_NNZ = 12
#: Row pointer + y write per row, x read per column.
BYTES_PER_ROW = 8
BYTES_PER_COL = 4


@dataclass(frozen=True)
class GpuSpec:
    """One GPU platform (§5.2)."""

    name: str
    peak_bandwidth_gbps: float
    l2_mb: float
    sms: int
    launch_overhead_s: float
    saturation: float
    half_saturation_nnz: float
    imbalance_penalty: float
    power_watts: float

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0 or self.power_watts <= 0:
            raise ConfigError(f"{self.name}: bandwidth/power must be positive")
        if not 0 < self.saturation <= 1:
            raise ConfigError(f"{self.name}: saturation must be in (0, 1]")


#: Consumer card: high raw bandwidth, heavy launch overhead on the
#: evaluated software stack (cuda v10.1, §5.2).
RTX_4090 = GpuSpec(
    name="Nvidia RTX 4090",
    peak_bandwidth_gbps=1008.0,
    l2_mb=72.0,
    sms=144,
    launch_overhead_s=12e-6,
    saturation=0.28,
    half_saturation_nnz=1.0e6,
    imbalance_penalty=0.45,
    power_watts=70.0,
)

#: Server card: lower raw bandwidth, much better small-kernel behaviour.
RTX_A6000 = GpuSpec(
    name="Nvidia RTX A6000",
    peak_bandwidth_gbps=768.0,
    l2_mb=96.0,
    sms=84,
    launch_overhead_s=3.5e-6,
    saturation=0.42,
    half_saturation_nnz=2.0e5,
    imbalance_penalty=0.35,
    power_watts=65.0,
)


#: Row-length imbalance saturates: once every warp is bottlenecked by a
#: hub row, further skew cannot slow the kernel more.
MAX_IMBALANCE_CV = 6.0


def _row_length_cv(csr: CSRMatrix) -> float:
    lengths = csr.row_lengths().astype(np.float64)
    mean = lengths.mean() if lengths.size else 0.0
    if mean == 0:
        return 0.0
    return min(float(lengths.std() / mean), MAX_IMBALANCE_CV)


class CusparseGpuModel:
    """Latency/throughput model of cuSPARSE SpMV on one GPU."""

    def __init__(self, spec: GpuSpec):
        self.spec = spec
        self.name = spec.name
        self.power_watts = spec.power_watts

    def traffic_bytes(self, matrix: Matrix) -> int:
        csr = to_csr(matrix)
        return (
            BYTES_PER_NNZ * csr.nnz
            + BYTES_PER_ROW * csr.n_rows
            + BYTES_PER_COL * csr.n_cols
        )

    def effective_bandwidth_gbps(self, matrix: Matrix) -> float:
        csr = to_csr(matrix)
        spec = self.spec
        nnz_factor = csr.nnz / (csr.nnz + spec.half_saturation_nnz)
        imbalance = 1.0 + spec.imbalance_penalty * _row_length_cv(csr)
        return spec.peak_bandwidth_gbps * spec.saturation * nnz_factor / imbalance

    def latency_seconds(self, matrix: Matrix) -> float:
        bandwidth = self.effective_bandwidth_gbps(matrix)
        kernel = self.traffic_bytes(matrix) / (bandwidth * 1e9)
        return self.spec.launch_overhead_s + kernel

    def throughput_gflops(self, matrix: Matrix) -> float:
        csr = to_csr(matrix)
        flops = 2.0 * (csr.nnz + csr.n_cols)
        return flops / (self.latency_seconds(matrix) * 1e9)
