"""Reference SpMV used as the functional oracle."""

from __future__ import annotations

from typing import Union

import numpy as np

from ..formats.convert import to_coo
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix

Matrix = Union[COOMatrix, CSRMatrix]


def reference_spmv(matrix: Matrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` in float64 — the oracle every execution verifies
    against (the §5.1 end-to-end correctness check)."""
    return to_coo(matrix).matvec(x)
