"""The Serpens baseline accelerator (§4.4, §5.2).

Serpens shares Chasoň's channel/PE layout but schedules non-zeros with the
intra-channel PE-aware scheme only: no Router, no ScUGs, no Reduction or
Re-order units, and a 223 MHz clock after place-and-route on the U55c.
The reproduction drives it through the same simulator; the datapath
rejects migrated elements, which the schedule never contains.
"""

from __future__ import annotations

from typing import Optional

from ..config import DEFAULT_SERPENS, SerpensConfig
from ..errors import ConfigError
from ..power.devices import measured_power
from ..core.accelerator import StreamingAccelerator


class SerpensAccelerator(StreamingAccelerator):
    """PE-aware-scheduled streaming SpMV on 16 HBM channels."""

    name = "serpens"
    scheme = "pe_aware"
    power_watts = measured_power("serpens")

    def __init__(self, config: Optional[SerpensConfig] = None):
        config = config or DEFAULT_SERPENS
        if not isinstance(config, SerpensConfig):
            raise ConfigError("SerpensAccelerator requires a SerpensConfig")
        super().__init__(config)
