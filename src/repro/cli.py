"""Command-line interface.

``python -m repro <command>`` gives quick access to the reproduction
without writing a script::

    python -m repro info
    python -m repro compare wiki-Vote
    python -m repro schedule CollegeMsg --scheme pe_aware
    python -m repro corpus --count 16 --cap 20000
    python -m repro generate CollegeMsg --out /tmp/cm.mtx
    python -m repro --telemetry /tmp/run.jsonl corpus --count 32
    python -m repro telemetry summarize /tmp/run.jsonl
    python -m repro estimate wiki-Vote --scheme crhcs --compare
    python -m repro serve requests.jsonl --out responses.jsonl
    python -m repro submit wiki-Vote --scheme crhcs --priority 2
    python -m repro cluster serve requests.jsonl --devices 4
    python -m repro cluster status
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from . import __version__
from . import telemetry as telemetry_mod
from .analysis.characterize import characterize
from .analysis.experiments import compare_on_corpus
from .analysis.report import format_table, format_table1
from .analysis.stats import describe
from .baselines.serpens import SerpensAccelerator
from .config import DEFAULT_CHASON, DEFAULT_SERPENS
from .core.chason import ChasonAccelerator
from .errors import ReproError
from .formats.io import save_matrix_market
from .knobs import format_knobs
from .matrices.named import NAMED_MATRICES, generate_named
from .matrices.stats import matrix_stats
from .power.fpga import chason_power_breakdown
from .resources.model import chason_resources, serpens_resources
from .core.spmm import chason_spmm_report, sextans_spmm_report
from .pipeline import PipelineRunner, global_artifact_store
from .scheduling import schedule_stats
from .scheduling.registry import get_scheme, iter_schemes
from .serving import (
    ServingClient,
    ServingEngine,
    serve_request_file,
)
from .cluster import Cluster, format_status, serve_request_file_clustered
from .sessions import SessionManager, solver_programs


def _scheme_lines() -> List[str]:
    """One line per registered scheme, for ``info``/``--list-schemes``."""
    return [
        f"  {spec.name:<14s} v{spec.version}  "
        f"{spec.accelerator_name:<8s} @ {spec.clock_mhz:.0f} MHz"
        f"{'  ' + spec.description if spec.description else ''}"
        for spec in iter_schemes()
    ]


def _cmd_info(_args) -> int:
    print(f"Chasoň reproduction v{__version__}\n")
    for config in (DEFAULT_CHASON, DEFAULT_SERPENS):
        print(
            f"{config.name}: {config.sparse_channels} channels x "
            f"{config.pes_per_channel} PEs @ {config.frequency_mhz:.0f} MHz, "
            f"RAW distance {config.accumulator_latency}, "
            f"W = {config.column_window}"
        )
    print("\nregistered schemes:")
    for line in _scheme_lines():
        print(line)
    print("\nscheme pass pipelines:")
    for spec in iter_schemes():
        if spec.passes:
            print(f"  {spec.name:<14s} {' -> '.join(spec.passes)}")
    print()
    print(format_table1([serpens_resources(), chason_resources()]))
    breakdown = chason_power_breakdown()
    print(f"\nestimated Chasoň power: {breakdown.total:.2f} W "
          f"(HBM {breakdown.hbm:.2f} W)")
    print("\nruntime knobs (REPRO_* environment variables):")
    print(format_knobs())
    return 0


def _cmd_matrices(_args) -> int:
    rows = [
        [spec.matrix_id, name, spec.collection, str(spec.nnz),
         f"{spec.density_pct:.4g}%"]
        for name, spec in sorted(NAMED_MATRICES.items())
    ]
    print(format_table(["ID", "Dataset", "Collection", "NNZ", "Density"],
                       rows, title="Table 2 matrices"))
    return 0


def _cmd_schedule(args) -> int:
    if args.list_schemes:
        print("registered schemes:")
        for line in _scheme_lines():
            print(line)
        return 0
    if args.list_passes:
        from .scheduling.passes import known_pass_names

        print("registered schedule passes:")
        for name in known_pass_names():
            print(f"  {name}")
        print("\nscheme pass pipelines:")
        for spec in iter_schemes():
            if spec.passes:
                print(f"  {spec.name:<14s} {' -> '.join(spec.passes)}")
        return 0
    if args.matrix is None:
        print("error: a matrix name is required (or --list-schemes / "
              "--list-passes)", file=sys.stderr)
        return 1
    spec = get_scheme(args.scheme)
    matrix = generate_named(args.matrix)
    print("matrix:", matrix_stats(matrix).as_row())
    # No artifact store: a CLI invocation is single-shot, and an always-
    # fresh build keeps the scheduler's own telemetry in the trace.
    runner = PipelineRunner()
    stats = schedule_stats(runner.schedule(args.matrix, spec).schedule)
    print(
        f"scheme {stats.scheme}: underutilization "
        f"{stats.underutilization_pct:.1f}%, {stats.stream_cycles} stream "
        f"cycles, {stats.words_per_channel} words/channel, "
        f"{stats.traffic_bytes / 1e6:.2f} MB traffic, "
        f"{stats.migrated} migrated"
    )
    return 0


def _cmd_reschedule(args) -> int:
    import numpy as np

    from .scheduling.passes import schedules_identical

    spec = get_scheme(args.scheme)
    if spec.plan is None:
        print(f"error: scheme {spec.name!r} declares no pass pipeline",
              file=sys.stderr)
        return 1
    if args.edits < 1:
        print("error: --edits must be >= 1", file=sys.stderr)
        return 1
    matrix = generate_named(args.matrix)
    print("matrix:", matrix_stats(matrix).as_row())
    runner = PipelineRunner()
    kwargs = {"max_rows_per_pass": args.tile_rows}

    start = time.perf_counter()
    runner.reschedule(matrix, spec, **kwargs)
    cold_seconds = time.perf_counter() - start
    cold_stats = runner.last_reschedule_stats

    rng = np.random.default_rng(args.seed)
    for site in rng.integers(0, matrix.nnz, args.edits):
        matrix.values[int(site)] += float(rng.standard_normal()) or 1.0

    start = time.perf_counter()
    warm = runner.reschedule(matrix, spec, **kwargs)
    warm_seconds = time.perf_counter() - start
    warm_stats = runner.last_reschedule_stats

    fresh = PipelineRunner().schedule(matrix, spec, **kwargs)
    identical = schedules_identical(warm.schedule, fresh.schedule)

    n_tiles = len(warm.schedule.tiles)
    print(f"scheme {spec.name}: {n_tiles} tile(s), "
          f"pipeline {' -> '.join(spec.passes)}")
    print(f"cold schedule: {cold_seconds * 1e3:8.1f} ms, "
          f"{cold_stats.executed_total} tile-passes")
    print(f"reschedule after {args.edits} edit(s): "
          f"{warm_seconds * 1e3:8.1f} ms, "
          f"{warm_stats.executed_total} tile-passes executed, "
          f"{warm_stats.skipped_total} resumed from cache")
    for token in sorted(set(warm_stats.executed) | set(warm_stats.skipped)):
        print(f"  {token:<18s} executed {warm_stats.executed.get(token, 0):>4d}"
              f"  resumed {warm_stats.skipped.get(token, 0):>4d}")
    print(f"byte-identical to a cold schedule: {'yes' if identical else 'NO'}")
    return 0 if identical else 1


def _cmd_compare(args) -> int:
    matrix = generate_named(args.matrix)
    print("matrix:", matrix_stats(matrix).as_row())
    chason_report = ChasonAccelerator().analyze(matrix)
    serpens_report = SerpensAccelerator().analyze(matrix)
    print(chason_report.as_table_row())
    print(serpens_report.as_table_row())
    print(
        f"speedup {serpens_report.latency_ms / chason_report.latency_ms:.2f}x, "
        f"transfer reduction "
        f"{serpens_report.traffic_bytes / chason_report.traffic_bytes:.2f}x"
    )
    return 0


def _cmd_corpus(args) -> int:
    result = compare_on_corpus(count=args.count, nnz_cap=args.cap or None)
    serpens_summary = describe(result.serpens_underutilization)
    chason_summary = describe(result.chason_underutilization)
    print(f"corpus sweep over {result.count} matrices")
    print(
        f"serpens underutilization: mean {serpens_summary['mean']:.1f}% "
        f"range {serpens_summary['min']:.1f}-{serpens_summary['max']:.1f}%"
    )
    print(
        f"chason  underutilization: mean {chason_summary['mean']:.1f}% "
        f"range {chason_summary['min']:.1f}-{chason_summary['max']:.1f}%"
    )
    print(f"geomean speedup over serpens: {result.geomean_speedup:.2f}x")
    return 0


def _cmd_characterize(args) -> int:
    matrix = generate_named(args.matrix)
    character = characterize(matrix)
    print("matrix:", matrix_stats(matrix).as_row())
    print(
        f"row-length cv {character.row_cv:.2f}, gini "
        f"{character.gini:.2f}, empty rows "
        f"{100 * character.empty_row_fraction:.1f}%"
    )
    print(
        f"predicted underutilization: serpens "
        f"{character.predicted_serpens_underutilization:.0f}%, chason "
        f"{character.predicted_chason_underutilization:.0f}% "
        f"(improvement {character.predicted_improvement:.0f} pp)"
    )
    verdict = "yes" if character.migration_worthwhile else "marginal"
    print(f"cross-channel migration worthwhile: {verdict}")
    return 0


def _cmd_spmm(args) -> int:
    matrix = generate_named(args.matrix)
    chason = chason_spmm_report(matrix, args.bcols)
    sextans = sextans_spmm_report(matrix, args.bcols)
    print("matrix:", matrix_stats(matrix).as_row())
    print(
        f"chason  SpMM: {chason.latency_ms:.4f} ms, "
        f"{chason.throughput_gflops:.2f} GFLOPS "
        f"({args.bcols} B columns)"
    )
    print(
        f"sextans SpMM: {sextans.latency_ms:.4f} ms, "
        f"{sextans.throughput_gflops:.2f} GFLOPS"
    )
    print(f"speedup {sextans.latency_ms / chason.latency_ms:.2f}x")
    return 0


def _cmd_generate(args) -> int:
    matrix = generate_named(args.matrix, seed=args.seed)
    save_matrix_market(matrix, args.out)
    print(f"wrote {matrix.nnz} non-zeros to {args.out}")
    return 0


def _cmd_estimate(args) -> int:
    matrix = generate_named(args.matrix)
    print("matrix:", matrix_stats(matrix).as_row())
    runner = PipelineRunner()
    result = runner.estimate(args.matrix, args.scheme)
    predicted = result.predicted
    artifact = result.estimate_artifact
    print(
        f"scheme {predicted.scheme}: predicted {predicted.cycles.total} "
        f"cycles (stream {predicted.stream_cycles}, raw "
        f"{predicted.raw_stream_cycles}), {predicted.migrated} migrated, "
        f"calibrated tolerance ±{100 * artifact.tolerance:.1f}%"
    )
    print(result.report.as_table_row())
    if args.compare:
        exact = runner.analyze(args.matrix, args.scheme, fidelity="exact")
        exact_total = exact.cycles.total
        rel = abs(predicted.cycles.total - exact_total) / max(exact_total, 1)
        print(exact.report.as_table_row())
        print(
            f"exact {exact_total} cycles, relative error {100 * rel:.2f}% "
            f"({'within' if rel <= artifact.tolerance else 'OUTSIDE'} "
            f"tolerance)"
        )
        return 0 if rel <= artifact.tolerance else 1
    return 0


def _cmd_serve(args) -> int:
    engine = ServingEngine(
        workers=args.workers,
        queue_capacity=args.queue,
        max_batch=args.batch,
        fidelity=args.fidelity,
    )
    engine.start()
    try:
        responses, latency, stats = serve_request_file(
            args.requests, engine=engine, timeout=args.timeout
        )
    finally:
        engine.shutdown(drain=True)
    lines = [response.to_json() for response in responses]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"wrote {len(lines)} responses to {args.out}")
    else:
        for line in lines:
            print(line)
    served = [r for r in responses if r.ok]
    print(
        f"served {len(served)}/{len(responses)} requests  "
        f"(accepted {stats['accepted']}, coalesced {stats['coalesced']}, "
        f"shed {stats['shed']}, expired {stats['expired']}, "
        f"errors {stats['errors']})"
    )
    audit = engine.audit_summary()
    if audit["sampled"]:
        demoted = (f", demoted: {', '.join(audit['demoted'])}"
                   if audit["demoted"] else "")
        print(
            f"audit ({audit['fidelity']} tier): sampled "
            f"{audit['sampled']}, violations {audit['violations']}, "
            f"max rel error {100 * audit['max_rel_error']:.2f}%{demoted}"
        )
    if latency.get("count"):
        print(
            f"latency p50 {latency['p50_ms']:.3f} ms  "
            f"p95 {latency['p95_ms']:.3f} ms  "
            f"p99 {latency['p99_ms']:.3f} ms  "
            f"(mean {latency['mean_ms']:.3f} ms over "
            f"{latency['count']} served)"
        )
    tenants = engine.tenant_summary()
    if len(tenants) > 1 or (tenants and "default" not in tenants):
        print("per-tenant:")
        for tenant in sorted(tenants):
            row = tenants[tenant]
            tail = ""
            tenant_latency = row.get("latency") or {}
            if tenant_latency.get("count"):
                tail = f"  p99 {tenant_latency['p99_ms']:.3f} ms"
            print(
                f"  {tenant}: accepted {row.get('accepted', 0)}, "
                f"completed {row.get('completed', 0)}, "
                f"shed {row.get('shed', 0)}, "
                f"expired {row.get('expired', 0)}, "
                f"errors {row.get('errors', 0)}{tail}"
            )
    return 0


def _cmd_submit(args) -> int:
    overrides = {}
    for item in args.set or []:
        if "=" not in item:
            print(f"error: --set expects field=value, got {item!r}",
                  file=sys.stderr)
            return 1
        key, _eq, raw = item.partition("=")
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        overrides[key] = value
    engine = ServingEngine(workers=1, fidelity=args.fidelity)
    engine.start()
    try:
        response = ServingClient(engine).request(
            args.matrix,
            scheme=args.scheme,
            config_overrides=overrides or None,
            priority=args.priority,
            deadline_ms=args.deadline_ms,
            timeout=args.timeout,
        )
    finally:
        engine.shutdown(drain=True)
    print(response.to_json())
    if response.ok:
        print(response.report.as_table_row())
    return 0 if response.ok else 1


def _cmd_cluster(args) -> int:
    if args.cluster_command == "status":
        cluster = Cluster(
            devices=args.devices,
            replicas=args.replicas,
            routing=args.routing,
        )
        print(format_status(cluster.status()))
        print("\nfault plan (REPRO_CLUSTER_FAULTS):")
        print(cluster.fault_plan.describe())
        return 0
    # serve
    cluster = Cluster(
        devices=args.devices,
        replicas=args.replicas,
        hedge_ms=args.hedge_ms,
        routing=args.routing,
        fidelity=args.fidelity,
    )
    cluster.start()
    autoscaler = None
    if getattr(args, "autoscale", False):
        from .cluster import Autoscaler

        autoscaler = Autoscaler(
            cluster,
            min_devices=args.autoscale_min,
            max_devices=args.autoscale_max,
            interval_s=args.autoscale_interval,
        )
        autoscaler.start()
    try:
        results, status = serve_request_file_clustered(
            args.requests,
            cluster=cluster,
            clients=args.clients,
            timeout=args.timeout,
        )
    finally:
        if autoscaler is not None:
            autoscaler.stop()
        cluster.shutdown(drain=True)
        status = cluster.status()
    lines = [result.to_json() for result in results]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
        print(f"wrote {len(lines)} responses to {args.out}")
    else:
        for line in lines:
            print(line)
    print()
    print(format_status(status))
    if autoscaler is not None:
        snap = autoscaler.snapshot()
        print(
            f"\nautoscaler: devices={snap['alive']} "
            f"(min {snap['min_devices']}, max {snap['max_devices']})  "
            f"ups={snap['ups']} downs={snap['downs']} "
            f"steps={snap['steps']}"
        )
        if snap["actions"]:
            rendered = "  ".join(
                f"{direction}:{device}"
                for direction, device in snap["actions"]
            )
            print(f"  actions: {rendered}")
    served = sum(1 for result in results if result.ok)
    return 0 if served == len(results) else 1


def _cmd_session(args) -> int:
    import numpy as np
    from concurrent.futures import ThreadPoolExecutor

    matrix = generate_named(args.matrix)
    params = {}
    if args.solver in ("cg", "jacobi"):
        rng = np.random.default_rng(args.seed)
        params["b"] = rng.normal(size=matrix.n_rows)
        if args.solver == "jacobi":
            params["omega"] = args.omega
    else:
        params["seed"] = args.seed

    engine = cluster = None
    if args.devices:
        cluster = Cluster(devices=args.devices).start()
    else:
        engine = ServingEngine().start()
    try:
        manager = SessionManager(engine=engine, cluster=cluster)

        def solve(index: int):
            with manager.open(
                args.matrix,
                solver=args.solver,
                scheme=args.scheme,
                tolerance=args.tolerance,
                max_iterations=args.max_iterations,
                params=params,
                priority=args.priority,
                deadline_ms=args.deadline_ms,
            ) as session:
                result = session.run(timeout=args.timeout)
                return session, result

        workers = max(min(args.sessions, 32), 1)
        with ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-session-client",
        ) as pool:
            outcomes = list(pool.map(solve, range(args.sessions)))
    finally:
        if cluster is not None:
            cluster.shutdown(drain=True)
        if engine is not None:
            engine.shutdown(drain=True)

    print(f"{'session':<10s} {'device':<8s} {'iters':>5s} "
          f"{'residual':>12s} {'conv':>5s} {'failover':>8s} "
          f"{'remat':>5s}")
    for session, result in outcomes:
        device = (session.device.device_id
                  if session.device is not None else "-")
        print(
            f"{session.session_id:<10s} {device:<8s} "
            f"{result.iterations:>5d} {result.residual:>12.3e} "
            f"{str(result.converged):>5s} {session.failovers:>8d} "
            f"{session.rematerializations:>5d}"
        )
    stats = manager.snapshot()
    print(
        f"\nsessions {stats['opened']} opened, {stats['closed']} closed; "
        f"{stats['iterations']} iterations in {stats['steps']} steps; "
        f"{stats['failovers']} failovers, "
        f"{stats['rematerializations']} re-materializations"
    )
    if engine is not None:
        resident = engine.resident.snapshot()
        print(
            f"resident store: {resident['sessions']} sessions, "
            f"{resident['bytes']} bytes, {resident['hits']} hits, "
            f"{resident['misses']} misses, "
            f"{resident['evictions']} evictions"
        )
    solved = sum(1 for _s, result in outcomes if result.converged)
    print(f"converged {solved}/{len(outcomes)}")
    return 0 if all(s.finished for s, _r in outcomes) else 1


def _cmd_telemetry(args) -> int:
    if args.telemetry_command == "summarize":
        print(telemetry_mod.summarize_file(args.trace))
        if args.validate:
            count = telemetry_mod.validate_file(args.trace)
            print(f"\n{count} records validate against the event schema")
    elif args.telemetry_command == "validate":
        _records, skipped = telemetry_mod.load_trace_tolerant(args.trace)
        if skipped:
            print(f"warning: skipped {skipped} malformed line(s)",
                  file=sys.stderr)
        count = telemetry_mod.validate_file(args.trace)
        print(f"{count} records validate against the event schema")
    elif args.telemetry_command == "export":
        records, skipped = telemetry_mod.load_trace_tolerant(args.trace)
        if skipped:
            print(f"warning: skipped {skipped} malformed line(s)",
                  file=sys.stderr)
        if args.format == "chrome":
            out = args.out or args.trace + ".chrome.json"
            count = telemetry_mod.write_chrome(out, records)
            telemetry_mod.validate_chrome_file(out)
            print(f"wrote {count} trace events to {out}")
        else:  # prometheus
            out = args.out or args.trace + ".prom"
            count = telemetry_mod.write_prometheus(out, records)
            print(f"wrote {count} exposition lines to {out}")
    else:  # schema
        from .telemetry.summarize import schema_json

        print(schema_json())
    return 0


def _cmd_top(args) -> int:
    from .telemetry.summarize import render_top

    iteration = 0
    try:
        while True:
            iteration += 1
            try:
                records, skipped = telemetry_mod.load_trace_tolerant(
                    args.trace
                )
            except OSError as error:
                if args.iterations == 1:
                    print(f"error: {error}", file=sys.stderr)
                    return 1
                print(f"(waiting for trace: {error})")
                time.sleep(args.interval)
                continue
            if args.iterations != 1:
                # Redraw in place like top(1); a single-shot render (CI,
                # piping to a file) keeps plain sequential output.
                print("\x1b[2J\x1b[H", end="")
            print(render_top(records))
            if skipped:
                print(f"warning: skipped {skipped} malformed line(s)")
            if args.iterations and iteration >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chasoň (MICRO 2025) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="write a JSONL telemetry trace of this invocation to PATH "
             "('-' = stderr); equivalent to REPRO_TELEMETRY",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "info", help="configurations, resources, power"
    ).set_defaults(func=_cmd_info)
    commands.add_parser(
        "matrices", help="list the Table 2 matrices"
    ).set_defaults(func=_cmd_matrices)

    schedule = commands.add_parser("schedule",
                                   help="schedule one named matrix")
    schedule.add_argument("matrix", nargs="?", default=None,
                          choices=sorted(NAMED_MATRICES))
    schedule.add_argument(
        "--scheme", default="crhcs", metavar="SCHEME",
        help="a registered scheme (see --list-schemes)",
    )
    schedule.add_argument(
        "--list-schemes", action="store_true",
        help="list the registered schemes and exit",
    )
    schedule.add_argument(
        "--list-passes", action="store_true",
        help="list the registered schedule passes and each scheme's "
             "pass pipeline, then exit",
    )
    schedule.set_defaults(func=_cmd_schedule)

    reschedule = commands.add_parser(
        "reschedule",
        help="incremental rescheduling demo: edit a matrix in place and "
             "re-run only the invalidated passes",
    )
    reschedule.add_argument("matrix", choices=sorted(NAMED_MATRICES))
    reschedule.add_argument(
        "--scheme", default="crhcs", metavar="SCHEME",
        help="a pass-based registered scheme",
    )
    reschedule.add_argument(
        "--edits", type=int, default=4,
        help="number of random in-place value edits between runs",
    )
    reschedule.add_argument("--seed", type=int, default=0,
                            help="edit-site RNG seed")
    reschedule.add_argument(
        "--tile-rows", type=int, default=0, metavar="N",
        help="cap rows per scheduling pass (0 = the config's row window);"
             " smaller caps mean more tiles and finer invalidation",
    )
    reschedule.set_defaults(func=_cmd_reschedule)

    compare = commands.add_parser("compare",
                                  help="Chasoň vs Serpens on one matrix")
    compare.add_argument("matrix", choices=sorted(NAMED_MATRICES))
    compare.set_defaults(func=_cmd_compare)

    corpus = commands.add_parser("corpus", help="corpus sweep summary")
    corpus.add_argument("--count", type=int, default=16)
    corpus.add_argument("--cap", type=int, default=20_000,
                        help="non-zero cap (0 = uncapped)")
    corpus.set_defaults(func=_cmd_corpus)

    character = commands.add_parser(
        "characterize", help="predict CrHCS benefit from matrix stats"
    )
    character.add_argument("matrix", choices=sorted(NAMED_MATRICES))
    character.set_defaults(func=_cmd_characterize)

    spmm = commands.add_parser("spmm", help="SpMM extension report (§7.2)")
    spmm.add_argument("matrix", choices=sorted(NAMED_MATRICES))
    spmm.add_argument("--bcols", type=int, default=16)
    spmm.set_defaults(func=_cmd_spmm)

    generate = commands.add_parser(
        "generate", help="write a named matrix as MatrixMarket"
    )
    generate.add_argument("matrix", choices=sorted(NAMED_MATRICES))
    generate.add_argument("--out", required=True)
    generate.add_argument("--seed", type=int, default=None)
    generate.set_defaults(func=_cmd_generate)

    estimate = commands.add_parser(
        "estimate",
        help="predict one matrix's report analytically (no simulation)",
    )
    estimate.add_argument("matrix", choices=sorted(NAMED_MATRICES))
    estimate.add_argument("--scheme", default="crhcs", metavar="SCHEME",
                          help="a registered scheme (see schedule "
                               "--list-schemes)")
    estimate.add_argument(
        "--compare", action="store_true",
        help="also run the exact simulator and report the relative "
             "cycle error (exit 1 if outside the calibrated tolerance)",
    )
    estimate.set_defaults(func=_cmd_estimate)

    serve = commands.add_parser(
        "serve",
        help="run a JSONL request file through the serving engine",
    )
    serve.add_argument("requests", help="JSONL request file "
                       '(lines like {"matrix": "wiki-Vote", '
                       '"scheme": "crhcs", "priority": 1})')
    serve.add_argument("--out", default=None,
                       help="write responses as JSONL here "
                            "(default: stdout)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker threads (default REPRO_SERVE_WORKERS)")
    serve.add_argument("--queue", type=int, default=None,
                       help="admission queue capacity "
                            "(default REPRO_SERVE_QUEUE)")
    serve.add_argument("--batch", type=int, default=None,
                       help="micro-batch limit (default REPRO_SERVE_BATCH)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-request wait in seconds (default: none)")
    serve.add_argument("--fidelity", choices=("exact", "estimate", "auto"),
                       default=None,
                       help="fidelity tier (default REPRO_FIDELITY, "
                            "else estimate)")
    serve.set_defaults(func=_cmd_serve)

    submit = commands.add_parser(
        "submit", help="submit one request to an in-process engine"
    )
    submit.add_argument("matrix", choices=sorted(NAMED_MATRICES))
    submit.add_argument("--scheme", default="crhcs", metavar="SCHEME",
                        help="a registered scheme (see schedule "
                             "--list-schemes)")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--deadline-ms", type=float, default=None)
    submit.add_argument("--set", action="append", metavar="FIELD=VALUE",
                        help="override a config field "
                             "(repeatable, e.g. --set column_window=512)")
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument("--fidelity", choices=("exact", "estimate", "auto"),
                        default=None,
                        help="fidelity tier (default REPRO_FIDELITY, "
                             "else estimate)")
    submit.set_defaults(func=_cmd_submit)

    cluster = commands.add_parser(
        "cluster",
        help="run request files on a sharded multi-device cluster",
    )
    cluster_commands = cluster.add_subparsers(
        dest="cluster_command", required=True
    )
    cluster_serve = cluster_commands.add_parser(
        "serve",
        help="run a JSONL request file through a device cluster",
    )
    cluster_serve.add_argument(
        "requests", help="JSONL request file (the `repro serve` format)"
    )
    cluster_serve.add_argument(
        "--devices", type=int, default=None,
        help="device count (default REPRO_CLUSTER_DEVICES)",
    )
    cluster_serve.add_argument(
        "--replicas", type=int, default=None,
        help="replica-set size (default REPRO_CLUSTER_REPLICAS)",
    )
    cluster_serve.add_argument(
        "--hedge-ms", type=int, default=None,
        help="hedge threshold in ms (default REPRO_CLUSTER_HEDGE_MS)",
    )
    cluster_serve.add_argument(
        "--routing", choices=("affinity", "round_robin"),
        default="affinity",
        help="placement policy (round_robin is the no-affinity "
             "ablation)",
    )
    cluster_serve.add_argument(
        "--clients", type=int, default=8,
        help="concurrent closed-loop client threads",
    )
    cluster_serve.add_argument(
        "--out", default=None,
        help="write responses as JSONL here (default: stdout)",
    )
    cluster_serve.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-request routing budget in seconds",
    )
    cluster_serve.add_argument(
        "--fidelity", choices=("exact", "estimate", "auto"),
        default=None,
        help="fidelity tier for every device engine "
             "(default REPRO_FIDELITY, else estimate)",
    )
    cluster_serve.add_argument(
        "--autoscale", action="store_true",
        help="run the autoscaler control loop while serving "
             "(grow/drain devices by queue depth and latency EWMA)",
    )
    cluster_serve.add_argument(
        "--autoscale-min", type=int, default=None,
        help="fleet floor (default REPRO_AUTOSCALE_MIN)",
    )
    cluster_serve.add_argument(
        "--autoscale-max", type=int, default=None,
        help="fleet ceiling (default REPRO_AUTOSCALE_MAX)",
    )
    cluster_serve.add_argument(
        "--autoscale-interval", type=float, default=None,
        help="seconds between autoscaler evaluations "
             "(default REPRO_AUTOSCALE_INTERVAL)",
    )
    cluster_serve.set_defaults(func=_cmd_cluster)
    cluster_status = cluster_commands.add_parser(
        "status",
        help="show device table, router config, and the fault plan",
    )
    cluster_status.add_argument("--devices", type=int, default=None)
    cluster_status.add_argument("--replicas", type=int, default=None)
    cluster_status.add_argument(
        "--routing", choices=("affinity", "round_robin"),
        default="affinity",
    )
    cluster_status.set_defaults(func=_cmd_cluster)

    session = commands.add_parser(
        "session",
        help="iterative-solver sessions with device-resident state",
    )
    session_commands = session.add_subparsers(
        dest="session_command", required=True
    )
    session_run = session_commands.add_parser(
        "run",
        help="run concurrent solver sessions over an engine or cluster",
    )
    session_run.add_argument("matrix", choices=sorted(NAMED_MATRICES))
    session_run.add_argument(
        "--solver", choices=solver_programs(),
        default="power_iteration",
    )
    session_run.add_argument("--scheme", default="crhcs", metavar="SCHEME",
                             help="a registered scheme (see schedule "
                                  "--list-schemes)")
    session_run.add_argument(
        "--sessions", type=int, default=4,
        help="concurrent sessions to run (default 4)",
    )
    session_run.add_argument(
        "--devices", type=int, default=0,
        help="cluster device count (0 = one in-process engine; "
             "a cluster honours REPRO_CLUSTER_FAULTS)",
    )
    session_run.add_argument("--tolerance", type=float, default=1e-6)
    session_run.add_argument("--max-iterations", type=int, default=200)
    session_run.add_argument("--priority", type=int, default=0)
    session_run.add_argument("--deadline-ms", type=float, default=None)
    session_run.add_argument(
        "--seed", type=int, default=0,
        help="start-vector / right-hand-side seed",
    )
    session_run.add_argument(
        "--omega", type=float, default=1.0,
        help="Jacobi damping factor",
    )
    session_run.add_argument("--timeout", type=float, default=60.0)
    session_run.set_defaults(func=_cmd_session)

    telemetry = commands.add_parser(
        "telemetry", help="inspect JSONL telemetry traces"
    )
    telemetry_commands = telemetry.add_subparsers(
        dest="telemetry_command", required=True
    )
    summarize = telemetry_commands.add_parser(
        "summarize", help="render the span tree and counter tables"
    )
    summarize.add_argument("trace", help="a JSONL trace file")
    summarize.add_argument(
        "--validate", action="store_true",
        help="also validate every record against the event schema",
    )
    validate = telemetry_commands.add_parser(
        "validate", help="validate a trace against the event schema"
    )
    validate.add_argument("trace", help="a JSONL trace file")
    export = telemetry_commands.add_parser(
        "export",
        help="export a trace as Chrome trace-event JSON or Prometheus text",
    )
    export.add_argument("trace", help="a JSONL trace file")
    export.add_argument(
        "--format", choices=("chrome", "prometheus"), default="chrome",
        help="chrome: load in chrome://tracing or ui.perfetto.dev; "
             "prometheus: text exposition of counters/gauges/histograms",
    )
    export.add_argument(
        "--out", default=None,
        help="output path (default: TRACE.chrome.json / TRACE.prom)",
    )
    telemetry_commands.add_parser(
        "schema", help="print the JSONL event record schema"
    )
    telemetry.set_defaults(func=_cmd_telemetry)

    top = commands.add_parser(
        "top",
        help="live SLO/latency/trace dashboard over a JSONL trace",
    )
    top.add_argument("trace", help="the JSONL trace file a serving or "
                     "cluster run is appending to")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between redraws")
    top.add_argument("--iterations", type=int, default=0,
                     help="render this many frames then exit "
                          "(0 = until interrupted; 1 = single-shot)")
    top.set_defaults(func=_cmd_top)
    return parser


def _export_on_close(trace_path: str) -> None:
    """Honour the export knobs once the CLI's telemetry trace has closed.

    ``REPRO_TRACE_CHROME`` / ``REPRO_PROM_FILE`` name output paths; both
    need the finished JSONL trace on disk, so a ``-`` (stderr) trace
    warns instead of exporting.
    """
    chrome = os.environ.get(telemetry_mod.TRACE_CHROME_ENV, "").strip()
    prom = os.environ.get(telemetry_mod.PROM_FILE_ENV, "").strip()
    if not chrome and not prom:
        return
    if trace_path == "-":
        telemetry_mod.warn_once(
            "trace_export_stderr",
            "REPRO_TRACE_CHROME/REPRO_PROM_FILE need a file trace; "
            "--telemetry - streams to stderr, skipping export",
        )
        return
    try:
        # The JSONL sink opens lazily: a run that emitted no records
        # leaves no file, which exports as an empty (but valid) view.
        if os.path.exists(trace_path):
            records, _skipped = telemetry_mod.load_trace_tolerant(
                trace_path
            )
        else:
            records = []
        if chrome:
            count = telemetry_mod.write_chrome(chrome, records)
            print(f"wrote {count} trace events to {chrome}",
                  file=sys.stderr)
        if prom:
            count = telemetry_mod.write_prometheus(prom, records)
            print(f"wrote {count} exposition lines to {prom}",
                  file=sys.stderr)
    except OSError as error:
        print(f"warning: trace export failed: {error}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configured = None
    if args.telemetry:
        configured = telemetry_mod.configure(args.telemetry)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if configured is not None:
            configured.close()
            telemetry_mod.reset()
            _export_on_close(args.telemetry)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
