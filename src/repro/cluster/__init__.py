"""Sharded multi-device cluster layer above the serving engine.

Each device is a private :class:`~repro.serving.engine.ServingEngine`
plus its own artifact/schedule caches; a router places requests by
consistent hashing on the pipeline's content fingerprint so repeated
work lands where it is already cached, with replication for hot keys,
health tracking, and fault-driven retry/hedging/failover.  See
``docs/cluster.md``.
"""

from .cluster import (
    Cluster,
    ClusterResult,
    DEFAULT_DEVICES,
    DEFAULT_HEDGE_MS,
    DEFAULT_REPLICAS,
    DEFAULT_RETRIES,
    DEVICES_ENV,
    HEDGE_ENV,
    HOT_KEY_THRESHOLD,
    REPLICAS_ENV,
    RETRIES_ENV,
    cluster_device_count,
    cluster_hedge_ms,
    cluster_max_attempts,
    cluster_replica_count,
)
from .autoscaler import (
    AUTOSCALE_INTERVAL_ENV,
    AUTOSCALE_MAX_ENV,
    AUTOSCALE_MIN_ENV,
    AutoscaleSignals,
    Autoscaler,
    autoscale_interval_s,
    autoscale_max_devices,
    autoscale_min_devices,
)
from .client import format_status, serve_request_file_clustered
from .device import (
    DEFAULT_SCHEDULE_CAPACITY,
    DEFAULT_STORE_CAPACITY,
    FAILURE_THRESHOLD,
    DeviceHandle,
    DeviceHealth,
)
from .faults import (
    FAULT_DETAIL_PREFIX,
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    parse_fault_plan,
)
from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "AUTOSCALE_INTERVAL_ENV",
    "AUTOSCALE_MAX_ENV",
    "AUTOSCALE_MIN_ENV",
    "AutoscaleSignals",
    "Autoscaler",
    "autoscale_interval_s",
    "autoscale_max_devices",
    "autoscale_min_devices",
    "Cluster",
    "ClusterResult",
    "DEFAULT_DEVICES",
    "DEFAULT_HEDGE_MS",
    "DEFAULT_REPLICAS",
    "DEFAULT_RETRIES",
    "DEFAULT_SCHEDULE_CAPACITY",
    "DEFAULT_STORE_CAPACITY",
    "DEFAULT_VNODES",
    "DEVICES_ENV",
    "FAILURE_THRESHOLD",
    "FAULT_DETAIL_PREFIX",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "HEDGE_ENV",
    "HOT_KEY_THRESHOLD",
    "HashRing",
    "REPLICAS_ENV",
    "RETRIES_ENV",
    "DeviceHandle",
    "DeviceHealth",
    "cluster_device_count",
    "cluster_hedge_ms",
    "cluster_max_attempts",
    "cluster_replica_count",
    "format_status",
    "parse_fault_plan",
    "serve_request_file_clustered",
]
