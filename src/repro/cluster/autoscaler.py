"""Telemetry-driven autoscaling: grow and shrink the simulated fleet.

The :class:`Autoscaler` closes the loop between the signals the cluster
already records — per-device queue depth and the served-latency EWMA
(the ``cluster.device.queue_depth`` / ``cluster.device.ewma_latency_ms``
gauges) — and the fleet size:

* **scale up** when the mean queue depth per alive device stays above
  the up-threshold (or any device's latency EWMA above its threshold)
  for :data:`UP_STREAK` consecutive evaluations:
  :meth:`~repro.cluster.cluster.Cluster.add_device` builds a device
  configured exactly like the rest of the fleet, and consistent hashing
  moves only the keys that belong to it.
* **scale down** when the fleet stays idle (mean depth at or below the
  down-threshold) for :data:`DOWN_STREAK` consecutive evaluations: the
  shallowest-queue device leaves through the same drain-and-redistribute
  path a failover uses (``remove_device(drain=True)``) — queued work
  finishes on the way out and its keys re-shard minimally.

Hysteresis is three-fold: distinct up/down thresholds, consecutive-
evaluation streaks, and a post-action cooldown — so one bursty sample
never flaps the fleet.  Min/max bounds are hard clamps, checked before
anything else.  The loop is **step-driven**: :meth:`Autoscaler.step`
performs one evaluation (deterministic, directly testable with injected
signals), and :meth:`start` merely runs steps on a timer thread.

Knobs (all ``REPRO_AUTOSCALE_*``, warn-once fallback on garbage):
``MIN``, ``MAX``, ``INTERVAL`` (seconds), ``UP_DEPTH``, ``DOWN_DEPTH``,
``UP_LATENCY_MS``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .. import telemetry

AUTOSCALE_MIN_ENV = "REPRO_AUTOSCALE_MIN"
AUTOSCALE_MAX_ENV = "REPRO_AUTOSCALE_MAX"
AUTOSCALE_INTERVAL_ENV = "REPRO_AUTOSCALE_INTERVAL"
AUTOSCALE_UP_DEPTH_ENV = "REPRO_AUTOSCALE_UP_DEPTH"
AUTOSCALE_DOWN_DEPTH_ENV = "REPRO_AUTOSCALE_DOWN_DEPTH"
AUTOSCALE_UP_LATENCY_ENV = "REPRO_AUTOSCALE_UP_LATENCY_MS"

DEFAULT_MIN_DEVICES = 1
DEFAULT_MAX_DEVICES = 8
DEFAULT_INTERVAL_S = 1.0
#: Mean queued entries per alive device that reads as overloaded.
DEFAULT_UP_DEPTH = 8.0
#: Mean queue depth at or below which the fleet reads as idle.
DEFAULT_DOWN_DEPTH = 1.0
#: Any device's served-latency EWMA above this also reads as overloaded
#: (0 disables the latency trigger).
DEFAULT_UP_LATENCY_MS = 0.0

#: Consecutive overloaded evaluations before a scale-up.
UP_STREAK = 2
#: Consecutive idle evaluations before a scale-down (deliberately
#: slower than the up path — adding capacity is cheap, thrashing the
#: warm caches of a drained device is not).
DOWN_STREAK = 4
#: Evaluations skipped after any scaling action.
COOLDOWN_STEPS = 2


def _int_env(env: str, default: int, warn_key: str, minimum: int) -> int:
    """Integer knob with the warn-once fallback convention."""
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        telemetry.warn_once(
            warn_key,
            f"{env}={raw!r} is not an integer; "
            f"falling back to the default ({default})",
        )
        return default
    return max(value, minimum)


def _float_env(env: str, default: float, warn_key: str,
               minimum: float) -> float:
    """Float knob with the warn-once fallback convention."""
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        telemetry.warn_once(
            warn_key,
            f"{env}={raw!r} is not a number; "
            f"falling back to the default ({default})",
        )
        return default
    return max(value, minimum)


def autoscale_min_devices() -> int:
    """Configured fleet floor (``REPRO_AUTOSCALE_MIN``)."""
    return _int_env(AUTOSCALE_MIN_ENV, DEFAULT_MIN_DEVICES,
                    "invalid_autoscale_min", 1)


def autoscale_max_devices() -> int:
    """Configured fleet ceiling (``REPRO_AUTOSCALE_MAX``)."""
    return _int_env(AUTOSCALE_MAX_ENV, DEFAULT_MAX_DEVICES,
                    "invalid_autoscale_max", 1)


def autoscale_interval_s() -> float:
    """Configured evaluation interval (``REPRO_AUTOSCALE_INTERVAL``)."""
    return _float_env(AUTOSCALE_INTERVAL_ENV, DEFAULT_INTERVAL_S,
                      "invalid_autoscale_interval", 0.01)


def autoscale_up_depth() -> float:
    """Scale-up queue-depth threshold (``REPRO_AUTOSCALE_UP_DEPTH``)."""
    return _float_env(AUTOSCALE_UP_DEPTH_ENV, DEFAULT_UP_DEPTH,
                      "invalid_autoscale_up_depth", 0.0)


def autoscale_down_depth() -> float:
    """Scale-down queue-depth threshold
    (``REPRO_AUTOSCALE_DOWN_DEPTH``)."""
    return _float_env(AUTOSCALE_DOWN_DEPTH_ENV, DEFAULT_DOWN_DEPTH,
                      "invalid_autoscale_down_depth", 0.0)


def autoscale_up_latency_ms() -> float:
    """Scale-up latency-EWMA threshold
    (``REPRO_AUTOSCALE_UP_LATENCY_MS``, 0 disables)."""
    return _float_env(AUTOSCALE_UP_LATENCY_ENV, DEFAULT_UP_LATENCY_MS,
                      "invalid_autoscale_up_latency", 0.0)


@dataclass(frozen=True)
class AutoscaleSignals:
    """One evaluation's view of the fleet (the gauges, sampled live)."""

    alive: int
    mean_depth: float
    max_depth: int
    max_ewma_ms: float


class Autoscaler:
    """A hysteretic control loop over a cluster's fleet size."""

    def __init__(
        self,
        cluster: Any,
        min_devices: Optional[int] = None,
        max_devices: Optional[int] = None,
        interval_s: Optional[float] = None,
        up_depth: Optional[float] = None,
        down_depth: Optional[float] = None,
        up_latency_ms: Optional[float] = None,
        up_streak: int = UP_STREAK,
        down_streak: int = DOWN_STREAK,
        cooldown_steps: int = COOLDOWN_STEPS,
    ):
        self.cluster = cluster
        self.min_devices = (
            min_devices if min_devices is not None
            else autoscale_min_devices()
        )
        self.max_devices = max(
            max_devices if max_devices is not None
            else autoscale_max_devices(),
            self.min_devices,
        )
        self.interval_s = (
            interval_s if interval_s is not None else autoscale_interval_s()
        )
        self.up_depth = (
            up_depth if up_depth is not None else autoscale_up_depth()
        )
        self.down_depth = (
            down_depth if down_depth is not None else autoscale_down_depth()
        )
        self.up_latency_ms = (
            up_latency_ms if up_latency_ms is not None
            else autoscale_up_latency_ms()
        )
        self.up_streak = max(up_streak, 1)
        self.down_streak = max(down_streak, 1)
        self.cooldown_steps = max(cooldown_steps, 0)
        self._hot = 0
        self._cold = 0
        self._cooldown = 0
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.stats: Dict[str, int] = {"steps": 0, "ups": 0, "downs": 0}
        #: The action log (bounded): ``("up"|"down", device_id)``.
        self.actions: List[tuple] = []

    # -- one evaluation --------------------------------------------------

    def observe(self) -> AutoscaleSignals:
        """Sample the live fleet — the same numbers the queue-depth and
        EWMA-latency gauges record at shutdown, read directly off the
        device health ledgers so the loop needs no trace file."""
        alive = [
            device for device in list(self.cluster.devices.values())
            if device.health.alive
        ]
        depths = [device.queue_depth for device in alive]
        ewmas = [
            device.health.ewma_latency_ms for device in alive
            if device.health.ewma_latency_ms is not None
        ]
        return AutoscaleSignals(
            alive=len(alive),
            mean_depth=(sum(depths) / len(depths)) if depths else 0.0,
            max_depth=max(depths) if depths else 0,
            max_ewma_ms=max(ewmas) if ewmas else 0.0,
        )

    def step(
        self, signals: Optional[AutoscaleSignals] = None
    ) -> Optional[str]:
        """One evaluation; returns ``"up"``, ``"down"`` or ``None``.

        Deterministic given ``signals`` — the tests drive it with
        synthetic signals, the timer thread with :meth:`observe`.
        """
        if signals is None:
            signals = self.observe()
        t = telemetry.get()
        with self._lock:
            self.stats["steps"] += 1
            action = self._decide(signals)
        if action == "up":
            device_id = self.cluster.add_device()
            with self._lock:
                self.stats["ups"] += 1
                self._append_action(("up", device_id))
            if t.enabled:
                t.counter("cluster.autoscale.up", 1, device=device_id)
        elif action == "down":
            device_id = self._pick_drain()
            if device_id is None:
                action = None
            else:
                self.cluster.remove_device(
                    device_id, drain=True, reason="autoscale"
                )
                with self._lock:
                    self.stats["downs"] += 1
                    self._append_action(("down", device_id))
                if t.enabled:
                    t.counter("cluster.autoscale.down", 1,
                              device=device_id)
        if t.enabled:
            t.gauge("cluster.autoscale.devices",
                    self.cluster.alive_count())
        return action

    def _decide(self, signals: AutoscaleSignals) -> Optional[str]:
        """The pure decision rule (lock held)."""
        # Hard bounds before anything else — a fleet below its floor
        # (failovers) recovers immediately, no hysteresis.
        if signals.alive < self.min_devices:
            return "up"
        if self._cooldown > 0:
            self._cooldown -= 1
            self._hot = self._cold = 0
            return None
        hot = signals.mean_depth > self.up_depth or (
            self.up_latency_ms > 0
            and signals.max_ewma_ms > self.up_latency_ms
        )
        cold = not hot and signals.mean_depth <= self.down_depth
        self._hot = self._hot + 1 if hot else 0
        self._cold = self._cold + 1 if cold else 0
        if self._hot >= self.up_streak and signals.alive < self.max_devices:
            self._hot = self._cold = 0
            self._cooldown = self.cooldown_steps
            return "up"
        if (self._cold >= self.down_streak
                and signals.alive > self.min_devices):
            self._hot = self._cold = 0
            self._cooldown = self.cooldown_steps
            return "down"
        return None

    def _pick_drain(self) -> Optional[str]:
        """The device a scale-down retires: shallowest queue, newest id
        among ties (warm long-lived caches survive)."""
        alive = [
            device for device in list(self.cluster.devices.values())
            if device.health.alive
        ]
        if len(alive) <= self.min_devices:
            return None

        def rank(device: Any) -> tuple:
            try:
                index = int(device.device_id.lstrip("dev"))
            except ValueError:
                index = 0
            return (device.queue_depth, -index)

        return min(alive, key=rank).device_id

    def _append_action(self, action: tuple) -> None:
        self.actions.append(action)
        if len(self.actions) > 256:
            del self.actions[:128]

    # -- the timer loop --------------------------------------------------

    def start(self) -> "Autoscaler":
        """Run :meth:`step` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "Autoscaler":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.step()

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Status row: bounds, thresholds, counters, recent actions."""
        with self._lock:
            return {
                "min_devices": self.min_devices,
                "max_devices": self.max_devices,
                "interval_s": self.interval_s,
                "up_depth": self.up_depth,
                "down_depth": self.down_depth,
                "up_latency_ms": self.up_latency_ms,
                "alive": self.cluster.alive_count(),
                "steps": self.stats["steps"],
                "ups": self.stats["ups"],
                "downs": self.stats["downs"],
                "actions": list(self.actions[-16:]),
            }
