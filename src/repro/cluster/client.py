"""Request-file driver and status rendering for the cluster CLI.

:func:`serve_request_file_clustered` is what ``repro cluster serve``
runs: the same JSONL request files ``repro serve`` reads (the cluster is
a drop-in scale-out of the single engine), executed by concurrent
closed-loop clients against a :class:`~repro.cluster.cluster.Cluster`,
responses returned in request order with routing metadata attached.

:func:`format_status` renders ``Cluster.status()`` as the per-device
table ``repro cluster status`` prints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..serving.client import load_request_file
from .cluster import Cluster, ClusterResult


def serve_request_file_clustered(
    path: str,
    cluster: Optional[Cluster] = None,
    clients: int = 8,
    timeout: float = 60.0,
) -> Tuple[List[ClusterResult], Dict[str, Any]]:
    """Run a JSONL request file through a cluster.

    Returns ``(results_in_request_order, final_status)``.  The caller
    owns the cluster's lifecycle only if it passed one in.
    """
    requests = load_request_file(path)
    owned = cluster is None
    if owned:
        cluster = Cluster()
        cluster.start()
    try:
        results = cluster.run(requests, clients=clients, timeout=timeout)
    finally:
        if owned:
            cluster.shutdown(drain=True)
    return results, cluster.status()


def format_status(status: Dict[str, Any]) -> str:
    """Render ``Cluster.status()`` as the ``repro cluster status`` text."""
    lines = [
        f"cluster: state={status['state']} routing={status['routing']} "
        f"replicas={status['replicas']} hedge_ms={status['hedge_ms']:g} "
        f"max_attempts={status['max_attempts']}",
        "",
        f"  {'device':<8} {'state':<6} {'queue':>5} {'done':>6} "
        f"{'fail':>5} {'ewma_ms':>8}  faults",
    ]
    for row in status["devices"]:
        ewma = row["ewma_latency_ms"]
        faults = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(row["injected_faults"].items())
        ) or "-"
        lines.append(
            f"  {row['device']:<8} {row['state']:<6} "
            f"{row['queue_depth']:>5} {row['completed']:>6} "
            f"{row['failures']:>5} "
            f"{ewma if ewma is not None else '-':>8}  {faults}"
        )
    stats = status["stats"]
    routed = stats.get("routed", 0)
    hits = stats.get("affinity_hits", 0)
    lines.append("")
    lines.append(
        "  routed={routed} completed={completed} retries={retries} "
        "hedges={hedges} failovers={failovers} removed={removed} "
        "added={added}".format(
            routed=routed,
            completed=stats.get("completed", 0),
            retries=stats.get("retries", 0),
            hedges=stats.get("hedges", 0),
            failovers=stats.get("failovers", 0),
            removed=stats.get("removed_devices", 0),
            added=stats.get("added_devices", 0),
        )
    )
    if routed:
        lines.append(
            f"  affinity hit rate: {hits}/{routed} "
            f"({100.0 * hits / routed:.1f}% of routed requests "
            f"re-landed on their previous device)"
        )
    tenants = status.get("tenants") or {}
    # The single-tenant default is noise; render the table only once a
    # second tenant (or a renamed default) shows up in the counters.
    if len(tenants) > 1 or (tenants and "default" not in tenants):
        lines.append("")
        lines.append(
            f"  {'tenant':<16} {'accepted':>9} {'done':>6} {'shed':>5} "
            f"{'expired':>8} {'errors':>7}"
        )
        for tenant in sorted(tenants):
            counts = tenants[tenant]
            lines.append(
                f"  {tenant:<16} {counts.get('accepted', 0):>9} "
                f"{counts.get('completed', 0):>6} "
                f"{counts.get('shed', 0):>5} "
                f"{counts.get('expired', 0):>8} "
                f"{counts.get('errors', 0):>7}"
            )
    slo = status.get("slo") or {}
    active = {
        name: burn for name, burn in slo.items()
        if burn.get("good") or burn.get("bad")
    }
    if active:
        lines.append("")
        lines.append(
            f"  {'slo class':<12} {'good':>6} {'bad':>6} {'budget':>7}  "
            f"burn rates"
        )
        for name in sorted(active):
            burn = active[name]
            rates = "  ".join(
                f"{key[5:]}={burn[key]:.2f}"
                for key in sorted(
                    (k for k in burn if k.startswith("burn_")),
                    key=lambda k: float(k[5:-1]),
                )
            )
            lines.append(
                f"  {name:<12} {burn.get('good', 0):>6g} "
                f"{burn.get('bad', 0):>6g} "
                f"{burn.get('error_budget', 0):>7g}  {rates}"
            )
    return "\n".join(lines)
