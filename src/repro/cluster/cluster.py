"""The sharded multi-device cluster: routing, replication, failover.

A :class:`Cluster` fronts N :class:`~repro.cluster.device.DeviceHandle`
devices with a router that places every request by **consistent hashing
on the pipeline's content fingerprint** — the same digest chain the
serving engine coalesces by and the artifact store caches by.  Repeated
matrices therefore land on the device that already holds their schedule,
so the fleet's aggregate cache behaves like one big cache *without any
shared state between devices*.

Chasoň's premise, one level up: CrHCS migrates non-zeros across HBM
channels so no channel stalls while another drowns; the cluster migrates
*requests* across devices so no device recomputes what another already
holds, and re-balances when a device degrades or dies.

Resilience is the router's job, not the caller's:

* **retry with backoff** — a device-fault error or a shed answer moves
  the request to the next replica after a short exponential backoff;
* **hedging** — a request outstanding past the hedge threshold is
  duplicated onto a replica; first usable answer wins (the duplicate's
  execution is harmless — work is pure and content-addressed);
* **failover** — a crashed device (fault marker, or
  ``FAILURE_THRESHOLD`` consecutive failures) is removed from the ring;
  its queued work is shed, answered ``rejected``, and re-routed by the
  same retry loop.  Keys re-shard minimally: only the dead device's
  share moves.

In every mode the response is byte-identical to single-engine execution
— replicas compute the same pure function — and the cluster **never
raises on overload or device loss**: like the serving layer below it,
degradation is a structured response.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import ReproError, ServingError
from ..serving.engine import Ticket
from ..serving.slo import BurnRateMonitor
from ..telemetry import tracing
from ..telemetry.tracing import TraceContext
from ..serving.request import (
    STATUS_ERROR,
    STATUS_REJECTED,
    SpMVRequest,
    SpMVResponse,
)
from .device import FAILURE_THRESHOLD, DeviceHandle
from .faults import (
    FAULT_DETAIL_PREFIX,
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    parse_fault_plan,
)
from .ring import HashRing

DEVICES_ENV = "REPRO_CLUSTER_DEVICES"
REPLICAS_ENV = "REPRO_CLUSTER_REPLICAS"
HEDGE_ENV = "REPRO_CLUSTER_HEDGE_MS"
RETRIES_ENV = "REPRO_CLUSTER_RETRIES"

DEFAULT_DEVICES = 4
DEFAULT_REPLICAS = 2
DEFAULT_HEDGE_MS = 100
DEFAULT_RETRIES = 3

#: Requests for the same fingerprint seen at least this often count as
#: *hot* and may spread over their replica set instead of pinning to
#: the primary (the replication-for-hot-keys rule).
HOT_KEY_THRESHOLD = 3

#: A hot key only moves off its primary when the primary's queue is
#: deeper than a replica's by more than this slack.  Unconditional
#: least-loaded spreading would replicate every hot key's cache
#: footprint across its whole replica set even on an idle fleet,
#: shrinking the aggregate capacity that affinity exists to multiply —
#: replication should cost cache only when it buys queueing time.
_SPREAD_SLACK = 2

#: Poll interval while waiting on outstanding tickets.  Short, because
#: it floors per-request latency on warm cache hits (sub-millisecond
#: executions) — the router multiplexes tickets and the hedge timer, so
#: it cannot just block on one ticket's event.
_WAIT_POLL_S = 0.0005

#: Per-attempt budget: how long an attempt (primary + hedge) may stay
#: outstanding before both devices are charged a failure and the router
#: moves on.  ``max(hedge * factor, floor)`` — the floor keeps genuinely
#: slow-but-healthy cold executions from reading as stalls; the budget
#: only needs to fire when primary *and* hedge are both wedged.
_ATTEMPT_BUDGET_FACTOR = 8
_ATTEMPT_BUDGET_FLOOR_S = 5.0


def _int_env(env: str, default: int, warn_key: str, minimum: int) -> int:
    """Integer knob with the warn-once fallback convention."""
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        telemetry.warn_once(
            warn_key,
            f"{env}={raw!r} is not an integer; "
            f"falling back to the default ({default})",
        )
        return default
    return max(value, minimum)


def cluster_device_count() -> int:
    """Configured device count (``REPRO_CLUSTER_DEVICES``)."""
    return _int_env(DEVICES_ENV, DEFAULT_DEVICES,
                    "invalid_cluster_devices", 1)


def cluster_replica_count() -> int:
    """Configured replica-set size (``REPRO_CLUSTER_REPLICAS``)."""
    return _int_env(REPLICAS_ENV, DEFAULT_REPLICAS,
                    "invalid_cluster_replicas", 1)


def cluster_hedge_ms() -> int:
    """Hedge threshold in milliseconds (``REPRO_CLUSTER_HEDGE_MS``)."""
    return _int_env(HEDGE_ENV, DEFAULT_HEDGE_MS,
                    "invalid_cluster_hedge_ms", 1)


def cluster_max_attempts() -> int:
    """Attempt budget per request (``REPRO_CLUSTER_RETRIES``)."""
    return _int_env(RETRIES_ENV, DEFAULT_RETRIES,
                    "invalid_cluster_retries", 1)


@dataclass(frozen=True)
class ClusterResult:
    """One request's response plus its routing history."""

    response: SpMVResponse
    #: Device that produced the final response ("" when none did).
    device: str = ""
    #: Submission attempts (1 = first device answered).
    attempts: int = 1
    #: A duplicate was launched onto a replica.
    hedged: bool = False
    #: The response came from a different device than first routed.
    failover: bool = False

    @property
    def ok(self) -> bool:
        return self.response.ok

    def to_json(self) -> str:
        """The response JSON line, extended with routing fields."""
        payload = json.loads(self.response.to_json())
        payload.update(
            device=self.device,
            attempts=self.attempts,
            hedged=self.hedged,
            failover=self.failover,
        )
        return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def _retryable(response: SpMVResponse) -> bool:
    """Would another device plausibly answer this request better?

    Injected device faults and shed answers (a draining or overloaded
    device) are device-local; genuine work errors (unknown matrix, bad
    override) and deadline expiry would repeat identically anywhere.
    """
    if response.status == STATUS_REJECTED:
        return True
    return (
        response.status == STATUS_ERROR
        and response.detail.startswith(FAULT_DETAIL_PREFIX)
    )


class Cluster:
    """N serving devices behind a fingerprint-affine router."""

    def __init__(
        self,
        devices: Optional[int] = None,
        replicas: Optional[int] = None,
        device_workers: int = 2,
        queue_capacity: int = 64,
        store_capacity: Optional[int] = None,
        schedule_capacity: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        hedge_ms: Optional[int] = None,
        max_attempts: Optional[int] = None,
        routing: str = "affinity",
        fidelity: Optional[str] = None,
        audit_rate: Optional[float] = None,
        calibration: Optional[Any] = None,
        tenancy: Optional[Any] = None,
    ):
        if routing not in ("affinity", "round_robin"):
            raise ServingError(
                f"unknown routing policy {routing!r} "
                f"(choose 'affinity' or 'round_robin')"
            )
        count = devices if devices is not None else cluster_device_count()
        self.replicas = (
            replicas if replicas is not None else cluster_replica_count()
        )
        self.hedge_s = (
            hedge_ms if hedge_ms is not None else cluster_hedge_ms()
        ) * 1e-3
        self.max_attempts = (
            max_attempts if max_attempts is not None
            else cluster_max_attempts()
        )
        self.routing = routing
        if fault_plan is None:
            fault_plan = parse_fault_plan(os.environ.get(FAULTS_ENV))
        self.fault_plan = fault_plan
        device_kwargs: Dict[str, Any] = {}
        if store_capacity is not None:
            device_kwargs["store_capacity"] = store_capacity
        if schedule_capacity is not None:
            device_kwargs["schedule_capacity"] = schedule_capacity
        # Every device engine inherits the cluster's fidelity policy; the
        # audit/demotion state itself stays per-device, like its caches.
        if fidelity is not None:
            device_kwargs["fidelity"] = fidelity
        if audit_rate is not None:
            device_kwargs["audit_rate"] = audit_rate
        if calibration is not None:
            device_kwargs["calibration"] = calibration
        if tenancy is not None:
            device_kwargs["tenancy"] = tenancy
        # Kept so devices added later (autoscaling) are built exactly
        # like the initial fleet.
        self._device_workers = device_workers
        self._device_queue_capacity = queue_capacity
        self._device_kwargs = device_kwargs
        self._device_seq = max(count, 1)
        self.devices: Dict[str, DeviceHandle] = {}
        self.ring = HashRing()
        for index in range(max(count, 1)):
            self._make_device(f"dev{index}")
        self._lock = threading.Lock()
        self._state = "new"
        self._rr_next = 0
        #: fingerprint → request count (hot-key tracking).
        self._popularity: Dict[str, int] = {}
        #: fingerprint → last device that served it (affinity accounting).
        self._last_device: Dict[str, str] = {}
        self.stats: Dict[str, int] = {
            "routed": 0, "completed": 0, "retries": 0, "hedges": 0,
            "failovers": 0, "affinity_hits": 0, "removed_devices": 0,
            "added_devices": 0, "errors": 0,
        }
        #: End-to-end (route + retries + hedges + service) SLO burn.
        self.slo = BurnRateMonitor()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Cluster":
        if self._state != "new":
            raise ServingError(f"cluster already {self._state}")
        self._state = "running"
        for device in self.devices.values():
            device.start()
        return self

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        if self._state == "stopped":
            return
        self._state = "stopped"
        for device in list(self.devices.values()):
            device.shutdown(drain=drain, timeout=timeout)
        self._emit_device_telemetry()

    def __enter__(self) -> "Cluster":
        return self.start() if self._state == "new" else self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown(drain=True)

    # -- routing ---------------------------------------------------------

    def candidates_for(self, request: SpMVRequest) -> List[str]:
        """The request's replica set in placement order (tests, status)."""
        return self.ring.candidates(
            request.work_fingerprint(), self.replicas
        )

    def _alive(self) -> List[DeviceHandle]:
        return [d for d in self.devices.values() if d.health.alive]

    def _pick(self, fingerprint: str,
              tried: Sequence[str]) -> Optional[DeviceHandle]:
        """The next device for ``fingerprint``, skipping ``tried``.

        Affinity routing walks the replica set first (primary, then
        replicas; a *hot* key picks the shallowest queue among its
        healthy replicas), then falls back to any alive device — device
        loss degrades placement, never availability.  Round-robin
        routing (the ablation arm) ignores the key entirely.
        """
        if self.routing == "round_robin":
            alive = [d for d in self._alive()
                     if d.device_id not in tried]
            if not alive:
                return None
            with self._lock:
                device = alive[self._rr_next % len(alive)]
                self._rr_next += 1
            return device
        candidates = self.ring.candidates(fingerprint, self.replicas)
        with self._lock:
            hot = self._popularity.get(fingerprint, 0) >= HOT_KEY_THRESHOLD
        usable = [
            self.devices[device_id] for device_id in candidates
            if device_id not in tried
            and self.devices[device_id].health.healthy
        ]
        if usable:
            if hot and len(usable) > 1:
                primary = usable[0]
                replica = min(usable[1:], key=lambda d: d.queue_depth)
                if (primary.queue_depth
                        > replica.queue_depth + _SPREAD_SLACK):
                    return replica
            return usable[0]
        # Replica set exhausted (tried or unhealthy): any alive device.
        fallback = [
            d for d in self._alive() if d.device_id not in tried
        ]
        if not fallback:
            return None
        return min(fallback, key=lambda d: d.queue_depth)

    def lease(self, fingerprint: str,
              tried: Sequence[str] = ()) -> Optional[DeviceHandle]:
        """Route long-lived session work onto a device.

        The session subsystem calls this exactly once per session (and
        again on failover): same consistent-hash affinity as one-shot
        requests — a session over a matrix lands on the device that
        already caches that matrix's schedule — with the same healthy
        replica-set walk and least-loaded fallback.  Returns ``None``
        only when no alive device remains.
        """
        if self._state == "new":
            raise ServingError("cluster not started (call start())")
        device = self._pick(fingerprint, list(tried))
        if device is not None:
            t = telemetry.get()
            self._note_routing(fingerprint, device.device_id, t)
            if t.enabled:
                t.counter("cluster.session.lease", 1,
                          device=device.device_id)
        return device

    def report_failure(self, device_id: str,
                       crashed: bool = False) -> None:
        """Charge a device one session-observed fault.

        The session driver saw a ``device-fault:`` error (or a shed
        response from a dying engine) on its leased device; the same
        health ledger and failover policy as the one-shot router apply —
        a crash removes the device immediately, repeated faults past
        ``FAILURE_THRESHOLD`` remove it too, so surviving sessions
        re-lease among healthy devices only.
        """
        device = self.devices.get(device_id)
        if device is None:
            return
        self._record_failure(device, crashed=crashed, fault=True)

    def report_success(self, device_id: str, latency_s: float) -> None:
        """Record a served session iteration on the device's ledger."""
        device = self.devices.get(device_id)
        if device is not None:
            device.health.record_success(latency_s)

    # -- fleet lifecycle -------------------------------------------------

    def _make_device(self, device_id: str) -> DeviceHandle:
        """Build one device exactly like the initial fleet's (fault plan
        included) and place it on the ring.  Not thread-safe on its own —
        the constructor runs single-threaded and :meth:`add_device`
        holds the lock."""
        specs = self.fault_plan.for_device(device_id)
        injector = (
            FaultInjector(device_id, specs, seed=self.fault_plan.seed)
            if specs else None
        )
        device = DeviceHandle(
            device_id,
            workers=self._device_workers,
            queue_capacity=self._device_queue_capacity,
            injector=injector,
            **self._device_kwargs,
        )
        self.devices[device_id] = device
        self.ring.add(device_id)
        return device

    def add_device(self) -> str:
        """Grow the fleet by one device (the autoscaler's scale-up path).

        The new device gets a fresh id (ids are never reused — a drained
        ``dev2`` stays dead, scale-up creates ``dev5``), the same worker
        / queue / cache / fidelity / tenancy configuration as the rest
        of the fleet, and its ring points immediately — only the keys
        that hash onto it move, everyone else keeps their warm cache.
        """
        if self._state == "stopped":
            raise ServingError("cluster is stopped")
        with self._lock:
            device_id = f"dev{self._device_seq}"
            self._device_seq += 1
            device = self._make_device(device_id)
            self.stats["added_devices"] += 1
            running = self._state == "running"
        if running:
            device.start()
        t = telemetry.get()
        if t.enabled:
            t.counter("cluster.device.added", 1, device=device_id)
        return device_id

    def alive_count(self) -> int:
        """Devices currently alive (the autoscaler's fleet size)."""
        return len(self._alive())

    # -- failover --------------------------------------------------------

    def remove_device(self, device_id: str, drain: bool = True,
                      reason: str = "removed") -> None:
        """Take a device out of service and redistribute its keys.

        The ring drops only this device's points (every other key keeps
        its shard and its warm cache).  With ``drain=True`` queued work
        finishes on the way out; with ``drain=False`` (the crash path)
        queued entries are shed immediately, answer ``rejected``, and
        the retry loop re-routes them to the surviving replicas.
        Idempotent — concurrent detection of the same dead device is
        fine.
        """
        with self._lock:
            device = self.devices.get(device_id)
            if device is None or not device.health.alive:
                return
            device.health.mark_dead()
            self.ring.remove(device_id)
            self.stats["removed_devices"] += 1
        t = telemetry.get()
        with t.span("cluster.failover", device=device_id, reason=reason):
            if t.enabled:
                t.counter("cluster.failover", 1, device=device_id)
            device.shutdown(drain=drain, timeout=5.0)

    def _record_failure(self, device: DeviceHandle, crashed: bool,
                        fault: bool = True) -> None:
        """Charge a device one failure; fail it over when warranted.

        A crash removes the device immediately; repeated device faults
        (injected errors, attempt timeouts — ``fault=True``) past
        :data:`FAILURE_THRESHOLD` remove it too.  Mere overload
        rejections (``fault=False``) only mark it temporarily unhealthy
        — ``_pick`` skips it until a success resets the streak, but a
        shedding device is not a dead device."""
        device.health.record_failure()
        if crashed or (fault and not device.health.healthy):
            self.remove_device(
                device.device_id, drain=False,
                reason="crash" if crashed else "unhealthy",
            )

    # -- execution -------------------------------------------------------

    def _ensure_trace(
        self, request: SpMVRequest
    ) -> Tuple[SpMVRequest, Optional[TraceContext], bool]:
        """Attach a trace context at the cluster boundary.

        The cluster is the outermost tracing-aware layer, so for a fresh
        request it creates the trace and owns the root span
        (``cluster.request``); the device engines below see the trace
        already on the request and join it instead of starting their own.
        """
        if request.trace is not None:
            return request, request.trace, False
        trace = tracing.maybe_start_trace(request.request_id)
        if trace is None:
            return request, None, False
        return dataclasses.replace(request, trace=trace), trace, True

    def execute(self, request: SpMVRequest,
                timeout: float = 60.0) -> ClusterResult:
        """Route, execute, and if needed retry/hedge one request.

        Always returns a :class:`ClusterResult`; overload and device
        loss come back as structured responses, never exceptions.
        """
        if self._state == "new":
            raise ServingError("cluster not started (call start())")
        t = telemetry.get()
        started = time.monotonic()
        request, trace, owns_root = self._ensure_trace(request)
        with tracing.scope(trace):
            result = self._route_and_execute(request, timeout, t)
        slo_class = request.effective_slo_class()
        elapsed = max(time.monotonic() - started, 0.0)
        self.slo.record(slo_class, elapsed * 1e3, result.ok)
        if t.enabled:
            t.histogram("cluster.latency_ms", elapsed * 1e3,
                        slo_class=slo_class)
            t.histogram("cluster.tenant.latency_ms", elapsed * 1e3,
                        tenant=request.tenant)
        if trace is not None:
            if not result.response.trace_id:
                result = dataclasses.replace(
                    result,
                    response=dataclasses.replace(
                        result.response, trace_id=trace.trace_id
                    ),
                )
            # The root of the request tree, emitted exactly once — by
            # the layer that created the trace.
            if owns_root and t.enabled:
                t.emit_span(
                    "cluster.request", trace, elapsed,
                    status=result.response.status,
                    device=result.device,
                    attempts=result.attempts,
                    hedged=result.hedged,
                    failover=result.failover,
                    request_id=request.request_id,
                    slo_class=slo_class,
                )
        return result

    def _route_and_execute(self, request: SpMVRequest, timeout: float,
                           t: Any) -> ClusterResult:
        try:
            fingerprint = request.work_fingerprint()
        except ReproError as error:
            self._bump("errors")
            return ClusterResult(
                response=SpMVResponse(
                    request_id=request.request_id,
                    status=STATUS_ERROR,
                    detail=str(error),
                ),
                device="", attempts=0,
            )
        deadline = time.monotonic() + timeout
        tried: List[str] = []
        first_device: Optional[str] = None
        attempts = 0
        hedged = False
        last_response: Optional[SpMVResponse] = None
        last_device = ""
        while attempts < self.max_attempts:
            with t.span("cluster.route"):
                device = self._pick(fingerprint, tried)
            if device is None and tried:
                # Every device tried once: clear the exclusion list so
                # remaining attempts can revisit survivors.
                tried = []
                device = self._pick(fingerprint, tried)
            if device is None:
                break
            if attempts > 0:
                # Retry with exponential backoff before re-submitting.
                with t.span("cluster.retry", attempt=attempts):
                    if t.enabled:
                        t.counter("cluster.retry", 1,
                                  device=device.device_id)
                    self._bump("retries")
                    time.sleep(min(0.005 * (2 ** (attempts - 1)), 0.05))
            attempts += 1
            tried.append(device.device_id)
            if first_device is None:
                first_device = device.device_id
            self._note_routing(fingerprint, device.device_id, t)
            outcome = self._attempt(
                request, fingerprint, device, tried, deadline, t
            )
            response, responder, did_hedge = outcome
            hedged = hedged or did_hedge
            if response is not None:
                last_response, last_device = response, responder
                if not _retryable(response):
                    return self._finish(
                        request, response, responder, attempts,
                        hedged, first_device,
                    )
            if time.monotonic() >= deadline:
                break
        if last_response is not None:
            # Out of attempts: the last structured answer stands.
            return self._finish(
                request, last_response, last_device, attempts,
                hedged, first_device,
            )
        self._bump("errors")
        return ClusterResult(
            response=SpMVResponse(
                request_id=request.request_id,
                status=STATUS_ERROR,
                detail=(
                    f"no device answered within {timeout:g}s "
                    f"after {attempts} attempt(s)"
                ),
            ),
            device="", attempts=attempts, hedged=hedged,
            failover=True,
        )

    def submit_wait(self, request: SpMVRequest,
                    timeout: float = 60.0) -> SpMVResponse:
        """The :class:`~repro.serving.client.ServingClient`-shaped path."""
        return self.execute(request, timeout=timeout).response

    def run(self, requests: Sequence[SpMVRequest], clients: int = 8,
            timeout: float = 60.0) -> List[ClusterResult]:
        """Execute a workload with ``clients`` concurrent closed-loop
        callers; results come back in request order regardless of
        completion order."""
        from concurrent.futures import ThreadPoolExecutor

        if not requests:
            return []
        with ThreadPoolExecutor(
            max_workers=max(min(clients, len(requests)), 1),
            thread_name_prefix="repro-cluster-client",
        ) as pool:
            return list(pool.map(
                lambda request: self.execute(request, timeout=timeout),
                requests,
            ))

    # -- internals -------------------------------------------------------

    def _note_routing(self, fingerprint: str, device_id: str,
                      t: Any) -> None:
        with self._lock:
            self.stats["routed"] += 1
            seen = self._popularity.get(fingerprint, 0)
            self._popularity[fingerprint] = seen + 1
            previous = self._last_device.get(fingerprint)
            self._last_device[fingerprint] = device_id
            affinity_hit = previous == device_id
            if affinity_hit:
                self.stats["affinity_hits"] += 1
            if len(self._popularity) > 65536:
                # Bound the tracking maps; affinity placement itself is
                # stateless (the ring), only the accounting resets.
                self._popularity.clear()
                self._last_device.clear()
        if t.enabled:
            t.counter("cluster.routed", 1, device=device_id)
            if seen and affinity_hit:
                t.counter("cluster.affinity_hits", 1, device=device_id)

    def _attempt(
        self,
        request: SpMVRequest,
        fingerprint: str,
        device: DeviceHandle,
        tried: List[str],
        deadline: float,
        t: Any,
    ) -> Tuple[Optional[SpMVResponse], str, bool]:
        """One routed attempt: submit, hedge if slow, classify.

        Returns ``(response, device_id, hedged)``; ``response`` is
        ``None`` when the attempt timed out with nothing usable (every
        outstanding device is charged a failure).
        """
        outstanding: List[Tuple[DeviceHandle, Ticket, float]] = [
            (device, device.submit(request), time.monotonic())
        ]
        budget = min(
            deadline,
            time.monotonic() + max(
                self.hedge_s * _ATTEMPT_BUDGET_FACTOR,
                _ATTEMPT_BUDGET_FLOOR_S,
            ),
        )
        hedged = False
        hedge_at = time.monotonic() + self.hedge_s
        while True:
            now = time.monotonic()
            for entry in list(outstanding):
                holder, ticket, submitted = entry
                if not ticket.done():
                    continue
                response = ticket.result(timeout=0)
                outstanding.remove(entry)
                if _retryable(response):
                    is_fault = response.detail.startswith(
                        FAULT_DETAIL_PREFIX
                    )
                    self._record_failure(
                        holder,
                        crashed=is_fault and "crash" in response.detail,
                        fault=is_fault,
                    )
                    if not outstanding:
                        return response, holder.device_id, hedged
                    continue
                if response.ok:
                    holder.health.record_success(response.total_s)
                return response, holder.device_id, hedged
            if not outstanding or now >= budget:
                break
            if not hedged and now >= hedge_at:
                replica = self._pick(fingerprint, tried)
                if replica is not None:
                    with t.span("cluster.hedge",
                                device=replica.device_id):
                        if t.enabled:
                            t.counter("cluster.hedge", 1,
                                      device=replica.device_id)
                            # The duplicate shares the request's tree;
                            # the link event marks where it forked.
                            if request.trace is not None:
                                t.event(
                                    "trace.link",
                                    kind="hedge",
                                    peer_trace_id=request.trace.trace_id,
                                    device=replica.device_id,
                                )
                        self._bump("hedges")
                        tried.append(replica.device_id)
                        outstanding.append((
                            replica, replica.submit(request),
                            time.monotonic(),
                        ))
                hedged = True
            time.sleep(_WAIT_POLL_S)
        # Nothing answered inside the budget: every device still
        # holding the request is charged one failure (stall detection).
        for holder, _ticket, _submitted in outstanding:
            self._record_failure(holder, crashed=False)
        return None, "", hedged

    def _finish(
        self,
        request: SpMVRequest,
        response: SpMVResponse,
        device_id: str,
        attempts: int,
        hedged: bool,
        first_device: Optional[str],
    ) -> ClusterResult:
        failover = bool(device_id) and device_id != first_device
        if failover:
            self._bump("failovers")
        if response.ok:
            self._bump("completed")
        elif response.status == STATUS_ERROR:
            self._bump("errors")
        t = telemetry.get()
        if t.enabled and response.ok:
            t.counter("cluster.completed", 1, device=device_id)
        return ClusterResult(
            response=response,
            device=device_id,
            attempts=attempts,
            hedged=hedged,
            failover=failover,
        )

    def _bump(self, key: str) -> None:
        with self._lock:
            self.stats[key] += 1

    # -- introspection ---------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Cluster-wide status: router stats plus one row per device."""
        return {
            "state": self._state,
            "routing": self.routing,
            "replicas": self.replicas,
            "hedge_ms": round(self.hedge_s * 1e3, 3),
            "max_attempts": self.max_attempts,
            "devices": [
                device.snapshot()
                for _id, device in sorted(self.devices.items())
            ],
            "stats": dict(self.stats),
            "audit": self.audit_summary(),
            "slo": self.slo_summary(),
            "tenants": self.tenant_summary(),
        }

    def tenant_summary(self) -> Dict[str, Dict[str, int]]:
        """Fleet-wide per-tenant outcome counters (device engines summed).

        Latency percentiles deliberately stay per-device (percentiles
        do not merge); the counters are what the fleet view needs to
        show who absorbed the shedding.
        """
        fleet: Dict[str, Dict[str, int]] = {}
        for device in list(self.devices.values()):
            for tenant, stats in device.engine.tenant_summary().items():
                rollup = fleet.setdefault(tenant, {
                    "accepted": 0, "coalesced": 0, "shed": 0,
                    "expired": 0, "completed": 0, "errors": 0,
                    "dispatched": 0,
                })
                for key in rollup:
                    rollup[key] += stats.get(key, 0)
        return fleet

    def slo_summary(self) -> Dict[str, Dict[str, float]]:
        """End-to-end error-budget burn per SLO class (cluster view)."""
        return self.slo.burn_rates()

    def audit_summary(self) -> Dict[str, Any]:
        """Fleet-wide estimator-audit rollup across device engines."""
        sampled = 0
        violations = 0
        max_rel_error = 0.0
        demoted: set = set()
        for device in self.devices.values():
            summary = device.engine.audit_summary()
            sampled += summary["sampled"]
            violations += summary["violations"]
            max_rel_error = max(max_rel_error, summary["max_rel_error"])
            demoted.update(summary["demoted"])
        return {
            "sampled": sampled,
            "violations": violations,
            "max_rel_error": max_rel_error,
            "demoted": sorted(demoted),
        }

    def _emit_device_telemetry(self) -> None:
        t = telemetry.get()
        if not t.enabled:
            return
        for device_id, device in sorted(self.devices.items()):
            snapshot = device.snapshot()
            t.gauge("cluster.device.queue_depth",
                    snapshot["queue_depth"], device=device_id)
            t.gauge("cluster.device.completed",
                    snapshot["completed"], device=device_id)
            t.gauge("cluster.device.failures",
                    snapshot["failures"], device=device_id)
            if snapshot["ewma_latency_ms"] is not None:
                t.gauge("cluster.device.ewma_latency_ms",
                        snapshot["ewma_latency_ms"], device=device_id)
        for key, value in self.stats.items():
            if value:
                t.counter(f"cluster.final.{key}", value)
        for slo_class, burn in self.slo_summary().items():
            if not (burn["good"] or burn["bad"]):
                continue
            for key, value in burn.items():
                if key.startswith("burn_"):
                    t.gauge("cluster.slo.burn_rate", value,
                            slo_class=slo_class,
                            window_s=float(key[5:-1]))
                else:
                    t.gauge(f"cluster.slo.{key}", value,
                            slo_class=slo_class)
        audit = self.audit_summary()
        if audit["sampled"]:
            t.counter("cluster.audit.sampled", audit["sampled"])
            t.counter("cluster.audit.violations", audit["violations"])
            t.gauge("cluster.audit.max_rel_error", audit["max_rel_error"])
            t.gauge("cluster.audit.demoted_schemes", len(audit["demoted"]))


#: Re-export so `from repro.cluster.cluster import FAILURE_THRESHOLD`
#: and the device module agree on one constant.
__all__ = [
    "Cluster",
    "ClusterResult",
    "DEFAULT_DEVICES",
    "DEFAULT_HEDGE_MS",
    "DEFAULT_REPLICAS",
    "DEFAULT_RETRIES",
    "DEVICES_ENV",
    "FAILURE_THRESHOLD",
    "HEDGE_ENV",
    "HOT_KEY_THRESHOLD",
    "REPLICAS_ENV",
    "RETRIES_ENV",
    "cluster_device_count",
    "cluster_hedge_ms",
    "cluster_max_attempts",
    "cluster_replica_count",
]
