"""One simulated device: a serving engine plus private caches + health.

A :class:`DeviceHandle` models one accelerator card in the fleet: its
own :class:`~repro.serving.engine.ServingEngine` over a *private*
:class:`~repro.pipeline.store.ArtifactStore` and
:class:`~repro.scheduling.cache.ScheduleCache` — a fixed per-device
cache budget, the way each card owns a fixed slice of HBM.  Sharding
multiplies the fleet's aggregate cache, which is exactly what the
router's fingerprint affinity exploits.

The handle also owns the device's *health ledger*
(:class:`DeviceHealth`): live queue depth, an EWMA of served latency,
consecutive-failure counting, and the alive/dead flag the router skips
on.  Fault injection hooks in here too — the engine's runner is wrapped
so injected slow/stall/crash behaviour happens inside the execution
path, indistinguishable from a genuinely degraded device.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from ..pipeline.store import ArtifactStore
from ..scheduling.cache import ScheduleCache
from ..serving.engine import ServingEngine, Ticket
from ..serving.request import SpMVRequest
from .faults import FaultInjector

#: Consecutive failures after which the router considers a device
#: unhealthy and the cluster fails it over.
FAILURE_THRESHOLD = 3

#: EWMA smoothing factor for served latency (~10-sample memory).
_EWMA_ALPHA = 0.2

#: Per-device cache budget defaults (artifacts, schedules).  Deliberately
#: finite: a device is a card with a fixed memory slice, and the cluster's
#: scaling story is that sharding multiplies the *aggregate* budget.
DEFAULT_STORE_CAPACITY = 64
DEFAULT_SCHEDULE_CAPACITY = 16


class DeviceHealth:
    """Thread-safe health ledger of one device."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.alive = True
        self.completed = 0
        self.failures = 0
        self.consecutive_failures = 0
        self.ewma_latency_ms: Optional[float] = None

    def record_success(self, latency_s: float) -> None:
        with self._lock:
            self.completed += 1
            self.consecutive_failures = 0
            sample = latency_s * 1e3
            if self.ewma_latency_ms is None:
                self.ewma_latency_ms = sample
            else:
                self.ewma_latency_ms += _EWMA_ALPHA * (
                    sample - self.ewma_latency_ms
                )

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self.consecutive_failures += 1

    def mark_dead(self) -> None:
        with self._lock:
            self.alive = False

    @property
    def healthy(self) -> bool:
        return self.alive and self.consecutive_failures < FAILURE_THRESHOLD


class _InjectedRunner:
    """Wraps a device's pipeline runner with its fault injector.

    Both execution paths are covered: one-shot ``analyze`` calls and
    the per-iteration ``execute`` calls a resident session's
    :class:`~repro.pipeline.runner.PreparedSpMV` makes (``prepare``
    re-points the handle's runner at this wrapper), so an injected
    crash hits a session mid-iteration exactly like a one-shot.
    Everything else delegates to the wrapped runner unchanged.
    """

    def __init__(self, runner: Any, injector: FaultInjector):
        self._runner = runner
        self._injector = injector

    def analyze(self, source: Any, spec: Any, config: Any, **kwargs: Any):
        self._injector.before_execute()
        return self._runner.analyze(source, spec, config, **kwargs)

    def execute(self, scheduled: Any, x: Any):
        self._injector.before_execute()
        return self._runner.execute(scheduled, x)

    def prepare(self, source: Any, scheme: Any, config: Any = None,
                **kwargs: Any):
        prepared = self._runner.prepare(source, scheme, config, **kwargs)
        prepared.runner = self
        return prepared

    def __getattr__(self, name: str) -> Any:
        return getattr(self._runner, name)


class DeviceHandle:
    """One device of the cluster: engine, private caches, health."""

    def __init__(
        self,
        device_id: str,
        workers: int = 2,
        queue_capacity: int = 64,
        store_capacity: int = DEFAULT_STORE_CAPACITY,
        schedule_capacity: int = DEFAULT_SCHEDULE_CAPACITY,
        injector: Optional[FaultInjector] = None,
        fidelity: Optional[str] = None,
        audit_rate: Optional[float] = None,
        calibration: Optional[Any] = None,
        tenancy: Optional[Any] = None,
    ):
        self.device_id = device_id
        self.store = ArtifactStore(
            capacity=store_capacity,
            schedule_cache=ScheduleCache(capacity=schedule_capacity),
        )
        self.engine = ServingEngine(
            workers=workers,
            queue_capacity=queue_capacity,
            store=self.store,
            fidelity=fidelity,
            audit_rate=audit_rate,
            calibration=calibration,
            tenancy=tenancy,
        )
        self.injector = injector
        if injector is not None and injector.specs:
            self.engine.runner = _InjectedRunner(
                self.engine.runner, injector
            )
        self.health = DeviceHealth()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "DeviceHandle":
        self.engine.start()
        return self

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        self.engine.shutdown(drain=drain, timeout=timeout)

    # -- serving ---------------------------------------------------------

    def submit(self, request: SpMVRequest) -> Ticket:
        """Submit to this device's engine (never raises once started)."""
        return self.engine.submit(request)

    def crash(self) -> None:
        """Kill the device: injected-crash every execution from now on."""
        if self.injector is None:
            self.injector = FaultInjector(self.device_id, [])
            self.engine.runner = _InjectedRunner(
                self.engine.runner, self.injector
            )
        self.injector.crash_now()
        self.health.mark_dead()

    # -- introspection ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self.engine.queue)

    def snapshot(self) -> Dict[str, Any]:
        """One status row: health, queue, cache and engine counters."""
        health = self.health
        return {
            "device": self.device_id,
            "state": "alive" if health.alive else "dead",
            "healthy": health.healthy,
            "queue_depth": self.queue_depth,
            "completed": health.completed,
            "failures": health.failures,
            "consecutive_failures": health.consecutive_failures,
            "ewma_latency_ms": (
                round(health.ewma_latency_ms, 3)
                if health.ewma_latency_ms is not None else None
            ),
            "engine_stats": dict(self.engine.stats),
            "audit": self.engine.audit_summary(),
            "injected_faults": (
                dict(self.injector.injected) if self.injector else {}
            ),
        }
