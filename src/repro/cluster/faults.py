"""Fault injection for the cluster simulator.

A fault plan assigns per-device faults that the cluster's device
handles apply *inside* their execution path, so every failure mode
exercises the same routing/retry/hedging machinery a real outage
would:

* **slow**  — adds ``ms`` of latency to a fraction ``p`` of executions
  (a degraded device: responses still arrive, just late);
* **stall** — blocks an execution for ``ms`` on a fraction ``p`` of
  requests (a hung device: the caller's hedge timer, not the device,
  decides what happens next);
* **crash** — after ``after`` executions the device dies: every
  execution from then on raises :class:`~repro.errors.DeviceFaultError`
  immediately, which the serving engine answers as a structured
  ``error`` response carrying the :data:`FAULT_DETAIL_PREFIX` marker.

Plans parse from ``REPRO_CLUSTER_FAULTS``, a comma-separated list of
``kind:device[:key=value...]`` entries plus an optional ``seed=N``::

    REPRO_CLUSTER_FAULTS="slow:1:ms=20:p=0.5,stall:2:ms=250:p=0.3,crash:0:after=5,seed=42"

``device`` is a device index (``1`` → ``dev1``) or a device id.  The
probabilistic faults draw from a per-device RNG seeded by
``(plan seed, device id)``, so a seeded plan injects the same faults on
the same requests run after run.  Malformed entries warn once and are
skipped — fault injection follows the serving layer's knob convention
of never raising on bad configuration.
"""

from __future__ import annotations

import random
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import telemetry
from ..errors import DeviceFaultError

FAULTS_ENV = "REPRO_CLUSTER_FAULTS"

#: Marker prefix on structured error responses caused by injected
#: faults; the router treats these as retryable device failures, unlike
#: genuine work errors (unknown matrix, bad override) which would fail
#: identically on every replica.
FAULT_DETAIL_PREFIX = "device-fault:"

KINDS = ("slow", "stall", "crash")

_DEFAULTS = {
    "slow": {"ms": 25.0, "p": 1.0},
    "stall": {"ms": 1000.0, "p": 1.0},
    "crash": {"after": 0.0},
}


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault on one device."""

    kind: str
    device_id: str
    #: Added/blocked milliseconds (slow/stall).
    ms: float = 0.0
    #: Per-execution probability (slow/stall).
    p: float = 1.0
    #: Executions before the device dies (crash).
    after: int = 0


@dataclass
class FaultPlan:
    """The set of faults a cluster runs under, keyed by device id."""

    seed: int = 0
    specs: Dict[str, List[FaultSpec]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def add(self, spec: FaultSpec) -> None:
        self.specs.setdefault(spec.device_id, []).append(spec)

    def for_device(self, device_id: str) -> List[FaultSpec]:
        return self.specs.get(device_id, [])

    def describe(self) -> str:
        """One line per fault, for ``repro cluster status``."""
        if not self.specs:
            return "  (no injected faults)"
        lines = []
        for device_id in sorted(self.specs):
            for spec in self.specs[device_id]:
                if spec.kind == "crash":
                    detail = f"after={spec.after} executions"
                else:
                    detail = f"ms={spec.ms:g} p={spec.p:g}"
                lines.append(f"  {device_id}: {spec.kind} ({detail})")
        return "\n".join(lines)


def _device_label(token: str) -> str:
    token = token.strip()
    return f"dev{int(token)}" if token.isdigit() else token


def parse_fault_plan(raw: Optional[str]) -> FaultPlan:
    """Parse a ``REPRO_CLUSTER_FAULTS`` value into a :class:`FaultPlan`.

    Malformed entries are skipped with a one-time warning (the knob
    convention: bad configuration degrades, it never raises).
    """
    plan = FaultPlan()
    if not raw or not raw.strip():
        return plan
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if entry.startswith("seed="):
            try:
                plan.seed = int(entry[len("seed="):])
            except ValueError:
                telemetry.warn_once(
                    "invalid_cluster_fault_seed",
                    f"{FAULTS_ENV}: {entry!r} is not an integer seed; "
                    f"keeping seed={plan.seed}",
                )
            continue
        parts = entry.split(":")
        kind = parts[0].strip()
        if kind not in KINDS or len(parts) < 2:
            telemetry.warn_once(
                f"invalid_cluster_fault_{kind or 'empty'}",
                f"{FAULTS_ENV}: cannot parse {entry!r} "
                f"(expected kind:device[:key=value...], "
                f"kinds {', '.join(KINDS)}); entry skipped",
            )
            continue
        params = dict(_DEFAULTS[kind])
        bad = False
        for item in parts[2:]:
            key, _eq, value = item.partition("=")
            key = key.strip()
            if key not in params:
                bad = True
                break
            try:
                params[key] = float(value)
            except ValueError:
                bad = True
                break
        if bad:
            telemetry.warn_once(
                f"invalid_cluster_fault_params_{kind}",
                f"{FAULTS_ENV}: bad parameters in {entry!r} "
                f"(known for {kind}: "
                f"{', '.join(sorted(_DEFAULTS[kind]))}); entry skipped",
            )
            continue
        plan.add(FaultSpec(
            kind=kind,
            device_id=_device_label(parts[1]),
            ms=float(params.get("ms", 0.0)),
            p=float(params.get("p", 1.0)),
            after=int(params.get("after", 0)),
        ))
    return plan


class FaultInjector:
    """Per-device runtime state of a fault plan.

    The device handle calls :meth:`before_execute` at the top of every
    execution; crash raises, slow/stall sleep, clean devices fall
    straight through.  Thread-safe: one injector may be shared by all
    of a device's worker threads.
    """

    def __init__(self, device_id: str, specs: List[FaultSpec],
                 seed: int = 0):
        self.device_id = device_id
        self.specs = list(specs)
        self._rng = random.Random(
            (seed << 16) ^ zlib.crc32(device_id.encode())
        )
        self._lock = threading.Lock()
        self._executions = 0
        self._crashed = False
        self.injected: Dict[str, int] = {}

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash_now(self) -> None:
        """Kill the device immediately (the programmatic kill switch)."""
        self._crashed = True

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def before_execute(self) -> None:
        """Apply this device's faults to one execution."""
        delays: List[float] = []
        with self._lock:
            self._executions += 1
            if self._crashed:
                self._count("crash")
                raise DeviceFaultError(
                    f"{FAULT_DETAIL_PREFIX} crash injected on "
                    f"{self.device_id}"
                )
            for spec in self.specs:
                if spec.kind == "crash":
                    if self._executions > spec.after:
                        self._crashed = True
                        self._count("crash")
                        raise DeviceFaultError(
                            f"{FAULT_DETAIL_PREFIX} crash injected on "
                            f"{self.device_id} after {spec.after} "
                            f"executions"
                        )
                elif self._rng.random() < spec.p:
                    self._count(spec.kind)
                    delays.append(spec.ms * 1e-3)
        # Sleep outside the lock so a stalled execution never blocks
        # the injector for the device's other workers.
        for delay in delays:
            time.sleep(delay)
