"""Consistent hashing for fingerprint-affine request placement.

The router's placement rule must satisfy three properties at once:

* **affinity** — the same work fingerprint maps to the same device, so
  repeated matrices land where their schedule is already cached;
* **balance** — distinct fingerprints spread evenly (each device gets
  many virtual points on the ring, smoothing the partition);
* **minimal disruption** — removing a device reassigns only the keys
  it owned; every other key keeps its device (and its warm cache).

Placement is deterministic across processes — points are SHA-256 of
``device_id#vnode`` and of the key string, no Python ``hash()`` — so a
request stream replayed tomorrow hits the same shards it hit today.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Tuple

#: Virtual nodes per device; 64 keeps the max/mean shard imbalance low
#: (~15 % at 4 devices) while the ring stays a few hundred entries.
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode()).digest()[:8], "big"
    )


class HashRing:
    """A consistent hash ring of device ids with virtual nodes."""

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        self.vnodes = max(int(vnodes), 1)
        #: Sorted (point, device_id) pairs.
        self._ring: List[Tuple[int, str]] = []
        self._devices: List[str] = []

    def __len__(self) -> int:
        return len(self._devices)

    @property
    def devices(self) -> List[str]:
        return list(self._devices)

    def add(self, device_id: str) -> None:
        if device_id in self._devices:
            return
        self._devices.append(device_id)
        for vnode in range(self.vnodes):
            point = _point(f"{device_id}#{vnode}")
            bisect.insort(self._ring, (point, device_id))

    def remove(self, device_id: str) -> None:
        if device_id not in self._devices:
            return
        self._devices.remove(device_id)
        self._ring = [
            (point, device) for point, device in self._ring
            if device != device_id
        ]

    def candidates(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` distinct devices clockwise of ``key``.

        Index 0 is the key's *primary* (the affinity target); the rest
        are its replicas in failover/hedging order.  Returns fewer than
        ``count`` devices when the ring is smaller than ``count``, and
        an empty list on an empty ring — the router degrades, it never
        raises.
        """
        if not self._ring:
            return []
        count = min(count, len(self._devices))
        start = bisect.bisect_left(self._ring, (_point(key), ""))
        found: List[str] = []
        for offset in range(len(self._ring)):
            _point_value, device = self._ring[
                (start + offset) % len(self._ring)
            ]
            if device not in found:
                found.append(device)
                if len(found) == count:
                    break
        return found
