"""Accelerator and memory configuration objects.

The configurations in this module pin down every architectural parameter the
paper specifies:

* 16 HBM channels stream the sparse matrix A, one channel each for the dense
  vectors x and y and one for the instruction order (19 channels total,
  §4.1/§5.1);
* each sparse-matrix channel feeds a Processing Element Group (PEG) of 8 PEs
  (512-bit channel word / 64-bit sparse element, §3.2);
* the floating-point accumulator has a 10-cycle latency on the Alveo
  U55c/U280/U250 (§2.2), which is the RAW dependency distance schedulers
  must respect;
* the dense vector is processed in column windows of W = 8192 because the
  packed element carries a 13-bit column index (§3.2/§4.1);
* Chasoň closes timing at 301 MHz, the Serpens baseline at 223 MHz (§4.5).

All objects are frozen dataclasses: a configuration is a value, never mutated
after construction, and validated eagerly in ``__post_init__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from .errors import ConfigError

#: Width of one HBM channel read/write in bits (§3.2, citing Lu et al.).
HBM_CHANNEL_BITS = 512

#: Width of one packed sparse element in bits (§3.2).
SPARSE_ELEMENT_BITS = 64

#: Number of packed elements per 512-bit channel word.
ELEMENTS_PER_WORD = HBM_CHANNEL_BITS // SPARSE_ELEMENT_BITS

#: Floating-point accumulation latency in cycles on Alveo U55c (§2.2).
ACCUMULATOR_LATENCY = 10

#: Column window size — 13-bit column index (§3.2).
COLUMN_WINDOW = 8192

#: Row index field width in bits (§3.2) and the induced row window.
ROW_INDEX_BITS = 15
ROW_WINDOW = 1 << ROW_INDEX_BITS


@dataclass(frozen=True)
class HBMConfig:
    """Parameters of the HBM stack on the target card.

    Defaults describe the 16 GB, 32-channel HBM2 stack of the Alveo U55c
    (§5.1): 14.37 GB/s peak per channel, 460 GB/s aggregate.
    """

    total_channels: int = 32
    channel_bits: int = HBM_CHANNEL_BITS
    bandwidth_per_channel_gbps: float = 14.37
    capacity_gib: float = 16.0

    def __post_init__(self) -> None:
        if self.total_channels <= 0:
            raise ConfigError("HBM must expose at least one channel")
        if self.channel_bits % 8:
            raise ConfigError("channel width must be a whole number of bytes")
        if self.bandwidth_per_channel_gbps <= 0:
            raise ConfigError("per-channel bandwidth must be positive")
        if self.capacity_gib <= 0:
            raise ConfigError("HBM capacity must be positive")

    @property
    def channel_bytes(self) -> int:
        """Bytes moved by one channel transaction."""
        return self.channel_bits // 8

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth across all channels in GB/s."""
        return self.total_channels * self.bandwidth_per_channel_gbps

    def used_bandwidth_gbps(self, used_channels: int) -> float:
        """Peak bandwidth of a design using ``used_channels`` channels."""
        if not 0 < used_channels <= self.total_channels:
            raise ConfigError(
                f"design uses {used_channels} channels but the stack has "
                f"{self.total_channels}"
            )
        return used_channels * self.bandwidth_per_channel_gbps


@dataclass(frozen=True)
class AcceleratorConfig:
    """Common architectural parameters of Serpens-style streaming SpMV.

    The configuration describes the *shape* of the design: how many HBM
    channels stream matrix A, how many PEs sit behind each channel, the
    accumulator latency the scheduler must respect, and the clock frequency
    of the placed-and-routed design.
    """

    name: str = "accelerator"
    sparse_channels: int = 16
    pes_per_channel: int = ELEMENTS_PER_WORD
    accumulator_latency: int = ACCUMULATOR_LATENCY
    multiplier_latency: int = 3
    frequency_mhz: float = 223.0
    column_window: int = COLUMN_WINDOW
    row_window: int = ROW_WINDOW
    hbm: HBMConfig = field(default_factory=HBMConfig)
    #: Extra channels used for x, y-in/y-out and the instruction stream.
    dense_vector_channels: int = 3
    #: Fixed cycles per SpMV invocation: instruction-stream fetch, kernel
    #: start, FIFO flush and y write-back initiation.  Floors the latency
    #: of tiny matrices, matching the measured sub-5-microsecond minimum
    #: latencies of Table 3.
    invocation_overhead_cycles: int = 1200

    def __post_init__(self) -> None:
        if self.sparse_channels <= 0:
            raise ConfigError("need at least one sparse matrix channel")
        if self.pes_per_channel <= 0:
            raise ConfigError("need at least one PE per channel")
        if self.pes_per_channel > ELEMENTS_PER_WORD:
            raise ConfigError(
                f"{self.pes_per_channel} PEs per channel cannot be fed by a "
                f"{HBM_CHANNEL_BITS}-bit word of "
                f"{ELEMENTS_PER_WORD} elements"
            )
        if self.accumulator_latency < 1:
            raise ConfigError("accumulator latency must be >= 1 cycle")
        if self.multiplier_latency < 0:
            raise ConfigError("multiplier latency must be >= 0 cycles")
        if self.frequency_mhz <= 0:
            raise ConfigError("clock frequency must be positive")
        if self.column_window <= 0 or self.row_window <= 0:
            raise ConfigError("window sizes must be positive")
        if self.invocation_overhead_cycles < 0:
            raise ConfigError("invocation overhead must be non-negative")
        total = self.sparse_channels + self.dense_vector_channels
        if total > self.hbm.total_channels:
            raise ConfigError(
                f"design needs {total} HBM channels but the stack exposes "
                f"{self.hbm.total_channels}"
            )

    @property
    def total_pes(self) -> int:
        """Total PEs across all PEGs (Eq. 1 denominator)."""
        return self.sparse_channels * self.pes_per_channel

    @property
    def used_channels(self) -> int:
        """All HBM channels the design occupies (19 for Chasoň, §5.1)."""
        return self.sparse_channels + self.dense_vector_channels

    @property
    def frequency_hz(self) -> float:
        return self.frequency_mhz * 1e6

    @property
    def cycle_time_ns(self) -> float:
        return 1e3 / self.frequency_mhz

    @property
    def streaming_bandwidth_gbps(self) -> float:
        """Peak bandwidth available to the sparse matrix stream."""
        return self.hbm.used_bandwidth_gbps(self.sparse_channels)

    def with_frequency(self, frequency_mhz: float) -> "AcceleratorConfig":
        """Return a copy running at a different clock frequency."""
        return replace(self, frequency_mhz=frequency_mhz)


@dataclass(frozen=True)
class SerpensConfig(AcceleratorConfig):
    """The Serpens baseline (§4.4, §5.2).

    Serpens uses the same channel/PE layout as Chasoň but supports only
    intra-channel (PE-aware) scheduling, has no Reduction or Re-order units
    and closes timing at 223 MHz on the U55c.
    """

    name: str = "serpens"
    frequency_mhz: float = 223.0
    #: Partial sums per PE live in a single URAM (§4.4).
    urams_per_pe: int = 1


@dataclass(frozen=True)
class ChasonConfig(AcceleratorConfig):
    """Chasoň (§4, §4.5): CrHCS support on top of the Serpens datapath.

    ``scug_size`` is the number of shared-channel URAMs per PE (the paper
    deploys 4 on the U55c after shrinking from the ideal 8, §4.5).
    ``migration_span`` is how many next channels a channel may borrow from
    (the paper implements 1, §3.1/§6.1).
    """

    name: str = "chason"
    frequency_mhz: float = 301.0
    scug_size: int = 4
    migration_span: int = 1
    #: Depth of the Reduction Unit adder tree: log2(8 PEs) = 3 levels.
    reduction_tree_levels: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.scug_size < 1:
            raise ConfigError("each PE needs at least one shared URAM (§4.5)")
        if self.scug_size > self.pes_per_channel:
            raise ConfigError(
                "ScUG cannot hold more URAMs than there are source PEs"
            )
        if not 0 <= self.migration_span < self.sparse_channels:
            raise ConfigError(
                "migration span must name a strict subset of other channels"
            )
        if self.reduction_tree_levels < 1:
            raise ConfigError("reduction tree needs at least one level")


#: Published reference configurations.
DEFAULT_SERPENS = SerpensConfig()
DEFAULT_CHASON = ChasonConfig()


def paper_configs() -> Tuple[ChasonConfig, SerpensConfig]:
    """The (Chasoň, Serpens) pair evaluated in the paper on the U55c."""
    return DEFAULT_CHASON, DEFAULT_SERPENS
