"""Chasoň — the paper's primary contribution (§3, §4)."""

from .accelerator import SpMVReport, StreamingAccelerator
from .chason import ChasonAccelerator
from .host import (
    CPU_PROTOCOL,
    DeploymentEstimate,
    FPGA_PROTOCOL,
    GPU_PROTOCOL,
    HostLinkModel,
    MeasurementProtocol,
    estimate_deployment,
)
from .spmm import (
    SpMMReport,
    chason_spmm,
    chason_spmm_report,
    sextans_spmm_report,
    spmm_config,
)
from .sptrsv import SpTRSVReport, chason_sptrsv, level_sets

__all__ = [
    "SpMVReport",
    "StreamingAccelerator",
    "ChasonAccelerator",
    "CPU_PROTOCOL",
    "DeploymentEstimate",
    "FPGA_PROTOCOL",
    "GPU_PROTOCOL",
    "HostLinkModel",
    "MeasurementProtocol",
    "estimate_deployment",
    "SpMMReport",
    "chason_spmm",
    "chason_spmm_report",
    "sextans_spmm_report",
    "spmm_config",
    "SpTRSVReport",
    "chason_sptrsv",
    "level_sets",
]
