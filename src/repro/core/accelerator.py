"""Common façade for the streaming SpMV accelerators.

:class:`StreamingAccelerator` wraps the full flow a user of the hardware
would see: *preprocess* (schedule the non-zeros into HBM channel data
lists), *analyze* (latency/throughput/efficiency from the schedule shape —
Eqs. 4–7), and *run* (cycle-level functional execution returning y).

All three are thin views over one :class:`~repro.pipeline.PipelineRunner`
flow; a subclass names its registry scheme (``scheme``) and the runner
resolves the scheduler through :mod:`repro.scheduling.registry`.  The
façade runner carries **no artifact store**: an accelerator's
``schedule``/``analyze`` must always rebuild so scheme side-channels
(CrHCS migration bookkeeping) are populated — the cached path lives in
the experiment workers, which drive a store-backed runner instead.

:class:`SpMVReport` is defined in :mod:`repro.pipeline.artifacts` (the
report *is* the final pipeline artifact) and re-exported here.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ShapeError
from ..pipeline.artifacts import Matrix, ScheduledMatrix, SpMVReport
from ..pipeline.runner import PipelineRunner
from ..pipeline.stages import MetricsStage
from ..scheduling.base import TiledSchedule
from ..sim.engine import CycleBreakdown, SpMVExecution

__all__ = [
    "Matrix",
    "SpMVReport",
    "StreamingAccelerator",
]


class StreamingAccelerator:
    """Base class: schedule → analyze → run, all through the pipeline."""

    #: Subclasses override with the platform's measured power (§5.3).
    power_watts: float = 1.0
    name: str = "streaming"
    #: Registry scheme driving this accelerator's preprocessing.
    scheme: str = ""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        self._runner = PipelineRunner()

    # -- hooks ----------------------------------------------------------------

    def scheduler_kwargs(self) -> dict:
        """Extra keyword arguments for the registered scheduler."""
        return {}

    def _on_scheduled(self, scheduled: ScheduledMatrix) -> None:
        """Called after each fresh schedule (side-channel capture)."""

    # -- shared flow ------------------------------------------------------------

    def schedule(self, matrix: Matrix) -> TiledSchedule:
        """Offline preprocessing: produce the HBM channel data lists."""
        scheduled = self._runner.schedule(
            matrix, self.scheme, self.config, **self.scheduler_kwargs()
        )
        self._on_scheduled(scheduled)
        return scheduled.schedule

    def analyze(
        self,
        matrix: Matrix,
        schedule: Optional[TiledSchedule] = None,
    ) -> SpMVReport:
        """Latency/throughput/efficiency without functional execution."""
        kwargs = {} if schedule is not None else self.scheduler_kwargs()
        result = self._runner.analyze(
            matrix,
            self.scheme,
            self.config,
            accelerator=self.name,
            power_watts=self.power_watts,
            schedule=schedule,
            **kwargs,
        )
        if schedule is None:
            self._on_scheduled(result.scheduled)
        return result.report

    def run(
        self,
        matrix: Matrix,
        x: np.ndarray,
        schedule: Optional[TiledSchedule] = None,
    ) -> Tuple[SpMVExecution, SpMVReport]:
        """Cycle-level functional execution of one SpMV iteration."""
        x = np.asarray(x, dtype=np.float32)
        if x.shape != (matrix.n_cols,):
            raise ShapeError(
                f"x of length {x.shape} incompatible with {matrix.shape}"
            )
        if schedule is None:
            schedule = self.schedule(matrix)
        execution, report = self._runner.run(
            matrix,
            x,
            self.scheme,
            self.config,
            accelerator=self.name,
            power_watts=self.power_watts,
            schedule=schedule,
        )
        return execution, report

    def report_from_cycles(
        self, schedule: TiledSchedule, cycles: CycleBreakdown
    ) -> SpMVReport:
        """Assemble the §5.3 metrics from a schedule and its cycle count."""
        return MetricsStage.assemble(
            schedule, cycles, self.config, self.name, self.power_watts
        )
