"""Common façade for the streaming SpMV accelerators.

:class:`StreamingAccelerator` wraps the full flow a user of the hardware
would see: *preprocess* (schedule the non-zeros into HBM channel data
lists), *analyze* (latency/throughput/efficiency from the schedule shape —
Eqs. 4–7), and *run* (cycle-level functional execution returning y).

Chasoň and the Serpens baseline are thin subclasses that plug in their
scheduler and configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ShapeError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..metrics import (
    bandwidth_efficiency,
    energy_efficiency,
    pe_underutilization_percent,
    throughput_gflops,
)
from ..scheduling.base import TiledSchedule
from ..sim.engine import (
    CycleBreakdown,
    SpMVExecution,
    estimate_cycles,
    execute_schedule,
)

Matrix = Union[COOMatrix, CSRMatrix]


@dataclass(frozen=True)
class SpMVReport:
    """Everything Table 3 reports for one (matrix, accelerator) pair."""

    accelerator: str
    scheme: str
    n_rows: int
    n_cols: int
    nnz: int
    stream_cycles: int
    total_cycles: int
    latency_ms: float
    throughput_gflops: float
    underutilization_pct: float
    traffic_bytes: int
    bandwidth_gbps: float
    bandwidth_efficiency: float
    power_watts: float
    energy_efficiency: float
    migrated: int

    @property
    def latency_seconds(self) -> float:
        return self.latency_ms * 1e-3

    def as_table_row(self) -> str:
        """One formatted Table 3 row."""
        return (
            f"{self.accelerator:<8s} lat={self.latency_ms:9.3f} ms  "
            f"thr={self.throughput_gflops:7.3f} GFLOPS  "
            f"bw-eff={self.bandwidth_efficiency:7.3f}  "
            f"e-eff={self.energy_efficiency:6.3f} GFLOPS/W  "
            f"underutil={self.underutilization_pct:5.1f}%"
        )


class StreamingAccelerator:
    """Base class: schedule → analyze → run."""

    #: Subclasses override with the platform's measured power (§5.3).
    power_watts: float = 1.0
    name: str = "streaming"

    def __init__(self, config: AcceleratorConfig):
        self.config = config

    # -- hooks ----------------------------------------------------------------

    def schedule(self, matrix: Matrix) -> TiledSchedule:
        """Offline preprocessing: produce the HBM channel data lists."""
        raise NotImplementedError

    # -- shared flow ------------------------------------------------------------

    def analyze(
        self,
        matrix: Matrix,
        schedule: Optional[TiledSchedule] = None,
    ) -> SpMVReport:
        """Latency/throughput/efficiency without functional execution."""
        schedule = schedule or self.schedule(matrix)
        cycles = estimate_cycles(schedule, self.config)
        return self.report_from_cycles(schedule, cycles)

    def run(
        self,
        matrix: Matrix,
        x: np.ndarray,
        schedule: Optional[TiledSchedule] = None,
    ) -> Tuple[SpMVExecution, SpMVReport]:
        """Cycle-level functional execution of one SpMV iteration."""
        x = np.asarray(x, dtype=np.float32)
        if x.shape != (matrix.n_cols,):
            raise ShapeError(
                f"x of length {x.shape} incompatible with {matrix.shape}"
            )
        schedule = schedule or self.schedule(matrix)
        execution = execute_schedule(schedule, x, self.config)
        report = self.report_from_cycles(schedule, execution.cycles)
        return execution, report

    def report_from_cycles(
        self, schedule: TiledSchedule, cycles: CycleBreakdown
    ) -> SpMVReport:
        """Assemble the §5.3 metrics from a schedule and its cycle count."""
        config = self.config
        latency_seconds = cycles.total / config.frequency_hz
        gflops = throughput_gflops(
            schedule.nnz, schedule.n_cols, latency_seconds
        )
        bandwidth = config.streaming_bandwidth_gbps
        return SpMVReport(
            accelerator=self.name,
            scheme=schedule.scheme,
            n_rows=schedule.n_rows,
            n_cols=schedule.n_cols,
            nnz=schedule.nnz,
            stream_cycles=cycles.stream,
            total_cycles=cycles.total,
            latency_ms=latency_seconds * 1e3,
            throughput_gflops=gflops,
            underutilization_pct=pe_underutilization_percent(
                schedule.total_stalls, schedule.nnz
            ),
            traffic_bytes=schedule.traffic_bytes,
            bandwidth_gbps=bandwidth,
            bandwidth_efficiency=bandwidth_efficiency(gflops, bandwidth),
            power_watts=self.power_watts,
            energy_efficiency=energy_efficiency(gflops, self.power_watts),
            migrated=schedule.migrated_count,
        )
