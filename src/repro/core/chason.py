"""The Chasoň accelerator (§4).

Chasoň = the Serpens streaming datapath + CrHCS scheduling + the
architectural support that keeps cross-channel migration functionally
correct: per-PE Routers, Shared-Channel URAM Groups, a Reduction Unit per
PEG and the Re-order/Arbiter/Merger pipeline (§4.2–4.4).  The placed
design closes timing at 301 MHz on the Alveo U55c (§4.5).

Typical use::

    from repro import ChasonAccelerator, generate_named

    matrix = generate_named("wiki-Vote")
    chason = ChasonAccelerator()
    report = chason.analyze(matrix)        # Eqs. 4-7 metrics
    execution, report = chason.run(matrix, x)   # cycle-level SpMV
"""

from __future__ import annotations

from typing import Optional

from ..config import ChasonConfig, DEFAULT_CHASON
from ..errors import ConfigError
from ..pipeline.artifacts import ScheduledMatrix
from ..power.devices import measured_power
from ..scheduling.crhcs import MigrationReport
from .accelerator import StreamingAccelerator


class ChasonAccelerator(StreamingAccelerator):
    """CrHCS-scheduled streaming SpMV on 16 HBM channels."""

    name = "chason"
    scheme = "crhcs"
    power_watts = measured_power("chason")

    def __init__(
        self,
        config: Optional[ChasonConfig] = None,
        mode: str = "migrate",
    ):
        config = config or DEFAULT_CHASON
        if not isinstance(config, ChasonConfig):
            raise ConfigError("ChasonAccelerator requires a ChasonConfig")
        super().__init__(config)
        self.mode = mode
        #: Migration bookkeeping of the most recent schedule() call.
        self.last_migration: Optional[MigrationReport] = None

    def scheduler_kwargs(self) -> dict:
        return {"mode": self.mode}

    def _on_scheduled(self, scheduled: ScheduledMatrix) -> None:
        self.last_migration = scheduled.migration
