"""Host-side model: PCIe transfers, reconfiguration, and the §5.2 protocol.

The paper measures FPGA kernels over 1000 iterations precisely because
one-off costs — bitstream transfer, FPGA reconfiguration, moving the
matrix image over PCIe — dwarf a single SpMV and must be amortised
(§5.2).  This module makes those costs explicit so users can reason about
end-to-end deployment latency, not just kernel latency:

* PCIe Gen3 x16 moves ≈12 GB/s effective (§5.1 says the card is attached
  Gen3 x16);
* reconfiguring the U55c with a bitstream takes on the order of seconds
  and happens once;
* the schedule image (the serialized data lists) and the dense vectors
  transfer once per matrix; y returns every iteration.

``MeasurementProtocol`` reproduces the paper's iteration counts: 1000 for
the FPGAs, 10 for the GPUs, 100 (after 100 warm-ups) for the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class HostLinkModel:
    """PCIe link + configuration overheads of the FPGA deployment."""

    pcie_bandwidth_gbps: float = 12.0
    pcie_latency_s: float = 5e-6
    reconfiguration_s: float = 2.0

    def __post_init__(self) -> None:
        if self.pcie_bandwidth_gbps <= 0:
            raise ConfigError("PCIe bandwidth must be positive")
        if self.pcie_latency_s < 0 or self.reconfiguration_s < 0:
            raise ConfigError("latencies must be non-negative")

    def transfer_seconds(self, n_bytes: int) -> float:
        """One DMA transfer of ``n_bytes`` over the link."""
        if n_bytes < 0:
            raise ConfigError("cannot transfer a negative byte count")
        return self.pcie_latency_s + n_bytes / (
            self.pcie_bandwidth_gbps * 1e9
        )


@dataclass(frozen=True)
class MeasurementProtocol:
    """The §5.2 measurement methodology for one platform."""

    name: str
    iterations: int
    warmup_iterations: int = 0

    def __post_init__(self) -> None:
        if self.iterations <= 0 or self.warmup_iterations < 0:
            raise ConfigError("iteration counts must be sensible")


#: The paper's protocols (§5.2).
FPGA_PROTOCOL = MeasurementProtocol("fpga", iterations=1000)
GPU_PROTOCOL = MeasurementProtocol("gpu", iterations=10)
CPU_PROTOCOL = MeasurementProtocol("cpu", iterations=100,
                                   warmup_iterations=100)


@dataclass(frozen=True)
class DeploymentEstimate:
    """End-to-end cost of running N SpMV iterations on the FPGA."""

    one_time_seconds: float
    per_iteration_seconds: float
    iterations: int

    @property
    def total_seconds(self) -> float:
        return self.one_time_seconds + (
            self.iterations * self.per_iteration_seconds
        )

    @property
    def amortised_iteration_seconds(self) -> float:
        """What a naive total/N measurement would report."""
        return self.total_seconds / self.iterations

    @property
    def amortisation_error(self) -> float:
        """Relative inflation of the naive measurement over the kernel."""
        return (
            self.amortised_iteration_seconds / self.per_iteration_seconds
            - 1.0
        )


def estimate_deployment(
    kernel_seconds: float,
    schedule_bytes: int,
    vector_bytes: int,
    iterations: int = FPGA_PROTOCOL.iterations,
    link: HostLinkModel = HostLinkModel(),
    include_reconfiguration: bool = True,
) -> DeploymentEstimate:
    """End-to-end cost model for the §5.2 FPGA methodology.

    ``kernel_seconds`` is the modelled per-iteration SpMV latency;
    ``schedule_bytes`` the serialized data-list image (moved once);
    ``vector_bytes`` the x upload + y download per iteration.
    """
    if kernel_seconds <= 0:
        raise ConfigError("kernel latency must be positive")
    one_time = link.transfer_seconds(schedule_bytes)
    if include_reconfiguration:
        one_time += link.reconfiguration_s
    per_iteration = kernel_seconds + link.transfer_seconds(vector_bytes)
    return DeploymentEstimate(
        one_time_seconds=one_time,
        per_iteration_seconds=per_iteration,
        iterations=iterations,
    )
