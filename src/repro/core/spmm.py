"""Chasoň for SpMM — the §7.2 extension.

SpMM computes ``C = α·A·B + β·C`` with sparse A and dense B.  Following
the prior OoO HBM-based SpMM accelerator (Sextans) and §7.2, the Chasoň
SpMM variant keeps the 16-channel sparse stream for A and allocates 4
channels to B, 8 to C and one to the instruction order (the stated 29
channels in total); each streamed non-zero of A is
multiplied against a 512-bit beat of B — eight FP32 columns — per cycle,
so a B panel of ``bcols`` columns multiplies the stream cycle count by
``ceil(bcols / 8)``.  The ScUG URAMs deepen to hold one partial sum per
B column and the Reduction/Re-order Units operate per column group.

The same CrHCS schedule (computed on A with the SpMM channel layout)
drives both the functional computation and the latency model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

import numpy as np

from ..config import ChasonConfig, DEFAULT_CHASON
from ..errors import ShapeError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..metrics import energy_efficiency
from ..pipeline.runner import PipelineRunner
from ..power.devices import measured_power
from ..sim.engine import estimate_cycles

Matrix = Union[COOMatrix, CSRMatrix]

#: The SpMM flows schedule A through the shared pipeline (registry
#: scheme names, ``pipeline.*`` spans); no store — B panels vary while
#: the A schedule is cheap relative to the panel walk.
_runner = PipelineRunner()

#: FP32 columns of B consumed per cycle (one 512-bit beat ÷ 32 bits… the
#: Sextans layout packs 8 columns of 64-bit data slots).
B_COLUMNS_PER_BEAT = 8

#: §7.2 channel allocation summing to the stated 29 channels: the sparse
#: stream keeps the SpMV width (16), dense B gets 4, C read/write-back 8,
#: and one channel carries the instruction order.
SPMM_A_CHANNELS = 16
SPMM_B_CHANNELS = 4
SPMM_C_CHANNELS = 8
SPMM_INSTRUCTION_CHANNELS = 1


def spmm_config(base: Optional[ChasonConfig] = None) -> ChasonConfig:
    """The Chasoň configuration re-provisioned for SpMM (§7.2)."""
    base = base or DEFAULT_CHASON
    return replace(
        base,
        name="chason-spmm",
        sparse_channels=SPMM_A_CHANNELS,
        dense_vector_channels=(
            SPMM_B_CHANNELS + SPMM_C_CHANNELS + SPMM_INSTRUCTION_CHANNELS
        ),
    )


@dataclass(frozen=True)
class SpMMReport:
    """Latency/throughput of one SpMM invocation."""

    n_rows: int
    n_cols: int
    b_cols: int
    nnz: int
    stream_cycles: int
    total_cycles: int
    latency_ms: float
    throughput_gflops: float
    underutilization_pct: float
    energy_efficiency: float
    migrated: int


def chason_spmm(
    matrix: Matrix,
    b: np.ndarray,
    c: Optional[np.ndarray] = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    config: Optional[ChasonConfig] = None,
) -> Tuple[np.ndarray, SpMMReport]:
    """Compute ``alpha·A·B + beta·C`` through the CrHCS schedule.

    The accumulation walks the scheduled elements (so the computation is
    exactly what the datapath would perform, migrated elements included);
    the returned report carries the §7.2 latency model.
    """
    b = np.asarray(b, dtype=np.float32)
    if b.ndim != 2 or b.shape[0] != matrix.n_cols:
        raise ShapeError(
            f"B of shape {b.shape} incompatible with A {matrix.shape}"
        )
    if c is None:
        c_out = np.zeros((matrix.n_rows, b.shape[1]), dtype=np.float64)
        beta = 0.0
    else:
        c = np.asarray(c, dtype=np.float64)
        if c.shape != (matrix.n_rows, b.shape[1]):
            raise ShapeError(
                f"C of shape {c.shape} incompatible with output "
                f"({matrix.n_rows}, {b.shape[1]})"
            )
        c_out = beta * c

    cfg = spmm_config(config)
    schedule = _runner.schedule(matrix, "crhcs", cfg).schedule
    b64 = b.astype(np.float64)
    for tile in schedule.tiles:
        row_base, col_base = tile.row_base, tile.col_base
        for grid in tile.grids:
            for (cycle, pe), element in grid.occupied.items():
                c_out[row_base + element.row] += (
                    alpha * element.value * b64[col_base + element.col]
                )

    report = spmm_report_from_schedule(schedule, b.shape[1], cfg)
    return c_out, report


def spmm_report_from_schedule(
    schedule, b_cols: int, config: ChasonConfig, power_key: str = "chason"
) -> SpMMReport:
    """Assemble the SpMM latency model from an A schedule."""
    spmv_cycles = estimate_cycles(schedule, config)
    panel_beats = math.ceil(max(b_cols, 1) / B_COLUMNS_PER_BEAT)
    total = (
        spmv_cycles.stream * panel_beats
        + spmv_cycles.x_load * panel_beats  # B panels stream per beat group
        + spmv_cycles.drain
        + spmv_cycles.reduction * panel_beats
        + spmv_cycles.output * panel_beats
    )
    latency_seconds = total / config.frequency_hz
    flops = 2.0 * schedule.nnz * max(b_cols, 1)
    gflops = flops / (latency_seconds * 1e9)
    return SpMMReport(
        n_rows=schedule.n_rows,
        n_cols=schedule.n_cols,
        b_cols=b_cols,
        nnz=schedule.nnz,
        stream_cycles=spmv_cycles.stream,
        total_cycles=total,
        latency_ms=latency_seconds * 1e3,
        throughput_gflops=gflops,
        underutilization_pct=100.0 * schedule.underutilization,
        energy_efficiency=energy_efficiency(
            gflops, measured_power(power_key)
        ),
        migrated=schedule.migrated_count,
    )


def chason_spmm_report(
    matrix: Matrix,
    b_cols: int,
    config: Optional[ChasonConfig] = None,
) -> SpMMReport:
    """Latency/throughput of SpMM without materialising B (analysis path)."""
    cfg = spmm_config(config)
    schedule = _runner.schedule(matrix, "crhcs", cfg).schedule
    return spmm_report_from_schedule(schedule, b_cols, cfg)


def sextans_spmm_report(
    matrix: Matrix,
    b_cols: int,
) -> SpMMReport:
    """The Sextans-style baseline: PE-aware scheduling, Serpens clock.

    Sextans is the prior OoO HBM SpMM accelerator §7.2 builds on; like
    Serpens it schedules intra-channel only.  Modelling it as the SpMM
    channel layout + PE-aware schedule + the 223 MHz Serpens clock gives
    the baseline the §7.2 extension is compared against.
    """
    from ..config import DEFAULT_SERPENS

    cfg = replace(
        spmm_config(),
        name="sextans-spmm",
        frequency_mhz=DEFAULT_SERPENS.frequency_mhz,
    )
    schedule = _runner.schedule(matrix, "pe_aware", cfg).schedule
    return spmm_report_from_schedule(schedule, b_cols, cfg,
                                     power_key="serpens")
