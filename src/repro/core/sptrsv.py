"""Sparse triangular solve (SpTRSV) on the Chasoň datapath.

The paper places Chasoň in the family of HBM streaming accelerators that
includes LevelST, the SpTRSV accelerator (§2.1), and argues CrHCS extends
to other sparse kernels (§7.2).  SpTRSV solves ``L x = b`` for lower
triangular L; its parallelism comes from *level scheduling*: rows whose
unknowns depend only on already-solved unknowns form a level and can be
processed together as one SpMV-like sweep.

The implementation:

1. computes the level sets of L (a topological layering of the dependency
   DAG);
2. for each level, streams the sub-matrix of rows in that level through
   the accelerator (scheduled with CrHCS) to accumulate
   ``L[level, solved] @ x[solved]``;
3. solves the level's unknowns with the diagonal.

Levels with few rows are latency-bound — the regime where Chasoň's fixed
overheads dominate — so the report separates streaming from overhead
cycles, mirroring the LevelST discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from ..config import ChasonConfig, DEFAULT_CHASON
from ..errors import ShapeError, SimulationError
from ..formats.convert import to_coo
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..pipeline.runner import PipelineRunner

Matrix = Union[COOMatrix, CSRMatrix]

#: Level sub-matrices flow through the shared pipeline (registry scheme
#: resolution, ``pipeline.*`` spans); no store — levels are unique
#: slices of one solve.
_runner = PipelineRunner()


@dataclass(frozen=True)
class SpTRSVReport:
    """Outcome of one triangular solve."""

    n: int
    nnz: int
    levels: int
    max_level_width: int
    total_cycles: int
    latency_ms: float

    @property
    def mean_level_width(self) -> float:
        return self.n / self.levels if self.levels else 0.0


def level_sets(matrix: COOMatrix) -> List[np.ndarray]:
    """Topological levels of a lower-triangular matrix's dependency DAG.

    Row i depends on every column j < i it touches; its level is one more
    than the deepest dependency.  Runs in O(nnz).
    """
    if matrix.n_rows != matrix.n_cols:
        raise ShapeError("triangular solve needs a square matrix")
    level_of = np.zeros(matrix.n_rows, dtype=np.int64)
    order = np.argsort(matrix.rows, kind="stable")
    rows = matrix.rows[order]
    cols = matrix.cols[order]
    for row, col in zip(rows.tolist(), cols.tolist()):
        if col > row:
            raise ShapeError("matrix is not lower triangular")
        if col < row and level_of[col] + 1 > level_of[row]:
            level_of[row] = level_of[col] + 1
    n_levels = int(level_of.max()) + 1 if matrix.n_rows else 0
    return [
        np.flatnonzero(level_of == level) for level in range(n_levels)
    ]


def chason_sptrsv(
    matrix: Matrix,
    b: np.ndarray,
    config: ChasonConfig = DEFAULT_CHASON,
    functional: bool = True,
):
    """Solve ``L x = b`` with level scheduling on the Chasoň model.

    Returns ``(x, SpTRSVReport)``.  ``functional=False`` skips the
    cycle-level execution of each level (using the analytic cycle model
    instead) and computes the arithmetic directly — used by benchmarks
    where only the timing shape matters.
    """
    lower = to_coo(matrix)
    if lower.n_rows != lower.n_cols:
        raise ShapeError("triangular solve needs a square matrix")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (lower.n_rows,):
        raise ShapeError(f"b of shape {b.shape} incompatible with "
                         f"{lower.shape}")

    on_diagonal = lower.rows == lower.cols
    diagonal = np.zeros(lower.n_rows)
    np.add.at(diagonal, lower.rows[on_diagonal],
              lower.values[on_diagonal].astype(np.float64))
    if np.any(diagonal == 0.0):
        raise SimulationError("triangular solve needs a non-zero diagonal")

    strict = ~on_diagonal
    strict_matrix = COOMatrix(
        lower.shape, lower.rows[strict], lower.cols[strict],
        lower.values[strict],
    )
    levels = level_sets(lower)

    x = np.zeros(lower.n_rows)
    total_cycles = 0
    max_width = 0
    for level_rows in levels:
        max_width = max(max_width, level_rows.size)
        in_level = np.isin(strict_matrix.rows, level_rows)
        if np.any(in_level):
            level_matrix = COOMatrix(
                lower.shape,
                strict_matrix.rows[in_level],
                strict_matrix.cols[in_level],
                strict_matrix.values[in_level],
            )
            scheduled = _runner.schedule(level_matrix, "crhcs", config)
            if functional:
                execution = _runner.execute(
                    scheduled, x.astype(np.float32)
                )
                contribution = execution.y
                total_cycles += execution.cycles.total
            else:
                contribution = level_matrix.matvec(x)
                total_cycles += _runner.simulate(scheduled).total
        else:
            contribution = np.zeros(lower.n_rows)
            # A dependency-free level still pays the invocation floor.
            total_cycles += config.invocation_overhead_cycles
        x[level_rows] = (
            (b[level_rows] - contribution[level_rows])
            / diagonal[level_rows]
        )

    report = SpTRSVReport(
        n=lower.n_rows,
        nnz=lower.nnz,
        levels=len(levels),
        max_level_width=max_width,
        total_cycles=total_cycles,
        latency_ms=total_cycles / config.frequency_hz * 1e3,
    )
    return x, report
