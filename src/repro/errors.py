"""Exception hierarchy for the Chasoň reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An accelerator or HBM configuration is internally inconsistent."""


class FormatError(ReproError):
    """A sparse matrix (or packed stream element) is malformed."""


class ShapeError(FormatError):
    """Operand shapes are incompatible (e.g. SpMV with wrong vector length)."""


class SchedulingError(ReproError):
    """A scheduler produced (or was asked to produce) an invalid schedule."""


class RawHazardError(SchedulingError):
    """A schedule violates the read-after-write dependency distance."""


class CapacityError(ReproError):
    """An on-chip memory (URAM/BRAM) or HBM capacity limit was exceeded."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class DatasetError(ReproError):
    """A matrix generator or named dataset request cannot be satisfied."""


class TelemetryError(ReproError):
    """A telemetry trace or event record is malformed."""


class DeviceFaultError(ReproError):
    """A simulated device fault (crash injection) aborted an execution.

    Raised *inside* a device's execution path by the cluster layer's
    fault injector; the serving engine converts it into a structured
    ``error`` response whose detail carries the ``device-fault:`` marker
    the cluster router keys retry/failover decisions on.  It never
    escapes the cluster: callers see a structured response, not this
    exception."""


class EstimationError(ReproError):
    """The analytical estimator cannot cover a request.

    Raised when a scheme has no registered stream predictor or no
    calibration entry; the ``auto`` fidelity tier catches it and falls
    back to the exact simulator, explicit ``estimate`` callers see it."""


class SessionError(ReproError):
    """A solver session was misused or could not be admitted.

    Raised for lifecycle misuse (stepping a closed session), for
    admission past the ``REPRO_SESSION_MAX`` concurrent-session limit,
    and when every failover attempt for an iteration exhausted without a
    usable device.  Like :class:`ServingError`, this marks API misuse or
    genuine exhaustion — transient overload inside a session step is
    retried internally, not raised."""


class ServingError(ReproError):
    """The serving engine was used outside its lifecycle contract
    (e.g. submitting before ``start`` or waiting past a ticket timeout).

    Note the asymmetry with the rest of the hierarchy: *overload* is not
    an error — shed and expired requests come back as structured
    responses — only misuse of the engine API raises."""
