"""The analytical estimator — the ``estimate`` fidelity tier.

Predicts the full cycle breakdown and schedule-shape metrics of an SpMV
analysis from per-row non-zero counts alone, without building a schedule
or stepping the simulator: closed-form per-scheme stream models
(:mod:`~repro.estimator.model`) over mirrored tile geometry
(:mod:`~repro.estimator.features`), corrected and bounded by an
offline-fitted per-scheme calibration table
(:mod:`~repro.estimator.calibration`).  Tier selection and audit
sampling knobs live in :mod:`~repro.estimator.fidelity`.
"""

from .calibration import (
    CALIBRATION_VERSION,
    DEFAULT_CALIBRATION,
    CalibrationSample,
    CalibrationTable,
    SchemeCalibration,
    fit_scheme,
    fit_table,
)
from .features import TileFeatures, tile_features
from .fidelity import (
    AUDIT_RATE_ENV,
    DEFAULT_AUDIT_RATE,
    FIDELITY_ENV,
    FIDELITY_TIERS,
    audit_draw,
    resolve_audit_rate,
    resolve_fidelity,
    should_audit,
)
from .model import (
    ESTIMATOR_VERSION,
    PREDICTABLE_SCHEMES,
    PredictedSchedule,
    predict_schedule,
    predict_tile,
)

__all__ = [
    "AUDIT_RATE_ENV",
    "CALIBRATION_VERSION",
    "CalibrationSample",
    "CalibrationTable",
    "DEFAULT_AUDIT_RATE",
    "DEFAULT_CALIBRATION",
    "ESTIMATOR_VERSION",
    "FIDELITY_ENV",
    "FIDELITY_TIERS",
    "PREDICTABLE_SCHEMES",
    "PredictedSchedule",
    "SchemeCalibration",
    "TileFeatures",
    "audit_draw",
    "fit_scheme",
    "fit_table",
    "predict_schedule",
    "predict_tile",
    "resolve_audit_rate",
    "resolve_fidelity",
    "should_audit",
    "tile_features",
]
