"""Per-scheme calibration of the analytical predictors.

The closed-form models in :mod:`~repro.estimator.model` carry small
systematic biases (the rebuild model over-counts union acceptance by
~10%, the row-split bound under-counts packing conflicts by a few
percent).  Rather than tune each model by hand, a
:class:`SchemeCalibration` entry is fitted offline against the exact
simulator on the golden corpus (``scripts/fit_estimator_calibration.py``)
and records

* ``scale`` — the multiplier on the raw predicted stream cycles
  (median of exact/predicted over the corpus, robust to outliers);
* ``tolerance`` — the *honesty bound*: the worst observed relative
  total-cycle error after scaling, times a safety margin.  The property
  tests assert estimates stay inside it, and the serving audit gate
  demotes a scheme to the ``exact`` tier when a sampled response
  exceeds it.

The baked :data:`DEFAULT_CALIBRATION` is the committed result of the
offline fit; refitting after a model or scheduler change regenerates it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..errors import EstimationError

#: Calibration-table revision — part of every estimate fingerprint
#: together with the fitted values themselves.
CALIBRATION_VERSION = "1"

#: Safety margin on the observed worst-case error when deriving the
#: tolerance bound, and the smallest tolerance ever claimed.
TOLERANCE_MARGIN = 1.5
TOLERANCE_FLOOR = 0.02


@dataclass(frozen=True)
class SchemeCalibration:
    """Fitted correction and honesty bound for one scheme."""

    scheme: str
    #: Multiplier applied to the raw predicted stream cycles.
    scale: float
    #: Guaranteed relative total-cycle error bound (fit corpus, with
    #: margin); the audit gate and the property tests both use it.
    tolerance: float
    #: Worst relative total-cycle error observed during the fit.
    max_observed_error: float
    #: Number of corpus samples the fit saw.
    fitted_on: int


@dataclass(frozen=True)
class CalibrationSample:
    """One (matrix, scheme) measurement pair from the offline fit."""

    #: Uncalibrated predicted stream cycles.
    raw_stream: int
    #: Exact simulator stream cycles.
    exact_stream: int
    #: Predicted total cycles minus the stream term (the fixed terms —
    #: independent of the scale being fitted).
    predicted_fixed: int
    #: Exact simulator total cycles.
    exact_total: int


class CalibrationTable:
    """Immutable scheme → :class:`SchemeCalibration` mapping."""

    def __init__(
        self,
        entries: Mapping[str, SchemeCalibration],
        version: str = CALIBRATION_VERSION,
    ):
        self._entries: Dict[str, SchemeCalibration] = dict(entries)
        self.version = version

    @property
    def schemes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def get(self, scheme: str) -> Optional[SchemeCalibration]:
        return self._entries.get(scheme)

    def for_scheme(self, scheme: str) -> SchemeCalibration:
        entry = self._entries.get(scheme)
        if entry is None:
            raise EstimationError(
                f"no calibration entry for scheme {scheme!r}; "
                f"calibrated: {', '.join(self.schemes) or '(none)'}"
            )
        return entry

    def with_entry(self, entry: SchemeCalibration) -> "CalibrationTable":
        """A copy with one entry replaced (test/injection helper)."""
        entries = dict(self._entries)
        entries[entry.scheme] = entry
        return CalibrationTable(entries, version=self.version)

    def digest(self) -> str:
        """Stable content hash — a fingerprint component, so a refit
        invalidates every cached estimate."""
        h = hashlib.sha256()
        h.update(self.version.encode())
        for scheme in self.schemes:
            e = self._entries[scheme]
            h.update(
                f"|{e.scheme}:{e.scale!r}:{e.tolerance!r}"
                f":{e.max_observed_error!r}:{e.fitted_on}".encode()
            )
        return h.hexdigest()


def fit_scheme(
    scheme: str,
    samples: Iterable[CalibrationSample],
    margin: float = TOLERANCE_MARGIN,
    floor: float = TOLERANCE_FLOOR,
) -> SchemeCalibration:
    """Fit one scheme's calibration from offline measurement pairs.

    ``scale`` is the median of exact/predicted stream ratios (robust to
    the few hard matrices); ``tolerance`` is the worst relative
    total-cycle error *after* scaling, times ``margin``.
    """
    samples = list(samples)
    if not samples:
        raise EstimationError(f"cannot fit {scheme!r} from zero samples")
    ratios = [
        s.exact_stream / s.raw_stream for s in samples if s.raw_stream > 0
    ]
    scale = float(np.median(ratios)) if ratios else 1.0
    worst = 0.0
    for s in samples:
        predicted_total = s.predicted_fixed + int(round(s.raw_stream * scale))
        error = abs(predicted_total - s.exact_total) / max(s.exact_total, 1)
        worst = max(worst, error)
    return SchemeCalibration(
        scheme=scheme,
        scale=scale,
        tolerance=max(floor, worst * margin),
        max_observed_error=worst,
        fitted_on=len(samples),
    )


def fit_table(
    samples_by_scheme: Mapping[str, Iterable[CalibrationSample]],
    margin: float = TOLERANCE_MARGIN,
    floor: float = TOLERANCE_FLOOR,
) -> CalibrationTable:
    """Fit a full table from per-scheme sample sets."""
    return CalibrationTable(
        {
            scheme: fit_scheme(scheme, samples, margin=margin, floor=floor)
            for scheme, samples in samples_by_scheme.items()
        }
    )


#: Offline fit against the exact simulator on the golden corpus
#: (20 named matrices + 2 uniform controls, default per-scheme configs);
#: regenerate with ``scripts/fit_estimator_calibration.py``.
DEFAULT_CALIBRATION = CalibrationTable(
    {
        "crhcs": SchemeCalibration(
            scheme="crhcs",
            scale=0.9859136029254465,
            tolerance=0.2028,
            max_observed_error=0.1352,
            fitted_on=22,
        ),
        "crhcs_rebuild": SchemeCalibration(
            scheme="crhcs_rebuild",
            scale=0.9040254004827737,
            tolerance=0.087,
            max_observed_error=0.058,
            fitted_on=22,
        ),
        "greedy_ooo": SchemeCalibration(
            scheme="greedy_ooo",
            scale=1.0,
            tolerance=0.02,
            max_observed_error=0.0001,
            fitted_on=22,
        ),
        "pe_aware": SchemeCalibration(
            scheme="pe_aware",
            scale=1.0,
            tolerance=0.02,
            max_observed_error=0.0,
            fitted_on=22,
        ),
        "row_based": SchemeCalibration(
            scheme="row_based",
            scale=1.0,
            tolerance=0.02,
            max_observed_error=0.0,
            fitted_on=22,
        ),
        "row_split": SchemeCalibration(
            scheme="row_split",
            scale=1.0,
            tolerance=0.0668,
            max_observed_error=0.0446,
            fitted_on=22,
        ),
    }
)
