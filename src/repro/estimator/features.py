"""Schedule-free feature extraction for the analytical estimator.

The estimator predicts cycle counts without building a schedule, so it
cannot read tile shapes off a :class:`~repro.scheduling.base.TiledSchedule`.
This module re-derives exactly the tile geometry
:func:`repro.scheduling.window.tile_matrix` would produce — same window
sizes, same column-window-major order, same skip-empty-tiles rule — but
materialises only the *per-row non-zero counts* of each tile, which is the
entire input the per-scheme stream predictors need.  Keeping the geometry
bit-identical matters: the fixed cycle terms (x loads, drains, output
merges, reduction sweeps) are per-tile and per-row-window, so a geometry
mismatch would show up as a systematic cycle error no calibration scale
could absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ShapeError
from ..formats.convert import to_coo
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix

Matrix = Union[COOMatrix, CSRMatrix]


@dataclass(frozen=True)
class TileFeatures:
    """Row-count profile of one (row window × column window) tile."""

    row_base: int
    col_base: int
    n_rows: int
    n_cols: int
    #: Non-zeros per tile-local row, length ``n_rows``.
    row_counts: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.row_counts.sum())


def tile_features(
    matrix: Matrix,
    config: AcceleratorConfig,
    max_rows_per_pass: int = 0,
) -> List[TileFeatures]:
    """Per-tile row-count profiles, mirroring ``tile_matrix`` geometry.

    Empty tiles are skipped exactly as the windowing layer skips them;
    a fully empty matrix keeps one empty tile so downstream accounting
    has a well-defined shape.
    """
    coo = to_coo(matrix)
    row_window = max_rows_per_pass or config.row_window
    col_window = config.column_window
    if row_window <= 0 or col_window <= 0:
        raise ShapeError("window sizes must be positive")

    n_row_tiles = -(-coo.n_rows // row_window)
    n_col_tiles = -(-coo.n_cols // col_window)

    row_tile = coo.rows // row_window
    col_tile = coo.cols // col_window
    tile_key = row_tile * n_col_tiles + col_tile
    order = np.argsort(tile_key, kind="stable")
    sorted_key = tile_key[order]
    boundaries = np.searchsorted(
        sorted_key, np.arange(n_row_tiles * n_col_tiles + 1)
    )

    features: List[TileFeatures] = []
    for rt in range(n_row_tiles):
        row_base = rt * row_window
        tile_rows = min(row_window, coo.n_rows - row_base)
        for ct in range(n_col_tiles):
            col_base = ct * col_window
            tile_cols = min(col_window, coo.n_cols - col_base)
            key = rt * n_col_tiles + ct
            lo, hi = boundaries[key], boundaries[key + 1]
            if lo == hi and (n_row_tiles * n_col_tiles) > 1:
                continue
            idx = order[lo:hi]
            counts = np.bincount(
                coo.rows[idx] - row_base, minlength=tile_rows
            ).astype(np.int64)
            features.append(
                TileFeatures(
                    row_base=row_base,
                    col_base=col_base,
                    n_rows=tile_rows,
                    n_cols=tile_cols,
                    row_counts=counts,
                )
            )
    if not features:
        features.append(
            TileFeatures(
                row_base=0,
                col_base=0,
                n_rows=min(row_window, coo.n_rows),
                n_cols=min(col_window, coo.n_cols),
                row_counts=np.zeros(
                    min(row_window, coo.n_rows), dtype=np.int64
                ),
            )
        )
    return features
