"""Fidelity-tier and audit-rate resolution (env knobs, warn-once).

Two runtime knobs govern the tiered-fidelity split:

``REPRO_FIDELITY`` — ``exact`` | ``estimate`` | ``auto``
    Which tier an analysis runs through.  ``exact`` is the cycle-level
    simulator (byte-identical to the pre-tier pipeline), ``estimate``
    the calibrated analytical model, ``auto`` picks ``estimate`` when
    the scheme has both a predictor and a calibration entry and falls
    back to ``exact`` otherwise.  The environment variable overrides
    each call site's *default* (the pipeline defaults to ``exact``, the
    serving engine to ``estimate``) but never an explicit argument.

``REPRO_AUDIT_RATE`` — float in [0, 1]
    Fraction of estimate-tier serving responses re-run through the
    exact simulator by the background audit.  Sampling is deterministic
    in the request's work fingerprint so replays audit the same subset.

Invalid values warn once per process and fall back to the default,
matching the cache/serving knob treatment.
"""

from __future__ import annotations

import math
import os
from typing import Optional

from .. import telemetry
from ..errors import ConfigError

FIDELITY_ENV = "REPRO_FIDELITY"
AUDIT_RATE_ENV = "REPRO_AUDIT_RATE"

#: Valid ``REPRO_FIDELITY`` values.
FIDELITY_TIERS = ("exact", "estimate", "auto")

#: Default fraction of estimate-tier responses audited through exact.
DEFAULT_AUDIT_RATE = 0.05


def resolve_fidelity(
    value: Optional[str] = None, default: str = "exact"
) -> str:
    """Resolve the fidelity tier: explicit value > environment > default.

    An invalid explicit ``value`` raises :class:`ConfigError` (caller
    bug); an invalid environment value warns once and falls back.
    """
    if value is not None:
        tier = str(value).strip().lower()
        if tier not in FIDELITY_TIERS:
            raise ConfigError(
                f"invalid fidelity {value!r}; "
                f"expected one of {', '.join(FIDELITY_TIERS)}"
            )
        return tier
    raw = os.environ.get(FIDELITY_ENV)
    if raw is not None:
        tier = raw.strip().lower()
        if tier in FIDELITY_TIERS:
            return tier
        telemetry.warn_once(
            "invalid_fidelity",
            f"{FIDELITY_ENV}={raw!r} is not one of "
            f"{', '.join(FIDELITY_TIERS)}; using {default!r}",
        )
    return default


def resolve_audit_rate(
    value: Optional[float] = None, default: float = DEFAULT_AUDIT_RATE
) -> float:
    """Resolve the audit sampling rate: explicit > environment > default.

    Finite values are clamped to [0, 1].  An environment value that is
    unparseable or non-finite (``nan``/``inf`` — which would slip
    through a min/max clamp or silently pin the rate) warns once and
    falls back to the default; a finite out-of-range value warns once
    and clamps — the serving-knob convention.
    """
    if value is not None:
        return min(max(float(value), 0.0), 1.0)
    raw = os.environ.get(AUDIT_RATE_ENV)
    if raw is not None:
        try:
            parsed = float(raw)
        except ValueError:
            telemetry.warn_once(
                "invalid_audit_rate",
                f"{AUDIT_RATE_ENV}={raw!r} is not a float; "
                f"using {default}",
            )
            return default
        if not math.isfinite(parsed):
            telemetry.warn_once(
                "invalid_audit_rate",
                f"{AUDIT_RATE_ENV}={raw!r} is not a finite float; "
                f"using {default}",
            )
            return default
        if parsed < 0.0 or parsed > 1.0:
            clamped = min(max(parsed, 0.0), 1.0)
            telemetry.warn_once(
                "invalid_audit_rate",
                f"{AUDIT_RATE_ENV}={raw!r} is outside [0, 1]; "
                f"clamping to {clamped:g}",
            )
            return clamped
        return parsed
    return default


def audit_draw(work_fingerprint: str) -> float:
    """Deterministic uniform draw in [0, 1) from a work fingerprint."""
    return int(work_fingerprint[:8], 16) / float(16 ** 8)


def should_audit(work_fingerprint: str, rate: float) -> bool:
    """Whether a response with this fingerprint falls in the audit sample."""
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    return audit_draw(work_fingerprint) < rate
