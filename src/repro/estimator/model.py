"""Closed-form per-scheme cycle predictors (the ``estimate`` fidelity tier).

Each registered scheduling scheme gets an analytical model of its stream
length — the number of cycles the equalised channel data lists take to
stream — computed from per-row non-zero counts alone, never from an
actual schedule grid:

``row_based``
    Exact: a PE lane streams ``(len - 1) * d + 1`` cycles per row, rows
    back to back.
``pe_aware``
    Exact: the closed form of the vectorized ``pe_aware_grids`` layout —
    per (PE, window) rotation spans of ``max_len * d`` cycles, windows
    concatenated per lane.
``greedy_ooo``
    The scheduler packs each lane to its lower bound
    ``max(lane_nnz, (lane_max_row - 1) * d + 1)`` almost everywhere.
``row_split``
    Same bound per channel after long rows (``len > 2d``) are split
    across the channel's PEs.
``crhcs`` / ``crhcs_rebuild``
    A model of the §3.1 ring migration: every destination channel
    absorbs its donor's rows at a RAW-limited acceptance rate (at most
    ``P`` elements per ``d`` cycles land in one row), giving the
    ``accept_cost`` closed form below; destination 0 additionally fills
    holes *around* its still-resident pe-aware layout, solved by binary
    search over the closed-form occupancy profile.

The predictors are deliberately un-tuned here; the per-scheme
:mod:`~repro.estimator.calibration` table carries the residual scale and
the honesty bound (observed worst-case error) fitted offline against the
exact simulator on the golden corpus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..config import AcceleratorConfig
from ..errors import EstimationError
from ..sim.engine import DENSE_LANES, CycleBreakdown
from .features import Matrix, TileFeatures, tile_features

#: Analytical-model revision — the estimate tier's ``ENGINE_VERSION``
#: analogue: part of every estimate fingerprint so cached estimates
#: cannot be served across model revisions.
ESTIMATOR_VERSION = "1"


# -- closed-form schedule geometry ---------------------------------------


def _row_layout(
    counts: np.ndarray, config: AcceleratorConfig
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per non-empty row: (channel, start cycle, length) under pe_aware.

    This is the closed form of ``pe_aware_grids``: rows map to global PE
    ``row % total_pes``; each lane processes its rows in windows of ``d``
    (the per-window rotation), every window spanning ``max_len * d``
    cycles, windows concatenated per lane.
    """
    d = config.accumulator_latency
    tp = config.total_pes
    ppc = config.pes_per_channel
    row_ids = np.arange(counts.size)
    gpe = row_ids % tp
    pos = row_ids // tp
    window = pos // d
    lane_in_w = pos % d
    lens = np.asarray(counts, dtype=np.int64)
    nz = lens > 0
    gpe, window, lane_in_w, lens = (
        gpe[nz], window[nz], lane_in_w[nz], lens[nz]
    )
    if lens.size == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z, z
    order = np.lexsort((window, gpe))
    gpe, window, lane_in_w, lens = (
        gpe[order], window[order], lane_in_w[order], lens[order]
    )
    first_w = np.empty(lens.size, dtype=bool)
    first_w[0] = True
    first_w[1:] = (gpe[1:] != gpe[:-1]) | (window[1:] != window[:-1])
    w_starts = np.flatnonzero(first_w)
    rotation = np.maximum.reduceat(lens, w_starts)
    spans = rotation * d
    cum = np.concatenate([[0], np.cumsum(spans)])
    w_gpe = gpe[w_starts]
    first_lane = np.empty(w_starts.size, dtype=bool)
    first_lane[0] = True
    first_lane[1:] = w_gpe[1:] != w_gpe[:-1]
    lane_idx = np.cumsum(first_lane) - 1
    lane_offset = cum[:-1][first_lane]
    w_base = cum[:-1] - lane_offset[lane_idx]
    w_of_row = np.cumsum(first_w) - 1
    start = w_base[w_of_row] + lane_in_w
    return gpe // ppc, start, lens


def _occupancy_below(
    t: int, start: np.ndarray, lens: np.ndarray, d: int
) -> int:
    """Elements scheduled before cycle ``t`` among stride-``d`` rows."""
    k = np.ceil((t - start) / d).astype(np.int64)
    return int(np.clip(k, 0, lens).sum())


def _fill_length(
    n_fill: int,
    start: np.ndarray,
    lens: np.ndarray,
    d: int,
    pes: int,
    hint: int,
) -> int:
    """Smallest ``t`` with ``pes * t - occupancy(t) >= n_fill``.

    Models hole-filling earliest-first around a resident layout: the
    holes before cycle ``t`` are the slots minus the occupancy.
    """
    if n_fill <= 0:
        return 0
    lo, hi = 0, max(int(hint), 1)
    while pes * hi - _occupancy_below(hi, start, lens, d) < n_fill:
        hi *= 2
    while lo < hi:
        mid = (lo + hi) // 2
        if pes * mid - _occupancy_below(mid, start, lens, d) >= n_fill:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _accept_cost(row_lens: np.ndarray, d: int) -> int:
    """Destination slots spent absorbing a donor with these row lengths.

    Tail-first candidates arrive one element per active row per ``d``
    donor cycles, so the acceptance rate is ``min(P, active * P / d)``;
    the slot cost is ``n + sum_t max(0, d - active(t))``, and the second
    term closed-forms over the top-``d`` row lengths sorted descending.
    """
    n = int(row_lens.sum())
    if n == 0:
        return 0
    top = np.sort(np.asarray(row_lens, dtype=np.int64))[::-1][:d]
    if top.size < d:
        top = np.concatenate([top, np.zeros(d - top.size, dtype=np.int64)])
    gaps = top[:-1] - top[1:]
    weights = d - np.arange(1, d)
    return n + int((weights * gaps).sum())


# -- per-scheme stream predictors ----------------------------------------


def _predict_pe_aware(
    counts: np.ndarray, config: AcceleratorConfig
) -> Tuple[int, int]:
    d = config.accumulator_latency
    _, start, lens = _row_layout(counts, config)
    if lens.size == 0:
        return 0, 0
    return int((start + d * (lens - 1) + 1).max()), 0


def _predict_row_based(
    counts: np.ndarray, config: AcceleratorConfig
) -> Tuple[int, int]:
    d = config.accumulator_latency
    tp = config.total_pes
    lens = np.asarray(counts, dtype=np.int64)
    if lens.size == 0 or not lens.any():
        return 0, 0
    per_row = np.where(lens > 0, (lens - 1) * d + 1, 0)
    gpe = np.arange(lens.size) % tp
    lane = np.bincount(gpe, weights=per_row, minlength=tp)
    return int(lane.max()), 0


def _predict_greedy_ooo(
    counts: np.ndarray, config: AcceleratorConfig
) -> Tuple[int, int]:
    d = config.accumulator_latency
    tp = config.total_pes
    lens = np.asarray(counts, dtype=np.int64)
    if lens.size == 0 or not lens.any():
        return 0, 0
    gpe = np.arange(lens.size) % tp
    lane_nnz = np.bincount(gpe, weights=lens, minlength=tp)
    lane_max = np.zeros(tp, dtype=np.int64)
    np.maximum.at(lane_max, gpe, lens)
    bound = np.maximum(lane_nnz, (lane_max - 1) * d + 1)
    return int(bound.max()), 0


def _predict_row_split(
    counts: np.ndarray, config: AcceleratorConfig
) -> Tuple[int, int]:
    d = config.accumulator_latency
    ppc = config.pes_per_channel
    tp = config.total_pes
    channels = config.sparse_channels
    lens = np.asarray(counts, dtype=np.int64)
    if lens.size == 0 or not lens.any():
        return 0, 0
    gpe = np.arange(lens.size) % tp
    channel = gpe // ppc
    split = np.minimum(lens, np.ceil(lens / ppc))
    effective = np.where(lens > 2 * d, split, lens)
    ch_nnz = np.bincount(channel, weights=lens, minlength=channels)
    ch_max = np.zeros(channels)
    np.maximum.at(ch_max, channel, effective)
    bound = np.maximum(np.ceil(ch_nnz / ppc), (ch_max - 1) * d + 1)
    return int(bound.max()), 0


def _predict_crhcs(
    counts: np.ndarray,
    config: AcceleratorConfig,
    mode: str,
) -> Tuple[int, int]:
    """Stream length and migrated-element count of the CrHCS ring repack."""
    d = config.accumulator_latency
    pes = config.pes_per_channel
    channels = config.sparse_channels
    channel, start, lens = _row_layout(counts, config)
    if lens.size == 0:
        return 0, 0
    ch_len = np.zeros(channels, dtype=np.int64)
    np.maximum.at(ch_len, channel, start + d * (lens - 1) + 1)
    longest = int(ch_len.max())
    per_channel = np.bincount(
        channel, weights=lens, minlength=channels
    ).astype(np.int64)
    nnz = int(per_channel.sum())
    if channels < 2 or getattr(config, "migration_span", 0) == 0:
        return longest, 0
    if mode == "rebuild":
        balanced = -(-nnz // (channels * pes))
        best = balanced
        for c in range(channels):
            donor = (c + 1) % channels
            union = np.concatenate(
                [lens[channel == c], lens[channel == donor]]
            )
            best = max(best, -(-_accept_cost(union, 2 * d) // (2 * pes)))
        fair = nnz // channels
        migrated = int(np.maximum(per_channel - fair, 0).sum())
        return max(best, 1), migrated
    # mode == "migrate": ring repack, destination c drains donor (c+1)%C.
    best = 0
    migrated = nnz
    for c in range(channels):
        donor = (c + 1) % channels
        cost = _accept_cost(lens[channel == donor], d)
        if c == 0:
            # Destination 0 still holds its own elements (they donate
            # only at the last ring step): received elements fill the
            # holes around the resident layout, earliest-first.
            resident = channel == 0
            capacity = pes * longest - int(per_channel[0])
            take = min(int(per_channel[donor]), capacity)
            migrated -= int(per_channel[donor]) - take
            t = _fill_length(
                take, start[resident], lens[resident], d, pes,
                max(int(ch_len[0]), 1),
            )
            best = max(best, t, -(-cost // pes))
        else:
            # Destination c was emptied at ring step c-1: compact refill.
            best = max(best, -(-cost // pes))
    return best, migrated


_SIMPLE_PREDICTORS = {
    "pe_aware": _predict_pe_aware,
    "row_based": _predict_row_based,
    "greedy_ooo": _predict_greedy_ooo,
    "row_split": _predict_row_split,
}

#: Schemes the analytical model covers.
PREDICTABLE_SCHEMES: Tuple[str, ...] = tuple(
    sorted([*_SIMPLE_PREDICTORS, "crhcs", "crhcs_rebuild"])
)


def predict_tile(
    scheme: str, counts: np.ndarray, config: AcceleratorConfig
) -> Tuple[int, int]:
    """(stream cycles, migrated elements) of one tile under ``scheme``."""
    if scheme == "crhcs":
        return _predict_crhcs(counts, config, "migrate")
    if scheme == "crhcs_rebuild":
        return _predict_crhcs(counts, config, "rebuild")
    predictor = _SIMPLE_PREDICTORS.get(scheme)
    if predictor is None:
        raise EstimationError(
            f"no analytical predictor for scheme {scheme!r}; "
            f"covered: {', '.join(PREDICTABLE_SCHEMES)}"
        )
    return predictor(counts, config)


# -- whole-matrix prediction ---------------------------------------------


@dataclass(frozen=True)
class PredictedSchedule:
    """The schedule-shape numbers the ``estimate`` tier reports.

    Mirrors exactly what the metrics stage reads off a
    :class:`~repro.scheduling.base.TiledSchedule` plus its
    :class:`~repro.sim.engine.CycleBreakdown` — stream length, stall
    count over the equalised lists, channel traffic, migration count —
    so the report assembly is shared between tiers.
    """

    scheme: str
    n_rows: int
    n_cols: int
    nnz: int
    #: Calibrated stream cycles (scale applied); equals ``raw_stream``
    #: when no calibration is supplied.
    stream_cycles: int
    #: Uncalibrated model output, kept for fitting and audit forensics.
    raw_stream_cycles: int
    total_stalls: int
    traffic_bytes: int
    migrated: int
    cycles: CycleBreakdown


def predict_schedule(
    matrix: Matrix,
    scheme: str,
    config: AcceleratorConfig,
    scale: float = 1.0,
    features: Optional[List[TileFeatures]] = None,
) -> PredictedSchedule:
    """Predict the full cycle breakdown of ``matrix`` under ``scheme``.

    The fixed terms (x loads, drains, reduction sweeps, output merges,
    invocation overhead) replicate ``sim.engine.estimate_cycles``
    accounting over the mirrored tile geometry; only the stream term is
    a model output, scaled by the calibration factor ``scale``.
    """
    t = telemetry.get()
    if features is None:
        features = tile_features(matrix, config)
    n_rows, n_cols = matrix.n_rows, matrix.n_cols
    with t.span("estimator.predict", scheme=scheme, tiles=len(features)):
        cycles = CycleBreakdown(
            overhead=getattr(config, "invocation_overhead_cycles", 0)
        )
        raw_stream = 0
        migrated = 0
        nnz = 0
        windows: Dict[int, List[TileFeatures]] = {}
        for tile in features:
            windows.setdefault(tile.row_base, []).append(tile)
        has_reduction = getattr(config, "reduction_tree_levels", 0) > 0
        for row_base, tiles in windows.items():
            window_rows = min(config.row_window, max(n_rows - row_base, 1))
            any_shared = False
            for tile in tiles:
                tile_cols = min(
                    config.column_window, max(n_cols - tile.col_base, 1)
                )
                cycles.x_load += math.ceil(tile_cols / DENSE_LANES)
                stream, moved = predict_tile(
                    scheme, tile.row_counts, config
                )
                raw_stream += stream
                migrated += moved
                nnz += tile.nnz
                cycles.drain += (
                    config.multiplier_latency + config.accumulator_latency
                )
                if moved:
                    any_shared = True
            if has_reduction and any_shared:
                rows_per_pe = math.ceil(window_rows / config.total_pes)
                cycles.reduction += (
                    rows_per_pe
                    + getattr(config, "reduction_tree_levels", 3)
                    + config.accumulator_latency
                )
            cycles.output += math.ceil(window_rows / DENSE_LANES)

        lanes = config.pes_per_channel * config.sparse_channels
        stream = int(round(raw_stream * scale))
        # The equalised lists can never hold fewer slots than non-zeros.
        stream = max(stream, -(-nnz // lanes))
        cycles.stream = stream
        word_bytes = config.pes_per_channel * 8
        predicted = PredictedSchedule(
            scheme=scheme,
            n_rows=n_rows,
            n_cols=n_cols,
            nnz=nnz,
            stream_cycles=stream,
            raw_stream_cycles=raw_stream,
            total_stalls=stream * lanes - nnz,
            traffic_bytes=stream * config.sparse_channels * word_bytes,
            migrated=migrated,
            cycles=cycles,
        )
        if t.enabled:
            t.counter("estimator.predictions", 1, scheme=scheme)
        return predicted
