"""Sparse matrix formats and the packed HBM stream element (§3.2)."""

from .element import (
    COL_BITS,
    PE_SRC_BITS,
    ROW_BITS,
    PackedElement,
    pack_element,
    pack_stream,
    unpack_element,
    unpack_stream,
)
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .ell import ELLMatrix
from .convert import (
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csr_to_coo,
    csr_to_ell,
    ell_to_coo,
    to_coo,
    to_csr,
)
from .io import load_matrix_market, load_snap_edgelist, save_matrix_market

__all__ = [
    "COL_BITS",
    "PE_SRC_BITS",
    "ROW_BITS",
    "PackedElement",
    "pack_element",
    "pack_stream",
    "unpack_element",
    "unpack_stream",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "coo_to_csc",
    "coo_to_csr",
    "csc_to_coo",
    "csr_to_coo",
    "csr_to_ell",
    "ell_to_coo",
    "to_coo",
    "to_csr",
    "load_matrix_market",
    "load_snap_edgelist",
    "save_matrix_market",
]
