"""Lossless conversions between sparse formats."""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix
from .csc import CSCMatrix
from .csr import CSRMatrix
from .ell import ELLMatrix

Matrix = Union[COOMatrix, CSRMatrix, CSCMatrix, ELLMatrix]


def coo_to_csr(matrix: COOMatrix) -> CSRMatrix:
    """Convert COO to canonical CSR (sorted columns, duplicates summed)."""
    canonical = matrix.sum_duplicates()
    indptr = np.zeros(matrix.n_rows + 1, dtype=np.int64)
    np.add.at(indptr, canonical.rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix(matrix.shape, indptr, canonical.cols, canonical.values)


def csr_to_coo(matrix: CSRMatrix) -> COOMatrix:
    """Convert CSR back to COO (already canonical)."""
    rows = np.repeat(np.arange(matrix.n_rows), matrix.row_lengths())
    return COOMatrix(matrix.shape, rows, matrix.indices, matrix.values)


def coo_to_csc(matrix: COOMatrix) -> CSCMatrix:
    """Convert COO to canonical CSC (sorted rows, duplicates summed)."""
    canonical = matrix.sum_duplicates()
    order = np.lexsort((canonical.rows, canonical.cols))
    cols = canonical.cols[order]
    indptr = np.zeros(matrix.n_cols + 1, dtype=np.int64)
    np.add.at(indptr, cols + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSCMatrix(
        matrix.shape, indptr, canonical.rows[order],
        canonical.values[order],
    )


def csc_to_coo(matrix: CSCMatrix) -> COOMatrix:
    """Convert CSC back to COO."""
    cols = np.repeat(np.arange(matrix.n_cols), matrix.col_lengths())
    return COOMatrix(matrix.shape, matrix.indices, cols, matrix.values)


def csr_to_ell(matrix: CSRMatrix) -> ELLMatrix:
    """Convert CSR to the padded ELL layout."""
    lengths = matrix.row_lengths()
    width = int(lengths.max()) if lengths.size and matrix.nnz else 0
    width = max(width, 1)
    columns = np.full((matrix.n_rows, width), -1, dtype=np.int64)
    values = np.zeros((matrix.n_rows, width), dtype=np.float32)
    for row in range(matrix.n_rows):
        cols, vals = matrix.row(row)
        columns[row, : cols.size] = cols
        values[row, : vals.size] = vals
    return ELLMatrix(matrix.shape, columns, values)


def ell_to_coo(matrix: ELLMatrix) -> COOMatrix:
    """Convert ELL back to COO (padding dropped)."""
    rows, slots = np.nonzero(matrix.columns >= 0)
    return COOMatrix(
        matrix.shape,
        rows,
        matrix.columns[rows, slots],
        matrix.values[rows, slots],
    )


def to_csr(matrix: Matrix) -> CSRMatrix:
    """Coerce any supported matrix type to CSR."""
    if isinstance(matrix, CSRMatrix):
        return matrix
    if isinstance(matrix, COOMatrix):
        return coo_to_csr(matrix)
    if isinstance(matrix, CSCMatrix):
        return coo_to_csr(csc_to_coo(matrix))
    if isinstance(matrix, ELLMatrix):
        return coo_to_csr(ell_to_coo(matrix))
    raise FormatError(f"cannot convert {type(matrix).__name__} to CSR")


def to_coo(matrix: Matrix) -> COOMatrix:
    """Coerce any supported matrix type to COO."""
    if isinstance(matrix, COOMatrix):
        return matrix
    if isinstance(matrix, CSRMatrix):
        return csr_to_coo(matrix)
    if isinstance(matrix, CSCMatrix):
        return csc_to_coo(matrix)
    if isinstance(matrix, ELLMatrix):
        return ell_to_coo(matrix)
    raise FormatError(f"cannot convert {type(matrix).__name__} to COO")
