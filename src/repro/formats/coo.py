"""Coordinate (COO) sparse matrix.

The COO format is the interchange format of the library: generators emit
COO, schedulers consume CSR, and the two convert losslessly through
:mod:`repro.formats.convert`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import FormatError, ShapeError


@dataclass(frozen=True)
class COOMatrix:
    """An immutable sparse matrix in coordinate form.

    Duplicate coordinates are legal on construction and are summed by
    :meth:`sum_duplicates` (and implicitly by CSR conversion), matching the
    convention of every mainstream sparse library.
    """

    shape: Tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows <= 0 or n_cols <= 0:
            raise ShapeError(f"matrix shape {self.shape} must be positive")
        rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        values = np.ascontiguousarray(self.values, dtype=np.float32)
        if not (rows.shape == cols.shape == values.shape):
            raise FormatError("rows, cols and values must have equal length")
        if rows.ndim != 1:
            raise FormatError("COO arrays must be one-dimensional")
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
            raise FormatError("row index out of bounds")
        if cols.size and (cols.min() < 0 or cols.max() >= n_cols):
            raise FormatError("column index out of bounds")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "values", values)

    # -- basic properties -------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries (before duplicate summing)."""
        return int(self.values.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        """Fraction of non-zero cells, as reported in Table 2."""
        return self.nnz / (self.n_rows * self.n_cols)

    def __iter__(self) -> Iterator[Tuple[int, int, float]]:
        for r, c, v in zip(self.rows, self.cols, self.values):
            yield int(r), int(c), float(v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"COOMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_entries(cls, shape, entries) -> "COOMatrix":
        """Build from an iterable of ``(row, col, value)`` triples."""
        entries = list(entries)
        if entries:
            rows, cols, values = map(np.asarray, zip(*entries))
        else:
            rows = cols = values = np.empty(0)
        return cls(tuple(shape), rows, cols, values)

    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        """Build from a dense 2-D array, keeping exact non-zeros."""
        dense = np.asarray(dense, dtype=np.float32)
        if dense.ndim != 2:
            raise ShapeError("dense input must be two-dimensional")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    # -- transformations ---------------------------------------------------

    def sum_duplicates(self) -> "COOMatrix":
        """Return an equivalent matrix with unique, sorted coordinates."""
        if self.nnz == 0:
            return self
        keys = self.rows * self.n_cols + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = self.values[order]
        unique_keys, start = np.unique(keys, return_index=True)
        summed = np.add.reduceat(values.astype(np.float64), start)
        rows = unique_keys // self.n_cols
        cols = unique_keys % self.n_cols
        return COOMatrix(self.shape, rows, cols, summed)

    def prune(self, tolerance: float = 0.0) -> "COOMatrix":
        """Drop entries whose magnitude is <= ``tolerance``."""
        keep = np.abs(self.values) > tolerance
        return COOMatrix(
            self.shape, self.rows[keep], self.cols[keep], self.values[keep]
        )

    def transpose(self) -> "COOMatrix":
        return COOMatrix(
            (self.n_cols, self.n_rows), self.cols, self.rows, self.values
        )

    def scaled(self, alpha: float) -> "COOMatrix":
        return COOMatrix(self.shape, self.rows, self.cols, alpha * self.values)

    def submatrix(self, row_slice: slice, col_slice: slice) -> "COOMatrix":
        """Extract a contiguous block; slices must have step 1."""
        r0, r1, rs = row_slice.indices(self.n_rows)
        c0, c1, cs = col_slice.indices(self.n_cols)
        if rs != 1 or cs != 1:
            raise ShapeError("submatrix slices must be contiguous")
        keep = (
            (self.rows >= r0)
            & (self.rows < r1)
            & (self.cols >= c0)
            & (self.cols < c1)
        )
        return COOMatrix(
            (max(r1 - r0, 1), max(c1 - c0, 1)),
            self.rows[keep] - r0,
            self.cols[keep] - c0,
            self.values[keep],
        )

    # -- numerics ----------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense float64 array (duplicates summed)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.values.astype(np.float64))
        return dense

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` in float64 accumulation."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ShapeError(
                f"vector of length {x.shape} incompatible with {self.shape}"
            )
        y = np.zeros(self.n_rows, dtype=np.float64)
        np.add.at(y, self.rows, self.values.astype(np.float64) * x[self.cols])
        return y

    def row_lengths(self) -> np.ndarray:
        """NNZ per row — the quantity scheduling imbalance depends on."""
        return np.bincount(self.rows, minlength=self.n_rows)
