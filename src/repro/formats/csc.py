"""Compressed Sparse Column (CSC) matrix.

CSC completes the standard interchange trio.  Streaming accelerators
schedule by row (Eq. 1), but transpose-heavy workloads (e.g. the
``A^T A`` products of least-squares problems) keep their operands in CSC;
the converter turns one into the other without materialising a dense
intermediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import FormatError, ShapeError


@dataclass(frozen=True)
class CSCMatrix:
    """An immutable CSC matrix with canonical (sorted, unique) rows."""

    shape: Tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows <= 0 or n_cols <= 0:
            raise ShapeError(f"matrix shape {self.shape} must be positive")
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        values = np.ascontiguousarray(self.values, dtype=np.float32)
        if indptr.shape != (n_cols + 1,):
            raise FormatError(f"indptr must have length n_cols+1 = {n_cols + 1}")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if indices.shape != values.shape:
            raise FormatError("indices and values must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= n_rows):
            raise FormatError("row index out of bounds")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        return self.nnz / (self.n_rows * self.n_cols)

    def col_lengths(self) -> np.ndarray:
        """NNZ per column."""
        return np.diff(self.indptr)

    def col(self, col: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(rows, values)`` of one column."""
        if not 0 <= col < self.n_cols:
            raise ShapeError(f"column {col} out of range for {self.shape}")
        lo, hi = self.indptr[col], self.indptr[col + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` (scatter formulation)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ShapeError(
                f"vector of length {x.shape} incompatible with {self.shape}"
            )
        y = np.zeros(self.n_rows, dtype=np.float64)
        col_of = np.repeat(np.arange(self.n_cols), self.col_lengths())
        np.add.at(y, self.indices,
                  self.values.astype(np.float64) * x[col_of])
        return y

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        col_of = np.repeat(np.arange(self.n_cols), self.col_lengths())
        dense[self.indices, col_of] = self.values
        return dense
