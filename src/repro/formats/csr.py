"""Compressed Sparse Row (CSR) matrix.

CSR is the format the schedulers consume: the per-row layout makes the
row-length distribution — the quantity PE-aware scheduling and CrHCS react
to — directly addressable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import FormatError, ShapeError


@dataclass(frozen=True)
class CSRMatrix:
    """An immutable CSR matrix with canonical (sorted, unique) columns."""

    shape: Tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows <= 0 or n_cols <= 0:
            raise ShapeError(f"matrix shape {self.shape} must be positive")
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        values = np.ascontiguousarray(self.values, dtype=np.float32)
        if indptr.shape != (n_rows + 1,):
            raise FormatError(
                f"indptr must have length n_rows+1 = {n_rows + 1}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise FormatError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if indices.shape != values.shape:
            raise FormatError("indices and values must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
            raise FormatError("column index out of bounds")
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "values", values)

    # -- basic properties -------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def density(self) -> float:
        return self.nnz / (self.n_rows * self.n_cols)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    # -- row access ---------------------------------------------------------

    def row_length(self, row: int) -> int:
        """NNZ in one row."""
        if not 0 <= row < self.n_rows:
            raise ShapeError(f"row {row} out of range for {self.shape}")
        return int(self.indptr[row + 1] - self.indptr[row])

    def row_lengths(self) -> np.ndarray:
        """NNZ per row for the whole matrix."""
        return np.diff(self.indptr)

    def row(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(columns, values)`` of one row."""
        if not 0 <= row < self.n_rows:
            raise ShapeError(f"row {row} out of range for {self.shape}")
        lo, hi = self.indptr[row], self.indptr[row + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    # -- numerics ----------------------------------------------------------

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` with float64 accumulation."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ShapeError(
                f"vector of length {x.shape} incompatible with {self.shape}"
            )
        products = self.values.astype(np.float64) * x[self.indices]
        y = np.zeros(self.n_rows, dtype=np.float64)
        np.add.at(y, np.repeat(np.arange(self.n_rows), self.row_lengths()),
                  products)
        return y

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        row_of = np.repeat(np.arange(self.n_rows), self.row_lengths())
        dense[row_of, self.indices] = self.values
        return dense

    def transpose(self) -> "CSRMatrix":
        """CSC view realised as the CSR of the transpose."""
        from .convert import coo_to_csr, csr_to_coo

        return coo_to_csr(csr_to_coo(self).transpose())

    # -- statistics used by the evaluation ----------------------------------

    def imbalance(self) -> float:
        """Max/mean row length — a proxy for scheduling difficulty."""
        lengths = self.row_lengths()
        mean = lengths.mean()
        if mean == 0:
            return 0.0
        return float(lengths.max() / mean)

    def empty_row_fraction(self) -> float:
        """Fraction of rows with no non-zeros (these become pure stalls)."""
        return float(np.mean(self.row_lengths() == 0))
