"""The 64-bit packed sparse stream element of CrHCS (§3.2).

Each non-zero travelling over an HBM channel is packed into a 64-bit word:

========  =====  ==================================================
field     bits   meaning
========  =====  ==================================================
value     32     IEEE-754 float32 non-zero value
row       15     row index *within the current row window*
pvt       1      1 → belongs to the current (private) channel,
                 0 → migrated from a neighbouring (shared) channel
PE_src    3      PE the value was originally scheduled for in its
                 home channel (meaningful when ``pvt == 0``)
col       13     column index *within the current column window*
========  =====  ==================================================

Prior works (Serpens et al.) spend the same 32 metadata bits on a plain
row/column pair; CrHCS steals 4 bits (1 pvt + 3 PE_src) from the indices so
the PEG's Router can steer partial sums into ``URAM_pvt`` or the correct
``URAM_sh`` bank, which is what makes cross-channel migration functionally
correct (§3.2, §4.2.1).

The bit layout used here (from most to least significant):

``[ value:32 | row:15 | pvt:1 | PE_src:3 | col:13 ]``
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import FormatError

ROW_BITS = 15
PVT_BITS = 1
PE_SRC_BITS = 3
COL_BITS = 13

_ROW_MAX = (1 << ROW_BITS) - 1
_PE_SRC_MAX = (1 << PE_SRC_BITS) - 1
_COL_MAX = (1 << COL_BITS) - 1

_COL_SHIFT = 0
_PE_SRC_SHIFT = COL_BITS
_PVT_SHIFT = _PE_SRC_SHIFT + PE_SRC_BITS
_ROW_SHIFT = _PVT_SHIFT + PVT_BITS
_VALUE_SHIFT = _ROW_SHIFT + ROW_BITS

assert _VALUE_SHIFT == 32, "metadata must occupy exactly 32 bits"


@dataclass(frozen=True)
class PackedElement:
    """A decoded sparse stream element.

    ``row`` and ``col`` are window-local indices; the streaming engine knows
    which (row window, column window) a data list belongs to, so global
    coordinates are reconstructed as ``window_base + local_index``.
    """

    value: float
    row: int
    col: int
    pvt: bool = True
    pe_src: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.row <= _ROW_MAX:
            raise FormatError(
                f"row index {self.row} does not fit in {ROW_BITS} bits"
            )
        if not 0 <= self.col <= _COL_MAX:
            raise FormatError(
                f"column index {self.col} does not fit in {COL_BITS} bits"
            )
        if not 0 <= self.pe_src <= _PE_SRC_MAX:
            raise FormatError(
                f"PE_src {self.pe_src} does not fit in {PE_SRC_BITS} bits"
            )

    @property
    def is_shared(self) -> bool:
        """True when the element was migrated from a neighbouring channel."""
        return not self.pvt


def _float_to_bits(value: float) -> int:
    """Round ``value`` to float32 and return its raw 32-bit pattern."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _bits_to_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def pack_element(element: PackedElement) -> int:
    """Encode ``element`` into its 64-bit wire representation."""
    word = _float_to_bits(element.value) << _VALUE_SHIFT
    word |= element.row << _ROW_SHIFT
    word |= (1 if element.pvt else 0) << _PVT_SHIFT
    word |= element.pe_src << _PE_SRC_SHIFT
    word |= element.col << _COL_SHIFT
    return word


def unpack_element(word: int) -> PackedElement:
    """Decode a 64-bit wire word back into a :class:`PackedElement`."""
    if not 0 <= word < (1 << 64):
        raise FormatError(f"{word:#x} is not a 64-bit word")
    value = _bits_to_float((word >> _VALUE_SHIFT) & 0xFFFFFFFF)
    row = (word >> _ROW_SHIFT) & _ROW_MAX
    pvt = bool((word >> _PVT_SHIFT) & 1)
    pe_src = (word >> _PE_SRC_SHIFT) & _PE_SRC_MAX
    col = (word >> _COL_SHIFT) & _COL_MAX
    return PackedElement(value=value, row=row, col=col, pvt=pvt, pe_src=pe_src)


def pack_stream(elements) -> bytes:
    """Pack an iterable of elements into a little-endian byte stream.

    Eight consecutive elements form one 512-bit HBM channel word; the order
    of elements inside the stream is exactly the order in which the PEG
    consumes them (the k-th element of each group goes to PE k, §3.2).
    """
    words = [pack_element(e) for e in elements]
    return struct.pack(f"<{len(words)}Q", *words)


def unpack_stream(data: bytes) -> list:
    """Inverse of :func:`pack_stream`."""
    if len(data) % 8:
        raise FormatError("stream length must be a multiple of 8 bytes")
    count = len(data) // 8
    words = struct.unpack(f"<{count}Q", data)
    return [unpack_element(w) for w in words]
