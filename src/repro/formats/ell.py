"""ELLPACK (ELL) format — the padded-row layout of ITPACK.

ELL stores every row in ``width`` slots (the longest row's length),
padding short rows.  The paper's related-work discussion (Copernicus
et al., §7.1) studies exactly this padding cost; the format makes the
connection between storage padding and the scheduler's zero-stalls
tangible: ELL's ``padding_fraction`` is the storage analogue of Eq. 4's
PE underutilization for a row-uniform schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import FormatError, ShapeError


@dataclass(frozen=True)
class ELLMatrix:
    """An immutable ELL matrix.

    ``columns[i, k]`` holds the column of the k-th non-zero of row i or
    ``-1`` for padding; ``values`` is zero where padded.
    """

    shape: Tuple[int, int]
    columns: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        n_rows, n_cols = self.shape
        if n_rows <= 0 or n_cols <= 0:
            raise ShapeError(f"matrix shape {self.shape} must be positive")
        columns = np.ascontiguousarray(self.columns, dtype=np.int64)
        values = np.ascontiguousarray(self.values, dtype=np.float32)
        if columns.ndim != 2 or columns.shape[0] != n_rows:
            raise FormatError("columns must be (n_rows, width)")
        if values.shape != columns.shape:
            raise FormatError("values must match columns in shape")
        padded = columns < 0
        if np.any(columns[~padded] >= n_cols):
            raise FormatError("column index out of bounds")
        if np.any(values[padded] != 0.0):
            raise FormatError("padding slots must carry zero values")
        object.__setattr__(self, "columns", columns)
        object.__setattr__(self, "values", values)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    @property
    def width(self) -> int:
        """Slots per row (the longest row's NNZ)."""
        return int(self.columns.shape[1])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.columns >= 0))

    @property
    def padding_fraction(self) -> float:
        """Fraction of stored slots that are padding — the ELL waste."""
        slots = self.columns.size
        return (slots - self.nnz) / slots if slots else 0.0

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV over the padded layout."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ShapeError(
                f"vector of length {x.shape} incompatible with {self.shape}"
            )
        gathered = np.where(
            self.columns >= 0, x[np.maximum(self.columns, 0)], 0.0
        )
        return (self.values.astype(np.float64) * gathered).sum(axis=1)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        rows, slots = np.nonzero(self.columns >= 0)
        dense[rows, self.columns[rows, slots]] = self.values[rows, slots]
        return dense
