"""Minimal MatrixMarket coordinate reader/writer.

SuiteSparse and SNAP matrices ship as MatrixMarket ``.mtx`` files; a user
with local copies of the real collections can load them straight into the
library instead of using the synthetic generators.

Only the ``matrix coordinate real/integer/pattern general/symmetric``
subset is supported — that covers every matrix in the paper's evaluation.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Union

import numpy as np

from ..errors import FormatError
from .coo import COOMatrix

_PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def load_matrix_market(path: _PathLike) -> COOMatrix:
    """Load a MatrixMarket coordinate file (optionally gzip-compressed)."""
    path = Path(path)
    with _open_text(path, "r") as handle:
        header = handle.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket":
            raise FormatError(f"{path} is not a MatrixMarket file")
        _, obj, fmt, field, symmetry = (token.lower() for token in header[:5])
        if obj != "matrix" or fmt != "coordinate":
            raise FormatError("only coordinate matrices are supported")
        if field not in ("real", "integer", "pattern"):
            raise FormatError(f"unsupported value field {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise FormatError(f"unsupported symmetry {symmetry!r}")

        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        try:
            n_rows, n_cols, nnz = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise FormatError(f"bad size line in {path}: {line!r}") from exc

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        values = np.empty(nnz, dtype=np.float64)
        for i in range(nnz):
            parts = handle.readline().split()
            if len(parts) < 2:
                raise FormatError(f"truncated entry {i} in {path}")
            rows[i] = int(parts[0]) - 1
            cols[i] = int(parts[1]) - 1
            values[i] = float(parts[2]) if field != "pattern" else 1.0

    if symmetry == "symmetric":
        off_diag = rows != cols
        rows = np.concatenate([rows, cols[off_diag]])
        cols = np.concatenate([cols, rows[: nnz][off_diag]])
        values = np.concatenate([values, values[off_diag]])
    return COOMatrix((n_rows, n_cols), rows, cols, values)


def load_snap_edgelist(
    path: _PathLike,
    n_nodes: int = 0,
    weighted: bool = False,
) -> COOMatrix:
    """Load a SNAP edge-list file (``# comments``, one edge per line).

    The SNAP collection distributes graphs as whitespace-separated
    ``src dst [weight]`` lines with ``#``-prefixed headers.  ``n_nodes``
    fixes the matrix dimension; 0 infers it from the largest node id.
    Duplicate edges are kept (they sum under CSR conversion, matching the
    multigraph semantics of several SNAP datasets).
    """
    path = Path(path)
    sources = []
    targets = []
    weights = []
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise FormatError(
                    f"{path}:{line_number}: expected 'src dst [weight]'"
                )
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))
            if weighted:
                if len(parts) < 3:
                    raise FormatError(
                        f"{path}:{line_number}: missing edge weight"
                    )
                weights.append(float(parts[2]))
    rows = np.asarray(sources, dtype=np.int64)
    cols = np.asarray(targets, dtype=np.int64)
    if rows.size and (rows.min() < 0 or cols.min() < 0):
        raise FormatError(f"{path}: negative node id")
    inferred = int(max(rows.max(), cols.max())) + 1 if rows.size else 1
    n = n_nodes or inferred
    if n < inferred:
        raise FormatError(
            f"{path}: node id {inferred - 1} exceeds n_nodes={n_nodes}"
        )
    values = (
        np.asarray(weights, dtype=np.float64)
        if weighted
        else np.ones(rows.size, dtype=np.float64)
    )
    return COOMatrix((n, n), rows, cols, values)


def save_matrix_market(matrix: COOMatrix, path: _PathLike) -> None:
    """Write ``matrix`` as a general real coordinate MatrixMarket file."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write("% written by the Chason reproduction library\n")
        handle.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
        for row, col, value in matrix:
            handle.write(f"{row + 1} {col + 1} {value!r}\n")
