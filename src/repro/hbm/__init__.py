"""High Bandwidth Memory model (§2.1, §5.1)."""

from .channel import ChannelBuffer, ChannelWord
from .microbench import SUPPORTED_WIDTHS, ChannelMicrobenchModel
from .stack import HBMStack
from .stream import (
    build_channel_words,
    stack_from_schedule,
    stream_traffic_bytes,
)
from .timing import TransferEstimate, estimate_transfer

__all__ = [
    "ChannelBuffer",
    "ChannelWord",
    "SUPPORTED_WIDTHS",
    "ChannelMicrobenchModel",
    "HBMStack",
    "build_channel_words",
    "stack_from_schedule",
    "stream_traffic_bytes",
    "TransferEstimate",
    "estimate_transfer",
]
