"""A single HBM pseudo-channel.

Each channel delivers one 512-bit word per cycle to its consumer (§3.2).
The model is deliberately simple — a streaming accelerator reads channels
sequentially at peak bandwidth, so a channel is a FIFO of
:class:`ChannelWord` objects plus the bookkeeping needed for traffic
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import ELEMENTS_PER_WORD
from ..errors import CapacityError, FormatError
from ..formats.element import PackedElement


@dataclass(frozen=True)
class ChannelWord:
    """One 512-bit channel beat: up to eight packed elements.

    ``None`` slots are the explicit zeros PE-aware scheduling inserts to
    keep the HLS pipeline at II=1 (§2.2); the k-th slot always feeds PE k.
    """

    slots: Tuple[Optional[PackedElement], ...]

    def __post_init__(self) -> None:
        if len(self.slots) != ELEMENTS_PER_WORD:
            raise FormatError(
                f"a channel word carries exactly {ELEMENTS_PER_WORD} slots"
            )

    @property
    def stall_count(self) -> int:
        """Number of idle-PE slots in this beat."""
        return sum(1 for slot in self.slots if slot is None)

    @property
    def element_count(self) -> int:
        return ELEMENTS_PER_WORD - self.stall_count

    def element_for_pe(self, pe: int) -> Optional[PackedElement]:
        if not 0 <= pe < ELEMENTS_PER_WORD:
            raise FormatError(f"PE index {pe} out of range")
        return self.slots[pe]


class ChannelBuffer:
    """The data list of one HBM channel, in streaming order.

    The scheduler writes words into the buffer offline (the preprocessing
    step, §4.1); the streaming engine then pops one word per cycle.
    """

    def __init__(self, channel_id: int, capacity_words: Optional[int] = None):
        if channel_id < 0:
            raise FormatError("channel id must be non-negative")
        self.channel_id = channel_id
        self.capacity_words = capacity_words
        self._words: List[ChannelWord] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._words)

    @property
    def words(self) -> Sequence[ChannelWord]:
        return tuple(self._words)

    def push(self, word: ChannelWord) -> None:
        if (
            self.capacity_words is not None
            and len(self._words) >= self.capacity_words
        ):
            raise CapacityError(
                f"channel {self.channel_id} exceeds "
                f"{self.capacity_words} words"
            )
        self._words.append(word)

    def extend(self, words) -> None:
        for word in words:
            self.push(word)

    def reset_stream(self) -> None:
        """Rewind to the first word (a new SpMV iteration)."""
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._words)

    def pop(self) -> Optional[ChannelWord]:
        """The next word, or ``None`` once the stream is exhausted."""
        if self.exhausted:
            return None
        word = self._words[self._cursor]
        self._cursor += 1
        return word

    # -- accounting ---------------------------------------------------------

    @property
    def stall_count(self) -> int:
        return sum(word.stall_count for word in self._words)

    @property
    def element_count(self) -> int:
        return sum(word.element_count for word in self._words)

    @property
    def traffic_bytes(self) -> int:
        """Bytes this channel streams per SpMV iteration."""
        return len(self._words) * (ELEMENTS_PER_WORD * 8)
