"""HBM access-width microbenchmark model (§3.2's 512-bit design point).

§3.2 cites Lu et al.'s datacenter-FPGA microbenchmarking result: "the
ideal bitwidth of read (Rd) or write (Wr) modules for an HBM channel is
512 bits".  This module reproduces the *shape* of that study with a
simple AXI-burst efficiency model so the design decision is checkable in
code rather than taken on faith:

* the HBM pseudo-channel delivers up to 32 bytes per memory-side clock
  (~450 MHz), i.e. 64 bytes per ~225 MHz kernel-side clock;
* a kernel reading ``width`` bits per cycle issues bursts whose payload
  per transaction grows with the width, amortising the fixed protocol
  overhead (address/handshake cycles) — below 512 bits the channel is
  request-rate-limited, at 512 bits it saturates, and wider interfaces
  cannot exceed the channel's physical rate.

:func:`effective_bandwidth_gbps` exposes the curve; the associated test
asserts its maximum sits at 512 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..errors import ConfigError

#: Interface widths a Vitis kernel port can use.
SUPPORTED_WIDTHS = (32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class ChannelMicrobenchModel:
    """Effective-bandwidth model of one HBM pseudo-channel.

    ``peak_gbps`` is the physical channel rate (14.37 GB/s on the U55c);
    ``kernel_mhz`` the kernel-side port clock (a placed design runs near
    300 MHz, §4.5); ``request_overhead_cycles`` the fixed per-transaction
    cost; ``burst_beats`` the AXI burst length the controller issues.
    """

    peak_gbps: float = 14.37
    kernel_mhz: float = 300.0
    request_overhead_cycles: float = 2.0
    burst_beats: int = 16

    def __post_init__(self) -> None:
        if self.peak_gbps <= 0 or self.kernel_mhz <= 0:
            raise ConfigError("rates must be positive")
        if self.burst_beats < 1:
            raise ConfigError("burst length must be >= 1 beat")

    def effective_bandwidth_gbps(self, width_bits: int) -> float:
        """Sustained read bandwidth for a ``width_bits`` kernel port."""
        if width_bits not in SUPPORTED_WIDTHS:
            raise ConfigError(
                f"width {width_bits} not in {SUPPORTED_WIDTHS}"
            )
        bytes_per_beat = width_bits / 8
        payload = self.burst_beats * bytes_per_beat
        cycles = self.burst_beats + self.request_overhead_cycles
        request_limited = payload / cycles * self.kernel_mhz * 1e6 / 1e9
        return min(self.peak_gbps, request_limited)

    def sweep(
        self, widths: Iterable[int] = SUPPORTED_WIDTHS
    ) -> Dict[int, float]:
        """Effective bandwidth for every width (the Lu et al. figure)."""
        return {
            width: self.effective_bandwidth_gbps(width) for width in widths
        }

    def ideal_width(self) -> int:
        """The narrowest width that reaches peak bandwidth."""
        for width in SUPPORTED_WIDTHS:
            if self.effective_bandwidth_gbps(width) >= self.peak_gbps:
                return width
        return SUPPORTED_WIDTHS[-1]  # pragma: no cover - model saturates
