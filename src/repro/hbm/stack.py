"""The HBM stack: a bank of independent channels (§2.1).

The Alveo U55c exposes 32 pseudo-channels of 14.37 GB/s each; Chasoň uses
16 of them for the sparse matrix stream, one each for x, y and the
instruction order (§4.1, §5.1).
"""

from __future__ import annotations

from typing import Iterator, List

from ..config import HBMConfig
from ..errors import ConfigError
from .channel import ChannelBuffer


class HBMStack:
    """A fixed set of :class:`ChannelBuffer` objects with shared config."""

    def __init__(self, config: HBMConfig, used_channels: int):
        if not 0 < used_channels <= config.total_channels:
            raise ConfigError(
                f"cannot allocate {used_channels} of "
                f"{config.total_channels} channels"
            )
        self.config = config
        self._channels: List[ChannelBuffer] = [
            ChannelBuffer(channel_id=i) for i in range(used_channels)
        ]

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[ChannelBuffer]:
        return iter(self._channels)

    def __getitem__(self, channel_id: int) -> ChannelBuffer:
        return self._channels[channel_id]

    def reset_streams(self) -> None:
        for channel in self._channels:
            channel.reset_stream()

    @property
    def exhausted(self) -> bool:
        return all(channel.exhausted for channel in self._channels)

    # -- aggregate accounting -------------------------------------------------

    @property
    def total_words(self) -> int:
        return sum(len(channel) for channel in self._channels)

    @property
    def total_traffic_bytes(self) -> int:
        return sum(channel.traffic_bytes for channel in self._channels)

    @property
    def total_stalls(self) -> int:
        return sum(channel.stall_count for channel in self._channels)

    @property
    def total_elements(self) -> int:
        return sum(channel.element_count for channel in self._channels)

    @property
    def stream_cycles(self) -> int:
        """Cycles to drain the stack: channels stream in lockstep (§3.1),
        so the longest data list sets the iteration length."""
        if not self._channels:
            return 0
        return max(len(channel) for channel in self._channels)

    def bandwidth_gbps(self) -> float:
        """Peak bandwidth of the allocated channels."""
        return self.config.used_bandwidth_gbps(len(self._channels))
