"""Helpers that turn schedule grids into channel word streams."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import ELEMENTS_PER_WORD
from ..errors import FormatError, SchedulingError
from ..formats.element import PackedElement
from .channel import ChannelWord
from .stack import HBMStack


def build_channel_words(
    slots: Sequence[Sequence[Optional[PackedElement]]],
) -> List[ChannelWord]:
    """Pack a grid of ``slots[cycle][pe]`` into channel words.

    Every row of the grid must have exactly eight entries — the scheduler
    produces fully-shaped grids where absent computations are explicit
    ``None`` stalls (§2.2).
    """
    words = []
    for cycle, row in enumerate(slots):
        if len(row) != ELEMENTS_PER_WORD:
            raise FormatError(
                f"cycle {cycle} has {len(row)} slots, "
                f"expected {ELEMENTS_PER_WORD}"
            )
        words.append(ChannelWord(slots=tuple(row)))
    return words


def stack_from_schedule(schedule) -> HBMStack:
    """Populate HBM channel buffers with a schedule's data lists.

    This is the memory image a real deployment writes before launching
    the kernel: per sparse channel, one :class:`ChannelWord` per cycle,
    with the §3.2 ``(pvt, PE_src)`` metadata encoded per element.  Tiles
    stream back-to-back, so their words concatenate per channel.
    """
    config = schedule.config
    channels = config.sparse_channels
    stack = HBMStack(config.hbm, used_channels=channels)
    for tile in schedule.tiles:
        length = tile.stream_cycles
        for grid in tile.grids:
            buffer = stack[grid.channel_id]
            for cycle in range(length):
                slots: List[Optional[PackedElement]] = []
                for pe in range(config.pes_per_channel):
                    element = grid.slot(cycle, pe)
                    if element is None:
                        slots.append(None)
                        continue
                    pvt = element.origin_channel == grid.channel_id
                    if not pvt:
                        offset = (
                            element.origin_channel - grid.channel_id
                        ) % channels
                        if offset != 1:
                            raise SchedulingError(
                                "the wire format encodes only immediate-"
                                "next-channel migration (§3.2)"
                            )
                    slots.append(
                        PackedElement(
                            value=element.value,
                            row=element.row,
                            col=element.col,
                            pvt=pvt,
                            pe_src=element.origin_pe,
                        )
                    )
                slots.extend(
                    [None] * (ELEMENTS_PER_WORD - len(slots))
                )
                buffer.push(ChannelWord(slots=tuple(slots)))
    return stack


def stream_traffic_bytes(
    words_per_channel: Sequence[int],
    dense_vector_bytes: int = 0,
) -> int:
    """Total bytes one SpMV iteration moves over HBM.

    ``words_per_channel`` is the (resized, equal) data-list length of each
    sparse channel; ``dense_vector_bytes`` accounts for the x/y channels.
    """
    word_bytes = ELEMENTS_PER_WORD * 8
    return sum(words_per_channel) * word_bytes + dense_vector_bytes
