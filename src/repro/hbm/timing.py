"""Bandwidth-side timing estimates.

A streaming accelerator is compute-limited at one word per channel per
cycle, but the memory side imposes its own floor: moving ``bytes`` at the
channels' aggregate bandwidth.  The dominant term for Chasoň/Serpens is the
cycle count (they run below the bandwidth ceiling because 64 B/cycle/channel
at ~300 MHz < 14.37 GB/s), but the estimate keeps the model honest for
hypothetical higher clock rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TransferEstimate:
    """Outcome of a transfer-time estimate."""

    bytes_moved: int
    bandwidth_gbps: float
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


def estimate_transfer(bytes_moved: int, bandwidth_gbps: float):
    """Time to move ``bytes_moved`` at ``bandwidth_gbps`` (GB = 1e9 bytes)."""
    if bytes_moved < 0:
        raise ConfigError("cannot move a negative number of bytes")
    if bandwidth_gbps <= 0:
        raise ConfigError("bandwidth must be positive")
    seconds = bytes_moved / (bandwidth_gbps * 1e9)
    return TransferEstimate(
        bytes_moved=bytes_moved,
        bandwidth_gbps=bandwidth_gbps,
        seconds=seconds,
    )
