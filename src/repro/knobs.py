"""The runtime-knob registry: every ``REPRO_*`` environment variable.

One declarative table of the environment variables the reproduction
reads, with their defaults and one-line meanings.  ``repro info`` renders
it so an operator can see, in one place, which knobs are set in the
current environment and which are riding their defaults — the same
inventory the EXPERIMENTS.md table documents.

The table is *data only* (no imports from the subsystems that consume
the knobs — this module sits at the bottom of the layering); each
consumer module remains the authority for parsing and fallback
behaviour.  Invalid values never raise: every integer knob falls back to
its default through :func:`repro.telemetry.warn_once`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Knob:
    """One ``REPRO_*`` environment variable."""

    name: str
    #: Subsystem bucket used to group the ``repro info`` rendering.
    subsystem: str
    #: Human-readable default ("unset" knobs default to ``None``).
    default: Optional[str]
    description: str

    @property
    def current(self) -> Optional[str]:
        """The value set in this process's environment, if any."""
        value = os.environ.get(self.name)
        return value if value not in (None, "") else None

    @property
    def effective(self) -> str:
        """What the process will actually use, as a display string."""
        current = self.current
        if current is not None:
            return current
        return self.default if self.default is not None else "unset"


#: Every runtime knob, grouped by subsystem in rendering order.
RUNTIME_KNOBS: Tuple[Knob, ...] = (
    # corpus sweeps
    Knob("REPRO_FULL_CORPUS", "corpus", None,
         "set to 1 to run the full 800-matrix corpus, uncapped"),
    Knob("REPRO_CORPUS_COUNT", "corpus", "96",
         "corpus size for the capped sweeps"),
    Knob("REPRO_CORPUS_NNZ_CAP", "corpus", "40000",
         "per-matrix non-zero cap (0 = uncapped)"),
    Knob("REPRO_CORPUS_WORKERS", "corpus", "1",
         "fan corpus sweeps over a process pool (deterministic merge)"),
    Knob("REPRO_DATA_DIR", "corpus", None,
         "directory of real SuiteSparse/SNAP .mtx files to prefer over "
         "synthetic generation"),
    # caches
    Knob("REPRO_SCHEDULE_CACHE_SIZE", "cache", "16",
         "in-memory LRU of schedules keyed (spec, config, scheme); "
         "0 disables"),
    Knob("REPRO_SCHEDULE_CACHE_DIR", "cache", None,
         "on-disk schedule cache tier in the §3.2 wire format"),
    Knob("REPRO_PIPELINE_CACHE_SIZE", "cache", "64",
         "whole-flow artifact store LRU (load/simulate/metrics stages); "
         "0 disables the generic tier"),
    Knob("REPRO_PASS_CACHE_SIZE", "cache", "128",
         "per-pass tile-artifact LRU behind incremental rescheduling "
         "(snapshots, keyed by pass digest chain); 0 disables"),
    # telemetry
    Knob("REPRO_TELEMETRY", "telemetry", None,
         "JSONL trace path ('-' streams to stderr); unset disables"),
    Knob("REPRO_TRACE_MAX_CYCLES", "telemetry", "512",
         "cycle-timeline render guard for the trace renderer"),
    Knob("REPRO_TRACE_SAMPLE", "telemetry", "1.0",
         "fraction of requests that start a trace (deterministic in "
         "request id); invalid values warn and fall back"),
    Knob("REPRO_TRACE_CHROME", "telemetry", None,
         "write a Chrome/Perfetto trace-event JSON here when the "
         "telemetry trace closes"),
    Knob("REPRO_PROM_FILE", "telemetry", None,
         "write a Prometheus-style text exposition here when the "
         "telemetry trace closes"),
    # serving
    Knob("REPRO_SERVE_WORKERS", "serving", "4",
         "serving engine worker threads"),
    Knob("REPRO_SERVE_QUEUE", "serving", "256",
         "admission queue capacity; overload sheds with Rejected "
         "responses"),
    Knob("REPRO_SERVE_BATCH", "serving", "8",
         "micro-batch limit per dispatch (requests sharing one "
         "(scheme, config) group)"),
    # fidelity
    Knob("REPRO_FIDELITY", "fidelity", "exact (pipeline) / "
         "estimate (serving)",
         "fidelity tier: exact, estimate (calibrated analytical "
         "estimator) or auto (estimate with exact fallback)"),
    Knob("REPRO_AUDIT_RATE", "fidelity", "0.05",
         "fraction of estimate-tier responses re-run through the exact "
         "simulator; a tolerance violation demotes the scheme to exact"),
    # sessions
    Knob("REPRO_SESSION_MAX", "sessions", "4096",
         "max concurrent solver sessions per SessionManager; opens "
         "beyond the limit raise SessionError"),
    Knob("REPRO_SESSION_STATE_BUDGET", "sessions", "67108864",
         "resident-state byte budget per engine; LRU sessions beyond it "
         "are evicted and re-materialized on next use"),
    Knob("REPRO_SESSION_ITER_BATCH", "sessions", "8",
         "solver iterations executed per admitted session work item "
         "(bounds how long one session occupies a worker)"),
    # tenancy
    Knob("REPRO_TENANT_WEIGHTS", "tenancy", None,
         "per-tenant fair-share weights 'tenant:weight,...'; unlisted "
         "tenants weigh 1.0; malformed values warn and fall back"),
    Knob("REPRO_TENANT_QUOTA", "tenancy", "1.0",
         "per-tenant admission-queue quota as a fraction of capacity "
         "(1.0 disables the per-tenant cap)"),
    Knob("REPRO_TENANT_BURN_SHED", "tenancy", "1.0",
         "interactive fast-window burn rate above which batch entries "
         "shed first"),
    # cluster
    Knob("REPRO_CLUSTER_DEVICES", "cluster", "4",
         "simulated devices in the cluster (each its own engine and "
         "private caches)"),
    Knob("REPRO_CLUSTER_REPLICAS", "cluster", "2",
         "replica-set size per fingerprint (failover/hedging targets "
         "beyond the primary)"),
    Knob("REPRO_CLUSTER_HEDGE_MS", "cluster", "100",
         "duplicate a request onto a replica after this many ms "
         "outstanding"),
    Knob("REPRO_CLUSTER_RETRIES", "cluster", "3",
         "submission attempts per request before the last structured "
         "response stands"),
    Knob("REPRO_CLUSTER_FAULTS", "cluster", None,
         "fault plan 'kind:device[:key=value...],...' with kinds "
         "slow/stall/crash plus seed=N; malformed entries warn and skip"),
    # autoscale
    Knob("REPRO_AUTOSCALE_MIN", "autoscale", "1",
         "autoscaler floor: never drain below this many alive devices"),
    Knob("REPRO_AUTOSCALE_MAX", "autoscale", "8",
         "autoscaler ceiling: never add beyond this many alive devices"),
    Knob("REPRO_AUTOSCALE_INTERVAL", "autoscale", "1.0",
         "seconds between autoscaler control-loop evaluations"),
    Knob("REPRO_AUTOSCALE_UP_DEPTH", "autoscale", "8.0",
         "mean queue depth per alive device above which the loop "
         "scales up"),
    Knob("REPRO_AUTOSCALE_DOWN_DEPTH", "autoscale", "1.0",
         "mean queue depth per alive device at or below which the loop "
         "scales down"),
    Knob("REPRO_AUTOSCALE_UP_LATENCY_MS", "autoscale", "0",
         "worst-device EWMA latency (ms) that also triggers scale-up; "
         "0 disables the latency trigger"),
)


def knob(name: str) -> Knob:
    """Look up one knob by environment-variable name."""
    for entry in RUNTIME_KNOBS:
        if entry.name == name:
            return entry
    raise KeyError(name)


def format_knobs() -> str:
    """The ``repro info`` runtime-knobs section."""
    width = max(len(entry.name) for entry in RUNTIME_KNOBS)
    lines: List[str] = []
    subsystem = None
    for entry in RUNTIME_KNOBS:
        if entry.subsystem != subsystem:
            subsystem = entry.subsystem
            lines.append(f"  [{subsystem}]")
        marker = "*" if entry.current is not None else " "
        default = entry.default if entry.default is not None else "unset"
        lines.append(
            f"  {marker} {entry.name:<{width}s}  "
            f"current={entry.effective}  default={default}"
        )
        lines.append(f"      {entry.description}")
    lines.append("  (* = set in this environment)")
    return "\n".join(lines)
