"""Synthetic replacements for the SuiteSparse and SNAP collections (§5.4)."""

from .generators import (
    banded,
    block_diagonal,
    chung_lu_graph,
    diagonal,
    kronecker_rmat,
    power_law_rows,
    uniform_random,
)
from .named import NAMED_MATRICES, MatrixSpec, generate_named, named_specs
from .operators import convection_diffusion_1d, laplacian_1d, laplacian_2d
from .collection import CorpusSpec, corpus_specs, generate_corpus
from .stats import MatrixStats, matrix_stats
from .suite_loader import DATA_DIR_ENV, load_named

__all__ = [
    "banded",
    "block_diagonal",
    "chung_lu_graph",
    "diagonal",
    "kronecker_rmat",
    "power_law_rows",
    "uniform_random",
    "convection_diffusion_1d",
    "laplacian_1d",
    "laplacian_2d",
    "NAMED_MATRICES",
    "MatrixSpec",
    "generate_named",
    "named_specs",
    "CorpusSpec",
    "corpus_specs",
    "generate_corpus",
    "MatrixStats",
    "matrix_stats",
    "DATA_DIR_ENV",
    "load_named",
]
