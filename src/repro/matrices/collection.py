"""The 800-matrix evaluation corpus (§5.4).

The paper evaluates on 800 SuiteSparse + SNAP matrices with densities from
1e-6 to 1e-1 and NNZ from 1e3 to 1e6.  This module defines a *seeded
specification* of a synthetic corpus with the same coverage: a deterministic
list of (family, size, nnz, seed) tuples, so every experiment that claims
"over the corpus" is exactly reproducible.

Generating all 800 matrices at full size takes a while in pure Python, so
:func:`generate_corpus` supports a ``limit`` (take the first N specs — they
are pre-shuffled, so any prefix is an unbiased sample) and an ``nnz_cap``
that scales oversized specs down while preserving their density.  The
benchmarks use a capped subset by default and the full corpus when the
``REPRO_FULL_CORPUS`` environment variable is set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from ..errors import DatasetError
from ..formats.coo import COOMatrix
from . import generators

#: The corpus families and their mixture weights.  Roughly a third of the
#: corpus behaves like SNAP graphs, the rest like SuiteSparse scientific
#: matrices of varying regularity, mirroring the paper's mixture (the
#: Fig. 3 distribution peaks near 70 % — moderately imbalanced matrices
#: dominate, with heavy-tailed graphs supplying the >90 % tail).
_FAMILIES = (
    ("graph", 0.16),
    ("power_law", 0.12),
    ("uniform", 0.34),
    ("banded", 0.24),
    ("block", 0.14),
)

CORPUS_SIZE = 800


@dataclass(frozen=True)
class CorpusSpec:
    """One synthetic corpus member."""

    index: int
    family: str
    n_rows: int
    n_cols: int
    nnz: int
    alpha: float
    seed: int

    @property
    def density(self) -> float:
        return self.nnz / (self.n_rows * self.n_cols)

    def generate(self) -> COOMatrix:
        """Materialise this corpus member."""
        if self.family == "graph":
            return generators.chung_lu_graph(
                self.n_rows, self.nnz, alpha=self.alpha, seed=self.seed
            )
        if self.family == "power_law":
            # LP/circuit-style matrices: heavy-tailed but with physically
            # bounded row lengths (cf. the Table 2 caps).
            mean_row = max(1.0, self.nnz / self.n_rows)
            return generators.power_law_rows(
                self.n_rows, self.n_cols, self.nnz,
                alpha=self.alpha, seed=self.seed,
                max_row_nnz=int(20 * mean_row) + 8,
            )
        if self.family == "uniform":
            return generators.uniform_random(
                self.n_rows, self.n_cols, self.nnz, seed=self.seed
            )
        if self.family == "banded":
            bandwidth = max(1, int(self.nnz / (2 * self.n_rows)))
            return generators.banded(
                self.n_rows, self.n_cols, bandwidth,
                fill=min(1.0, self.nnz / (self.n_rows * (2 * bandwidth + 1))),
                seed=self.seed,
            )
        if self.family == "block":
            block_size = 64
            n_blocks = max(1, self.n_rows // block_size)
            fill = self.nnz / (n_blocks * block_size * block_size)
            return generators.block_diagonal(
                n_blocks, block_size,
                block_fill=min(1.0, max(fill, 0.005)),
                row_skew=1.2, seed=self.seed,
            )
        raise DatasetError(f"unknown corpus family {self.family!r}")


def corpus_specs(
    count: int = CORPUS_SIZE,
    nnz_cap: Optional[int] = None,
    master_seed: int = 20251018,
) -> List[CorpusSpec]:
    """The deterministic corpus specification.

    ``count`` takes a prefix of the shuffled 800-spec list; ``nnz_cap``
    shrinks any spec above the cap isotropically (same density, smaller
    matrix) so capped runs stay cheap without biasing the density mix.
    """
    if not 0 < count <= CORPUS_SIZE:
        raise DatasetError(f"count must be in 1..{CORPUS_SIZE}")
    rng = np.random.default_rng(master_seed)
    names = [name for name, _ in _FAMILIES]
    weights = np.array([w for _, w in _FAMILIES])
    weights = weights / weights.sum()

    specs: List[CorpusSpec] = []
    for index in range(CORPUS_SIZE):
        family = str(rng.choice(names, p=weights))
        # NNZ log-uniform in [1e3, 1e6]; density log-uniform in [1e-6, 1e-1].
        nnz = int(round(10 ** rng.uniform(3.0, 6.0)))
        density = 10 ** rng.uniform(-6.0, -1.0)
        n = int(round(math.sqrt(nnz / density)))
        n = max(n, 64)
        nnz = min(nnz, n * n)
        if nnz_cap is not None and nnz > nnz_cap:
            shrink = math.sqrt(nnz / nnz_cap)
            n = max(64, int(round(n / shrink)))
            nnz = min(nnz_cap, n * n)
        alpha = float(rng.uniform(1.9, 2.6))
        specs.append(
            CorpusSpec(
                index=index,
                family=family,
                n_rows=n,
                n_cols=n,
                nnz=nnz,
                alpha=alpha,
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return specs[:count]


def generate_corpus(
    count: int = CORPUS_SIZE,
    nnz_cap: Optional[int] = None,
    master_seed: int = 20251018,
) -> Iterator[COOMatrix]:
    """Lazily materialise corpus members in spec order."""
    for spec in corpus_specs(count, nnz_cap, master_seed):
        yield spec.generate()
