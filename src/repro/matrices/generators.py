"""Sparse matrix generators.

The paper evaluates on real SuiteSparse and SNAP matrices.  Those
collections are not available offline, so this module provides generators
whose outputs match the *statistics that drive the scheduling behaviour*:

* overall density and NNZ (Table 2 reports both for the 20 named matrices);
* the row-length distribution — uniform matrices schedule easily, power-law
  graph matrices (SNAP) and optimization matrices with empty row bands
  (SuiteSparse) are exactly the imbalanced inputs where PE-aware scheduling
  leaves 70 % of PEs idle (Fig. 3) and CrHCS shines.

Every generator takes an explicit ``seed`` so that all experiments are
reproducible, and returns a :class:`~repro.formats.coo.COOMatrix`.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..formats.coo import COOMatrix


def _rng(seed) -> np.random.Generator:
    return np.random.default_rng(seed)


def _values(rng: np.random.Generator, count: int) -> np.ndarray:
    """Non-zero values: unit-scale normals, nudged away from zero.

    Keeping |v| >= 1e-3 guarantees an entry never *is* zero — a zero value
    would be indistinguishable from a scheduler stall slot.
    """
    values = rng.normal(0.0, 1.0, size=count)
    tiny = np.abs(values) < 1e-3
    values[tiny] = np.sign(values[tiny] + 0.5) * 1e-3
    return values.astype(np.float32)


def _dedupe(shape, rows, cols, rng, target_nnz) -> COOMatrix:
    """Drop duplicate coordinates, then top up to ``target_nnz`` if short."""
    n_rows, n_cols = shape
    keys = rows.astype(np.int64) * n_cols + cols
    unique = np.unique(keys)
    attempts = 0
    while unique.size < target_nnz and attempts < 60:
        missing = target_nnz - unique.size
        extra = rng.integers(0, n_rows * n_cols, size=2 * missing + 8)
        unique = np.unique(np.concatenate([unique, extra]))
        attempts += 1
    if unique.size > target_nnz:
        unique = rng.choice(unique, size=target_nnz, replace=False)
        unique.sort()
    rows = unique // n_cols
    cols = unique % n_cols
    return COOMatrix(shape, rows, cols, _values(rng, rows.size))


def uniform_random(n_rows: int, n_cols: int, nnz: int, seed=0) -> COOMatrix:
    """Uniformly random sparsity: every cell equally likely."""
    if nnz < 0 or nnz > n_rows * n_cols:
        raise DatasetError(
            f"cannot place {nnz} non-zeros in a {n_rows}x{n_cols} matrix"
        )
    rng = _rng(seed)
    flat = rng.integers(0, n_rows * n_cols, size=nnz)
    return _dedupe((n_rows, n_cols), flat // n_cols, flat % n_cols, rng, nnz)


def power_law_rows(
    n_rows: int,
    n_cols: int,
    nnz: int,
    alpha: float = 1.8,
    max_row_nnz: int = 0,
    seed=0,
) -> COOMatrix:
    """Rows draw their length from a Zipf-like distribution.

    This reproduces the heavy row-imbalance of web/social graphs: a few hub
    rows hold most non-zeros while many rows are empty — the worst case for
    intra-channel scheduling because whole PEs starve (§2.2).

    ``max_row_nnz`` (0 = unbounded) caps the hub rows, matching matrix
    families — LP and circuit matrices — whose longest rows are bounded by
    the physical problem even though the distribution is heavy-tailed.
    """
    if alpha <= 0:
        raise DatasetError("power-law exponent must be positive")
    if nnz > n_rows * n_cols:
        raise DatasetError("requested nnz exceeds matrix capacity")
    rng = _rng(seed)
    weights = (np.arange(1, n_rows + 1, dtype=np.float64)) ** (-alpha)
    rng.shuffle(weights)
    if max_row_nnz:
        # Water-filling clip: renormalising after a clip pushes clipped
        # rows back above the limit, so iterate to a fixed point.
        limit = max_row_nnz / max(nnz, 1)
        weights = weights / weights.sum()
        for _ in range(32):
            clipped = np.minimum(weights, limit)
            total = clipped.sum()
            if total <= 0 or np.all(clipped / total <= limit * (1 + 1e-9)):
                weights = clipped
                break
            weights = clipped / total
    weights /= weights.sum()
    rows = rng.choice(n_rows, size=nnz, p=weights)
    cols = rng.integers(0, n_cols, size=nnz)
    return _dedupe((n_rows, n_cols), rows, cols, rng, nnz)


def chung_lu_graph(n_nodes: int, nnz: int, alpha: float = 2.1, seed=0):
    """Chung–Lu random graph adjacency matrix (SNAP stand-in).

    Both endpoints of an edge are drawn from the same power-law degree
    sequence, giving a square matrix with correlated row *and* column
    skew, like the wiki-Vote / email-Enron / as-caida graphs of Table 2.
    """
    if alpha <= 1:
        raise DatasetError("Chung-Lu exponent must exceed 1")
    rng = _rng(seed)
    weights = (np.arange(1, n_nodes + 1, dtype=np.float64)) ** (
        -1.0 / (alpha - 1.0)
    )
    rng.shuffle(weights)
    prob = weights / weights.sum()
    rows = rng.choice(n_nodes, size=nnz, p=prob)
    cols = rng.choice(n_nodes, size=nnz, p=prob)
    return _dedupe((n_nodes, n_nodes), rows, cols, rng, nnz)


def kronecker_rmat(
    scale: int,
    nnz: int,
    probabilities=(0.57, 0.19, 0.19, 0.05),
    seed=0,
) -> COOMatrix:
    """R-MAT (recursive Kronecker) generator used by Graph500.

    Produces the fractal community structure typical of large SNAP
    graphs; ``scale`` gives a 2^scale square matrix.
    """
    a, b, c, d = probabilities
    if not np.isclose(a + b + c + d, 1.0):
        raise DatasetError("R-MAT probabilities must sum to 1")
    n = 1 << scale
    if nnz > n * n:
        raise DatasetError("requested nnz exceeds matrix capacity")
    rng = _rng(seed)
    rows = np.zeros(nnz, dtype=np.int64)
    cols = np.zeros(nnz, dtype=np.int64)
    for level in range(scale):
        quadrant = rng.choice(4, size=nnz, p=[a, b, c, d])
        half = 1 << (scale - level - 1)
        rows += np.where(quadrant >= 2, half, 0)
        cols += np.where(quadrant % 2 == 1, half, 0)
    return _dedupe((n, n), rows, cols, rng, nnz)


def banded(
    n_rows: int,
    n_cols: int,
    bandwidth: int,
    fill: float = 1.0,
    seed=0,
) -> COOMatrix:
    """Banded matrix: entries within ``bandwidth`` of the diagonal.

    Stencil/PDE matrices from scientific computing look like this; row
    lengths are nearly uniform, so they are the *easy* case for PE-aware
    scheduling (small stall fraction even without migration).
    """
    if bandwidth < 0:
        raise DatasetError("bandwidth must be non-negative")
    if not 0 < fill <= 1:
        raise DatasetError("fill must be in (0, 1]")
    rng = _rng(seed)
    rows_list = []
    cols_list = []
    for offset in range(-bandwidth, bandwidth + 1):
        start = max(0, -offset)
        stop = min(n_rows, n_cols - offset)
        if stop <= start:
            continue
        rows = np.arange(start, stop)
        if fill < 1.0:
            keep = rng.random(rows.size) < fill
            rows = rows[keep]
        rows_list.append(rows)
        cols_list.append(rows + offset)
    if rows_list:
        rows = np.concatenate(rows_list)
        cols = np.concatenate(cols_list)
    else:
        rows = cols = np.empty(0, dtype=np.int64)
    return COOMatrix((n_rows, n_cols), rows, cols, _values(rng, rows.size))


def block_diagonal(
    n_blocks: int,
    block_size: int,
    block_fill: float = 0.5,
    row_skew: float = 0.0,
    seed=0,
) -> COOMatrix:
    """Dense-ish blocks on the diagonal, empty elsewhere.

    Models the block structure of trajectory-optimization matrices
    (lowThrust, hangGlider, dynamicSoaringProblem in Table 2): collocation
    constraints produce blocks whose rows mix short bound constraints with
    long dynamics rows.  ``row_skew > 0`` draws per-row lengths from a
    Zipf(``row_skew``) profile — the mixed-row-length pattern that makes
    these matrices stall 80–100 % of PE slots under intra-channel
    scheduling (Fig. 12, DY/RE/LO/HA).
    """
    if n_blocks <= 0 or block_size <= 0:
        raise DatasetError("block count and size must be positive")
    if not 0 < block_fill <= 1:
        raise DatasetError("block fill must be in (0, 1]")
    if row_skew < 0:
        raise DatasetError("row skew must be non-negative")
    rng = _rng(seed)
    n = n_blocks * block_size
    rows_list = []
    cols_list = []
    per_block = max(1, int(round(block_fill * block_size * block_size)))
    if row_skew > 0:
        base_weights = np.arange(1, block_size + 1, dtype=np.float64) ** (
            -row_skew
        )
    else:
        base_weights = np.ones(block_size, dtype=np.float64)
    for block in range(n_blocks):
        weights = base_weights.copy()
        rng.shuffle(weights)
        weights /= weights.sum()
        counts = rng.multinomial(per_block, weights)
        np.minimum(counts, block_size, out=counts)
        base = block * block_size
        for local_row, count in enumerate(counts):
            if count == 0:
                continue
            local_cols = rng.choice(block_size, size=count, replace=False)
            rows_list.append(
                np.full(count, base + local_row, dtype=np.int64)
            )
            cols_list.append(base + local_cols)
    if rows_list:
        rows = np.concatenate(rows_list)
        cols = np.concatenate(cols_list)
    else:  # pragma: no cover - per_block >= 1 always places something
        rows = cols = np.empty(0, dtype=np.int64)
    return COOMatrix((n, n), rows, cols, _values(rng, rows.size))


def diagonal(n: int, seed=0) -> COOMatrix:
    """A plain diagonal matrix — the degenerate fully-balanced case."""
    rng = _rng(seed)
    idx = np.arange(n)
    return COOMatrix((n, n), idx, idx, _values(rng, n))
