"""Synthetic stand-ins for the 20 named matrices of Table 2.

Each :class:`MatrixSpec` reproduces a Table 2 row: the published NNZ and
density, a square dimension derived from them, and a structural family
chosen to match the matrix's domain:

* trajectory-optimization matrices (dynamicSoaringProblem_8,
  reorientation_4, lowThrust_7, hangGlider_3) → block-diagonal stacks of
  dense-ish blocks (the classic direct-collocation pattern);
* circuit / LP matrices (c52, trans5, ckt11752_dc_1, TSC_OPF_300,
  vsp_c_30_data_data) → power-law row lengths;
* mycielskian12 → a dense-ish random graph;
* all SNAP matrices → Chung–Lu power-law graphs.

Generation tops up or subsamples to the *exact* published NNZ so that
Eq. 4/5 quantities (which depend on NNZ directly) are comparable with the
paper's Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import DatasetError
from ..formats.coo import COOMatrix
from . import generators


@dataclass(frozen=True)
class MatrixSpec:
    """One Table 2 row plus the recipe for synthesising it."""

    matrix_id: str
    name: str
    collection: str
    nnz: int
    density_pct: float
    family: str
    alpha: float = 2.0
    max_row_nnz: int = 0
    row_skew: float = 0.0

    @property
    def density(self) -> float:
        return self.density_pct / 100.0

    @property
    def dimension(self) -> int:
        """Square dimension implied by NNZ and density."""
        return max(1, int(round(math.sqrt(self.nnz / self.density))))


_SUITESPARSE: List[MatrixSpec] = [
    MatrixSpec("DY", "dynamicSoaringProblem_8", "SuiteSparse", 38136, 0.303,
               "block", row_skew=1.3),
    MatrixSpec("RE", "reorientation_4", "SuiteSparse", 33630, 0.455,
               "block", row_skew=1.4),
    MatrixSpec("C5", "c52", "SuiteSparse", 20278, 0.00035, "power_law", 1.5,
               max_row_nnz=40),
    MatrixSpec("MY", "mycielskian12", "SuiteSparse", 407200, 4.31,
               "graph", 2.0),
    MatrixSpec("VS", "vsp_c_30_data_data", "SuiteSparse", 124368, 0.102,
               "power_law", 1.6, max_row_nnz=300),
    MatrixSpec("TS", "TSC_OPF_300", "SuiteSparse", 820783, 0.859,
               "power_law", 1.4, max_row_nnz=600),
    MatrixSpec("LO", "lowThrust_7", "SuiteSparse", 211561, 0.0700,
               "block", row_skew=1.3),
    MatrixSpec("HA", "hangGlider_3", "SuiteSparse", 92703, 0.0880,
               "block", row_skew=1.3),
    MatrixSpec("TR", "trans5", "SuiteSparse", 749800, 0.00541,
               "power_law", 1.5, max_row_nnz=100),
    MatrixSpec("CK", "ckt11752_dc_1", "SuiteSparse", 333029, 0.0138,
               "power_law", 1.5, max_row_nnz=60),
]

_SNAP: List[MatrixSpec] = [
    MatrixSpec("WI", "wiki-Vote", "SNAP", 103689, 0.1506, "graph", 2.1),
    MatrixSpec("EM", "email-Enron", "SNAP", 367332, 0.0272, "graph", 2.1),
    MatrixSpec("AS", "as-caida", "SNAP", 106762, 0.0108, "graph", 2.3),
    MatrixSpec("OR", "Oregon-2", "SNAP", 65406, 0.0469, "graph", 2.3),
    MatrixSpec("WK", "wiki-RfA", "SNAP", 188077, 0.145, "graph", 2.1),
    MatrixSpec("SC", "soc-Slashdot0811", "SNAP", 905468, 0.0151,
               "graph", 2.2),
    MatrixSpec("A7", "as-735", "SNAP", 26467, 0.0444, "graph", 2.4),
    MatrixSpec("CM", "CollegeMsg", "SNAP", 20296, 0.562, "graph", 2.1),
    MatrixSpec("WB", "wb-cs-stanford", "SNAP", 36854, 0.0374, "graph", 2.2),
    MatrixSpec("RT", "Reuters911", "SNAP", 296076, 0.1667, "graph", 2.1),
]

#: All Table 2 matrices keyed by dataset name.
NAMED_MATRICES: Dict[str, MatrixSpec] = {
    spec.name: spec for spec in _SUITESPARSE + _SNAP
}


def named_specs(collection: Optional[str] = None) -> List[MatrixSpec]:
    """The Table 2 specs, optionally filtered by collection."""
    specs = _SUITESPARSE + _SNAP
    if collection is None:
        return list(specs)
    filtered = [s for s in specs if s.collection.lower() == collection.lower()]
    if not filtered:
        raise DatasetError(f"unknown collection {collection!r}")
    return filtered


def _stable_hash(name: str) -> int:
    """Stable (FNV-1a) per-matrix seed derived from the dataset name."""
    value = 2166136261
    for ch in name.encode():
        value = ((value ^ ch) * 16777619) % (2**31)
    return value


def _exact_nnz(matrix: COOMatrix, target: int, seed: int) -> COOMatrix:
    """Adjust a generated pattern to exactly ``target`` unique non-zeros."""
    matrix = matrix.sum_duplicates()
    rng = np.random.default_rng(seed)
    n_rows, n_cols = matrix.shape
    if matrix.nnz > target:
        keep = rng.choice(matrix.nnz, size=target, replace=False)
        keep.sort()
        return COOMatrix(matrix.shape, matrix.rows[keep],
                         matrix.cols[keep], matrix.values[keep])
    if matrix.nnz < target:
        existing = set(zip(matrix.rows.tolist(), matrix.cols.tolist()))
        extra_rows = []
        extra_cols = []
        needed = target - matrix.nnz
        guard = 0
        while needed > 0 and guard < 200:
            cand_r = rng.integers(0, n_rows, size=2 * needed + 8)
            cand_c = rng.integers(0, n_cols, size=2 * needed + 8)
            for r, c in zip(cand_r.tolist(), cand_c.tolist()):
                if needed == 0:
                    break
                if (r, c) not in existing:
                    existing.add((r, c))
                    extra_rows.append(r)
                    extra_cols.append(c)
                    needed -= 1
            guard += 1
        if needed > 0:
            raise DatasetError(
                f"could not reach {target} unique non-zeros in {matrix.shape}"
            )
        values = rng.normal(0.0, 1.0, size=len(extra_rows)).astype(np.float32)
        values[np.abs(values) < 1e-3] = 1e-3
        return COOMatrix(
            matrix.shape,
            np.concatenate([matrix.rows, np.asarray(extra_rows)]),
            np.concatenate([matrix.cols, np.asarray(extra_cols)]),
            np.concatenate([matrix.values, values]),
        )
    return matrix


def generate_named(name: str, seed: Optional[int] = None) -> COOMatrix:
    """Synthesise the Table 2 matrix called ``name``.

    ``seed`` overrides the stable per-name seed (useful for sensitivity
    studies); the default reproduces the same matrix every run.
    """
    if name not in NAMED_MATRICES:
        known = ", ".join(sorted(NAMED_MATRICES))
        raise DatasetError(f"unknown matrix {name!r}; known: {known}")
    spec = NAMED_MATRICES[name]
    seed = _stable_hash(spec.name) if seed is None else seed
    n = spec.dimension

    if spec.family == "graph":
        matrix = generators.chung_lu_graph(
            n, spec.nnz, alpha=spec.alpha, seed=seed
        )
    elif spec.family == "power_law":
        matrix = generators.power_law_rows(
            n, n, spec.nnz, alpha=spec.alpha,
            max_row_nnz=spec.max_row_nnz, seed=seed,
        )
    elif spec.family == "block":
        block_size = 96
        n_blocks = max(1, n // block_size)
        fill = spec.nnz / (n_blocks * block_size * block_size)
        matrix = generators.block_diagonal(
            n_blocks, block_size, block_fill=min(1.0, max(fill, 0.01)),
            row_skew=spec.row_skew, seed=seed,
        )
    else:  # pragma: no cover - specs are static
        raise DatasetError(f"unknown family {spec.family!r}")
    return _exact_nnz(matrix, spec.nnz, seed + 1)
