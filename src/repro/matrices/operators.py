"""Discrete PDE operators — deterministic structured test matrices.

The paper's scientific-computing motivation (§1) runs on discretised
PDE systems; these constructors build the canonical ones exactly (no
randomness), for the solvers, the examples, and as the fully balanced
end of the scheduling spectrum.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..formats.coo import COOMatrix


def laplacian_1d(n: int) -> COOMatrix:
    """Tridiagonal 1-D Poisson operator (2 on the diagonal, −1 off)."""
    if n <= 0:
        raise ShapeError("system size must be positive")
    rows = [np.arange(n)]
    cols = [np.arange(n)]
    values = [np.full(n, 2.0, dtype=np.float32)]
    if n > 1:
        off = np.arange(n - 1)
        rows += [off + 1, off]
        cols += [off, off + 1]
        values += [np.full(n - 1, -1.0, dtype=np.float32)] * 2
    return COOMatrix(
        (n, n), np.concatenate(rows), np.concatenate(cols),
        np.concatenate(values),
    )


def laplacian_2d(grid: int) -> COOMatrix:
    """Five-point 2-D Poisson operator on a ``grid x grid`` mesh."""
    if grid <= 0:
        raise ShapeError("grid size must be positive")
    n = grid * grid
    rows, cols, values = [], [], []

    def add(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        values.append(v)

    for i in range(grid):
        for j in range(grid):
            k = i * grid + j
            add(k, k, 4.0)
            if i > 0:
                add(k, k - grid, -1.0)
            if i < grid - 1:
                add(k, k + grid, -1.0)
            if j > 0:
                add(k, k - 1, -1.0)
            if j < grid - 1:
                add(k, k + 1, -1.0)
    return COOMatrix(
        (n, n), np.array(rows), np.array(cols),
        np.array(values, dtype=np.float32),
    )


def convection_diffusion_1d(n: int, peclet: float = 0.5) -> COOMatrix:
    """Upwinded 1-D convection–diffusion operator (non-symmetric).

    ``peclet`` sets the convection strength relative to diffusion; the
    operator stays diagonally dominant for ``|peclet| <= 1`` so Jacobi
    converges on it.
    """
    if n <= 0:
        raise ShapeError("system size must be positive")
    if abs(peclet) > 1.0:
        raise ShapeError("|peclet| must be <= 1 for diagonal dominance")
    rows, cols, values = [], [], []
    for i in range(n):
        rows.append(i)
        cols.append(i)
        values.append(2.0 + abs(peclet))
        if i > 0:
            rows.append(i)
            cols.append(i - 1)
            values.append(-1.0 - max(peclet, 0.0))
        if i < n - 1:
            rows.append(i)
            cols.append(i + 1)
            values.append(-1.0 + min(peclet, 0.0))
    return COOMatrix(
        (n, n), np.array(rows), np.array(cols),
        np.array(values, dtype=np.float32),
    )
