"""Descriptive statistics of sparse matrices.

These are the quantities the evaluation narrates: density, row-length
distribution and imbalance (max/mean), and the fraction of empty rows —
the structural features that determine how many stalls PE-aware scheduling
leaves behind (§2.2) and how much CrHCS can recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..formats.convert import to_csr
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix

Matrix = Union[COOMatrix, CSRMatrix]


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of one matrix."""

    n_rows: int
    n_cols: int
    nnz: int
    density: float
    row_mean: float
    row_max: int
    row_std: float
    imbalance: float
    empty_row_fraction: float
    gini: float

    def as_row(self) -> str:
        """Format like a Table 2 row (NNZ and density %)."""
        return (
            f"{self.n_rows}x{self.n_cols}  nnz={self.nnz}  "
            f"density={100 * self.density:.4g}%  imbalance={self.imbalance:.1f}"
        )


def _gini(lengths: np.ndarray) -> float:
    """Gini coefficient of the row-length distribution (0 = balanced)."""
    if lengths.size == 0 or lengths.sum() == 0:
        return 0.0
    sorted_lengths = np.sort(lengths.astype(np.float64))
    n = sorted_lengths.size
    cumulative = np.cumsum(sorted_lengths)
    return float(
        (n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n
    )


def matrix_stats(matrix: Matrix) -> MatrixStats:
    """Compute :class:`MatrixStats` for any supported matrix format."""
    csr = to_csr(matrix)
    lengths = csr.row_lengths()
    mean = float(lengths.mean()) if lengths.size else 0.0
    return MatrixStats(
        n_rows=csr.n_rows,
        n_cols=csr.n_cols,
        nnz=csr.nnz,
        density=csr.density,
        row_mean=mean,
        row_max=int(lengths.max()) if lengths.size else 0,
        row_std=float(lengths.std()) if lengths.size else 0.0,
        imbalance=csr.imbalance(),
        empty_row_fraction=csr.empty_row_fraction(),
        gini=_gini(lengths),
    )
