"""Loading the *real* SuiteSparse/SNAP matrices when available.

The reproduction ships synthetic stand-ins for every Table 2 matrix, but
a user with local copies of the real collections gets higher fidelity for
free: point ``REPRO_DATA_DIR`` (or the ``data_dir`` argument) at a
directory containing ``<name>.mtx[.gz]`` (SuiteSparse MatrixMarket) or
``<name>.txt[.gz]`` (SNAP edge lists) and :func:`load_named` returns the
real matrix, falling back to the synthetic generator otherwise.

The loader normalises real matrices the way the paper's preprocessing
does: duplicates summed, explicit zeros dropped.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Tuple, Union

from ..errors import DatasetError
from ..formats.coo import COOMatrix
from ..formats.io import load_matrix_market, load_snap_edgelist
from .named import NAMED_MATRICES, generate_named

_PathLike = Union[str, Path]

#: Environment variable naming the local dataset directory.
DATA_DIR_ENV = "REPRO_DATA_DIR"

_SUFFIXES = (".mtx", ".mtx.gz", ".txt", ".txt.gz")


def dataset_path(name: str, data_dir: _PathLike) -> Optional[Path]:
    """The on-disk file for ``name`` under ``data_dir``, if present."""
    base = Path(data_dir)
    for suffix in _SUFFIXES:
        candidate = base / f"{name}{suffix}"
        if candidate.exists():
            return candidate
    return None


def _normalise(matrix: COOMatrix) -> COOMatrix:
    return matrix.sum_duplicates().prune(0.0)


def load_named(
    name: str,
    data_dir: Optional[_PathLike] = None,
) -> Tuple[COOMatrix, str]:
    """Load a Table 2 matrix, real if available, synthetic otherwise.

    Returns ``(matrix, source)`` where ``source`` is ``"real"`` or
    ``"synthetic"``.
    """
    if name not in NAMED_MATRICES:
        known = ", ".join(sorted(NAMED_MATRICES))
        raise DatasetError(f"unknown matrix {name!r}; known: {known}")
    directory = data_dir or os.environ.get(DATA_DIR_ENV)
    if directory:
        path = dataset_path(name, directory)
        if path is not None:
            if path.name.endswith((".txt", ".txt.gz")):
                matrix = load_snap_edgelist(path)
            else:
                matrix = load_matrix_market(path)
            return _normalise(matrix), "real"
    return generate_named(name), "synthetic"
