"""Evaluation metrics (§5.3, Eqs. 4–7)."""

from .definitions import (
    bandwidth_efficiency,
    energy_efficiency,
    geometric_mean,
    pe_underutilization_percent,
    pe_underutilization_percent_batch,
    speedup,
    throughput_gflops,
)

__all__ = [
    "bandwidth_efficiency",
    "energy_efficiency",
    "geometric_mean",
    "pe_underutilization_percent",
    "pe_underutilization_percent_batch",
    "speedup",
    "throughput_gflops",
]
