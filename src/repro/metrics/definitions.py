"""The evaluated metrics, defined exactly as in §5.3.

* **PE underutilization** (Eq. 4): percentage of idle-PE instances over all
  sparse-matrix channels — ``stalls / (NNZ + stalls) × 100``.
* **Throughput** (Eq. 5): ``2 × (NNZ + K) / latency(ns)`` GFLOPS, where K
  is the dense-vector length (the ``+K`` term accounts for the ``y``
  update of the full SpMV).
* **Energy efficiency** (Eq. 6): ``throughput / power`` in GFLOPS/W.
* **Bandwidth efficiency** (Eq. 7): ``throughput / bandwidth`` in
  GFLOPS/(GB/s).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from ..errors import ConfigError


def pe_underutilization_percent(stalls: int, nnz: int) -> float:
    """Eq. 4 from raw stall and non-zero counts."""
    if stalls < 0 or nnz < 0:
        raise ConfigError("stall and nnz counts must be non-negative")
    denominator = nnz + stalls
    if denominator == 0:
        return 0.0
    return 100.0 * stalls / denominator


def pe_underutilization_percent_batch(
    stalls: Sequence[int], nnzs: Sequence[int]
) -> List[float]:
    """Eq. 4 over a whole sweep (one value per matrix).

    Matches :func:`pe_underutilization_percent` exactly — the Fig. 3
    distribution is built from these per-matrix percentages.
    """
    if len(stalls) != len(nnzs):
        raise ConfigError("stall and nnz sequences must have equal length")
    return [
        pe_underutilization_percent(stall_count, nnz)
        for stall_count, nnz in zip(stalls, nnzs)
    ]


def throughput_gflops(nnz: int, k: int, latency_seconds: float) -> float:
    """Eq. 5: SpMV throughput in GFLOPS."""
    if latency_seconds <= 0:
        raise ConfigError("latency must be positive")
    if nnz < 0 or k < 0:
        raise ConfigError("nnz and K must be non-negative")
    latency_ns = latency_seconds * 1e9
    return 2.0 * (nnz + k) / latency_ns


def energy_efficiency(gflops: float, power_watts: float) -> float:
    """Eq. 6: GFLOPS per watt."""
    if power_watts <= 0:
        raise ConfigError("power must be positive")
    return gflops / power_watts


def bandwidth_efficiency(gflops: float, bandwidth_gbps: float) -> float:
    """Eq. 7: GFLOPS per GB/s of peak streaming bandwidth."""
    if bandwidth_gbps <= 0:
        raise ConfigError("bandwidth must be positive")
    return gflops / bandwidth_gbps


def speedup(baseline_latency: float, accelerated_latency: float) -> float:
    """Latency ratio (> 1 means the accelerated design wins)."""
    if baseline_latency <= 0 or accelerated_latency <= 0:
        raise ConfigError("latencies must be positive")
    return baseline_latency / accelerated_latency


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregate the paper reports for speedups."""
    values = list(values)
    if not values:
        raise ConfigError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
