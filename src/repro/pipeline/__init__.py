"""Unified pipeline: load → schedule → simulate → metrics.

Every execution path in the reproduction — the accelerator façades, the
SpMM/SpTRSV extensions, the corpus runner, the benchmark harness and the
CLI — drives the same :class:`PipelineRunner` over the same four typed
stage artifacts, with whole-flow content-addressed caching layered on
top.  See ``docs/architecture.md`` for the stage diagram and
fingerprinting rules.
"""

from .artifacts import (
    Artifact,
    CycleResult,
    EstimateArtifact,
    EstimateResult,
    LoadedMatrix,
    PipelineResult,
    ReportArtifact,
    ScheduledMatrix,
    SpMVReport,
    Stage,
)
from .fingerprint import (
    fingerprint,
    fingerprint_config,
    fingerprint_matrix,
    fingerprint_source,
)
from .runner import AnalysisResult, PipelineRunner, PreparedSpMV
from .stages import (
    METRICS_VERSION,
    EstimateStage,
    LoadStage,
    MetricsStage,
    ScheduleStage,
    SimulateStage,
)
from .store import ArtifactStore, global_artifact_store

__all__ = [
    "AnalysisResult",
    "Artifact",
    "ArtifactStore",
    "CycleResult",
    "EstimateArtifact",
    "EstimateResult",
    "EstimateStage",
    "LoadStage",
    "LoadedMatrix",
    "METRICS_VERSION",
    "MetricsStage",
    "PipelineResult",
    "PipelineRunner",
    "PreparedSpMV",
    "ReportArtifact",
    "ScheduleStage",
    "ScheduledMatrix",
    "SimulateStage",
    "SpMVReport",
    "Stage",
    "fingerprint",
    "fingerprint_config",
    "fingerprint_matrix",
    "fingerprint_source",
    "global_artifact_store",
]
