"""Typed artifacts flowing between pipeline stages.

Every Chasoň experiment is the same four-stage flow::

    LoadedMatrix → ScheduledMatrix → CycleResult → SpMVReport

Each artifact is a frozen dataclass carrying a stable content
**fingerprint** (:mod:`repro.pipeline.fingerprint`): the digest of
everything that determines its contents — upstream fingerprints plus this
stage's own parameters and version tags.  Equal fingerprints mean equal
artifacts, which is what lets the artifact store skip recomputation of
any stage whose inputs did not change.

:class:`SpMVReport` (the Table 3 row) lives here — the report *is* the
final pipeline artifact — and is re-exported from
:mod:`repro.core.accelerator` for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Union, runtime_checkable

from ..config import AcceleratorConfig
from ..estimator.model import PredictedSchedule
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..scheduling.base import TiledSchedule
from ..scheduling.crhcs import MigrationReport
from ..sim.engine import CycleBreakdown

Matrix = Union[COOMatrix, CSRMatrix]


@runtime_checkable
class Artifact(Protocol):
    """Anything a stage produces: content plus a stable fingerprint."""

    fingerprint: str


@runtime_checkable
class Stage(Protocol):
    """One pipeline stage: a named, versioned artifact transformer.

    ``name`` labels the telemetry span (``pipeline.<name>``) and the
    artifact-store partition; ``run`` computes the artifact from its
    upstream inputs.  Stages are pure with respect to their fingerprinted
    inputs — the runner decides whether to call ``run`` or serve a cached
    artifact with the same fingerprint.
    """

    name: str

    def run(self, *args, **kwargs):  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class LoadedMatrix:
    """Stage 1 output: a materialised matrix plus its identity."""

    matrix: Matrix
    #: ``"spec"`` for seeded named/corpus specs, ``"memory"`` for raw
    #: payloads fingerprinted by content.
    source_kind: str
    label: str
    fingerprint: str

    @property
    def nnz(self) -> int:
        return self.matrix.nnz


@dataclass(frozen=True)
class ScheduledMatrix:
    """Stage 2 output: the HBM channel data lists for one scheme."""

    schedule: TiledSchedule
    scheme: str
    config: AcceleratorConfig
    matrix_fingerprint: str
    fingerprint: str
    #: CrHCS bookkeeping; ``None`` for schemes without migration and for
    #: schedules served from the cache (the schedule is deterministic, the
    #: side-channel report is only produced while building).
    migration: Optional[MigrationReport] = None


@dataclass(frozen=True)
class CycleResult:
    """Stage 3 output: the analytic cycle accounting of a schedule."""

    cycles: CycleBreakdown
    schedule_fingerprint: str
    fingerprint: str

    @property
    def total(self) -> int:
        return self.cycles.total


@dataclass(frozen=True)
class SpMVReport:
    """Everything Table 3 reports for one (matrix, accelerator) pair."""

    accelerator: str
    scheme: str
    n_rows: int
    n_cols: int
    nnz: int
    stream_cycles: int
    total_cycles: int
    latency_ms: float
    throughput_gflops: float
    underutilization_pct: float
    traffic_bytes: int
    bandwidth_gbps: float
    bandwidth_efficiency: float
    power_watts: float
    energy_efficiency: float
    migrated: int

    @property
    def latency_seconds(self) -> float:
        return self.latency_ms * 1e-3

    def as_table_row(self) -> str:
        """One formatted Table 3 row."""
        return (
            f"{self.accelerator:<8s} lat={self.latency_ms:9.3f} ms  "
            f"thr={self.throughput_gflops:7.3f} GFLOPS  "
            f"bw-eff={self.bandwidth_efficiency:7.3f}  "
            f"e-eff={self.energy_efficiency:6.3f} GFLOPS/W  "
            f"underutil={self.underutilization_pct:5.1f}%"
        )


@dataclass(frozen=True)
class ReportArtifact:
    """Stage 4 output: the metrics report plus its fingerprint."""

    report: SpMVReport
    fingerprint: str


@dataclass(frozen=True)
class PipelineResult:
    """All four artifacts of one analysis flow, for callers that want
    more than the final report (per-PEG stats, cache forensics, …)."""

    loaded: LoadedMatrix
    scheduled: ScheduledMatrix
    cycles: CycleResult
    report_artifact: ReportArtifact

    #: Which tier produced the report (``exact`` built a schedule and
    #: ran the cycle accounting; see :class:`EstimateResult`).
    fidelity = "exact"

    @property
    def report(self) -> SpMVReport:
        return self.report_artifact.report

    @property
    def schedule(self) -> TiledSchedule:
        return self.scheduled.schedule


@dataclass(frozen=True)
class EstimateArtifact:
    """Estimate-tier output: a predicted report, no schedule behind it.

    ``predicted`` carries the estimator's schedule-shape numbers
    (including the uncalibrated stream for audit forensics) and
    ``tolerance`` the calibrated error bound the audit gate enforces.
    """

    report: SpMVReport
    predicted: PredictedSchedule
    tolerance: float
    fingerprint: str


@dataclass(frozen=True)
class EstimateResult:
    """The estimate-tier analogue of :class:`PipelineResult`.

    Exposes the same ``.report`` surface so serving and CLI callers are
    tier-agnostic; there is no ``.schedule`` — nothing was scheduled,
    which is the whole point of the tier.
    """

    loaded: LoadedMatrix
    estimate_artifact: EstimateArtifact

    fidelity = "estimate"

    @property
    def report(self) -> SpMVReport:
        return self.estimate_artifact.report

    @property
    def predicted(self) -> PredictedSchedule:
        return self.estimate_artifact.predicted
