"""Stable content fingerprints for pipeline artifacts.

A fingerprint is a hex SHA-256 digest over a *canonical encoding* of the
inputs that determine an artifact's contents.  The rules fix the cache-key
bug class at the root:

* **configs** contribute every dataclass field, recursively (a clock or
  window change is a different fingerprint, not a stale hit);
* **schedulers** contribute their registry *version tag* and, for
  pass-based schemes, the per-pass signature chain, so a revised
  algorithm — or a single revised pass — can never be served a previous
  revision's schedule;
* **matrices** contribute either their seeded spec (cheap, identity-stable
  across processes) or, for in-memory matrices with no spec, the actual
  COO payload.

The canonical encoding itself (`_encode`/:func:`fingerprint`/
:func:`fingerprint_config`) lives in
:mod:`repro.scheduling.passes.fingerprint` so the pass pipeline can chain
per-pass digests without importing the pipeline layer; this module
re-exports it and adds the matrix/source rules, which need the format
converters.

Fingerprints are plain strings: hashable, JSON-safe, usable as disk cache
keys and as telemetry attributes.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..scheduling.passes.fingerprint import (  # noqa: F401  (re-exports)
    _encode,
    fingerprint,
    fingerprint_config,
)


def fingerprint_matrix(matrix: Any) -> str:
    """Content fingerprint of a COO/CSR/CSC/ELL matrix payload."""
    from ..formats.convert import to_coo

    coo = to_coo(matrix)
    return fingerprint(
        "matrix", coo.shape[0], coo.shape[1], coo.rows, coo.cols, coo.values
    )


def fingerprint_source(source: Any) -> str:
    """Fingerprint of a matrix *source* (spec or in-memory payload).

    Seeded specs (:class:`~repro.matrices.named.MatrixSpec`,
    :class:`~repro.matrices.collection.CorpusSpec`) fingerprint by their
    fields — the matrix is a pure function of the spec, so this is both
    cheap and stable across processes.  Raw matrices fall back to
    :func:`fingerprint_matrix` over their payload.
    """
    if dataclasses.is_dataclass(source) and not isinstance(source, type):
        return fingerprint("spec", type(source).__name__, source)
    return fingerprint_matrix(source)
