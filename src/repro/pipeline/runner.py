"""The pipeline runner: one execution path for every flow.

:class:`PipelineRunner` strings the four stages together —

.. code-block:: text

    load ──▶ schedule ──▶ simulate ──▶ metrics
      │          │            │            │
      ▼          ▼            ▼            ▼
  LoadedMatrix ScheduledMatrix CycleResult SpMVReport

— resolving scheme names through the registry, fingerprinting each
artifact, consulting the :class:`~repro.pipeline.store.ArtifactStore`
(when one is attached) before recomputing, and wrapping every stage in a
``pipeline.<stage>`` telemetry span.

Two operating modes:

* ``PipelineRunner()`` — no store; every stage recomputes.  This is what
  the accelerator façades use: ``ChasonAccelerator.analyze`` must always
  rebuild the schedule so its :class:`MigrationReport` side-channel is
  populated.
* ``PipelineRunner(global_artifact_store())`` — whole-flow caching; used
  by the experiment workers, the corpus runner and the benchmark harness
  where the same (matrix, scheme, config) triple recurs.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Union

import numpy as np

from .. import telemetry
from ..config import AcceleratorConfig
from ..errors import ConfigError, EstimationError, ShapeError
from ..estimator.calibration import DEFAULT_CALIBRATION, CalibrationTable
from ..estimator.fidelity import resolve_fidelity
from ..scheduling.base import TiledSchedule
from ..scheduling.registry import SchedulerSpec, get_scheme
from ..sim.engine import (
    ENGINE_VERSION,
    SpMVExecution,
    execute_schedule,
)
from .artifacts import (
    CycleResult,
    EstimateResult,
    LoadedMatrix,
    PipelineResult,
    ReportArtifact,
    ScheduledMatrix,
    SpMVReport,
)
from .fingerprint import fingerprint, fingerprint_config
from .stages import (
    EstimateStage,
    LoadStage,
    MetricsStage,
    ScheduleStage,
    SimulateStage,
)
from .store import ArtifactStore

_LOAD = LoadStage()
_SCHEDULE = ScheduleStage()
_SIMULATE = SimulateStage()
_METRICS = MetricsStage()
_ESTIMATE = EstimateStage()

#: Result of either tier: both expose ``.report`` and ``.fidelity``.
AnalysisResult = Union[PipelineResult, EstimateResult]


class PreparedSpMV:
    """A matrix held ready for repeated functional execution.

    The load + schedule stages (including their fingerprint chains and
    cache lookups) ran exactly once, at :meth:`PipelineRunner.prepare`
    time; :meth:`execute` then re-runs only the simulate/execute stage
    against a new iterate vector.  This is the iteration re-execute path
    the session subsystem keeps device-resident: the schedule identity
    is the pass-signature fingerprint chain (``fingerprint``), so two
    prepared handles for the same (matrix, scheme, config) are
    interchangeable by construction.

    ``runner`` stays an attribute (not a closure) so a device's
    fault-injecting runner wrapper can substitute itself after
    ``prepare`` and keep injected faults on the per-iteration path.
    """

    __slots__ = ("runner", "loaded", "scheduled", "executions")

    def __init__(self, runner: "PipelineRunner", loaded: LoadedMatrix,
                 scheduled: ScheduledMatrix):
        self.runner = runner
        self.loaded = loaded
        self.scheduled = scheduled
        self.executions = 0

    @property
    def fingerprint(self) -> str:
        """The schedule's pass-signature fingerprint chain digest."""
        return self.scheduled.fingerprint

    @property
    def n_cols(self) -> int:
        return self.loaded.matrix.n_cols

    def execute(self, x: np.ndarray) -> SpMVExecution:
        """One functional ``y = A x`` against the resident schedule."""
        x = np.asarray(x, dtype=np.float32)
        if x.shape != (self.n_cols,):
            raise ShapeError(
                f"x of shape {x.shape} incompatible with "
                f"{self.loaded.matrix.shape}"
            )
        t = telemetry.get()
        with t.span(
            "pipeline.reexecute",
            scheme=self.scheduled.scheme,
            schedule=self.scheduled.fingerprint[:12],
        ):
            execution = self.runner.execute(self.scheduled, x)
        self.executions += 1
        return execution


class PipelineRunner:
    """Drives the load → schedule → simulate → metrics flow."""

    def __init__(self, store: Optional[ArtifactStore] = None):
        self.store = store
        # (scheme, config fp, kwargs fp) → PassArtifactCache: the warm
        # per-pass artifact caches behind :meth:`reschedule` sessions.
        self._reschedule_sessions: dict = {}
        #: Pass execution counts of the last :meth:`reschedule` call.
        self.last_reschedule_stats = None

    # -- stage 1: load ---------------------------------------------------

    def load(self, source: Any) -> LoadedMatrix:
        """Materialise a matrix source into a :class:`LoadedMatrix`.

        ``source`` may be a named-matrix string, a
        :class:`~repro.matrices.named.MatrixSpec`, a
        :class:`~repro.matrices.collection.CorpusSpec`, or an in-memory
        matrix (COO/CSR/CSC/ELL).  Spec-backed sources are served from
        the store when attached; in-memory matrices are wrapped directly
        (they are already materialised, caching them would only pin
        memory).
        """
        if isinstance(source, LoadedMatrix):
            return source
        kind, label, digest = _LOAD.describe(source)
        t = telemetry.get()
        with t.span("pipeline.load", source=label, kind=kind):
            if self.store is not None and kind == "spec":
                return self.store.get_or_build(
                    _LOAD.name, digest, lambda: _LOAD.run(source)
                )
            return _LOAD.run(source)

    # -- stage 2: schedule -----------------------------------------------

    def schedule(
        self,
        source: Any,
        scheme: Any,
        config: Optional[AcceleratorConfig] = None,
        **scheduler_kwargs: Any,
    ) -> ScheduledMatrix:
        """Schedule a matrix under a registered scheme.

        ``scheme`` is a registry name or a :class:`SchedulerSpec`;
        ``config`` defaults to the spec's ``default_config``.  Extra
        keyword arguments go to the scheduler verbatim and participate in
        the fingerprint.
        """
        loaded = self.load(source)
        spec = scheme if isinstance(scheme, SchedulerSpec) else get_scheme(scheme)
        if config is None:
            config = spec.default_config
        digest = _SCHEDULE.fingerprint_for(
            loaded.fingerprint, spec, config, scheduler_kwargs
        )
        t = telemetry.get()
        with t.span(
            "pipeline.schedule", scheme=spec.name, source=loaded.label
        ):
            if self.store is None:
                return _SCHEDULE.run(
                    loaded, spec, config, scheduler_kwargs, digest
                )
            cache = self.store.schedule_cache
            if cache is None:
                return self.store.get_or_build(
                    _SCHEDULE.name,
                    digest,
                    lambda: _SCHEDULE.run(
                        loaded, spec, config, scheduler_kwargs, digest
                    ),
                )
            # Route schedules through the two-tier ScheduleCache so the
            # pipeline shares its entries (and the optional §3.2 disk
            # images) with pre-pipeline call sites.  The pass tier rides
            # along: a whole-schedule miss (say a MigratePass-only config
            # change) can still resume every tile from its cached
            # upstream pass artifacts.
            built: dict = {}

            def build() -> TiledSchedule:
                artifact = _SCHEDULE.run(
                    loaded, spec, config, scheduler_kwargs, digest,
                    pass_cache=cache.pass_tier,
                )
                built["artifact"] = artifact
                return artifact.schedule

            schedule = cache.get_or_build(
                digest, config, spec.name, build, version=spec.version
            )
            if "artifact" in built:
                self.store._count(self.store.misses, _SCHEDULE.name)
                return built["artifact"]
            self.store._count(self.store.hits, _SCHEDULE.name)
            return ScheduledMatrix(
                schedule=schedule,
                scheme=spec.name,
                config=config,
                matrix_fingerprint=loaded.fingerprint,
                fingerprint=digest,
                migration=None,
            )

    def reschedule(
        self,
        source: Any,
        scheme: Any,
        config: Optional[AcceleratorConfig] = None,
        **scheduler_kwargs: Any,
    ) -> ScheduledMatrix:
        """Incrementally reschedule an (edited) matrix.

        The first call for a given (scheme, config, kwargs) session is a
        cold schedule that warms a per-pass artifact cache; every later
        call diffs per-pass input fingerprints against that cache and
        re-runs only the invalidated passes — an in-place edit to the
        matrix rebuilds only the tiles it touched.  The result is
        byte-identical to a cold :meth:`schedule` of the same matrix.

        Pass execution counts land in :attr:`last_reschedule_stats`
        (a :class:`~repro.scheduling.passes.PassRunStats`).

        Raises :class:`~repro.errors.ConfigError` for schemes that do
        not declare a pass pipeline.
        """
        from ..scheduling.passes import PassArtifactCache

        loaded = self.load(source)
        spec = scheme if isinstance(scheme, SchedulerSpec) else get_scheme(scheme)
        if config is None:
            config = spec.default_config
        if spec.plan is None:
            raise ConfigError(
                f"scheme {spec.name!r} declares no pass pipeline; "
                f"reschedule only works for pass-based schemes"
            )
        public = {
            k: scheduler_kwargs[k]
            for k in sorted(scheduler_kwargs)
            if not k.startswith("_") and k != "report"
        }
        session_key = (
            spec.name, fingerprint_config(config), fingerprint(public)
        )
        cache = self._reschedule_sessions.get(session_key)
        cold = cache is None
        if cold:
            cache = PassArtifactCache()
            self._reschedule_sessions[session_key] = cache
        digest = _SCHEDULE.fingerprint_for(
            loaded.fingerprint, spec, config, scheduler_kwargs
        )
        t = telemetry.get()
        with t.span(
            "pipeline.reschedule",
            scheme=spec.name,
            source=loaded.label,
            cold=cold,
        ):
            artifact = _SCHEDULE.run(
                loaded, spec, config, scheduler_kwargs, digest,
                pass_cache=cache,
            )
        self.last_reschedule_stats = cache.last_stats
        return artifact

    def adopt(
        self, source: Any, schedule: TiledSchedule
    ) -> ScheduledMatrix:
        """Wrap an externally built schedule as a pipeline artifact.

        Used by façades that accept a precomputed schedule
        (``analyze(..., schedule=...)``).  The fingerprint matches what
        :meth:`schedule` would produce for the same (matrix, scheme,
        config) with no extra kwargs, so downstream simulate/metrics
        artifacts are shared either way; unregistered scheme names get an
        empty version tag.
        """
        loaded = self.load(source)
        try:
            spec: Optional[SchedulerSpec] = get_scheme(schedule.scheme)
        except ConfigError:
            spec = None
        if spec is not None:
            digest = _SCHEDULE.fingerprint_for(
                loaded.fingerprint, spec, schedule.config, {}
            )
        else:
            digest = fingerprint(
                "schedule",
                loaded.fingerprint,
                schedule.scheme,
                "",
                fingerprint_config(schedule.config),
                {},
            )
        return ScheduledMatrix(
            schedule=schedule,
            scheme=schedule.scheme,
            config=schedule.config,
            matrix_fingerprint=loaded.fingerprint,
            fingerprint=digest,
            migration=None,
        )

    # -- stage 3: simulate -----------------------------------------------

    def simulate(self, scheduled: ScheduledMatrix) -> CycleResult:
        """Analytic cycle accounting of a scheduled matrix."""
        digest = _SIMULATE.fingerprint_for(scheduled.fingerprint)
        t = telemetry.get()
        with t.span("pipeline.simulate", scheme=scheduled.scheme):
            if self.store is not None:
                return self.store.get_or_build(
                    _SIMULATE.name,
                    digest,
                    lambda: _SIMULATE.run(scheduled, digest),
                )
            return _SIMULATE.run(scheduled, digest)

    def execute(
        self, scheduled: ScheduledMatrix, x: np.ndarray
    ) -> SpMVExecution:
        """Functional execution (never cached: y depends on ``x``)."""
        return execute_schedule(scheduled.schedule, x, scheduled.config)

    # -- stage 4: metrics ------------------------------------------------

    def metrics(
        self,
        scheduled: ScheduledMatrix,
        cycles: CycleResult,
        accelerator: Optional[str] = None,
        power_watts: Optional[float] = None,
    ) -> ReportArtifact:
        """Assemble the §5.3 report; defaults come from the registry."""
        if accelerator is None or power_watts is None:
            spec = get_scheme(scheduled.scheme)
            if accelerator is None:
                accelerator = spec.accelerator_name
            if power_watts is None:
                power_watts = spec.power_watts()
        digest = _METRICS.fingerprint_for(
            cycles.fingerprint, accelerator, power_watts
        )
        t = telemetry.get()
        with t.span(
            "pipeline.metrics",
            scheme=scheduled.scheme,
            accelerator=accelerator,
        ):
            if self.store is not None:
                return self.store.get_or_build(
                    _METRICS.name,
                    digest,
                    lambda: _METRICS.run(
                        scheduled, cycles, accelerator, power_watts, digest
                    ),
                )
            return _METRICS.run(
                scheduled, cycles, accelerator, power_watts, digest
            )

    # -- the estimate tier -----------------------------------------------

    def estimate(
        self,
        source: Any,
        scheme: Any,
        config: Optional[AcceleratorConfig] = None,
        accelerator: Optional[str] = None,
        power_watts: Optional[float] = None,
        calibration: Optional[CalibrationTable] = None,
    ) -> EstimateResult:
        """The estimate tier: load → analytical prediction, no schedule.

        Raises :class:`~repro.errors.EstimationError` when the scheme
        has no predictor or no calibration entry — the ``auto`` tier
        catches that and falls back to :meth:`analyze`.
        """
        loaded = self.load(source)
        spec = scheme if isinstance(scheme, SchedulerSpec) else get_scheme(scheme)
        if config is None:
            config = spec.default_config
        if accelerator is None:
            accelerator = spec.accelerator_name
        if power_watts is None:
            power_watts = spec.power_watts()
        if calibration is None:
            calibration = DEFAULT_CALIBRATION
        digest = _ESTIMATE.fingerprint_for(
            loaded.fingerprint, spec, config, calibration, accelerator,
            power_watts,
        )
        t = telemetry.get()
        with t.span(
            "pipeline.estimate", scheme=spec.name, source=loaded.label
        ):
            if self.store is not None:
                artifact = self.store.get_or_build(
                    _ESTIMATE.name,
                    digest,
                    lambda: _ESTIMATE.run(
                        loaded, spec, config, calibration, accelerator,
                        power_watts, digest,
                    ),
                )
            else:
                artifact = _ESTIMATE.run(
                    loaded, spec, config, calibration, accelerator,
                    power_watts, digest,
                )
        return EstimateResult(loaded=loaded, estimate_artifact=artifact)

    # -- whole-flow conveniences ----------------------------------------

    def analyze(
        self,
        source: Any,
        scheme: Any,
        config: Optional[AcceleratorConfig] = None,
        accelerator: Optional[str] = None,
        power_watts: Optional[float] = None,
        schedule: Optional[TiledSchedule] = None,
        fidelity: Optional[str] = None,
        calibration: Optional[CalibrationTable] = None,
        **scheduler_kwargs: Any,
    ) -> AnalysisResult:
        """The full analytic flow: load → schedule → simulate → metrics.

        ``fidelity`` selects the tier (explicit > ``REPRO_FIDELITY`` >
        ``exact``): ``estimate`` routes through :meth:`estimate`,
        ``auto`` tries the estimator and falls back to exact when the
        scheme is not covered.  An adopted ``schedule`` or extra
        scheduler kwargs always force the exact tier — the analytical
        model knows nothing about either.
        """
        tier = resolve_fidelity(fidelity, default="exact")
        if tier != "exact" and schedule is None and not scheduler_kwargs:
            try:
                return self.estimate(
                    source, scheme, config, accelerator, power_watts,
                    calibration,
                )
            except EstimationError:
                if tier == "estimate":
                    raise
        loaded = self.load(source)
        if schedule is not None:
            scheduled = self.adopt(loaded, schedule)
        else:
            scheduled = self.schedule(
                loaded, scheme, config, **scheduler_kwargs
            )
        cycles = self.simulate(scheduled)
        report = self.metrics(scheduled, cycles, accelerator, power_watts)
        return PipelineResult(
            loaded=loaded,
            scheduled=scheduled,
            cycles=cycles,
            report_artifact=report,
        )

    def prepare(
        self,
        source: Any,
        scheme: Any,
        config: Optional[AcceleratorConfig] = None,
        **scheduler_kwargs: Any,
    ) -> PreparedSpMV:
        """Load + schedule once, for repeated functional execution.

        The returned :class:`PreparedSpMV` holds the loaded matrix and
        its scheduled artifact (a schedule-cache hit when one is warm);
        every subsequent ``execute(x)`` skips load, schedule and all
        fingerprint hashing — the per-iteration path of an iterative
        solver session.
        """
        loaded = self.load(source)
        scheduled = self.schedule(loaded, scheme, config,
                                  **scheduler_kwargs)
        return PreparedSpMV(self, loaded, scheduled)

    def run(
        self,
        source: Any,
        x: np.ndarray,
        scheme: Any,
        config: Optional[AcceleratorConfig] = None,
        accelerator: Optional[str] = None,
        power_watts: Optional[float] = None,
        schedule: Optional[TiledSchedule] = None,
        **scheduler_kwargs: Any,
    ) -> Tuple[SpMVExecution, SpMVReport]:
        """The functional flow: execute the datapath, then report.

        The report is assembled from the *executed* cycle breakdown
        (identical to the analytic one — ``estimate_cycles`` mirrors
        ``execute_schedule`` exactly), so the execution is never wasted.
        """
        loaded = self.load(source)
        if schedule is not None:
            scheduled = self.adopt(loaded, schedule)
        else:
            scheduled = self.schedule(
                loaded, scheme, config, **scheduler_kwargs
            )
        execution = self.execute(scheduled, x)
        cycles = CycleResult(
            cycles=execution.cycles,
            schedule_fingerprint=scheduled.fingerprint,
            fingerprint=fingerprint(
                "cycles", scheduled.fingerprint, ENGINE_VERSION
            ),
        )
        report = self.metrics(scheduled, cycles, accelerator, power_watts)
        return execution, report.report
