"""The four built-in pipeline stages.

Each stage is a tiny object satisfying the
:class:`~repro.pipeline.artifacts.Stage` protocol: a ``name`` (telemetry
span suffix and store partition) plus a pure ``run``.  Stages also know
how to **fingerprint** their output from the fingerprints of their
inputs, which is what the runner uses to decide cached-vs-recompute —
``run`` is only ever called on a miss.

The metrics math here is the reference implementation of the §5.3
report; :meth:`repro.core.accelerator.StreamingAccelerator.report_from_cycles`
delegates to it, and the golden differential test in
``tests/test_pipeline.py`` pins it against the pre-pipeline façade
formulas field by field.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple

from ..config import AcceleratorConfig
from ..errors import DatasetError
from ..estimator.calibration import (
    CALIBRATION_VERSION,
    CalibrationTable,
)
from ..estimator.model import ESTIMATOR_VERSION, predict_schedule
from ..matrices.collection import CorpusSpec
from ..matrices.named import NAMED_MATRICES, MatrixSpec, generate_named
from ..metrics import (
    bandwidth_efficiency,
    energy_efficiency,
    pe_underutilization_percent,
    throughput_gflops,
)
from ..scheduling.base import TiledSchedule
from ..scheduling.crhcs import MigrationReport
from ..scheduling.registry import SchedulerSpec, get_scheme
from ..sim.engine import ENGINE_VERSION, CycleBreakdown, estimate_cycles
from .artifacts import (
    CycleResult,
    EstimateArtifact,
    LoadedMatrix,
    ReportArtifact,
    ScheduledMatrix,
    SpMVReport,
)
from .fingerprint import (
    fingerprint,
    fingerprint_config,
    fingerprint_matrix,
    fingerprint_source,
)

#: Metrics-assembly revision (fingerprint component).
METRICS_VERSION = "1"


class LoadStage:
    """matrix source → :class:`LoadedMatrix`."""

    name = "load"

    @staticmethod
    def describe(source: Any) -> Tuple[str, str, str]:
        """(source_kind, label, fingerprint) without materialising."""
        if isinstance(source, str):
            if source not in NAMED_MATRICES:
                known = ", ".join(sorted(NAMED_MATRICES))
                raise DatasetError(
                    f"unknown matrix {source!r}; known: {known}"
                )
            spec = NAMED_MATRICES[source]
            return "spec", spec.name, fingerprint_source(spec)
        if isinstance(source, MatrixSpec):
            return "spec", source.name, fingerprint_source(source)
        if isinstance(source, CorpusSpec):
            return "spec", f"corpus#{source.index}", fingerprint_source(source)
        return "memory", f"{type(source).__name__}", fingerprint_matrix(source)

    def run(self, source: Any) -> LoadedMatrix:
        kind, label, digest = self.describe(source)
        if isinstance(source, str):
            matrix = generate_named(source)
        elif isinstance(source, MatrixSpec):
            matrix = generate_named(source.name)
        elif isinstance(source, CorpusSpec):
            matrix = source.generate()
        else:
            matrix = source
        return LoadedMatrix(
            matrix=matrix, source_kind=kind, label=label, fingerprint=digest
        )


class ScheduleStage:
    """:class:`LoadedMatrix` → :class:`ScheduledMatrix` via the registry."""

    name = "schedule"

    @staticmethod
    def fingerprint_for(
        loaded_fingerprint: str,
        spec: SchedulerSpec,
        config: AcceleratorConfig,
        scheduler_kwargs: dict,
    ) -> str:
        # Private (``_``-prefixed) kwargs are side channels — the pass
        # cache handle, not scheduling parameters — and never shape the
        # output, so they stay out of the key.  For pass-based schemes
        # the per-pass signature chain folds in each pass's resolved
        # parameters and version: a single revised pass is a new key.
        public = {
            k: scheduler_kwargs[k]
            for k in sorted(scheduler_kwargs)
            if not k.startswith("_")
        }
        return fingerprint(
            "schedule",
            loaded_fingerprint,
            spec.name,
            spec.version,
            fingerprint_config(config),
            public,
            spec.pass_signature(config, scheduler_kwargs),
        )

    def run(
        self,
        loaded: LoadedMatrix,
        spec: SchedulerSpec,
        config: AcceleratorConfig,
        scheduler_kwargs: dict,
        digest: str,
        pass_cache=None,
    ) -> ScheduledMatrix:
        kwargs = dict(scheduler_kwargs)
        migration: Optional[MigrationReport] = None
        if spec.report_kwarg and "report" not in kwargs:
            migration = MigrationReport()
            kwargs["report"] = migration
        elif "report" in kwargs:
            migration = kwargs["report"]
        if pass_cache is not None and spec.plan is not None:
            kwargs.setdefault("_pass_cache", pass_cache)
        schedule = spec.scheduler(loaded.matrix, config, **kwargs)
        # ``scheme`` is the *registry* name (e.g. ``crhcs_rebuild``), the
        # schedule's own tag stays the algorithm family it reports.
        return ScheduledMatrix(
            schedule=schedule,
            scheme=spec.name,
            config=config,
            matrix_fingerprint=loaded.fingerprint,
            fingerprint=digest,
            migration=migration,
        )


class SimulateStage:
    """:class:`ScheduledMatrix` → :class:`CycleResult` (analytic model)."""

    name = "simulate"

    @staticmethod
    def fingerprint_for(schedule_fingerprint: str) -> str:
        return fingerprint("cycles", schedule_fingerprint, ENGINE_VERSION)

    def run(self, scheduled: ScheduledMatrix, digest: str) -> CycleResult:
        cycles = estimate_cycles(scheduled.schedule, scheduled.config)
        return CycleResult(
            cycles=cycles,
            schedule_fingerprint=scheduled.fingerprint,
            fingerprint=digest,
        )


class MetricsStage:
    """schedule + cycles → :class:`SpMVReport` (§5.3, Table 3)."""

    name = "metrics"

    @staticmethod
    def fingerprint_for(
        cycles_fingerprint: str, accelerator: str, power_watts: float
    ) -> str:
        return fingerprint(
            "report", cycles_fingerprint, METRICS_VERSION, accelerator,
            power_watts,
        )

    @staticmethod
    def assemble(
        schedule: TiledSchedule,
        cycles: CycleBreakdown,
        config: AcceleratorConfig,
        accelerator: str,
        power_watts: float,
    ) -> SpMVReport:
        """The Eqs. 4–7 metrics from a schedule and its cycle count."""
        latency_seconds = cycles.total / config.frequency_hz
        gflops = throughput_gflops(
            schedule.nnz, schedule.n_cols, latency_seconds
        )
        bandwidth = config.streaming_bandwidth_gbps
        return SpMVReport(
            accelerator=accelerator,
            scheme=schedule.scheme,
            n_rows=schedule.n_rows,
            n_cols=schedule.n_cols,
            nnz=schedule.nnz,
            stream_cycles=cycles.stream,
            total_cycles=cycles.total,
            latency_ms=latency_seconds * 1e3,
            throughput_gflops=gflops,
            underutilization_pct=pe_underutilization_percent(
                schedule.total_stalls, schedule.nnz
            ),
            traffic_bytes=schedule.traffic_bytes,
            bandwidth_gbps=bandwidth,
            bandwidth_efficiency=bandwidth_efficiency(gflops, bandwidth),
            power_watts=power_watts,
            energy_efficiency=energy_efficiency(gflops, power_watts),
            migrated=schedule.migrated_count,
        )

    def run(
        self,
        scheduled: ScheduledMatrix,
        cycles: CycleResult,
        accelerator: str,
        power_watts: float,
        digest: str,
    ) -> ReportArtifact:
        report = self.assemble(
            scheduled.schedule,
            cycles.cycles,
            scheduled.config,
            accelerator,
            power_watts,
        )
        return ReportArtifact(report=report, fingerprint=digest)


class EstimateStage:
    """:class:`LoadedMatrix` → :class:`EstimateArtifact` (estimate tier).

    Replaces schedule + simulate + metrics with one analytical step: the
    per-scheme closed-form model predicts the schedule shape and cycle
    breakdown, and the §5.3 report is assembled from the prediction with
    the same formulas :class:`MetricsStage` applies to a real schedule.
    """

    name = "estimate"

    @staticmethod
    def fingerprint_for(
        loaded_fingerprint: str,
        spec: SchedulerSpec,
        config: AcceleratorConfig,
        calibration: CalibrationTable,
        accelerator: str,
        power_watts: float,
    ) -> str:
        return fingerprint(
            "estimate",
            loaded_fingerprint,
            spec.name,
            spec.version,
            fingerprint_config(config),
            ESTIMATOR_VERSION,
            CALIBRATION_VERSION,
            calibration.digest(),
            accelerator,
            power_watts,
        )

    def run(
        self,
        loaded: LoadedMatrix,
        spec: SchedulerSpec,
        config: AcceleratorConfig,
        calibration: CalibrationTable,
        accelerator: str,
        power_watts: float,
        digest: str,
    ) -> EstimateArtifact:
        entry = calibration.for_scheme(spec.name)
        predicted = predict_schedule(
            loaded.matrix, spec.name, config, scale=entry.scale
        )
        cycles = predicted.cycles
        latency_seconds = cycles.total / config.frequency_hz
        gflops = throughput_gflops(
            predicted.nnz, predicted.n_cols, latency_seconds
        )
        bandwidth = config.streaming_bandwidth_gbps
        report = SpMVReport(
            accelerator=accelerator,
            scheme=spec.name,
            n_rows=predicted.n_rows,
            n_cols=predicted.n_cols,
            nnz=predicted.nnz,
            stream_cycles=cycles.stream,
            total_cycles=cycles.total,
            latency_ms=latency_seconds * 1e3,
            throughput_gflops=gflops,
            underutilization_pct=pe_underutilization_percent(
                predicted.total_stalls, predicted.nnz
            ),
            traffic_bytes=predicted.traffic_bytes,
            bandwidth_gbps=bandwidth,
            bandwidth_efficiency=bandwidth_efficiency(gflops, bandwidth),
            power_watts=power_watts,
            energy_efficiency=energy_efficiency(gflops, power_watts),
            migrated=predicted.migrated,
        )
        return EstimateArtifact(
            report=report,
            predicted=predicted,
            tolerance=entry.tolerance,
            fingerprint=digest,
        )
