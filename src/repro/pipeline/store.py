"""Whole-flow content-addressed artifact store.

Extends the schedule-only memoisation of :mod:`repro.scheduling.cache`
to every pipeline stage: artifacts are stored under their content
fingerprint, so a corpus re-run with one changed stage recomputes only
that stage and the ones downstream of it —

* change a scheduler version or an ``AcceleratorConfig`` field → the
  load artifact still hits, schedule/simulate/metrics rebuild;
* change only the accelerator power model → load, schedule and simulate
  all hit, only metrics rebuilds;
* change the matrix → everything for that matrix rebuilds, entries for
  other matrices are untouched.

Schedule artifacts are special-cased through a
:class:`~repro.scheduling.cache.ScheduleCache` so they keep the existing
two-tier behaviour (in-memory LRU + optional on-disk §3.2 wire images
via ``REPRO_SCHEDULE_CACHE_DIR``).  All other stages live in one bounded
in-memory LRU sized by ``REPRO_PIPELINE_CACHE_SIZE`` (default 64
artifacts, ``0`` disables the generic tier).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from .. import telemetry
from ..scheduling.cache import ScheduleCache, global_schedule_cache

_SIZE_ENV = "REPRO_PIPELINE_CACHE_SIZE"
_DEFAULT_SIZE = 64

_StoreKey = Tuple[str, str]  # (stage name, fingerprint)


class ArtifactStore:
    """A bounded LRU of stage artifacts keyed by content fingerprint."""

    def __init__(
        self,
        capacity: int = _DEFAULT_SIZE,
        schedule_cache: Optional[ScheduleCache] = None,
    ):
        self.capacity = max(capacity, 0)
        #: Backing tier for schedule artifacts; ``None`` falls back to
        #: the generic LRU (no disk tier).
        self.schedule_cache = schedule_cache
        self._entries: "OrderedDict[_StoreKey, object]" = OrderedDict()
        # Guards the LRU and stats so serving worker threads can share
        # one store.  Builds run outside the lock: two threads racing on
        # the same fingerprint both build the same artifact (stages are
        # pure), and the last insert wins harmlessly.
        self._lock = threading.RLock()
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, table: Dict[str, int], stage: str) -> None:
        with self._lock:
            table[stage] = table.get(stage, 0) + 1

    def stage_hits(self, stage: str) -> int:
        return self.hits.get(stage, 0)

    def stage_misses(self, stage: str) -> int:
        return self.misses.get(stage, 0)

    def get_or_build(
        self, stage: str, digest: str, build: Callable[[], object]
    ) -> object:
        """Return the artifact for ``(stage, digest)``, building on miss."""
        if self.capacity == 0:
            self._count(self.misses, stage)
            return build()
        key = (stage, digest)
        t = telemetry.get()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._count(self.hits, stage)
        if cached is not None:
            if t.enabled:
                t.counter("pipeline.cache.hits", 1, stage=stage)
            return cached
        self._count(self.misses, stage)
        if t.enabled:
            t.counter("pipeline.cache.misses", 1, stage=stage)
        artifact = build()
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return artifact

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = {}
            self.misses = {}


_GLOBAL: Optional[ArtifactStore] = None


def global_artifact_store() -> ArtifactStore:
    """The process-wide store, configured from the environment once.

    Shares its schedule tier with
    :func:`repro.scheduling.cache.global_schedule_cache`, so pipeline and
    pre-pipeline call sites memoise into the same place.
    """
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ArtifactStore(
            capacity=pipeline_cache_capacity(),
            schedule_cache=global_schedule_cache(),
        )
    return _GLOBAL


def pipeline_cache_capacity() -> int:
    """The configured store capacity; the default when unset or invalid.

    An unparsable value (``REPRO_PIPELINE_CACHE_SIZE=lots``) falls back
    to the default but is no longer silent: a one-time warning goes
    through the telemetry/logging path (matching
    ``REPRO_CORPUS_WORKERS``).
    """
    raw = os.environ.get(_SIZE_ENV, "").strip()
    if not raw:
        return _DEFAULT_SIZE
    try:
        return int(raw)
    except ValueError:
        telemetry.warn_once(
            "invalid_pipeline_cache_size",
            f"{_SIZE_ENV}={raw!r} is not an integer; "
            f"falling back to the default ({_DEFAULT_SIZE} artifacts)",
        )
        return _DEFAULT_SIZE
