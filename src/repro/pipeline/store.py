"""Whole-flow content-addressed artifact store.

Extends the schedule-only memoisation of :mod:`repro.scheduling.cache`
to every pipeline stage: artifacts are stored under their content
fingerprint, so a corpus re-run with one changed stage recomputes only
that stage and the ones downstream of it —

* change a scheduler version or an ``AcceleratorConfig`` field → the
  load artifact still hits, schedule/simulate/metrics rebuild;
* change only the accelerator power model → load, schedule and simulate
  all hit, only metrics rebuilds;
* change the matrix → everything for that matrix rebuilds, entries for
  other matrices are untouched.

Schedule artifacts are special-cased through a
:class:`~repro.scheduling.cache.ScheduleCache` so they keep the existing
two-tier behaviour (in-memory LRU + optional on-disk §3.2 wire images
via ``REPRO_SCHEDULE_CACHE_DIR``).  All other stages live in one bounded
in-memory LRU sized by ``REPRO_PIPELINE_CACHE_SIZE`` (default 64
artifacts, ``0`` disables the generic tier).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from .. import telemetry
from ..scheduling.cache import ScheduleCache, global_schedule_cache

_SIZE_ENV = "REPRO_PIPELINE_CACHE_SIZE"
_DEFAULT_SIZE = 64

_StoreKey = Tuple[str, str]  # (stage name, fingerprint)


class ArtifactStore:
    """A bounded LRU of stage artifacts keyed by content fingerprint."""

    def __init__(
        self,
        capacity: int = _DEFAULT_SIZE,
        schedule_cache: Optional[ScheduleCache] = None,
    ):
        self.capacity = max(capacity, 0)
        #: Backing tier for schedule artifacts; ``None`` falls back to
        #: the generic LRU (no disk tier).
        self.schedule_cache = schedule_cache
        self._entries: "OrderedDict[_StoreKey, object]" = OrderedDict()
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, table: Dict[str, int], stage: str) -> None:
        table[stage] = table.get(stage, 0) + 1

    def stage_hits(self, stage: str) -> int:
        return self.hits.get(stage, 0)

    def stage_misses(self, stage: str) -> int:
        return self.misses.get(stage, 0)

    def get_or_build(
        self, stage: str, digest: str, build: Callable[[], object]
    ) -> object:
        """Return the artifact for ``(stage, digest)``, building on miss."""
        if self.capacity == 0:
            self._count(self.misses, stage)
            return build()
        key = (stage, digest)
        cached = self._entries.get(key)
        t = telemetry.get()
        if cached is not None:
            self._entries.move_to_end(key)
            self._count(self.hits, stage)
            if t.enabled:
                t.counter("pipeline.cache.hits", 1, stage=stage)
            return cached
        self._count(self.misses, stage)
        if t.enabled:
            t.counter("pipeline.cache.misses", 1, stage=stage)
        artifact = build()
        self._entries[key] = artifact
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return artifact

    def clear(self) -> None:
        self._entries.clear()
        self.hits = {}
        self.misses = {}


_GLOBAL: Optional[ArtifactStore] = None


def global_artifact_store() -> ArtifactStore:
    """The process-wide store, configured from the environment once.

    Shares its schedule tier with
    :func:`repro.scheduling.cache.global_schedule_cache`, so pipeline and
    pre-pipeline call sites memoise into the same place.
    """
    global _GLOBAL
    if _GLOBAL is None:
        raw = os.environ.get(_SIZE_ENV, "").strip()
        try:
            capacity = int(raw) if raw else _DEFAULT_SIZE
        except ValueError:
            capacity = _DEFAULT_SIZE
        _GLOBAL = ArtifactStore(
            capacity=capacity, schedule_cache=global_schedule_cache()
        )
    return _GLOBAL
