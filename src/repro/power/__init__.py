"""Power and energy models for every evaluated platform (§5.1, §6.2)."""

from .fpga import (
    CHASON_POWER_BREAKDOWN,
    FpgaPowerBreakdown,
    chason_power_breakdown,
)
from .devices import (
    DEVICE_POWER,
    DevicePower,
    measured_power,
)
from .energy import EnergyReport, energy_for_run, energy_per_nonzero_nj

__all__ = [
    "CHASON_POWER_BREAKDOWN",
    "FpgaPowerBreakdown",
    "chason_power_breakdown",
    "DEVICE_POWER",
    "DevicePower",
    "measured_power",
    "EnergyReport",
    "energy_for_run",
    "energy_per_nonzero_nj",
]
