"""Measured power of every evaluated platform (§5.3, §6.2).

These are the runtime power figures the paper feeds into Eq. 6:

* Chasoň ≈ 39 W and Serpens ≈ 36 W measured with ``xbutil`` (§6.2.2);
* Nvidia RTX 4090 ≈ 70 W and RTX A6000 ≈ 65 W average from
  ``nvidia-smi`` (§6.2.1);
* Intel Core i9-11980HK ≈ 132 W from the package-level RAPL counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError


@dataclass(frozen=True)
class DevicePower:
    """Measured runtime power of one platform."""

    name: str
    watts: float
    measurement: str

    def __post_init__(self) -> None:
        if self.watts <= 0:
            raise ConfigError(f"{self.name}: power must be positive")


DEVICE_POWER: Dict[str, DevicePower] = {
    "chason": DevicePower("Chasoň (Alveo U55c)", 39.0, "xbutil"),
    "serpens": DevicePower("Serpens (Alveo U55c)", 36.0, "xbutil"),
    "rtx4090": DevicePower("Nvidia RTX 4090 (cuSPARSE)", 70.0, "nvidia-smi"),
    "rtxa6000": DevicePower("Nvidia RTX A6000 (cuSPARSE)", 65.0, "nvidia-smi"),
    "i9": DevicePower("Intel Core i9-11980HK (MKL)", 132.0, "RAPL"),
}


def measured_power(device: str) -> float:
    """Runtime power in watts for one of the evaluated platforms."""
    key = device.lower()
    if key not in DEVICE_POWER:
        known = ", ".join(sorted(DEVICE_POWER))
        raise ConfigError(f"unknown device {device!r}; known: {known}")
    return DEVICE_POWER[key].watts
