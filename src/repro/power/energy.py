"""Energy accounting per SpMV run.

Eq. 6 reports efficiency as throughput per watt; this module goes one
level deeper and attributes the *energy of one run* to architectural
activities, using the Fig. 10 power split as the calibration point:

* **static + clocks + GTY** burn for the whole latency regardless of
  activity;
* **HBM** energy scales with the bytes actually streamed — the paper's
  data-transfer-reduction argument (§6.2.2) is an *energy* argument too:
  a 7× transfer reduction removes ≈7× of the dominant HBM energy;
* **logic/DSP/signals** scale with MAC activity, **BRAM/URAM** with
  on-chip accesses.

The attribution lets the benches show *why* Chasoň's energy efficiency
beats Serpens' despite its higher power draw: shorter runtime and far
fewer HBM beats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError
from .fpga import CHASON_POWER_BREAKDOWN, FpgaPowerBreakdown


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one SpMV run, attributed per component (joules)."""

    static_j: float
    hbm_j: float
    compute_j: float
    onchip_memory_j: float

    @property
    def total_j(self) -> float:
        return (
            self.static_j + self.hbm_j + self.compute_j
            + self.onchip_memory_j
        )

    @property
    def total_uj(self) -> float:
        return self.total_j * 1e6

    def fractions(self) -> Dict[str, float]:
        total = self.total_j or 1.0
        return {
            "static": self.static_j / total,
            "hbm": self.hbm_j / total,
            "compute": self.compute_j / total,
            "onchip_memory": self.onchip_memory_j / total,
        }


def energy_for_run(
    latency_seconds: float,
    traffic_bytes: int,
    macs: int,
    breakdown: FpgaPowerBreakdown = CHASON_POWER_BREAKDOWN,
    peak_traffic_bytes_per_second: float = 273e9,
    peak_macs_per_second: float = 128 * 301e6,
) -> EnergyReport:
    """Attribute one run's energy using the Fig. 10 calibration.

    Activity-proportional components draw their published power only for
    the fraction of peak activity the run sustains; the always-on share
    (static, clocks, transceivers) draws for the full latency.
    """
    if latency_seconds <= 0:
        raise ConfigError("latency must be positive")
    if traffic_bytes < 0 or macs < 0:
        raise ConfigError("activity counts must be non-negative")

    always_on_w = breakdown.static + breakdown.clocks + breakdown.gty
    hbm_utilisation = min(
        1.0,
        traffic_bytes / (peak_traffic_bytes_per_second * latency_seconds),
    )
    mac_utilisation = min(
        1.0, macs / (peak_macs_per_second * latency_seconds)
    )
    compute_w = (
        breakdown.logic + breakdown.dsp + breakdown.signals
    ) * mac_utilisation
    memory_w = (breakdown.bram + breakdown.uram) * mac_utilisation

    return EnergyReport(
        static_j=always_on_w * latency_seconds,
        hbm_j=breakdown.hbm * hbm_utilisation * latency_seconds,
        compute_j=compute_w * latency_seconds,
        onchip_memory_j=memory_w * latency_seconds,
    )


def energy_per_nonzero_nj(report: EnergyReport, nnz: int) -> float:
    """Nanojoules per processed non-zero — the per-element energy cost."""
    if nnz <= 0:
        raise ConfigError("nnz must be positive")
    return report.total_j / nnz * 1e9
