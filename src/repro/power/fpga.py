"""The FPGA power model and the Fig. 10 breakdown.

The paper reports Chasoň's estimated power on the U55c as 48.715 W with
the distribution of Fig. 10: HBM dominates (18.95 W), Chasoň's own logic
takes only 8 % (2.76 W) and the on-chip memories 3–4 % each.  The runtime
power measured with ``xbutil`` during the evaluation is lower — ≈39 W for
Chasoň and ≈36 W for Serpens (§6.2.2) — and that measured figure is what
the Eq. 6 energy-efficiency numbers use.

The breakdown scales with the architecture parameters so the resource
ablations can report estimated power: logic/BRAM/URAM/DSP components scale
with their resource counts relative to the published design, HBM power
scales with the number of active channels, and static/clock/GTY terms are
fixed platform costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import ChasonConfig, DEFAULT_CHASON
from ..errors import ConfigError


@dataclass(frozen=True)
class FpgaPowerBreakdown:
    """Per-component power in watts (Fig. 10)."""

    static: float
    clocks: float
    signals: float
    logic: float
    bram: float
    uram: float
    dsp: float
    gty: float
    hbm: float

    @property
    def total(self) -> float:
        return (
            self.static + self.clocks + self.signals + self.logic
            + self.bram + self.uram + self.dsp + self.gty + self.hbm
        )

    @property
    def dynamic(self) -> float:
        return self.total - self.static

    def as_dict(self) -> Dict[str, float]:
        return {
            "static": self.static,
            "clocks": self.clocks,
            "signals": self.signals,
            "logic": self.logic,
            "bram": self.bram,
            "uram": self.uram,
            "dsp": self.dsp,
            "gty": self.gty,
            "hbm": self.hbm,
        }

    def fractions(self) -> Dict[str, float]:
        total = self.total
        return {name: watts / total for name, watts in self.as_dict().items()}


#: Fig. 10 as published (48.715 W total, HBM 18.95 W, logic 8 %).
CHASON_POWER_BREAKDOWN = FpgaPowerBreakdown(
    static=12.845,
    clocks=4.18,
    signals=2.22,
    logic=2.76,
    bram=1.24,
    uram=1.51,
    dsp=0.56,
    gty=4.36,
    hbm=18.95,
)


def chason_power_breakdown(
    config: ChasonConfig = DEFAULT_CHASON,
) -> FpgaPowerBreakdown:
    """Estimated power of a Chasoň variant, scaled from Fig. 10.

    Dynamic components scale linearly with the driving quantity: logic,
    signals and DSP with the PE count; URAM with the ScUG provisioning;
    HBM with the used channels.  The published configuration returns the
    published breakdown exactly.
    """
    if not isinstance(config, ChasonConfig):
        raise ConfigError("chason_power_breakdown needs a ChasonConfig")
    reference = CHASON_POWER_BREAKDOWN
    base = DEFAULT_CHASON
    pe_scale = config.total_pes / base.total_pes
    uram_scale = (
        config.total_pes * config.scug_size
    ) / (base.total_pes * base.scug_size)
    hbm_scale = config.used_channels / base.used_channels
    return FpgaPowerBreakdown(
        static=reference.static,
        clocks=reference.clocks,
        signals=reference.signals * pe_scale,
        logic=reference.logic * pe_scale,
        bram=reference.bram * pe_scale,
        uram=reference.uram * uram_scale,
        dsp=reference.dsp * pe_scale,
        gty=reference.gty,
        hbm=reference.hbm * hbm_scale,
    )
