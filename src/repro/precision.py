"""Data-precision configurations (§5.5).

The paper's deployed design uses 32-bit floating-point values with 32 bits
of metadata: 64 bits per sparse element, eight elements per 512-bit HBM
beat, eight PEs per PEG.  §5.5 describes the trade-off space:

* **Lower precision** packs more elements per beat, allowing more PEs to
  run in parallel but demanding more ``URAM_sh`` banks per ScUG;
* **Higher precision** packs fewer: 64-bit values with 32-bit metadata
  yield 96-bit elements, five per beat, so "the parallelism in each PEG
  reduces from 8 to 5 PEs and similarly required URAM_sh per ScUG reduces
  to 5".

:func:`with_precision` derives a configuration for a precision from a
base configuration, adjusting the PEG width and ScUG provisioning the way
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, TypeVar

from .config import AcceleratorConfig, ChasonConfig, HBM_CHANNEL_BITS
from .errors import ConfigError

ConfigT = TypeVar("ConfigT", bound=AcceleratorConfig)


@dataclass(frozen=True)
class Precision:
    """One operating precision of the datapath."""

    name: str
    value_bits: int
    metadata_bits: int

    def __post_init__(self) -> None:
        if self.value_bits <= 0 or self.metadata_bits < 0:
            raise ConfigError("field widths must be positive")
        if self.element_bits > HBM_CHANNEL_BITS:
            raise ConfigError(
                f"{self.name}: element wider than one channel beat"
            )

    @property
    def element_bits(self) -> int:
        return self.value_bits + self.metadata_bits

    @property
    def elements_per_word(self) -> int:
        """Sparse elements per 512-bit channel beat (§5.5)."""
        return HBM_CHANNEL_BITS // self.element_bits

    @property
    def pes_per_peg(self) -> int:
        """PEs a PEG can keep busy — one per streamed element."""
        return self.elements_per_word


#: §5.5's two named operating points: FP32 (deployed) and FP64.
PRECISIONS: Dict[str, Precision] = {
    "fp32": Precision(name="fp32", value_bits=32, metadata_bits=32),
    "fp64": Precision(name="fp64", value_bits=64, metadata_bits=32),
    #: A hypothetical reduced-precision point the paper alludes to
    #: ("reducing the precision enables more than 8 PEs"): FP16 values
    #: with 32-bit metadata give ten elements per beat.
    "fp16": Precision(name="fp16", value_bits=16, metadata_bits=32),
}


def precision(name: str) -> Precision:
    """Look up a named precision."""
    key = name.lower()
    if key not in PRECISIONS:
        known = ", ".join(sorted(PRECISIONS))
        raise ConfigError(f"unknown precision {name!r}; known: {known}")
    return PRECISIONS[key]


def with_precision(config: ConfigT, name: str) -> ConfigT:
    """Re-provision a configuration for a different precision (§5.5).

    The PEG width follows the elements-per-beat of the precision (capped
    at the base width — a PEG never grows beyond its physical PEs without
    a redesign); for Chasoň configurations the ScUG width follows the PEG
    width, as §5.5 specifies.
    """
    target = precision(name)
    pes = min(target.pes_per_peg, 8)
    updates = {"pes_per_channel": pes}
    if isinstance(config, ChasonConfig):
        updates["scug_size"] = min(config.scug_size, pes)
    return replace(config, **updates)


def parallelism_ratio(a: str, b: str) -> float:
    """PEG parallelism of precision ``a`` relative to ``b``."""
    return precision(a).pes_per_peg / precision(b).pes_per_peg
