"""FPGA resource model (§4.5, Eq. 3, Table 1)."""

from .model import (
    ALVEO_U55C,
    FpgaDevice,
    ResourceReport,
    chason_resources,
    serpens_resources,
    uram_count,
)

__all__ = [
    "ALVEO_U55C",
    "FpgaDevice",
    "ResourceReport",
    "chason_resources",
    "serpens_resources",
    "uram_count",
]
