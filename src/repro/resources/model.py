"""Parametric FPGA resource model reproducing Table 1 and Eq. 3.

The model prices each architectural unit (PE datapath, Router, Reduction
Unit, Re-order Unit, memory blocks, HBM/host infrastructure) in LUT / FF /
DSP / BRAM / URAM, calibrated so the *published configurations* (16 PEGs ×
8 PEs; ScUG of 4 on Chasoň) reproduce the published Table 1 numbers, and
scaling linearly for the §4.5 / §6.1 ablations (ScUG 8 → 4 → 2, different
PEG counts).

URAM accounting follows §4.5: the deployed Chasoň uses ``pes × scug_size``
URAMs per PEG (16 × 8 × 4 = 512; the ideal ScUG of 8 gives 1024, above the
960 on the U55c), with the private partial sums packed alongside (the
72-bit URAM word holds two FP32 sums).  The theoretical floor of §4.5 —
one shared + one private URAM per PE — corresponds to ``scug_size = 2``
(256 URAMs).  Serpens stores private partial sums only, in 3 URAMs per PE
(384 total, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from ..config import (
    ChasonConfig,
    DEFAULT_CHASON,
    DEFAULT_SERPENS,
    SerpensConfig,
)
from ..errors import CapacityError, ConfigError


@dataclass(frozen=True)
class FpgaDevice:
    """Available resources of the target card."""

    name: str
    luts: int
    ffs: int
    dsps: int
    bram18k: int
    urams: int


#: AMD Xilinx Alveo U55c (derived from the Table 1 percentages and §4.5's
#: statement that 960 URAMs are available).
ALVEO_U55C = FpgaDevice(
    name="Alveo U55c",
    luts=1_303_680,
    ffs=2_607_360,
    dsps=9_024,
    bram18k=4_032,
    urams=960,
)


@dataclass(frozen=True)
class ResourceReport:
    """Resource usage of one design on one device (a Table 1 column)."""

    design: str
    device: FpgaDevice
    luts: int
    ffs: int
    dsps: int
    bram18k: int
    urams: int

    def utilization(self) -> Dict[str, float]:
        """Fractions of the device, as Table 1 reports in parentheses."""
        return {
            "LUT": self.luts / self.device.luts,
            "FF": self.ffs / self.device.ffs,
            "DSP": self.dsps / self.device.dsps,
            "BRAM18K": self.bram18k / self.device.bram18k,
            "URAM": self.urams / self.device.urams,
        }

    def check_fits(self) -> None:
        """Raise :class:`CapacityError` if the design exceeds the device."""
        for name, fraction in self.utilization().items():
            if fraction > 1.0:
                raise CapacityError(
                    f"{self.design} exceeds {self.device.name} {name} "
                    f"({fraction:.0%})"
                )


# Per-unit costs, calibrated against Table 1 for the published designs.
# Serpens: 219K LUT / 252K FF / 798 DSP across 128 PEs plus platform
# infrastructure; Chasoň adds the Router (per PE), the Reduction and
# Re-order Units (per PEG) and the upgraded Arbiter/Merger (§4.4, §4.5).
_INFRA_LUT = 62_600
_INFRA_FF = 60_000
_INFRA_DSP = 30
_PE_LUT = 1_222
_PE_FF = 1_500
_PE_DSP = 6
_ROUTER_LUT = 400  # the §4.2.1 mux pair, per PE
_ROUTER_FF = 700
_REDUCTION_LUT = 3_200  # adder tree + sweep control, per PEG
_REDUCTION_FF = 3_200
_REDUCTION_DSP = 24  # 7 tree adders + pipeline, per PEG
_REORDER_LUT = 1_537  # Re-order + upgraded Arbiter/Merger share, per PEG
_REORDER_FF = 1_575
_REORDER_DSP = 4.5  # merger add/reduce, per PEG
_BRAM_PER_PEG = 32  # x-vector buffer (§4.5)
_BRAM_INFRA = 512  # host/HBM interface buffering
_SERPENS_URAMS_PER_PE = 3  # §4.4: deeper private partial-sum storage


def uram_count(
    pegs: int, pes_per_peg: int, scug_size: int
) -> int:
    """Eq. 3 as deployed: URAMs for a Chasoň variant (§4.5).

    ``scug_size = 8`` gives the ideal 1024, the deployed 4 gives 512 and
    the theoretical floor of one shared + one private URAM per PE is
    ``scug_size = 2`` (256).
    """
    if pegs <= 0 or pes_per_peg <= 0:
        raise ConfigError("PEG and PE counts must be positive")
    if scug_size < 2:
        raise ConfigError(
            "each PE needs at least one URAM_sh and one URAM_pvt (§4.5)"
        )
    return pegs * pes_per_peg * scug_size


def serpens_resources(
    config: SerpensConfig = DEFAULT_SERPENS,
    device: FpgaDevice = ALVEO_U55C,
) -> ResourceReport:
    """Resource usage of the Serpens baseline (Table 1, left column)."""
    pes = config.total_pes
    pegs = config.sparse_channels
    return ResourceReport(
        design="serpens",
        device=device,
        luts=_INFRA_LUT + pes * _PE_LUT,
        ffs=_INFRA_FF + pes * _PE_FF,
        dsps=_INFRA_DSP + pes * _PE_DSP,
        bram18k=_BRAM_INFRA + pegs * _BRAM_PER_PEG,
        urams=pes * _SERPENS_URAMS_PER_PE,
    )


def chason_resources(
    config: ChasonConfig = DEFAULT_CHASON,
    device: FpgaDevice = ALVEO_U55C,
) -> ResourceReport:
    """Resource usage of Chasoň (Table 1, right column).

    The CrHCS support units are priced on top of the Serpens datapath:
    a Router per PE, a Reduction Unit and Re-order/Arbiter/Merger per PEG,
    all scaled by the migration span (each extra donor channel duplicates
    the ScUGs and widens the reduction).
    """
    pes = config.total_pes
    pegs = config.sparse_channels
    span = max(config.migration_span, 1)
    luts = (
        _INFRA_LUT
        + pes * (_PE_LUT + _ROUTER_LUT * span)
        + pegs * (_REDUCTION_LUT + _REORDER_LUT) * span
    )
    ffs = (
        _INFRA_FF
        + pes * (_PE_FF + _ROUTER_FF * span)
        + pegs * (_REDUCTION_FF + _REORDER_FF) * span
    )
    dsps = (
        _INFRA_DSP
        + pes * _PE_DSP
        + int(pegs * (_REDUCTION_DSP + _REORDER_DSP) * span)
    )
    return ResourceReport(
        design="chason",
        device=device,
        luts=int(luts),
        ffs=int(ffs),
        dsps=dsps,
        bram18k=_BRAM_INFRA + pegs * _BRAM_PER_PEG,
        urams=uram_count(pegs, config.pes_per_channel, config.scug_size)
        * span,
    )


def resources_for(
    config: Union[ChasonConfig, SerpensConfig],
    device: FpgaDevice = ALVEO_U55C,
) -> ResourceReport:
    """Dispatch on the configuration type."""
    if isinstance(config, ChasonConfig):
        return chason_resources(config, device)
    if isinstance(config, SerpensConfig):
        return serpens_resources(config, device)
    raise ConfigError(
        f"no resource model for {type(config).__name__}"
    )
