"""Non-zero scheduling schemes (§2.2, §3).

Three schedulers, in increasing sophistication:

* :func:`~repro.scheduling.row_based.schedule_row_based` — naive row-based
  parallelization (Fig. 2a);
* :func:`~repro.scheduling.pe_aware.schedule_pe_aware` — the intra-channel
  PE-aware OoO scheme used by Serpens/Sextans/LevelST (Fig. 2b);
* :func:`~repro.scheduling.crhcs.schedule_crhcs` — CrHCS, the paper's
  cross-HBM-channel OoO scheme with data migration (Fig. 2c, §3).

Every registered scheme runs as an ordered pass list over a shared
Schedule-IR (:mod:`repro.scheduling.passes`), with per-pass
fingerprints enabling incremental rescheduling; see
``docs/architecture.md``.
"""

from .base import (
    ChannelGrid,
    ScheduledElement,
    Schedule,
    TiledSchedule,
    pe_for_row,
)
from .raw_tracker import RawTracker
from .reorder import RowPermutation, balancing_permutation, reorder_rows
from .row_based import schedule_row_based
from .pe_aware import schedule_pe_aware
from .greedy import schedule_greedy_ooo
from .row_split import schedule_row_split
from .crhcs import MigrationReport, schedule_crhcs, schedule_crhcs_rebuild
from .registry import (
    SchedulerSpec,
    get_scheme,
    iter_schemes,
    register_scheme,
    registered_schemes,
)
from .passes import (
    IncrementalScheduler,
    PassArtifactCache,
    PassManager,
    SchedulePass,
    known_pass_names,
    resolve_passes,
    schedules_identical,
)
from .serialize import deserialize_schedule, serialize_schedule
from .window import Tile, tile_matrix
from .stats import (
    ScheduleStats,
    channel_underutilization,
    peg_underutilization,
    schedule_stats,
    underutilization_percent,
)

__all__ = [
    "ChannelGrid",
    "ScheduledElement",
    "Schedule",
    "TiledSchedule",
    "pe_for_row",
    "RawTracker",
    "RowPermutation",
    "balancing_permutation",
    "reorder_rows",
    "schedule_row_based",
    "schedule_pe_aware",
    "schedule_greedy_ooo",
    "schedule_row_split",
    "schedule_crhcs",
    "schedule_crhcs_rebuild",
    "SchedulerSpec",
    "get_scheme",
    "iter_schemes",
    "register_scheme",
    "registered_schemes",
    "MigrationReport",
    "IncrementalScheduler",
    "PassArtifactCache",
    "PassManager",
    "SchedulePass",
    "known_pass_names",
    "resolve_passes",
    "schedules_identical",
    "deserialize_schedule",
    "serialize_schedule",
    "Tile",
    "tile_matrix",
    "ScheduleStats",
    "channel_underutilization",
    "peg_underutilization",
    "schedule_stats",
    "underutilization_percent",
]
