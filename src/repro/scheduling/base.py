"""Schedule data structures shared by every scheduling scheme.

A *schedule* is what the offline preprocessing step produces and what the
HBM channels stream at runtime: per channel, a grid of slots — one row of
eight slots per cycle, the k-th slot feeding PE k of that channel's PEG
(§3.2).  Empty slots are the explicit zeros / pseudo-stalls of §2.2.

Grids store only occupied slots (a dict keyed by ``(cycle, pe)``) plus an
explicit length; sparse schedules of large matrices would otherwise
materialise millions of ``None`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..config import AcceleratorConfig
from ..errors import RawHazardError, SchedulingError


class ScheduledElement(NamedTuple):
    """One scheduled non-zero.

    ``row``/``col`` are tile-local coordinates (the windowing layer adds the
    tile bases back).  ``origin_channel``/``origin_pe`` record where Eq. 1
    originally mapped the element; when a CrHCS migration places the element
    in a different channel these become the ``(pvt=0, PE_src)`` metadata of
    §3.2.
    """

    row: int
    col: int
    value: float
    origin_channel: int
    origin_pe: int


def pe_for_row(row: int, config: AcceleratorConfig) -> Tuple[int, int]:
    """Eq. 1/2: map a (tile-local) row to its home (channel, local PE)."""
    pe_global = row % config.total_pes
    return (
        pe_global // config.pes_per_channel,
        pe_global % config.pes_per_channel,
    )


@dataclass
class ChannelGrid:
    """The data list of one channel: occupied slots over ``length`` cycles.

    Mutable on purpose — CrHCS migration edits grids in place (it removes
    donated elements from the donor and fills holes in the destination).
    """

    channel_id: int
    pes: int
    occupied: Dict[Tuple[int, int], ScheduledElement] = field(
        default_factory=dict
    )
    length: int = 0

    def __len__(self) -> int:
        return self.length

    def ensure_length(self, length: int) -> None:
        """Pad with stall-only cycles up to ``length`` (§3.1 resizing)."""
        if length > self.length:
            self.length = length

    def slot(self, cycle: int, pe: int) -> Optional[ScheduledElement]:
        return self.occupied.get((cycle, pe))

    def cycle_slots(self, cycle: int) -> List[Optional[ScheduledElement]]:
        """The eight slots of one cycle (the 512-bit channel word)."""
        return [self.occupied.get((cycle, pe)) for pe in range(self.pes)]

    def place(self, cycle: int, pe: int, element: ScheduledElement) -> None:
        if cycle < 0 or not 0 <= pe < self.pes:
            raise SchedulingError(
                f"slot (cycle={cycle}, pe={pe}) out of range"
            )
        key = (cycle, pe)
        if key in self.occupied:
            raise SchedulingError(
                f"slot (cycle={cycle}, pe={pe}) of channel "
                f"{self.channel_id} is already occupied"
            )
        self.occupied[key] = element
        self.ensure_length(cycle + 1)

    def take(self, cycle: int, pe: int) -> ScheduledElement:
        """Remove and return the element at a slot (migration donor side)."""
        element = self.occupied.pop((cycle, pe), None)
        if element is None:
            raise SchedulingError(
                f"slot (cycle={cycle}, pe={pe}) of channel "
                f"{self.channel_id} is empty"
            )
        return element

    def trim_trailing_stalls(self) -> None:
        """Drop all-stall cycles from the tail (post-migration compaction)."""
        if not self.occupied:
            self.length = 0
            return
        self.length = max(cycle for cycle, _ in self.occupied) + 1

    # -- accounting ---------------------------------------------------------

    @property
    def element_count(self) -> int:
        return len(self.occupied)

    @property
    def stall_count(self) -> int:
        return self.length * self.pes - len(self.occupied)

    def iter_elements(
        self,
    ) -> Iterator[Tuple[int, int, ScheduledElement]]:
        """Yield ``(cycle, pe, element)`` in stream order."""
        for (cycle, pe), element in sorted(self.occupied.items()):
            yield cycle, pe, element

    def holes(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(cycle, pe)`` for every stall slot, in stream order."""
        for cycle in range(self.length):
            for pe in range(self.pes):
                if (cycle, pe) not in self.occupied:
                    yield cycle, pe

    def own_elements_tail_first(
        self,
    ) -> List[Tuple[int, int, ScheduledElement]]:
        """This channel's private elements, latest cycles first.

        These are the migration candidates CrHCS offers to the previous
        channel; elements that already migrated *in* stay put (Fig. 5d
        migrates only values that originally belonged to the donor).
        """
        channel_id = self.channel_id
        own = [
            (cycle, pe, element)
            for (cycle, pe), element in self.occupied.items()
            if element.origin_channel == channel_id
        ]
        # (cycle, pe) pairs are unique, so reverse tuple order sorts
        # latest-cycle-first without ever comparing the elements.
        own.sort(reverse=True)
        return own


@dataclass
class Schedule:
    """A complete schedule for one matrix tile.

    ``grids`` has one :class:`ChannelGrid` per sparse channel, all resized
    to equal length; ``scheme`` names the scheduler that produced it.
    """

    config: AcceleratorConfig
    grids: List[ChannelGrid]
    scheme: str
    row_base: int = 0
    col_base: int = 0
    migrated_count: int = 0
    #: Migration span the schedule was built with; ``None`` falls back to
    #: the configuration's span during validation.
    migration_span: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.grids) != self.config.sparse_channels:
            raise SchedulingError(
                f"{self.scheme}: expected {self.config.sparse_channels} "
                f"grids, got {len(self.grids)}"
            )

    # -- shape ---------------------------------------------------------------

    @property
    def stream_cycles(self) -> int:
        """Length of the (equalised) data lists = cycles to stream the tile."""
        return max((len(g) for g in self.grids), default=0)

    def equalise(self) -> None:
        """Resize every channel list to the longest one (§3.1)."""
        length = self.stream_cycles
        for grid in self.grids:
            grid.ensure_length(length)

    # -- accounting -----------------------------------------------------------

    @property
    def nnz(self) -> int:
        return sum(g.element_count for g in self.grids)

    @property
    def total_stalls(self) -> int:
        """Stalls counted over the equalised lists (Eq. 4 numerator)."""
        length = self.stream_cycles
        pes = self.config.pes_per_channel
        return length * pes * len(self.grids) - self.nnz

    @property
    def underutilization(self) -> float:
        """Eq. 4 as a fraction in [0, 1]."""
        stalls = self.total_stalls
        denominator = self.nnz + stalls
        if denominator == 0:
            return 0.0
        return stalls / denominator

    @property
    def words_per_channel(self) -> int:
        """512-bit words each channel streams for this tile."""
        return self.stream_cycles

    @property
    def traffic_bytes(self) -> int:
        """Sparse-stream bytes for this tile (all channels)."""
        word_bytes = self.config.pes_per_channel * 8
        return self.stream_cycles * len(self.grids) * word_bytes

    def channel_stalls(self) -> List[int]:
        """Per-channel stall counts over the equalised length."""
        length = self.stream_cycles
        pes = self.config.pes_per_channel
        return [length * pes - g.element_count for g in self.grids]

    def channel_elements(self) -> List[int]:
        return [g.element_count for g in self.grids]

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`SchedulingError`.

        * every occupied slot holds an element whose home channel is this
          channel (``pvt``) or a donor within the migration span;
        * private elements sit in their Eq. 1 PE lane;
        * the RAW dependency distance is respected per (PE, row) within a
          channel (§3.3) — this covers both private and migrated elements.
        """
        span = self.migration_span
        if span is None:
            span = getattr(self.config, "migration_span", 0)
        channels = len(self.grids)
        distance = self.config.accumulator_latency
        for grid in self.grids:
            last_cycle: Dict[Tuple[int, int], int] = {}
            for cycle, pe, element in grid.iter_elements():
                if element.origin_channel == grid.channel_id:
                    if element.origin_pe != pe:
                        raise SchedulingError(
                            f"private element of row {element.row} sits in "
                            f"PE {pe}, expected {element.origin_pe}"
                        )
                else:
                    offset = (
                        element.origin_channel - grid.channel_id
                    ) % channels
                    if not 1 <= offset <= span:
                        raise SchedulingError(
                            f"element migrated from channel "
                            f"{element.origin_channel} to {grid.channel_id} "
                            f"exceeds migration span {span}"
                        )
                key = (pe, element.row)
                previous = last_cycle.get(key)
                if previous is not None and cycle - previous < distance:
                    raise RawHazardError(
                        f"row {element.row} scheduled at cycles {previous} "
                        f"and {cycle} in PE {pe} of channel "
                        f"{grid.channel_id}: distance < {distance}"
                    )
                last_cycle[key] = cycle


@dataclass
class TiledSchedule:
    """Schedules for every (row window × column window) tile of a matrix.

    Tiles stream back-to-back, so aggregate cycle/stall/traffic counts are
    sums over tiles; Eq. 4 is evaluated over the concatenated data lists.
    """

    config: AcceleratorConfig
    tiles: List[Schedule]
    scheme: str
    n_rows: int = 0
    n_cols: int = 0

    @property
    def nnz(self) -> int:
        return sum(t.nnz for t in self.tiles)

    @property
    def stream_cycles(self) -> int:
        return sum(t.stream_cycles for t in self.tiles)

    @property
    def total_stalls(self) -> int:
        return sum(t.total_stalls for t in self.tiles)

    @property
    def migrated_count(self) -> int:
        return sum(t.migrated_count for t in self.tiles)

    @property
    def underutilization(self) -> float:
        stalls = self.total_stalls
        denominator = self.nnz + stalls
        if denominator == 0:
            return 0.0
        return stalls / denominator

    @property
    def words_per_channel(self) -> int:
        return sum(t.words_per_channel for t in self.tiles)

    @property
    def traffic_bytes(self) -> int:
        return sum(t.traffic_bytes for t in self.tiles)

    def channel_stalls(self) -> List[int]:
        totals = [0] * self.config.sparse_channels
        for tile in self.tiles:
            for channel, stalls in enumerate(tile.channel_stalls()):
                totals[channel] += stalls
        return totals

    def channel_elements(self) -> List[int]:
        totals = [0] * self.config.sparse_channels
        for tile in self.tiles:
            for channel, count in enumerate(tile.channel_elements()):
                totals[channel] += count
        return totals

    def validate(self) -> None:
        for tile in self.tiles:
            tile.validate()
