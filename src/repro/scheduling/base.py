"""Schedule data structures shared by every scheduling scheme.

A *schedule* is what the offline preprocessing step produces and what the
HBM channels stream at runtime: per channel, a grid of slots — one row of
eight slots per cycle, the k-th slot feeding PE k of that channel's PEG
(§3.2).  Empty slots are the explicit zeros / pseudo-stalls of §2.2.

Grids are **array-backed**: per channel, dense NumPy arrays of shape
``(capacity, pes)`` hold ``value``/``row``/``col``/``origin_channel``/
``origin_pe``, with :data:`STALL_SENTINEL` (``-1``) in ``origin_channel``
marking a stall slot.  The dense layout is what lets the schedulers, the
stats, the serializer and the simulator operate with vectorized NumPy
arithmetic instead of per-slot dict probes; stall-only padding beyond the
occupied prefix costs nothing because ``length`` can exceed the allocated
``capacity`` (the §3.1 resize of an empty channel never materialises
storage).  A dict-style compatibility view (:attr:`ChannelGrid.occupied`)
plus ``slot()``/``iter_elements()``/``holes()`` keep pre-array callers and
tests working unchanged.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from ..config import AcceleratorConfig
from ..errors import RawHazardError, SchedulingError

#: ``origin_channel`` value marking an empty (stall) slot in the arrays.
STALL_SENTINEL = -1

#: Smallest non-zero cycle capacity a grid allocates.
_MIN_CAPACITY = 8


class ScheduledElement(NamedTuple):
    """One scheduled non-zero.

    ``row``/``col`` are tile-local coordinates (the windowing layer adds the
    tile bases back).  ``origin_channel``/``origin_pe`` record where Eq. 1
    originally mapped the element; when a CrHCS migration places the element
    in a different channel these become the ``(pvt=0, PE_src)`` metadata of
    §3.2.
    """

    row: int
    col: int
    value: float
    origin_channel: int
    origin_pe: int


def pe_for_row(row: int, config: AcceleratorConfig) -> Tuple[int, int]:
    """Eq. 1/2: map a (tile-local) row to its home (channel, local PE)."""
    pe_global = row % config.total_pes
    return (
        pe_global // config.pes_per_channel,
        pe_global % config.pes_per_channel,
    )


class _OccupiedView(MutableMapping):
    """Dict-compatible live view of a grid's occupied slots.

    Keys are ``(cycle, pe)`` tuples, values :class:`ScheduledElement`;
    reads and writes go straight to the grid's backing arrays.  Iteration
    is in stream order (cycle-major), which is a superset of what the old
    dict guaranteed.
    """

    __slots__ = ("_grid",)

    def __init__(self, grid: "ChannelGrid"):
        self._grid = grid

    def __getitem__(self, key: Tuple[int, int]) -> ScheduledElement:
        element = self._grid.slot(key[0], key[1])
        if element is None:
            raise KeyError(key)
        return element

    def get(self, key, default=None):
        element = self._grid.slot(key[0], key[1])
        return default if element is None else element

    def __setitem__(self, key: Tuple[int, int], element: ScheduledElement):
        self._grid.set_slot(key[0], key[1], element)

    def __delitem__(self, key: Tuple[int, int]) -> None:
        cycle, pe = key
        if self._grid.slot(cycle, pe) is None:
            raise KeyError(key)
        self._grid.clear_slot(cycle, pe)

    def __contains__(self, key) -> bool:
        return self._grid.slot(key[0], key[1]) is not None

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        cycles, pes = self._grid.occupied_coords()
        for cycle, pe in zip(cycles.tolist(), pes.tolist()):
            yield (cycle, pe)

    def __len__(self) -> int:
        return self._grid.element_count

    def items(self):
        return [
            ((cycle, pe), element)
            for cycle, pe, element in self._grid.iter_elements()
        ]

    def values(self):
        return [e for _, _, e in self._grid.iter_elements()]

    def keys(self):
        return list(self)


class ChannelGrid:
    """The data list of one channel: occupied slots over ``length`` cycles.

    Mutable on purpose — CrHCS migration edits grids in place (it removes
    donated elements from the donor and fills holes in the destination).

    Storage is five dense ``(capacity, pes)`` arrays; ``origin_channel ==
    STALL_SENTINEL`` marks an empty slot.  ``length`` may exceed
    ``capacity``: cycles past the allocated prefix are implicit stalls, so
    resizing a short channel to a long one (§3.1) is O(1).
    """

    __slots__ = (
        "channel_id",
        "pes",
        "length",
        "_capacity",
        "_value",
        "_row",
        "_col",
        "_origin_channel",
        "_origin_pe",
        "_count",
        "_max_cycle",
        "_max_dirty",
    )

    def __init__(self, channel_id: int, pes: int, length: int = 0):
        self.channel_id = channel_id
        self.pes = pes
        self.length = length
        self._capacity = 0
        self._value = np.empty((0, pes), dtype=np.float64)
        self._row = np.empty((0, pes), dtype=np.int64)
        self._col = np.empty((0, pes), dtype=np.int64)
        self._origin_channel = np.empty((0, pes), dtype=np.int64)
        self._origin_pe = np.empty((0, pes), dtype=np.int64)
        self._count = 0
        #: Largest occupied cycle, tracked incrementally so
        #: :meth:`trim_trailing_stalls` never rescans the grid; a removal
        #: at the tracked maximum marks it dirty for a lazy recompute.
        self._max_cycle = -1
        self._max_dirty = False

    def __repr__(self) -> str:
        return (
            f"ChannelGrid(channel_id={self.channel_id}, pes={self.pes}, "
            f"length={self.length}, elements={self._count})"
        )

    def __len__(self) -> int:
        return self.length

    # -- storage ------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Allocated cycle rows (≤ ``length`` when the tail is all stalls)."""
        return self._capacity

    @property
    def occupied(self) -> "_OccupiedView":
        """Dict-style ``(cycle, pe) -> element`` view of the arrays."""
        return _OccupiedView(self)

    def reserve(self, cycles: int) -> None:
        """Pre-allocate storage for ``cycles`` cycle rows."""
        if cycles > self._capacity:
            new_capacity = max(cycles, 2 * self._capacity, _MIN_CAPACITY)
            old = self._capacity
            grown_value = np.empty((new_capacity, self.pes), dtype=np.float64)
            grown_row = np.empty((new_capacity, self.pes), dtype=np.int64)
            grown_col = np.empty((new_capacity, self.pes), dtype=np.int64)
            grown_och = np.empty((new_capacity, self.pes), dtype=np.int64)
            grown_ope = np.empty((new_capacity, self.pes), dtype=np.int64)
            if old:
                grown_value[:old] = self._value
                grown_row[:old] = self._row
                grown_col[:old] = self._col
                grown_och[:old] = self._origin_channel
                grown_ope[:old] = self._origin_pe
            grown_value[old:] = 0.0
            grown_row[old:] = STALL_SENTINEL
            grown_col[old:] = STALL_SENTINEL
            grown_och[old:] = STALL_SENTINEL
            grown_ope[old:] = STALL_SENTINEL
            self._value = grown_value
            self._row = grown_row
            self._col = grown_col
            self._origin_channel = grown_och
            self._origin_pe = grown_ope
            self._capacity = new_capacity

    def ensure_length(self, length: int) -> None:
        """Pad with stall-only cycles up to ``length`` (§3.1 resizing).

        Purely logical — implicit-stall cycles allocate no storage.
        """
        if length > self.length:
            self.length = length

    def clone(self) -> "ChannelGrid":
        """An independent deep copy (the pass-artifact cache snapshot).

        Copies the five backing arrays and every incremental counter, so
        mutating either grid afterwards never aliases into the other and
        ``trim_trailing_stalls`` stays O(1) on the copy.
        """
        other = ChannelGrid(self.channel_id, self.pes, self.length)
        other._capacity = self._capacity
        other._value = self._value.copy()
        other._row = self._row.copy()
        other._col = self._col.copy()
        other._origin_channel = self._origin_channel.copy()
        other._origin_pe = self._origin_pe.copy()
        other._count = self._count
        other._max_cycle = self._max_cycle
        other._max_dirty = self._max_dirty
        return other

    # -- single-slot API ------------------------------------------------------

    def slot(self, cycle: int, pe: int) -> Optional[ScheduledElement]:
        if (
            cycle < 0
            or cycle >= self._capacity
            or not 0 <= pe < self.pes
            or self._origin_channel[cycle, pe] < 0
        ):
            return None
        return ScheduledElement(
            int(self._row[cycle, pe]),
            int(self._col[cycle, pe]),
            float(self._value[cycle, pe]),
            int(self._origin_channel[cycle, pe]),
            int(self._origin_pe[cycle, pe]),
        )

    def cycle_slots(self, cycle: int) -> List[Optional[ScheduledElement]]:
        """The eight slots of one cycle (the 512-bit channel word)."""
        return [self.slot(cycle, pe) for pe in range(self.pes)]

    def set_slot(self, cycle: int, pe: int, element: ScheduledElement) -> None:
        """Write a slot, overwriting whatever was there (dict semantics)."""
        if cycle < 0 or not 0 <= pe < self.pes:
            raise SchedulingError(
                f"slot (cycle={cycle}, pe={pe}) out of range"
            )
        self.reserve(cycle + 1)
        if self._origin_channel[cycle, pe] < 0:
            self._count += 1
        self._row[cycle, pe] = element.row
        self._col[cycle, pe] = element.col
        self._value[cycle, pe] = element.value
        self._origin_channel[cycle, pe] = element.origin_channel
        self._origin_pe[cycle, pe] = element.origin_pe
        if cycle > self._max_cycle:
            self._max_cycle = cycle
        self.ensure_length(cycle + 1)

    def place(self, cycle: int, pe: int, element: ScheduledElement) -> None:
        if cycle < 0 or not 0 <= pe < self.pes:
            raise SchedulingError(
                f"slot (cycle={cycle}, pe={pe}) out of range"
            )
        if cycle < self._capacity and self._origin_channel[cycle, pe] >= 0:
            raise SchedulingError(
                f"slot (cycle={cycle}, pe={pe}) of channel "
                f"{self.channel_id} is already occupied"
            )
        self.set_slot(cycle, pe, element)

    def clear_slot(self, cycle: int, pe: int) -> None:
        """Turn one occupied slot back into a stall."""
        self._origin_channel[cycle, pe] = STALL_SENTINEL
        self._row[cycle, pe] = STALL_SENTINEL
        self._col[cycle, pe] = STALL_SENTINEL
        self._origin_pe[cycle, pe] = STALL_SENTINEL
        self._value[cycle, pe] = 0.0
        self._count -= 1
        if cycle == self._max_cycle:
            self._max_dirty = True

    def take(self, cycle: int, pe: int) -> ScheduledElement:
        """Remove and return the element at a slot (migration donor side)."""
        element = self.slot(cycle, pe)
        if element is None:
            raise SchedulingError(
                f"slot (cycle={cycle}, pe={pe}) of channel "
                f"{self.channel_id} is empty"
            )
        self.clear_slot(cycle, pe)
        return element

    # -- bulk array API -------------------------------------------------------

    def occupied_mask(self, length: Optional[int] = None) -> np.ndarray:
        """Boolean ``(length, pes)`` mask of occupied slots."""
        if length is None:
            length = self.length
        stored = min(length, self._capacity)
        mask = np.zeros((length, self.pes), dtype=bool)
        if stored:
            mask[:stored] = self._origin_channel[:stored] >= 0
        return mask

    def occupied_coords(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(cycles, pes)`` of occupied slots in stream order."""
        stored = min(self.length, self._capacity)
        flat = np.flatnonzero(self._origin_channel[:stored].ravel() >= 0)
        return flat // self.pes, flat % self.pes

    def hole_coords(
        self, length: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(cycles, pes)`` of stall slots in stream order."""
        if length is None:
            length = self.length
        flat = np.flatnonzero(~self.occupied_mask(length).ravel())
        return flat // self.pes, flat % self.pes

    def element_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
               np.ndarray, np.ndarray]:
        """``(cycles, pes, rows, cols, values, origin_channels, origin_pes)``
        of every occupied slot, in stream order."""
        cycles, pes = self.occupied_coords()
        return (
            cycles,
            pes,
            self._row[cycles, pes],
            self._col[cycles, pes],
            self._value[cycles, pes],
            self._origin_channel[cycles, pes],
            self._origin_pe[cycles, pes],
        )

    def fill_lane(
        self,
        pe: int,
        cycles: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Bulk-place private elements of one PE lane (scheduler fast path).

        The caller guarantees the target slots are empty and the cycles
        unique — the invariant every single-PE scheduler provides.
        """
        if cycles.size == 0:
            return
        top = int(cycles.max())
        self.reserve(top + 1)
        self._row[cycles, pe] = rows
        self._col[cycles, pe] = cols
        self._value[cycles, pe] = values
        self._origin_channel[cycles, pe] = self.channel_id
        self._origin_pe[cycles, pe] = pe
        self._count += int(cycles.size)
        if top > self._max_cycle:
            self._max_cycle = top
        self.ensure_length(top + 1)

    def fill_slots(
        self,
        cycles: np.ndarray,
        pes: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        origin_channels,
        origin_pes,
    ) -> None:
        """Bulk-place elements at distinct empty ``(cycle, pe)`` slots."""
        cycles = np.asarray(cycles, dtype=np.int64)
        if cycles.size == 0:
            return
        top = int(cycles.max())
        self.reserve(top + 1)
        self._row[cycles, pes] = rows
        self._col[cycles, pes] = cols
        self._value[cycles, pes] = values
        self._origin_channel[cycles, pes] = origin_channels
        self._origin_pe[cycles, pes] = origin_pes
        self._count += int(cycles.size)
        if top > self._max_cycle:
            self._max_cycle = top
        self.ensure_length(top + 1)

    def clear_slots(self, cycles: np.ndarray, pes: np.ndarray) -> None:
        """Bulk-remove elements (migration donor side)."""
        cycles = np.asarray(cycles, dtype=np.int64)
        if cycles.size == 0:
            return
        self._origin_channel[cycles, pes] = STALL_SENTINEL
        self._row[cycles, pes] = STALL_SENTINEL
        self._col[cycles, pes] = STALL_SENTINEL
        self._origin_pe[cycles, pes] = STALL_SENTINEL
        self._value[cycles, pes] = 0.0
        self._count -= int(cycles.size)
        self._max_dirty = True

    # -- compaction ---------------------------------------------------------

    def trim_trailing_stalls(self) -> None:
        """Drop all-stall cycles from the tail (post-migration compaction).

        O(1) thanks to the incrementally tracked maximum occupied cycle;
        only a removal at the old maximum forces a (vectorized) rescan.
        """
        if self._count == 0:
            self.length = 0
            self._max_cycle = -1
            self._max_dirty = False
            return
        if self._max_dirty:
            stored = min(self.length, self._capacity)
            occupied_rows = np.flatnonzero(
                (self._origin_channel[:stored] >= 0).any(axis=1)
            )
            self._max_cycle = int(occupied_rows[-1])
            self._max_dirty = False
        self.length = self._max_cycle + 1

    # -- accounting ---------------------------------------------------------

    @property
    def element_count(self) -> int:
        return self._count

    @property
    def stall_count(self) -> int:
        return self.length * self.pes - self._count

    def iter_elements(
        self,
    ) -> Iterator[Tuple[int, int, ScheduledElement]]:
        """Yield ``(cycle, pe, element)`` in stream order."""
        cycles, pes, rows, cols, values, och, ope = self.element_arrays()
        for cycle, pe, row, col, value, channel, origin_pe in zip(
            cycles.tolist(), pes.tolist(), rows.tolist(), cols.tolist(),
            values.tolist(), och.tolist(), ope.tolist(),
        ):
            yield cycle, pe, ScheduledElement(
                row, col, value, channel, origin_pe
            )

    def holes(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(cycle, pe)`` for every stall slot, in stream order."""
        cycles, pes = self.hole_coords()
        for cycle, pe in zip(cycles.tolist(), pes.tolist()):
            yield cycle, pe

    def own_arrays_tail_first(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray,
               np.ndarray]:
        """``(cycles, pes, rows, cols, values, origin_pes)`` of this
        channel's private elements, latest ``(cycle, pe)`` first.

        These are the migration candidates CrHCS offers to the previous
        channel; elements that already migrated *in* stay put (Fig. 5d
        migrates only values that originally belonged to the donor).
        """
        cycles, pes = self.occupied_coords()
        own = self._origin_channel[cycles, pes] == self.channel_id
        cycles, pes = cycles[own][::-1], pes[own][::-1]
        return (
            cycles,
            pes,
            self._row[cycles, pes],
            self._col[cycles, pes],
            self._value[cycles, pes],
            self._origin_pe[cycles, pes],
        )

    def own_elements_tail_first(
        self,
    ) -> List[Tuple[int, int, ScheduledElement]]:
        """This channel's private elements, latest cycles first."""
        cycles, pes, rows, cols, values, ope = self.own_arrays_tail_first()
        channel_id = self.channel_id
        return [
            (cycle, pe, ScheduledElement(row, col, value, channel_id, origin))
            for cycle, pe, row, col, value, origin in zip(
                cycles.tolist(), pes.tolist(), rows.tolist(), cols.tolist(),
                values.tolist(), ope.tolist(),
            )
        ]


@dataclass
class Schedule:
    """A complete schedule for one matrix tile.

    ``grids`` has one :class:`ChannelGrid` per sparse channel, all resized
    to equal length; ``scheme`` names the scheduler that produced it.
    """

    config: AcceleratorConfig
    grids: List[ChannelGrid]
    scheme: str
    row_base: int = 0
    col_base: int = 0
    migrated_count: int = 0
    #: Migration span the schedule was built with; ``None`` falls back to
    #: the configuration's span during validation.
    migration_span: Optional[int] = None

    def __post_init__(self) -> None:
        if len(self.grids) != self.config.sparse_channels:
            raise SchedulingError(
                f"{self.scheme}: expected {self.config.sparse_channels} "
                f"grids, got {len(self.grids)}"
            )

    # -- shape ---------------------------------------------------------------

    @property
    def stream_cycles(self) -> int:
        """Length of the (equalised) data lists = cycles to stream the tile."""
        return max((len(g) for g in self.grids), default=0)

    def equalise(self) -> None:
        """Resize every channel list to the longest one (§3.1)."""
        length = self.stream_cycles
        for grid in self.grids:
            grid.ensure_length(length)

    # -- accounting -----------------------------------------------------------

    @property
    def nnz(self) -> int:
        return sum(g.element_count for g in self.grids)

    @property
    def total_stalls(self) -> int:
        """Stalls counted over the equalised lists (Eq. 4 numerator)."""
        length = self.stream_cycles
        pes = self.config.pes_per_channel
        return length * pes * len(self.grids) - self.nnz

    @property
    def underutilization(self) -> float:
        """Eq. 4 as a fraction in [0, 1]."""
        stalls = self.total_stalls
        denominator = self.nnz + stalls
        if denominator == 0:
            return 0.0
        return stalls / denominator

    @property
    def words_per_channel(self) -> int:
        """512-bit words each channel streams for this tile."""
        return self.stream_cycles

    @property
    def traffic_bytes(self) -> int:
        """Sparse-stream bytes for this tile (all channels)."""
        word_bytes = self.config.pes_per_channel * 8
        return self.stream_cycles * len(self.grids) * word_bytes

    def channel_stalls(self) -> List[int]:
        """Per-channel stall counts over the equalised length."""
        length = self.stream_cycles
        pes = self.config.pes_per_channel
        return [length * pes - g.element_count for g in self.grids]

    def channel_elements(self) -> List[int]:
        return [g.element_count for g in self.grids]

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`SchedulingError`.

        * every occupied slot holds an element whose home channel is this
          channel (``pvt``) or a donor within the migration span;
        * private elements sit in their Eq. 1 PE lane;
        * the RAW dependency distance is respected per (PE, row) within a
          channel (§3.3) — this covers both private and migrated elements.
        """
        span = self.migration_span
        if span is None:
            span = getattr(self.config, "migration_span", 0)
        channels = len(self.grids)
        distance = self.config.accumulator_latency
        for grid in self.grids:
            last_cycle: Dict[Tuple[int, int], int] = {}
            for cycle, pe, element in grid.iter_elements():
                if element.origin_channel == grid.channel_id:
                    if element.origin_pe != pe:
                        raise SchedulingError(
                            f"private element of row {element.row} sits in "
                            f"PE {pe}, expected {element.origin_pe}"
                        )
                else:
                    offset = (
                        element.origin_channel - grid.channel_id
                    ) % channels
                    if not 1 <= offset <= span:
                        raise SchedulingError(
                            f"element migrated from channel "
                            f"{element.origin_channel} to {grid.channel_id} "
                            f"exceeds migration span {span}"
                        )
                key = (pe, element.row)
                previous = last_cycle.get(key)
                if previous is not None and cycle - previous < distance:
                    raise RawHazardError(
                        f"row {element.row} scheduled at cycles {previous} "
                        f"and {cycle} in PE {pe} of channel "
                        f"{grid.channel_id}: distance < {distance}"
                    )
                last_cycle[key] = cycle


@dataclass
class TiledSchedule:
    """Schedules for every (row window × column window) tile of a matrix.

    Tiles stream back-to-back, so aggregate cycle/stall/traffic counts are
    sums over tiles; Eq. 4 is evaluated over the concatenated data lists.
    """

    config: AcceleratorConfig
    tiles: List[Schedule]
    scheme: str
    n_rows: int = 0
    n_cols: int = 0

    @property
    def nnz(self) -> int:
        return sum(t.nnz for t in self.tiles)

    @property
    def stream_cycles(self) -> int:
        return sum(t.stream_cycles for t in self.tiles)

    @property
    def total_stalls(self) -> int:
        return sum(t.total_stalls for t in self.tiles)

    @property
    def migrated_count(self) -> int:
        return sum(t.migrated_count for t in self.tiles)

    @property
    def underutilization(self) -> float:
        stalls = self.total_stalls
        denominator = self.nnz + stalls
        if denominator == 0:
            return 0.0
        return stalls / denominator

    @property
    def words_per_channel(self) -> int:
        return sum(t.words_per_channel for t in self.tiles)

    @property
    def traffic_bytes(self) -> int:
        return sum(t.traffic_bytes for t in self.tiles)

    def channel_stalls(self) -> List[int]:
        totals = [0] * self.config.sparse_channels
        for tile in self.tiles:
            for channel, stalls in enumerate(tile.channel_stalls()):
                totals[channel] += stalls
        return totals

    def channel_elements(self) -> List[int]:
        totals = [0] * self.config.sparse_channels
        for tile in self.tiles:
            for channel, count in enumerate(tile.channel_elements()):
                totals[channel] += count
        return totals

    def validate(self) -> None:
        for tile in self.tiles:
            tile.validate()
