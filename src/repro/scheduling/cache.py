"""Schedule memoisation keyed by ``(matrix spec, config, scheme)``.

Several experiments reschedule the same inputs: Fig. 11 and Fig. 14 walk
the same corpus, Fig. 15 and Table 3 walk the same named matrices, and the
ablation sweeps re-run one matrix under many schemes.  Scheduling is the
dominant cost, and every matrix in the reproduction is *seeded* — its
identity is its spec, not its COO payload — so a schedule can be memoised
under a small hashable key.

Two tiers:

* **in-memory LRU** (always on, bounded by ``REPRO_SCHEDULE_CACHE_SIZE``,
  default 16 schedules, ``0`` disables caching entirely);
* **on-disk images** (opt-in via ``REPRO_SCHEDULE_CACHE_DIR``): schedules
  are stored in the §3.2 wire format through
  :mod:`repro.scheduling.serialize`, so a cache file is exactly the HBM
  channel image a deployment would ship.  Schedules the wire format
  cannot carry (``migration_span > 1``) silently skip the disk tier.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

from ..errors import FormatError, SchedulingError
from .. import telemetry
from .base import TiledSchedule

_SIZE_ENV = "REPRO_SCHEDULE_CACHE_SIZE"
_DIR_ENV = "REPRO_SCHEDULE_CACHE_DIR"
_DEFAULT_SIZE = 16

CacheKey = Tuple[Hashable, Hashable, str, str]


class ScheduleCache:
    """A bounded LRU of schedules with an optional disk tier."""

    def __init__(
        self,
        capacity: int = _DEFAULT_SIZE,
        disk_dir: Optional[str] = None,
    ):
        self.capacity = max(capacity, 0)
        self.disk_dir = disk_dir
        self._pass_tier = None
        self._entries: "OrderedDict[CacheKey, TiledSchedule]" = OrderedDict()
        # Guards the LRU and the stats; builds run outside the lock, so
        # two threads may race to build the same key (both produce the
        # same deterministic schedule — last insert wins harmlessly).
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_loads = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pass_tier(self):
        """The per-pass artifact tier (lazily created, shared LRU).

        Whole-schedule entries above memoise the *final* pipeline output;
        this tier memoises the intermediate per-tile pass artifacts keyed
        by digest chain, so a run whose whole-schedule key misses (say a
        ``MigratePass``-only config change) can still resume every tile
        from its cached ``BuildGridPass`` snapshot.
        """
        if self._pass_tier is None:
            from .passes import PassArtifactCache

            self._pass_tier = PassArtifactCache()
        return self._pass_tier

    @staticmethod
    def key(
        spec_key: Hashable,
        config: Hashable,
        scheme: str,
        version: str = "",
    ) -> CacheKey:
        """The cache key; configs are frozen dataclasses, hence hashable.

        ``version`` is the scheduler's algorithm revision
        (:attr:`repro.scheduling.registry.SchedulerSpec.version`): two
        revisions of the same scheme never share an entry, in memory or
        on disk.  The config participates *by value* (frozen-dataclass
        equality), so any field change — clock, window, span — is a new
        key even for the same matrix.
        """
        return (spec_key, config, scheme, version)

    def _disk_path(self, key: CacheKey) -> str:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        return os.path.join(self.disk_dir, f"{digest}.chsn")

    def get_or_build(
        self,
        spec_key: Hashable,
        config,
        scheme: str,
        build: Callable[[], TiledSchedule],
        *,
        version: str = "",
    ) -> TiledSchedule:
        """Return the cached schedule for the key, building it on a miss."""
        if self.capacity == 0 and self.disk_dir is None:
            return build()
        t = telemetry.get()
        key = self.key(spec_key, config, scheme, version)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                if t.enabled:
                    t.counter("cache.hits", 1, scheme=scheme)
                return cached

        schedule: Optional[TiledSchedule] = None
        if self.disk_dir is not None:
            path = self._disk_path(key)
            if os.path.exists(path):
                from .serialize import deserialize_schedule

                try:
                    with open(path, "rb") as handle:
                        schedule = deserialize_schedule(
                            handle.read(), config
                        )
                    with self._lock:
                        self.hits += 1
                        self.disk_loads += 1
                    if t.enabled:
                        t.counter("cache.hits", 1, scheme=scheme)
                        t.counter("cache.disk_loads", 1, scheme=scheme)
                except (FormatError, OSError):
                    schedule = None
        if schedule is None:
            with self._lock:
                self.misses += 1
            if t.enabled:
                t.counter("cache.misses", 1, scheme=scheme)
            schedule = build()
            if self.disk_dir is not None:
                self._store_disk(key, schedule)
        self._store_memory(key, schedule)
        return schedule

    def _store_memory(self, key: CacheKey, schedule: TiledSchedule) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = schedule
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                t = telemetry.get()
                if t.enabled:
                    t.counter("cache.evictions", 1)

    def _store_disk(self, key: CacheKey, schedule: TiledSchedule) -> None:
        from .serialize import serialize_schedule

        try:
            image = serialize_schedule(schedule)
        except SchedulingError:
            return  # e.g. migration_span > 1: not wire-encodable (§3.2)
        os.makedirs(self.disk_dir, exist_ok=True)
        path = self._disk_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(image)
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                try:
                    os.remove(tmp)
                except OSError:
                    pass

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.disk_loads = 0
            if self._pass_tier is not None:
                self._pass_tier.clear()


_GLOBAL: Optional[ScheduleCache] = None


def schedule_cache_capacity() -> int:
    """The configured LRU capacity; the default when unset or invalid.

    An unparsable value (``REPRO_SCHEDULE_CACHE_SIZE=big``) falls back to
    the default but is no longer silent: a one-time warning goes through
    the telemetry/logging path (matching ``REPRO_CORPUS_WORKERS``).
    """
    raw = os.environ.get(_SIZE_ENV, "").strip()
    if not raw:
        return _DEFAULT_SIZE
    try:
        return int(raw)
    except ValueError:
        telemetry.warn_once(
            "invalid_schedule_cache_size",
            f"{_SIZE_ENV}={raw!r} is not an integer; "
            f"falling back to the default ({_DEFAULT_SIZE} schedules)",
        )
        return _DEFAULT_SIZE


def global_schedule_cache() -> ScheduleCache:
    """The process-wide cache, configured from the environment once."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ScheduleCache(
            capacity=schedule_cache_capacity(),
            disk_dir=os.environ.get(_DIR_ENV) or None,
        )
    return _GLOBAL
