"""CrHCS — Cross-HBM-Channel Out-of-Order non-zero scheduling (§3).

CrHCS extends PE-aware scheduling with *data migration*: stalls in the
data list of channel *c* are filled with non-zero values migrated from the
next channel ``(c+1) % C`` (up to ``migration_span`` neighbours; the paper
implements one, §3.1).  A migrated element carries ``pvt = 0`` and the
3-bit ``PE_src`` of its home PE so the destination PEG can segregate its
partial sum into the right ``URAM_sh`` bank (§3.2).

Two modes are provided:

``mode="migrate"`` (default, the paper's algorithm, Figs. 4/5)
    Start from the PE-aware grids.  Walk the channels in ring order; for
    each channel fill its stalls — earliest first — with the donor
    channel's *own* elements, taken latest-cycle-first so the donor's list
    shrinks from the tail (the wholesale emptying of Fig. 5b/5c).  A
    candidate is skipped when the same row issued in the destination PE
    fewer than ``distance`` cycles ago (§3.3) and is retried at the next
    stall; repeats in *different* destination PEs are legal because their
    partial sums live in different ScUG banks and only meet in the
    Reduction Unit.  Donated slots become stalls in the donor (Fig. 5d);
    trailing all-stall cycles are trimmed and all lists are resized to the
    longest one (§3.1).

``mode="rebuild"``
    An idealised joint construction used for the ablation benchmarks: all
    channels are rescheduled cycle-by-cycle, each PE issuing its own
    eligible work first (greedy longest-remaining-first) and migrating
    work in from the donor's most backlogged rows when it would stall.
    This upper-bounds what cross-channel scheduling can achieve.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

import numpy as np

from ..config import DEFAULT_CHASON, AcceleratorConfig
from ..errors import SchedulingError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .. import telemetry
from .base import ChannelGrid, Schedule, ScheduledElement, TiledSchedule
from .passes import (
    PassManager,
    register_builder,
    register_migrator,
    resolve_passes,
)
from .pe_aware import group_rows_by_pe, pe_aware_grids
from .registry import register_scheme
# Re-exported from its historical location; the class itself lives in
# stats so the pass layer can use it without importing this module.
from .stats import MigrationReport
from .window import Tile, tile_matrix

Matrix = Union[COOMatrix, CSRMatrix]

#: Algorithm revision (cache fingerprint component); "2" is the
#: optimistic-prefix vectorized migration that replaced the slot walk.
CRHCS_VERSION = "2"

#: How many donor elements a stall examines before staying a stall.
#: Bounds the offline scheduling cost; skipped candidates are retried at
#: later stalls, so misses come from empty donors, not exhausted scans —
#: matching the paper's observation that CrHCS "never fails to find a RAW
#: dependency-free value to migrate" (§3.3).
DEFAULT_STEAL_TRIES = 8


def _resolve_span(
    config: AcceleratorConfig, migration_span: Optional[int]
) -> int:
    if migration_span is None:
        migration_span = getattr(config, "migration_span", 1)
    if not 0 <= migration_span < max(config.sparse_channels, 1):
        raise SchedulingError(
            f"migration span {migration_span} invalid for "
            f"{config.sparse_channels} channels"
        )
    return migration_span


# ---------------------------------------------------------------------------
# mode="migrate": the paper's hole-filling migration on PE-aware grids.
# ---------------------------------------------------------------------------


def migrate_grids(
    grids: List[ChannelGrid],
    config: AcceleratorConfig,
    migration_span: int,
    steal_tries: int = DEFAULT_STEAL_TRIES,
    report: Optional[MigrationReport] = None,
) -> None:
    """Apply the CrHCS ring migration in place (§3.1, Fig. 5).

    The stall scan and the donor tail walk both operate on index arrays
    extracted once per (destination, donor) step — the destination's holes
    in stream order and the donor's own elements latest-first — so the
    inner matching loop touches plain Python ints and one RAW-tracker
    dict, never a per-slot grid probe.  Accepted transfers are applied to
    both grids in two bulk array writes at the end of the step.
    """
    if steal_tries < 1:
        raise SchedulingError("steal_tries must be >= 1")
    channels = len(grids)
    distance = config.accumulator_latency
    prefix_slots = 0
    walk_slots = 0
    if report is not None:
        report.own_issues += sum(g.element_count for g in grids)
    if migration_span == 0 or channels < 2:
        for grid in grids:
            grid.trim_trailing_stalls()
        return

    # §3.1: the data lists are resized to the longest one; the padded
    # stalls of short (even empty) channels are exactly the slots
    # migration fills.  Trailing leftovers are trimmed at the end.
    longest = max((grid.length for grid in grids), default=0)
    for grid in grids:
        grid.ensure_length(longest)

    for c in range(channels):
        dest = grids[c]
        dest_length = dest.length
        tracker: Dict[Tuple[int, int], int] = {}
        tracker_get = tracker.get
        for step in range(1, migration_span + 1):
            donor_id = (c + step) % channels
            donor = grids[donor_id]
            (cand_cycles, cand_pes, cand_rows, cand_cols, cand_values,
             cand_origin_pes) = donor.own_arrays_tail_first()
            if cand_cycles.size == 0:
                continue
            hole_cycles, hole_pes = dest.hole_coords(dest_length)
            n_cand = cand_cycles.size
            pairs = min(n_cand, hole_cycles.size)

            # Optimistic vectorized pass: while no candidate is ever
            # skipped, hole i simply takes candidate i.  A lexsort groups
            # the tentative assignments by (dest PE, row); a RAW violation
            # is two same-group assignments fewer than ``distance`` cycles
            # apart (hole cycles ascend, so checking neighbours suffices).
            # Everything before the first violation is exactly what the
            # sequential walk would accept, so it is taken wholesale and
            # the walk resumes from the violating hole.
            prefix = 0
            if pairs and not tracker:
                a_pe = hole_pes[:pairs]
                a_cycle = hole_cycles[:pairs]
                a_row = cand_rows[:pairs]
                group = np.lexsort((np.arange(pairs), a_row, a_pe))
                same = (a_pe[group][1:] == a_pe[group][:-1]) & (
                    a_row[group][1:] == a_row[group][:-1]
                )
                close = (a_cycle[group][1:] - a_cycle[group][:-1]) < distance
                violation = same & close
                if not violation.any():
                    prefix = pairs
                else:
                    prefix = int(group[1:][violation].min())

            migrated_here = prefix
            raw_skips = 0
            accepted: List[int] = []
            accepted_cycles: List[int] = []
            accepted_pes: List[int] = []
            if prefix < pairs:
                # Sequential tail from the first RAW conflict on, seeded
                # with the tracker state the prefix would have built.
                hole_pes_list = hole_pes[prefix:].tolist()
                hole_cycles_list = hole_cycles[prefix:].tolist()
                cand_rows_list = cand_rows.tolist()
                for j in range(prefix):
                    tracker[
                        (int(hole_pes[j]), cand_rows_list[j])
                    ] = int(hole_cycles[j]) + distance
                # Candidate ids walk the donor tail-first; skipped ids
                # return to the front of the deque in original order.
                candidates: Deque[int] = deque(range(prefix, n_cand))
                skipped: List[int] = []
                for cycle, pe in zip(hole_cycles_list, hole_pes_list):
                    if not candidates:
                        break
                    found = -1
                    tries = steal_tries
                    if tries > len(candidates):
                        tries = len(candidates)
                    for _ in range(tries):
                        candidate = candidates.popleft()
                        if tracker_get(
                            (pe, cand_rows_list[candidate]), 0
                        ) <= cycle:
                            found = candidate
                            break
                        skipped.append(candidate)
                        raw_skips += 1
                    if skipped:
                        candidates.extendleft(reversed(skipped))
                        skipped.clear()
                    if found >= 0:
                        accepted.append(found)
                        accepted_cycles.append(cycle)
                        accepted_pes.append(pe)
                        tracker[(pe, cand_rows_list[found])] = (
                            cycle + distance
                        )
                        migrated_here += 1
            elif prefix and step < migration_span:
                # Later donor steps reuse this tracker; materialise the
                # entries the wholesale accept implies.
                rows_list = cand_rows[:prefix].tolist()
                pes_list = hole_pes[:prefix].tolist()
                cycles_list = hole_cycles[:prefix].tolist()
                for pe_i, row_i, cycle_i in zip(
                    pes_list, rows_list, cycles_list
                ):
                    tracker[(pe_i, row_i)] = cycle_i + distance

            if migrated_here:
                if accepted:
                    taken = np.concatenate([
                        np.arange(prefix, dtype=np.int64),
                        np.asarray(accepted, dtype=np.int64),
                    ])
                    new_cycles = np.concatenate([
                        hole_cycles[:prefix],
                        np.asarray(accepted_cycles, dtype=np.int64),
                    ])
                    new_pes = np.concatenate([
                        hole_pes[:prefix],
                        np.asarray(accepted_pes, dtype=np.int64),
                    ])
                else:
                    taken = np.arange(prefix, dtype=np.int64)
                    new_cycles = hole_cycles[:prefix]
                    new_pes = hole_pes[:prefix]
                donor.clear_slots(cand_cycles[taken], cand_pes[taken])
                dest.fill_slots(
                    new_cycles,
                    new_pes,
                    cand_rows[taken],
                    cand_cols[taken],
                    cand_values[taken],
                    donor_id,
                    cand_origin_pes[taken],
                )
            prefix_slots += prefix
            walk_slots += len(accepted)
            if report is not None and (migrated_here or raw_skips):
                report.own_issues -= migrated_here
                report.migrated += migrated_here
                report.raw_skips += raw_skips
                report.pair_counts[(c, donor_id)] += migrated_here

    t = telemetry.get()
    if t.enabled:
        t.counter("scheduler.crhcs.prefix_slots", prefix_slots)
        t.counter("scheduler.crhcs.walk_slots", walk_slots)

    for grid in grids:
        grid.trim_trailing_stalls()


# ---------------------------------------------------------------------------
# mode="rebuild": idealised joint cycle-by-cycle construction (ablation).
# ---------------------------------------------------------------------------


class _ChannelPool:
    """Undispatched non-zeros of one channel for the rebuild mode.

    The home channel drains rows from the *front* (preserving CSR order);
    migrating neighbours steal from the *back*.  Row priority heaps are
    lazy: entries whose deque emptied under theft are dropped on pop.
    """

    def __init__(self, channel_id: int, pe_groups, distance: int):
        self.channel_id = channel_id
        self.distance = distance
        self.pes = len(pe_groups)
        self.row_elements: Dict[int, Deque[int]] = {}
        self.row_home_pe: Dict[int, int] = {}
        self.ready: List[List[Tuple[int, int]]] = [[] for _ in range(self.pes)]
        self.waiting: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(self.pes)
        ]
        self.steal_heap: List[Tuple[int, int]] = []
        self.remaining = 0
        for pe, rows in enumerate(pe_groups):
            for row, element_indices in rows:
                if len(element_indices) == 0:
                    continue
                queue: Deque[int] = deque(int(i) for i in element_indices)
                self.row_elements[row] = queue
                self.row_home_pe[row] = pe
                heapq.heappush(self.ready[pe], (-len(queue), row))
                heapq.heappush(self.steal_heap, (-len(queue), row))
                self.remaining += len(queue)

    def pop_own(self, pe: int, cycle: int) -> Optional[Tuple[int, int]]:
        """Issue one own element for ``pe`` at ``cycle`` if one is eligible."""
        ready = self.ready[pe]
        waiting = self.waiting[pe]
        while waiting and waiting[0][0] <= cycle:
            _, neg_rem, row = heapq.heappop(waiting)
            heapq.heappush(ready, (neg_rem, row))
        while ready:
            _, row = heapq.heappop(ready)
            queue = self.row_elements[row]
            if not queue:  # drained by a migrating neighbour
                continue
            element_index = queue.popleft()
            self.remaining -= 1
            if queue:
                heapq.heappush(
                    waiting, (cycle + self.distance, -len(queue), row)
                )
            return row, element_index
        return None

    def steal(self, eligible, tries: int):
        """Take one element from the back of the most backlogged row.

        ``eligible(row) -> (ok, expiry)`` implements the §3.3 RAW check at
        the destination.  Returns ``((row, element, home_pe) | None,
        blocked_until, skips)``.
        """
        heap = self.steal_heap
        skipped: List[Tuple[int, int]] = []
        result = None
        blocked_until: Optional[int] = None
        skips = 0
        for _ in range(tries):
            if not heap:
                break
            neg_rem, row = heapq.heappop(heap)
            queue = self.row_elements[row]
            if not queue:
                continue
            ok, expiry = eligible(row)
            if ok:
                element_index = queue.pop()
                self.remaining -= 1
                if queue:
                    heapq.heappush(heap, (-len(queue), row))
                result = (row, element_index, self.row_home_pe[row])
                break
            skips += 1
            skipped.append((neg_rem, row))
            if blocked_until is None or expiry < blocked_until:
                blocked_until = expiry
        for entry in skipped:
            heapq.heappush(heap, entry)
        return result, blocked_until, skips

    def min_waiting_cycle(self) -> Optional[int]:
        heads = [w[0][0] for w in self.waiting if w]
        return min(heads) if heads else None


def rebuild_grids(
    tile: Tile,
    config: AcceleratorConfig,
    migration_span: int,
    steal_tries: int = DEFAULT_STEAL_TRIES,
    report: Optional[MigrationReport] = None,
) -> List[ChannelGrid]:
    """Joint cycle-by-cycle construction of CrHCS grids (rebuild mode)."""
    channels = config.sparse_channels
    pes = config.pes_per_channel
    distance = config.accumulator_latency
    if steal_tries < 1:
        raise SchedulingError("steal_tries must be >= 1")

    groups = group_rows_by_pe(tile, config)
    pools = [_ChannelPool(c, groups[c], distance) for c in range(channels)]
    grids = [ChannelGrid(channel_id=c, pes=pes) for c in range(channels)]
    trackers: List[Dict[Tuple[int, int], int]] = [
        dict() for _ in range(channels)
    ]
    donor_ids = [
        [(c + s) % channels for s in range(1, migration_span + 1)]
        for c in range(channels)
    ]

    total = sum(pool.remaining for pool in pools)
    cycle = 0
    while total > 0:
        placed_any = False
        blocked_min: Optional[int] = None
        filled = [[False] * pes for _ in range(channels)]

        # Phase 1: every PE issues its own work first.
        for c in range(channels):
            pool = pools[c]
            if not pool.remaining:
                continue
            grid = grids[c]
            for pe in range(pes):
                own = pool.pop_own(pe, cycle)
                if own is None:
                    continue
                row, element_index = own
                grid.place(
                    cycle,
                    pe,
                    ScheduledElement(
                        row=row,
                        col=int(tile.cols[element_index]),
                        value=float(tile.values[element_index]),
                        origin_channel=c,
                        origin_pe=pe,
                    ),
                )
                filled[c][pe] = True
                placed_any = True
                total -= 1
                if report is not None:
                    report.own_issues += 1

        # Phase 2: idle PEs migrate data in from their donor channels.
        if migration_span:
            for c in range(channels):
                donors = [d for d in donor_ids[c] if pools[d].remaining]
                if not donors:
                    continue
                grid = grids[c]
                tracker = trackers[c]
                for pe in range(pes):
                    if filled[c][pe]:
                        continue
                    for donor in donors:
                        def _eligible(row, _pe=pe, _tracker=tracker):
                            expiry = _tracker.get((_pe, row), 0)
                            return expiry <= cycle, expiry

                        stolen, blocked, skips = pools[donor].steal(
                            _eligible, steal_tries
                        )
                        if report is not None:
                            report.raw_skips += skips
                        if blocked is not None and (
                            blocked_min is None or blocked < blocked_min
                        ):
                            blocked_min = blocked
                        if stolen is None:
                            continue
                        row, element_index, home_pe = stolen
                        grid.place(
                            cycle,
                            pe,
                            ScheduledElement(
                                row=row,
                                col=int(tile.cols[element_index]),
                                value=float(tile.values[element_index]),
                                origin_channel=donor,
                                origin_pe=home_pe,
                            ),
                        )
                        tracker[(pe, row)] = cycle + distance
                        filled[c][pe] = True
                        placed_any = True
                        total -= 1
                        if report is not None:
                            report.record_migration(c, donor)
                        break

        if placed_any:
            cycle += 1
            continue
        # Nothing could issue: jump ahead to the next cycle where a waiting
        # row (home side) or a RAW-blocked migration (destination side)
        # becomes eligible.  Progress is guaranteed because every non-empty
        # row sits in some home waiting heap.
        candidates = [blocked_min] if blocked_min is not None else []
        for pool in pools:
            if pool.remaining:
                head = pool.min_waiting_cycle()
                if head is not None:
                    candidates.append(head)
        cycle = max(cycle + 1, min(candidates)) if candidates else cycle + 1

    for grid in grids:
        grid.ensure_length(cycle)
    return grids


# ---------------------------------------------------------------------------
# pass-pipeline wiring
# ---------------------------------------------------------------------------


def _crhcs_migrator(grids, config, options, report):
    """Kernel adapter for the pass pipeline (``migrate:crhcs``)."""
    migrate_grids(
        grids,
        config,
        options["migration_span"],
        steal_tries=options.get("steal_tries", DEFAULT_STEAL_TRIES),
        report=report,
    )


def _rebuild_builder(tile, config, options, report):
    """Kernel adapter for the pass pipeline (``build:crhcs_rebuild``)."""
    return rebuild_grids(
        tile,
        config,
        options["migration_span"],
        steal_tries=options.get("steal_tries", DEFAULT_STEAL_TRIES),
        report=report,
    )


register_migrator(
    "crhcs",
    _crhcs_migrator,
    option_keys=("migration_span", "steal_tries"),
    version=CRHCS_VERSION,
)
register_builder(
    "crhcs_rebuild",
    _rebuild_builder,
    option_keys=("migration_span", "steal_tries"),
    uses_report=True,
    version=CRHCS_VERSION,
)

#: Pass compositions of the two CrHCS modes.
CRHCS_PASSES = (
    "build:pe_aware", "migrate:crhcs", "compact", "trim", "verify",
)
CRHCS_REBUILD_PASSES = ("build:crhcs_rebuild", "compact", "trim", "verify")


def _crhcs_options(config: AcceleratorConfig, kwargs: dict) -> dict:
    """Resolved kernel options (span defaulted from the config)."""
    return {
        "migration_span": _resolve_span(
            config, kwargs.get("migration_span")
        ),
        "steal_tries": kwargs.get("steal_tries", DEFAULT_STEAL_TRIES),
    }


def _crhcs_plan(config: AcceleratorConfig, kwargs: dict):
    mode = kwargs.get("mode", "migrate")
    if mode == "migrate":
        names = CRHCS_PASSES
    elif mode == "rebuild":
        names = CRHCS_REBUILD_PASSES
    else:
        raise SchedulingError(f"unknown CrHCS mode {mode!r}")
    return resolve_passes(names, _crhcs_options(config, kwargs))


def _crhcs_rebuild_plan(config: AcceleratorConfig, kwargs: dict):
    return resolve_passes(
        CRHCS_REBUILD_PASSES, _crhcs_options(config, kwargs)
    )


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def schedule_crhcs_tile(
    tile: Tile,
    config: AcceleratorConfig,
    migration_span: Optional[int] = None,
    steal_tries: int = DEFAULT_STEAL_TRIES,
    mode: str = "migrate",
    report: Optional[MigrationReport] = None,
) -> Schedule:
    """Schedule one tile with CrHCS and equalise the channel lists."""
    span = _resolve_span(config, migration_span)
    tile_report = MigrationReport()
    if mode == "migrate":
        grids = pe_aware_grids(tile, config)
        migrate_grids(
            grids, config, span, steal_tries=steal_tries, report=tile_report
        )
        scheme = "crhcs"
    elif mode == "rebuild":
        grids = rebuild_grids(
            tile, config, span, steal_tries=steal_tries, report=tile_report
        )
        scheme = "crhcs_rebuild"
    else:
        raise SchedulingError(f"unknown CrHCS mode {mode!r}")
    if report is not None:
        report.merge(tile_report)
    schedule = Schedule(
        config=config,
        grids=grids,
        scheme=scheme,
        row_base=tile.row_base,
        col_base=tile.col_base,
        migrated_count=tile_report.migrated,
        migration_span=span,
    )
    schedule.equalise()
    return schedule


@register_scheme(
    name="crhcs",
    version=CRHCS_VERSION,
    default_config=DEFAULT_CHASON,
    power_key="chason",
    accelerator_name="chason",
    report_kwarg=True,
    description="cross-HBM-channel OoO with data migration (Fig. 2c, §3)",
    passes=CRHCS_PASSES,
    plan=_crhcs_plan,
)
def schedule_crhcs(
    matrix: Matrix,
    config: AcceleratorConfig,
    migration_span: Optional[int] = None,
    steal_tries: int = DEFAULT_STEAL_TRIES,
    mode: str = "migrate",
    max_rows_per_pass: int = 0,
    report: Optional[MigrationReport] = None,
    _pass_cache=None,
) -> TiledSchedule:
    """Schedule a whole matrix with CrHCS (§3)."""
    t = telemetry.get()
    kwargs = {
        "migration_span": migration_span,
        "steal_tries": steal_tries,
        "mode": mode,
    }
    plan = _crhcs_plan(config, kwargs)
    span_value = _resolve_span(config, migration_span)
    manager = PassManager(
        plan,
        scheme="crhcs" if mode == "migrate" else "crhcs_rebuild",
        migration_span=span_value,
    )
    with t.span("schedule.crhcs", nnz=matrix.nnz, mode=mode) as span:
        schedule = manager.run(
            matrix, config,
            max_rows_per_pass=max_rows_per_pass, cache=_pass_cache,
        )
        span.annotate(tiles=len(schedule.tiles))
    # The manager aggregates this call's migrations tile by tile (the
    # caller's report, if any, may span several matrices), so the
    # telemetry counters carry exactly this matrix's contribution.
    local_report = manager.last_report
    if t.enabled and local_report is not None:
        t.counter("scheduler.crhcs.matrices", 1)
        t.counter("scheduler.crhcs.tiles", len(schedule.tiles))
        t.counter("scheduler.crhcs.nnz", matrix.nnz)
        t.counter("scheduler.crhcs.migrated", local_report.migrated)
        t.counter("scheduler.crhcs.own_issues", local_report.own_issues)
        t.counter("scheduler.crhcs.raw_skips", local_report.raw_skips)
        # The §5.3 per-channel-pair migration traffic, folded from the
        # report's (destination, donor) Counter.
        for (dest, donor), count in sorted(local_report.pair_counts.items()):
            t.counter(
                "scheduler.crhcs.migrated_pair", count,
                dest=dest, donor=donor,
            )
    if report is not None and local_report is not None:
        report.merge(local_report)
    return schedule


@register_scheme(
    name="crhcs_rebuild",
    version=CRHCS_VERSION,
    default_config=DEFAULT_CHASON,
    power_key="chason",
    accelerator_name="chason",
    report_kwarg=True,
    description="CrHCS rebuild mode: schedule from scratch, span-aware",
    passes=CRHCS_REBUILD_PASSES,
    plan=_crhcs_rebuild_plan,
)
def schedule_crhcs_rebuild(
    matrix: Matrix,
    config: AcceleratorConfig,
    migration_span: Optional[int] = None,
    steal_tries: int = DEFAULT_STEAL_TRIES,
    max_rows_per_pass: int = 0,
    report: Optional[MigrationReport] = None,
    _pass_cache=None,
) -> TiledSchedule:
    """CrHCS in ``rebuild`` mode under its registry name."""
    return schedule_crhcs(
        matrix,
        config,
        migration_span=migration_span,
        steal_tries=steal_tries,
        mode="rebuild",
        max_rows_per_pass=max_rows_per_pass,
        report=report,
        _pass_cache=_pass_cache,
    )
