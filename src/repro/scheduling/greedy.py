"""Greedy intra-channel OoO scheduling (ablation scheme ``"greedy_ooo"``).

An idealised variant of PE-aware scheduling: instead of the fixed
round-robin window of §2.2, each PE picks — every cycle — the eligible row
(RAW distance satisfied) with the most remaining non-zeros.  This is the
classic longest-remaining-first greedy for cooldown scheduling and is an
upper bound on what *intra-channel* scheduling can achieve.

It exists for the scheduling-policy ablation: comparing ``pe_aware`` →
``greedy_ooo`` → ``crhcs`` separates how much of CrHCS's win comes from
smarter ordering versus from crossing the channel boundary.  The paper's
point — that intra-channel scheduling fundamentally cannot fill stalls
when a channel's rows run out of non-zeros (§2.3) — is visible here too:
``greedy_ooo`` still stalls whenever a channel's eligible work dries up.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple, Union

from ..config import DEFAULT_SERPENS, AcceleratorConfig
from ..errors import SchedulingError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .base import ChannelGrid, Schedule, ScheduledElement, TiledSchedule
from .passes import PassManager, register_builder, resolve_passes
from .pe_aware import RowGroup, group_rows_by_pe
from .registry import register_scheme
from .window import Tile, tile_matrix

#: Algorithm revision (cache fingerprint component).
GREEDY_VERSION = "1"

Matrix = Union[COOMatrix, CSRMatrix]


def schedule_single_pe_greedy(
    rows: Sequence[RowGroup], distance: int
) -> Tuple[List[int], List[int], int]:
    """Greedy cooldown schedule of one PE's rows.

    Returns ``(cycles, element_indices, length)``; cycles absent from the
    output are stalls.
    """
    if distance < 1:
        raise SchedulingError("dependency distance must be >= 1")
    ready: List[Tuple[int, int]] = []  # (-remaining, row)
    waiting: List[Tuple[int, int, int]] = []  # (eligible, -remaining, row)
    arrays = {}
    pointers = {}
    for row, element_indices in rows:
        if len(element_indices) == 0:
            continue
        arrays[row] = element_indices
        pointers[row] = 0
        heapq.heappush(ready, (-len(element_indices), row))

    out_cycles: List[int] = []
    out_elements: List[int] = []
    cycle = 0
    while ready or waiting:
        while waiting and waiting[0][0] <= cycle:
            _, neg_rem, row = heapq.heappop(waiting)
            heapq.heappush(ready, (neg_rem, row))
        if not ready:
            cycle = waiting[0][0]
            continue
        neg_rem, row = heapq.heappop(ready)
        pointer = pointers[row]
        out_cycles.append(cycle)
        out_elements.append(int(arrays[row][pointer]))
        pointers[row] = pointer + 1
        remaining = -neg_rem - 1
        if remaining:
            heapq.heappush(waiting, (cycle + distance, -remaining, row))
        cycle += 1
    return out_cycles, out_elements, cycle


def greedy_grids(tile: Tile, config: AcceleratorConfig) -> List[ChannelGrid]:
    """Unequalised per-channel grids under greedy intra-channel OoO."""
    groups = group_rows_by_pe(tile, config)
    distance = config.accumulator_latency
    grids: List[ChannelGrid] = []
    for channel_id in range(config.sparse_channels):
        grid = ChannelGrid(channel_id=channel_id, pes=config.pes_per_channel)
        for pe in range(config.pes_per_channel):
            cycles, elements, pe_length = schedule_single_pe_greedy(
                groups[channel_id][pe], distance
            )
            grid.ensure_length(pe_length)
            for cycle, element_index in zip(cycles, elements):
                grid.place(
                    cycle,
                    pe,
                    ScheduledElement(
                        row=int(tile.rows[element_index]),
                        col=int(tile.cols[element_index]),
                        value=float(tile.values[element_index]),
                        origin_channel=channel_id,
                        origin_pe=pe,
                    ),
                )
        grids.append(grid)
    return grids


def _greedy_builder(tile, config, options, report):
    """Kernel adapter for the pass pipeline (``build:greedy``)."""
    return greedy_grids(tile, config)


register_builder("greedy", _greedy_builder, version=GREEDY_VERSION)

#: The scheme's pass composition (declared on the registry spec).
GREEDY_PASSES = ("build:greedy", "compact", "trim", "verify")


def _greedy_plan(config: AcceleratorConfig, kwargs: dict):
    return resolve_passes(GREEDY_PASSES)


def schedule_greedy_tile(tile: Tile, config: AcceleratorConfig) -> Schedule:
    schedule = Schedule(
        config=config,
        grids=greedy_grids(tile, config),
        scheme="greedy_ooo",
        row_base=tile.row_base,
        col_base=tile.col_base,
    )
    schedule.equalise()
    return schedule


@register_scheme(
    name="greedy_ooo",
    version=GREEDY_VERSION,
    default_config=DEFAULT_SERPENS,
    power_key="serpens",
    description="greedy intra-channel OoO (scheduling-policy ablation)",
    passes=GREEDY_PASSES,
    plan=_greedy_plan,
)
def schedule_greedy_ooo(
    matrix: Matrix,
    config: AcceleratorConfig,
    max_rows_per_pass: int = 0,
    _pass_cache=None,
) -> TiledSchedule:
    """Schedule a whole matrix with greedy intra-channel OoO scheduling."""
    manager = PassManager(_greedy_plan(config, {}), scheme="greedy_ooo")
    return manager.run(
        matrix, config,
        max_rows_per_pass=max_rows_per_pass, cache=_pass_cache,
    )
