"""The original slot-at-a-time schedule builders (reference semantics).

These are the pre-vectorization PE-aware and CrHCS builders, preserved
verbatim: one dict-style slot insert per non-zero, one per-slot membership
probe per stall scan.  They define the *reference semantics* the
vectorized fast paths in :mod:`repro.scheduling.pe_aware` and
:mod:`repro.scheduling.crhcs` must reproduce slot-for-slot — the
differential test (``tests/test_differential_legacy.py``) schedules a
seeded mini-corpus through both and asserts equality.

They are intentionally slow and exist only for verification; nothing in
the library calls them outside tests and the hotpath benchmark's
``--legacy`` mode.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..config import AcceleratorConfig
from ..errors import SchedulingError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .base import ChannelGrid, Schedule, ScheduledElement, TiledSchedule
from .crhcs import (
    DEFAULT_STEAL_TRIES,
    MigrationReport,
    _resolve_span,
)
from .pe_aware import RowGroup, group_rows_by_pe
from .window import Tile, tile_matrix

Matrix = Union[COOMatrix, CSRMatrix]


def legacy_schedule_single_pe_round_robin(
    rows: List[RowGroup], distance: int, total_pes: int
) -> Tuple[List[int], List[int], int]:
    """The incremental windowed round-robin walk of one PE's rows."""
    if distance < 1:
        raise SchedulingError("dependency distance must be >= 1")
    out_cycles: List[int] = []
    out_elements: List[int] = []
    base = 0
    window_rows: List[Tuple[int, object]] = []  # (lane, indices)

    def _flush() -> int:
        rotations = max(len(indices) for _, indices in window_rows)
        for lane, indices in window_rows:
            for rotation in range(len(indices)):
                out_cycles.append(base + rotation * distance + lane)
                out_elements.append(int(indices[rotation]))
        return base + rotations * distance

    current_window = None
    for row_id, indices in rows:
        position = row_id // total_pes
        window_index, lane = divmod(position, distance)
        if window_index != current_window:
            if window_rows:
                base = _flush()
                window_rows.clear()
            current_window = window_index
        window_rows.append((lane, indices))
    if window_rows:
        base = _flush()
    return out_cycles, out_elements, base


def legacy_pe_aware_grids(
    tile: Tile, config: AcceleratorConfig
) -> List[ChannelGrid]:
    """Dict-style per-element grid construction (the original hot loop)."""
    groups = group_rows_by_pe(tile, config)
    distance = config.accumulator_latency
    rows_list = tile.rows.tolist()
    cols_list = tile.cols.tolist()
    values_list = tile.values.tolist()
    grids: List[ChannelGrid] = []
    for channel_id in range(config.sparse_channels):
        grid = ChannelGrid(channel_id=channel_id, pes=config.pes_per_channel)
        occupied = grid.occupied
        for pe in range(config.pes_per_channel):
            cycles, elements, pe_length = (
                legacy_schedule_single_pe_round_robin(
                    groups[channel_id][pe], distance, config.total_pes
                )
            )
            grid.ensure_length(pe_length)
            for cycle, element_index in zip(cycles, elements):
                occupied[(cycle, pe)] = ScheduledElement(
                    rows_list[element_index],
                    cols_list[element_index],
                    values_list[element_index],
                    channel_id,
                    pe,
                )
        grid.trim_trailing_stalls()
        grids.append(grid)
    return grids


def legacy_migrate_grids(
    grids: List[ChannelGrid],
    config: AcceleratorConfig,
    migration_span: int,
    steal_tries: int = DEFAULT_STEAL_TRIES,
    report: Optional[MigrationReport] = None,
) -> None:
    """The original per-slot-probe CrHCS ring migration (§3.1, Fig. 5)."""
    if steal_tries < 1:
        raise SchedulingError("steal_tries must be >= 1")
    channels = len(grids)
    distance = config.accumulator_latency
    if report is not None:
        report.own_issues += sum(g.element_count for g in grids)
    if migration_span == 0 or channels < 2:
        for grid in grids:
            grid.trim_trailing_stalls()
        return

    longest = max((grid.length for grid in grids), default=0)
    for grid in grids:
        grid.ensure_length(longest)

    pes = config.pes_per_channel
    for c in range(channels):
        dest = grids[c]
        dest_occupied = dest.occupied
        dest_length = dest.length
        tracker: Dict[Tuple[int, int], int] = {}
        tracker_get = tracker.get
        for step in range(1, migration_span + 1):
            donor_id = (c + step) % channels
            donor = grids[donor_id]
            donor_occupied = donor.occupied
            candidates: Deque[Tuple[int, int, ScheduledElement]] = deque(
                donor.own_elements_tail_first()
            )
            if not candidates:
                continue
            migrated_here = 0
            raw_skips = 0
            skipped: List[Tuple[int, int, ScheduledElement]] = []
            for cycle in range(dest_length):
                if not candidates:
                    break
                for pe in range(pes):
                    if (cycle, pe) in dest_occupied:
                        continue
                    found = None
                    for _ in range(min(steal_tries, len(candidates))):
                        candidate = candidates.popleft()
                        element = candidate[2]
                        if tracker_get((pe, element.row), 0) <= cycle:
                            found = candidate
                            break
                        skipped.append(candidate)
                        raw_skips += 1
                    if skipped:
                        candidates.extendleft(reversed(skipped))
                        skipped.clear()
                    if found is not None:
                        element = found[2]
                        del donor_occupied[(found[0], found[1])]
                        dest_occupied[(cycle, pe)] = element
                        tracker[(pe, element.row)] = cycle + distance
                        migrated_here += 1
                    if not candidates:
                        break
            if report is not None and (migrated_here or raw_skips):
                report.own_issues -= migrated_here
                report.migrated += migrated_here
                report.raw_skips += raw_skips
                key = (c, donor_id)
                report.pair_counts[key] = (
                    report.pair_counts.get(key, 0) + migrated_here
                )

    for grid in grids:
        grid.trim_trailing_stalls()


def legacy_schedule_pe_aware(
    matrix: Matrix,
    config: AcceleratorConfig,
    max_rows_per_pass: int = 0,
) -> TiledSchedule:
    """Whole-matrix PE-aware scheduling through the legacy builder."""
    tiles = tile_matrix(matrix, config, max_rows_per_pass)
    schedules = []
    for tile in tiles:
        schedule = Schedule(
            config=config,
            grids=legacy_pe_aware_grids(tile, config),
            scheme="pe_aware",
            row_base=tile.row_base,
            col_base=tile.col_base,
        )
        schedule.equalise()
        schedules.append(schedule)
    return TiledSchedule(
        config=config,
        tiles=schedules,
        scheme="pe_aware",
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
    )


def legacy_schedule_crhcs(
    matrix: Matrix,
    config: AcceleratorConfig,
    migration_span: Optional[int] = None,
    steal_tries: int = DEFAULT_STEAL_TRIES,
    max_rows_per_pass: int = 0,
    report: Optional[MigrationReport] = None,
) -> TiledSchedule:
    """Whole-matrix CrHCS (migrate mode) through the legacy builders."""
    span = _resolve_span(config, migration_span)
    tiles = tile_matrix(matrix, config, max_rows_per_pass)
    schedules = []
    for tile in tiles:
        tile_report = MigrationReport()
        grids = legacy_pe_aware_grids(tile, config)
        legacy_migrate_grids(
            grids, config, span, steal_tries=steal_tries, report=tile_report
        )
        if report is not None:
            report.merge(tile_report)
        schedule = Schedule(
            config=config,
            grids=grids,
            scheme="crhcs",
            row_base=tile.row_base,
            col_base=tile.col_base,
            migrated_count=tile_report.migrated,
            migration_span=span,
        )
        schedule.equalise()
        schedules.append(schedule)
    return TiledSchedule(
        config=config,
        tiles=schedules,
        scheme="crhcs",
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
    )
