"""Schedule-IR pass pipeline (build → migrate → compact → trim → verify).

Scheduling used to be five monolithic builder functions; this package
restructures it as an explicit pass pipeline over the array-backed
grids, with a :class:`PassManager` that chains a per-pass fingerprint
(upstream digest + pass config + pass version) through the list.  The
registry declares every scheme as a pass list, the pipeline's schedule
stage routes through per-pass artifacts, and
:class:`IncrementalScheduler` turns the digest chains into incremental
rescheduling for in-place matrix updates.

Layering: this package may import ``scheduling.base``/``stats``/
``window`` but never the registry or the scheme modules — the scheme
modules register their grid/migration kernels *into* the pass registries
at import time (enforced by ``scripts/check_layering.py``).
"""

from .base import SchedulePass, ScheduleIR, TileState
from .build import (
    BuildGridPass,
    builder_variants,
    register_builder,
)
from .fingerprint import (
    fingerprint,
    fingerprint_config,
    fingerprint_tile,
)
from .migrate import (
    MigratePass,
    migrator_variants,
    register_migrator,
)
from .manager import (
    IncrementalScheduler,
    PassArtifactCache,
    PassManager,
    PassRunStats,
    known_pass_names,
    pass_cache_capacity,
    resolve_passes,
    validate_pass_name,
)
from .structural import (
    CompactPass,
    TrimPass,
    VerifyPass,
    grids_identical,
    schedules_identical,
    tiles_identical,
)

__all__ = [
    "SchedulePass",
    "ScheduleIR",
    "TileState",
    "BuildGridPass",
    "MigratePass",
    "CompactPass",
    "TrimPass",
    "VerifyPass",
    "PassManager",
    "PassArtifactCache",
    "PassRunStats",
    "IncrementalScheduler",
    "register_builder",
    "register_migrator",
    "builder_variants",
    "migrator_variants",
    "known_pass_names",
    "validate_pass_name",
    "resolve_passes",
    "pass_cache_capacity",
    "fingerprint",
    "fingerprint_config",
    "fingerprint_tile",
    "grids_identical",
    "schedules_identical",
    "tiles_identical",
]
