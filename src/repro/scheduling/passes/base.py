"""The Schedule-IR and the :class:`SchedulePass` contract.

The IR is deliberately thin: scheduling already has a good data
structure — the array-backed :class:`~repro.scheduling.base.ChannelGrid`
— so the IR wraps it with the *typed pass metadata* the manager needs:
which tile a state belongs to, the grids produced so far, and the
migration bookkeeping accumulated along the way.

A pass transforms one :class:`TileState` in place.  Tiles are mutually
independent (a :class:`~repro.scheduling.base.TiledSchedule` concatenates
them), which is what makes per-tile fingerprint chains — and hence
incremental rescheduling — possible: an in-place matrix edit invalidates
only the chains of the tiles it touched.

Every pass declares:

``name``
    The stage it implements (``build``/``migrate``/``compact``/``trim``/
    ``verify``) — also the suffix of its ``schedule.pass.<name>``
    telemetry span.
``token``
    The registry spelling, including the kernel variant
    (``"build:pe_aware"``, ``"migrate:crhcs"``).
``version``
    Algorithm revision, chained into the pass digest so a revised pass
    can never be served a stale cached artifact.
``params()``
    The resolved parameters that determine the pass's output (for the
    digest chain) — *resolved*, so ``migration_span=None`` and the
    config's default span hash identically.
``cacheable``
    Whether the manager snapshots the tile state after this pass runs.
    Only the expensive passes (build, migrate) are worth the grid copy;
    compact/trim/verify are cheap enough to always re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..base import ChannelGrid
from ..stats import MigrationReport
from ..window import Tile


@dataclass
class TileState:
    """Mutable per-tile state threaded through the pass list."""

    tile: Tile
    #: One grid per sparse channel once the build pass has run.
    grids: Optional[List[ChannelGrid]] = None
    #: Elements moved across channels (set by migrate/build passes).
    migrated: int = 0
    #: Per-tile migration bookkeeping (merged into the run's report).
    report: Optional[MigrationReport] = None
    #: Index of the first pass that must run for this tile; passes below
    #: it were restored from the pass-artifact cache.
    resume_from: int = 0


@dataclass
class ScheduleIR:
    """The whole-matrix state a pass list operates over."""

    config: object
    #: Scheme tag stamped into every produced Schedule.
    scheme: str
    tiles: List[TileState] = field(default_factory=list)
    #: Span the schedules were built with (CrHCS family; None otherwise).
    migration_span: Optional[int] = None


class SchedulePass:
    """Base class for passes; subclasses override :meth:`run_tile`."""

    name: str = "pass"
    token: str = "pass"
    version: str = "1"
    cacheable: bool = False

    def params(self) -> Tuple[Tuple[str, object], ...]:
        """Resolved parameters that determine this pass's output."""
        return ()

    def signature(self) -> Tuple[object, ...]:
        """The digest-chain contribution: token + version + parameters."""
        return (self.token, self.version, self.params())

    def run_tile(self, state: TileState, ir: ScheduleIR) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in self.params())
        return f"{type(self).__name__}({self.token}{', ' if params else ''}{params})"
