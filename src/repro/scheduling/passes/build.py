"""``BuildGridPass`` — tile non-zeros → per-channel grids.

The grid *kernels* (the vectorized PE-aware builder, the greedy cooldown
walk, the joint CrHCS rebuild, …) stay in their scheme modules; each
registers itself here under a variant name at import time, so the pass
pipeline never imports a scheme module at module level (the layering
rule: ``scheduling.passes`` may import ``base``/``stats``/``window``
only).  Resolving an unregistered variant falls back to importing the
built-in scheme modules function-locally — the sanctioned escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from ...errors import ConfigError
from ..base import ChannelGrid
from ..stats import MigrationReport
from ..window import Tile
from .base import SchedulePass, ScheduleIR, TileState

#: ``builder(tile, config, options, report) -> List[ChannelGrid]``.
BuilderFn = Callable[..., List[ChannelGrid]]


@dataclass(frozen=True)
class BuilderEntry:
    """One registered grid kernel."""

    name: str
    fn: BuilderFn
    #: Option keys (from the scheme's resolved options) that change the
    #: kernel's output — they join the pass digest as parameters.
    option_keys: Tuple[str, ...] = ()
    #: Whether the kernel fills a per-tile MigrationReport (rebuild mode).
    uses_report: bool = False
    #: Kernel algorithm revision (digest component).
    version: str = "1"


_BUILDERS: Dict[str, BuilderEntry] = {}


def register_builder(
    name: str,
    fn: BuilderFn,
    *,
    option_keys: Tuple[str, ...] = (),
    uses_report: bool = False,
    version: str = "1",
) -> None:
    """Register a grid kernel under ``build:<name>``."""
    if name in _BUILDERS:
        raise ConfigError(f"grid builder {name!r} is already registered")
    _BUILDERS[name] = BuilderEntry(
        name=name,
        fn=fn,
        option_keys=tuple(option_keys),
        uses_report=uses_report,
        version=version,
    )


def _ensure_kernels() -> None:
    """Import the built-in scheme modules so their kernels register."""
    from .. import crhcs, greedy, pe_aware, row_based, row_split  # noqa: F401


def builder_entry(name: str) -> BuilderEntry:
    entry = _BUILDERS.get(name)
    if entry is None:
        _ensure_kernels()
        entry = _BUILDERS.get(name)
    if entry is None:
        raise ConfigError(
            f"unknown grid builder {name!r}; "
            f"registered: {', '.join(sorted(_BUILDERS))}"
        )
    return entry


def builder_variants() -> Tuple[str, ...]:
    """All registered build kernel variants, sorted."""
    _ensure_kernels()
    return tuple(sorted(_BUILDERS))


class BuildGridPass(SchedulePass):
    """Run a registered grid kernel over the tile's non-zeros."""

    name = "build"
    cacheable = True

    def __init__(self, variant: str, options: Mapping[str, object] = ()):
        entry = builder_entry(variant)
        self.variant = variant
        self.token = f"build:{variant}"
        self.version = entry.version
        self._entry = entry
        options = dict(options or {})
        self._options = {
            key: options[key] for key in entry.option_keys if key in options
        }

    def params(self) -> Tuple[Tuple[str, object], ...]:
        return tuple(sorted(self._options.items()))

    def run_tile(self, state: TileState, ir: ScheduleIR) -> None:
        entry = self._entry
        report = None
        if entry.uses_report:
            report = MigrationReport()
        state.grids = entry.fn(
            state.tile, ir.config, self._options, report
        )
        if report is not None:
            state.report = report
            state.migrated = report.migrated
