"""Canonical content fingerprints (the hashing core of the repo).

A fingerprint is a hex SHA-256 digest over a *canonical encoding* of the
inputs that determine an artifact's contents.  The encoder lives here —
at the bottom of the scheduling layer — because the pass pipeline chains
a digest through every :class:`~repro.scheduling.passes.base.SchedulePass`
(upstream digest + pass config + pass version) and the pipeline layer
re-exports the same functions for whole-artifact fingerprints
(:mod:`repro.pipeline.fingerprint` is a thin shim over this module).

The rules fix the cache-key bug class at the root:

* **configs** contribute every dataclass field, recursively (a clock or
  window change is a different fingerprint, not a stale hit);
* **passes** contribute their version tag and resolved parameters, so a
  revised pass can never be served a previous revision's artifact;
* **tiles** contribute their bases and the actual COO payload, so an
  in-place matrix edit invalidates exactly the tiles it touched.

Fingerprints are plain strings: hashable, JSON-safe, usable as disk cache
keys and as telemetry attributes.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np


def _encode(value: Any, h: "hashlib._Hash") -> None:
    """Feed one value into the digest with type-tagged framing."""
    if value is None:
        h.update(b"\x00none")
    elif isinstance(value, bool):
        h.update(b"\x01b" + (b"1" if value else b"0"))
    elif isinstance(value, int):
        h.update(b"\x02i" + str(value).encode())
    elif isinstance(value, float):
        # repr round-trips doubles exactly; 1.0 and 1 stay distinct
        # thanks to the type tag.
        h.update(b"\x03f" + repr(value).encode())
    elif isinstance(value, str):
        h.update(b"\x04s" + value.encode())
    elif isinstance(value, bytes):
        h.update(b"\x05y" + value)
    elif isinstance(value, np.ndarray):
        h.update(b"\x06a" + str(value.dtype).encode()
                 + str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(b"\x07d" + type(value).__name__.encode())
        for f in dataclasses.fields(value):
            h.update(f.name.encode() + b"=")
            _encode(getattr(value, f.name), h)
    elif isinstance(value, dict):
        h.update(b"\x08m")
        for key in sorted(value, key=repr):
            _encode(key, h)
            _encode(value[key], h)
    elif isinstance(value, (list, tuple)):
        h.update(b"\x09l")
        for item in value:
            _encode(item, h)
    else:
        # Fall back to repr for exotic values; numbers/arrays/dataclasses
        # (everything fingerprints are built from) never reach here.
        h.update(b"\x0ar" + repr(value).encode())
    h.update(b"\x1f")  # field separator


def fingerprint(*parts: Any) -> str:
    """Digest an ordered sequence of values into one hex fingerprint."""
    h = hashlib.sha256()
    for part in parts:
        _encode(part, h)
    return h.hexdigest()


def fingerprint_config(config: Any) -> str:
    """Fingerprint of an :class:`AcceleratorConfig` *by contents*.

    Covers every field recursively (including the nested
    :class:`HBMConfig`), plus the concrete type name so e.g. a
    ``ChasonConfig`` and a field-identical ``SerpensConfig`` differ.
    """
    return fingerprint("config", config)


def fingerprint_tile(tile: Any, config_fingerprint: str) -> str:
    """The d0 of a tile's pass-digest chain: content + placement + config.

    Covers the tile's bases and window shape as well as the COO payload,
    so two identical payloads at different grid positions never share a
    chain, and an in-place value edit changes exactly the touched tile's
    digest.
    """
    return fingerprint(
        "tile",
        config_fingerprint,
        tile.row_base,
        tile.col_base,
        tile.n_rows,
        tile.n_cols,
        tile.rows,
        tile.cols,
        tile.values,
    )
