"""The pass manager: run an ordered pass list, chain per-pass digests.

:class:`PassManager` executes a pass list over every tile of a matrix
and assembles the :class:`~repro.scheduling.base.TiledSchedule`.  Two
execution modes:

**Hot path (no cache).**  When no :class:`PassArtifactCache` is
attached — the default for every registered scheduler — the manager
computes *no* fingerprints and takes *no* snapshots: the only overhead
over the old monolithic builders is the pass dispatch itself, which
keeps the scheduler hot-path benchmarks honest.

**Cached (fingerprint-chained).**  With a cache attached, each tile
carries a digest chain: ``d0 = fingerprint(tile content + config)``,
then ``d_i = fingerprint(d_{i-1}, pass token, pass version, pass
params)``.  Before running, the manager probes the cache at the chain's
cacheable depths (deepest first) and resumes each tile after the deepest
hit; after running a cacheable pass it stores a snapshot (cloned grids +
migration bookkeeping) under that depth's digest.  Because the chain
folds in the upstream digest *and* each pass's config, a
``MigratePass``-only parameter change reuses the cached
``BuildGridPass`` artifact, and an in-place matrix edit invalidates
exactly the tiles it touched — which is all incremental rescheduling is.

Every pass runs under a ``schedule.pass.<name>`` telemetry span
annotated with how many tiles executed versus resumed from cache.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ... import telemetry
from ...errors import ConfigError, SchedulingError
from ..base import ChannelGrid, Schedule, TiledSchedule
from ..stats import MigrationReport
from ..window import tile_matrix
from .base import SchedulePass, ScheduleIR, TileState
from .build import BuildGridPass, builder_variants
from .fingerprint import fingerprint, fingerprint_config, fingerprint_tile
from .migrate import MigratePass, migrator_variants
from .structural import CompactPass, TrimPass, VerifyPass

_PASS_CACHE_ENV = "REPRO_PASS_CACHE_SIZE"
_DEFAULT_PASS_CACHE_SIZE = 128

#: The scheme-independent structural pass names.
_STRUCTURAL = {
    "compact": CompactPass,
    "trim": TrimPass,
    "verify": VerifyPass,
}


# ---------------------------------------------------------------------------
# pass-name resolution (the registry's declarative pass lists)
# ---------------------------------------------------------------------------


def known_pass_names() -> Tuple[str, ...]:
    """Every valid pass spelling, for validation and ``--list-passes``."""
    names = [f"build:{v}" for v in builder_variants()]
    names += [f"migrate:{v}" for v in migrator_variants()]
    names += sorted(_STRUCTURAL)
    return tuple(names)


def validate_pass_name(name: str) -> None:
    """Raise :class:`ConfigError` with a did-you-mean on unknown names."""
    import difflib

    known = known_pass_names()
    if name in known:
        return
    message = (
        f"unknown pass {name!r}; known passes: {', '.join(known)}"
    )
    close = difflib.get_close_matches(name, known, n=1)
    if close:
        message += f" — did you mean {close[0]!r}?"
    raise ConfigError(message)


def resolve_passes(
    names: Sequence[str], options: Mapping[str, object] = ()
) -> List[SchedulePass]:
    """Instantiate a pass list from registry spellings.

    ``options`` holds the scheme's *resolved* keyword arguments
    (``migration_span``, ``steal_tries``, ``split_threshold``, …); each
    pass picks the keys its kernel declared and folds them into its
    digest parameters.
    """
    options = dict(options or {})
    passes: List[SchedulePass] = []
    for name in names:
        if name in _STRUCTURAL:
            passes.append(_STRUCTURAL[name]())
            continue
        validate_pass_name(name)  # raises with a did-you-mean
        kind, _, variant = name.partition(":")
        if kind == "build":
            passes.append(BuildGridPass(variant, options))
        else:  # validated above, so this is ``migrate:<variant>``
            passes.append(MigratePass(variant, options))
    return passes


# ---------------------------------------------------------------------------
# the per-pass artifact cache
# ---------------------------------------------------------------------------


@dataclass
class _TileSnapshot:
    """Cached tile state after one cacheable pass."""

    grids: List[ChannelGrid]
    migrated: int
    report: Optional[MigrationReport]

    @staticmethod
    def of(state: TileState) -> "_TileSnapshot":
        return _TileSnapshot(
            grids=[g.clone() for g in state.grids or []],
            migrated=state.migrated,
            report=state.report.copy() if state.report else None,
        )

    def restore(self, state: TileState) -> None:
        state.grids = [g.clone() for g in self.grids]
        state.migrated = self.migrated
        state.report = self.report.copy() if self.report else None


def pass_cache_capacity() -> int:
    """The configured pass-artifact LRU capacity (tile snapshots)."""
    raw = os.environ.get(_PASS_CACHE_ENV, "").strip()
    if not raw:
        return _DEFAULT_PASS_CACHE_SIZE
    try:
        return int(raw)
    except ValueError:
        telemetry.warn_once(
            "invalid_pass_cache_size",
            f"{_PASS_CACHE_ENV}={raw!r} is not an integer; falling back "
            f"to the default ({_DEFAULT_PASS_CACHE_SIZE} tile snapshots)",
        )
        return _DEFAULT_PASS_CACHE_SIZE


class PassArtifactCache:
    """A bounded LRU of tile snapshots keyed by pass digest.

    Shared across schemes on purpose: the key is the digest chain, so
    two schemes with a common pass prefix (CrHCS and PE-aware both start
    with ``build:pe_aware``) share build artifacts, and a downstream
    pass-config change rebuilds only the passes after the divergence.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is None:
            capacity = pass_cache_capacity()
        self.capacity = max(capacity, 0)
        self._entries: "OrderedDict[str, _TileSnapshot]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Execution counts of the last manager run through this cache
        #: (set by :meth:`PassManager.run`; the schedulers build their
        #: managers internally, so this is how callers holding only the
        #: cache — the pipeline's ``reschedule`` — read the counts).
        self.last_stats: Optional["PassRunStats"] = None

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> Optional[_TileSnapshot]:
        with self._lock:
            snapshot = self._entries.get(digest)
            if snapshot is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return snapshot

    def put(self, digest: str, state: TileState) -> None:
        if self.capacity == 0:
            return
        snapshot = _TileSnapshot.of(state)
        with self._lock:
            self._entries[digest] = snapshot
            self._entries.move_to_end(digest)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.last_stats = None


# ---------------------------------------------------------------------------
# run statistics (the incremental-reschedule property tests read these)
# ---------------------------------------------------------------------------


@dataclass
class PassRunStats:
    """Tile-pass execution counts of one :meth:`PassManager.run`."""

    #: (pass token → tiles that executed it this run).
    executed: Dict[str, int] = field(default_factory=dict)
    #: (pass token → tiles resumed past it from the cache).
    skipped: Dict[str, int] = field(default_factory=dict)

    @property
    def executed_total(self) -> int:
        return sum(self.executed.values())

    @property
    def skipped_total(self) -> int:
        return sum(self.skipped.values())


# ---------------------------------------------------------------------------
# the manager
# ---------------------------------------------------------------------------


class PassManager:
    """Run an ordered pass list over a matrix's tiles."""

    def __init__(
        self,
        passes: Sequence[SchedulePass],
        scheme: str,
        migration_span: Optional[int] = None,
    ):
        if not passes:
            raise SchedulingError("a pass pipeline needs at least one pass")
        self.passes = list(passes)
        self.scheme = scheme
        self.migration_span = migration_span
        #: Aggregated migration bookkeeping of the last :meth:`run`.
        self.last_report: Optional[MigrationReport] = None
        #: Execution counts of the last :meth:`run`.
        self.last_stats = PassRunStats()

    def signature_chain(self) -> Tuple[Tuple[object, ...], ...]:
        """Per-pass signatures, in order (the digest-chain skeleton)."""
        return tuple(p.signature() for p in self.passes)

    def run(
        self,
        matrix,
        config,
        max_rows_per_pass: int = 0,
        cache: Optional[PassArtifactCache] = None,
    ) -> TiledSchedule:
        """Schedule ``matrix`` through the pass list."""
        tiles = tile_matrix(matrix, config, max_rows_per_pass)
        ir = ScheduleIR(
            config=config,
            scheme=self.scheme,
            tiles=[TileState(tile=tile) for tile in tiles],
            migration_span=self.migration_span,
        )
        stats = PassRunStats()
        self.last_stats = stats

        chains: List[List[str]] = []
        if cache is not None:
            chains = self._resume_from_cache(ir, config, cache)

        t = telemetry.get()
        for index, schedule_pass in enumerate(self.passes):
            ran = 0
            resumed = 0
            with t.span(
                f"schedule.pass.{schedule_pass.name}",
                scheme=self.scheme,
                token=schedule_pass.token,
            ) as span:
                for position, state in enumerate(ir.tiles):
                    if state.resume_from > index:
                        resumed += 1
                        continue
                    schedule_pass.run_tile(state, ir)
                    ran += 1
                    if cache is not None and schedule_pass.cacheable:
                        cache.put(chains[position][index], state)
                span.annotate(tiles=ran, resumed=resumed)
            if ran:
                stats.executed[schedule_pass.token] = ran
            if resumed:
                stats.skipped[schedule_pass.token] = resumed

        if cache is not None:
            cache.last_stats = stats
        return self._assemble(ir, matrix)

    def _resume_from_cache(
        self, ir: ScheduleIR, config, cache: PassArtifactCache
    ) -> List[List[str]]:
        """Compute per-tile digest chains and restore the deepest hits."""
        config_fp = fingerprint_config(config)
        chains: List[List[str]] = []
        for state in ir.tiles:
            digest = fingerprint_tile(state.tile, config_fp)
            chain: List[str] = []
            for schedule_pass in self.passes:
                digest = fingerprint(
                    "pass", digest, schedule_pass.signature()
                )
                chain.append(digest)
            chains.append(chain)
            for index in reversed(range(len(self.passes))):
                if not self.passes[index].cacheable:
                    continue
                snapshot = cache.get(chain[index])
                if snapshot is not None:
                    snapshot.restore(state)
                    state.resume_from = index + 1
                    break
        return chains

    def _assemble(self, ir: ScheduleIR, matrix) -> TiledSchedule:
        report = MigrationReport()
        saw_report = False
        schedules: List[Schedule] = []
        for state in ir.tiles:
            if state.grids is None:
                raise SchedulingError(
                    f"{self.scheme}: pass list built no grids "
                    f"(missing a build pass?)"
                )
            if state.report is not None:
                report.merge(state.report)
                saw_report = True
            schedules.append(
                Schedule(
                    config=ir.config,
                    grids=state.grids,
                    scheme=self.scheme,
                    row_base=state.tile.row_base,
                    col_base=state.tile.col_base,
                    migrated_count=state.migrated,
                    migration_span=ir.migration_span,
                )
            )
        self.last_report = report if saw_report else None
        return TiledSchedule(
            config=ir.config,
            tiles=schedules,
            scheme=self.scheme,
            n_rows=matrix.n_rows,
            n_cols=matrix.n_cols,
        )


# ---------------------------------------------------------------------------
# incremental rescheduling
# ---------------------------------------------------------------------------


class IncrementalScheduler:
    """A scheduling session that re-runs only invalidated passes.

    Holds a :class:`PassManager` and a :class:`PassArtifactCache` across
    calls; :meth:`reschedule` recomputes every tile's input fingerprint,
    reuses the deepest cached pass artifact per tile, and re-runs only
    the passes downstream of the change.  An in-place edit to a matrix
    therefore costs roughly (touched tiles / all tiles) of a cold
    schedule plus the cheap structural tail passes.
    """

    def __init__(
        self,
        manager: PassManager,
        config,
        max_rows_per_pass: int = 0,
        cache: Optional[PassArtifactCache] = None,
    ):
        self.manager = manager
        self.config = config
        self.max_rows_per_pass = max_rows_per_pass
        self.cache = cache if cache is not None else PassArtifactCache()

    def schedule(self, matrix) -> TiledSchedule:
        """Schedule ``matrix``, warming the per-pass artifact cache."""
        return self.manager.run(
            matrix,
            self.config,
            max_rows_per_pass=self.max_rows_per_pass,
            cache=self.cache,
        )

    def reschedule(self, matrix) -> TiledSchedule:
        """Diff per-pass input fingerprints; re-run only what changed.

        The diffing *is* the cache probe: unchanged tiles hit their
        deepest cached pass artifact and resume after it, changed tiles
        miss and rebuild from scratch.  The result is byte-identical to
        a cold schedule of the same matrix.
        """
        return self.schedule(matrix)

    @property
    def last_stats(self) -> PassRunStats:
        return self.manager.last_stats

    @property
    def last_report(self) -> Optional[MigrationReport]:
        return self.manager.last_report
