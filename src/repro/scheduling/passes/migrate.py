"""``MigratePass`` — cross-channel hole filling over built grids.

Like the build kernels, the migration kernels stay in their scheme
modules (CrHCS's ring migration today; PE-aware-variant strategies can
register beside it for A/B runs) and register here by variant name, so
the pass layer never reaches up into the scheme modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

from ...errors import ConfigError, SchedulingError
from ..stats import MigrationReport
from .base import SchedulePass, ScheduleIR, TileState

#: ``migrator(grids, config, options, report) -> None`` (in place).
MigratorFn = Callable[..., None]


@dataclass(frozen=True)
class MigratorEntry:
    """One registered migration kernel."""

    name: str
    fn: MigratorFn
    option_keys: Tuple[str, ...] = ()
    version: str = "1"


_MIGRATORS: Dict[str, MigratorEntry] = {}


def register_migrator(
    name: str,
    fn: MigratorFn,
    *,
    option_keys: Tuple[str, ...] = (),
    version: str = "1",
) -> None:
    """Register a migration kernel under ``migrate:<name>``."""
    if name in _MIGRATORS:
        raise ConfigError(f"migrator {name!r} is already registered")
    _MIGRATORS[name] = MigratorEntry(
        name=name, fn=fn, option_keys=tuple(option_keys), version=version
    )


def _ensure_kernels() -> None:
    from .. import crhcs  # noqa: F401


def migrator_entry(name: str) -> MigratorEntry:
    entry = _MIGRATORS.get(name)
    if entry is None:
        _ensure_kernels()
        entry = _MIGRATORS.get(name)
    if entry is None:
        raise ConfigError(
            f"unknown migrator {name!r}; "
            f"registered: {', '.join(sorted(_MIGRATORS))}"
        )
    return entry


def migrator_variants() -> Tuple[str, ...]:
    """All registered migration kernel variants, sorted."""
    _ensure_kernels()
    return tuple(sorted(_MIGRATORS))


class MigratePass(SchedulePass):
    """Fill one tile's stalls with a registered migration kernel."""

    name = "migrate"
    cacheable = True

    def __init__(self, variant: str, options: Mapping[str, object] = ()):
        entry = migrator_entry(variant)
        self.variant = variant
        self.token = f"migrate:{variant}"
        self.version = entry.version
        self._entry = entry
        options = dict(options or {})
        self._options = {
            key: options[key] for key in entry.option_keys if key in options
        }

    def params(self) -> Tuple[Tuple[str, object], ...]:
        return tuple(sorted(self._options.items()))

    def run_tile(self, state: TileState, ir: ScheduleIR) -> None:
        if state.grids is None:
            raise SchedulingError(
                f"{self.token} needs built grids; "
                f"run a build pass before it"
            )
        # Always account per tile — Schedule.migrated_count comes from
        # here whether or not the caller asked for a report.
        report = MigrationReport()
        self._entry.fn(state.grids, ir.config, self._options, report)
        state.report = report
        state.migrated = report.migrated
