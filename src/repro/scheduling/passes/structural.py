"""The structural passes: compact, trim, verify — plus byte-identity helpers.

These are scheme-independent: every registered scheme ends its pass list
with ``compact → trim → verify``.

``CompactPass``
    Drops trailing all-stall cycles from each channel grid — the
    leftovers migration (or a conservative builder) leaves at the tail.
    O(1) per grid thanks to the incrementally tracked maximum occupied
    cycle.
``TrimPass``
    The §3.1 resize: equalises every channel list of the tile to the
    longest one so the tile streams as one rectangular block.  Purely
    logical — implicit-stall padding allocates no storage.
``VerifyPass``
    Cheap structural invariants on the finished tile: every non-zero is
    scheduled exactly once (element conservation) and the lists are
    rectangular.  Deliberately *not* the full
    :meth:`~repro.scheduling.base.Schedule.validate` — that is O(nnz)
    dict probing and assumes the Eq. 1 lane rule, which ``row_split``
    legally relaxes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...errors import SchedulingError
from .base import SchedulePass, ScheduleIR, TileState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..base import ChannelGrid, Schedule, TiledSchedule


class CompactPass(SchedulePass):
    """Trim trailing all-stall cycles from every channel grid."""

    name = "compact"
    token = "compact"

    def run_tile(self, state: TileState, ir: ScheduleIR) -> None:
        if state.grids is None:
            raise SchedulingError("compact needs built grids")
        for grid in state.grids:
            grid.trim_trailing_stalls()


class TrimPass(SchedulePass):
    """Equalise the tile's channel lists to the longest one (§3.1)."""

    name = "trim"
    token = "trim"

    def run_tile(self, state: TileState, ir: ScheduleIR) -> None:
        if state.grids is None:
            raise SchedulingError("trim needs built grids")
        length = max((len(g) for g in state.grids), default=0)
        for grid in state.grids:
            grid.ensure_length(length)


class VerifyPass(SchedulePass):
    """Check element conservation and rectangular lists per tile."""

    name = "verify"
    token = "verify"

    def run_tile(self, state: TileState, ir: ScheduleIR) -> None:
        if state.grids is None:
            raise SchedulingError("verify needs built grids")
        scheduled = sum(g.element_count for g in state.grids)
        if scheduled != state.tile.nnz:
            raise SchedulingError(
                f"{ir.scheme}: tile at ({state.tile.row_base}, "
                f"{state.tile.col_base}) scheduled {scheduled} of "
                f"{state.tile.nnz} non-zeros"
            )
        lengths = {len(g) for g in state.grids}
        if len(lengths) > 1:
            raise SchedulingError(
                f"{ir.scheme}: unequalised channel lists "
                f"(lengths {sorted(lengths)}) after trim"
            )


# ---------------------------------------------------------------------------
# byte-identity helpers (differential tests, the reschedule CLI, benches)
# ---------------------------------------------------------------------------


def grids_identical(a: "ChannelGrid", b: "ChannelGrid") -> bool:
    """True when two grids are byte-identical (length + every slot)."""
    if a.channel_id != b.channel_id or a.pes != b.pes or len(a) != len(b):
        return False
    if a.element_count != b.element_count:
        return False
    arrays_a = a.element_arrays()
    arrays_b = b.element_arrays()
    return all(
        np.array_equal(x, y) for x, y in zip(arrays_a, arrays_b)
    )


def tiles_identical(a: "Schedule", b: "Schedule") -> bool:
    """True when two tile schedules are byte-identical."""
    if (
        a.scheme != b.scheme
        or a.row_base != b.row_base
        or a.col_base != b.col_base
        or a.migrated_count != b.migrated_count
        or a.migration_span != b.migration_span
        or len(a.grids) != len(b.grids)
    ):
        return False
    return all(grids_identical(x, y) for x, y in zip(a.grids, b.grids))


def schedules_identical(a: "TiledSchedule", b: "TiledSchedule") -> bool:
    """True when two tiled schedules are byte-identical, tile by tile."""
    if (
        a.scheme != b.scheme
        or a.n_rows != b.n_rows
        or a.n_cols != b.n_cols
        or len(a.tiles) != len(b.tiles)
    ):
        return False
    return all(tiles_identical(x, y) for x, y in zip(a.tiles, b.tiles))
