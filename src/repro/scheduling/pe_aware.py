"""PE-aware non-zero OoO scheduling — the Serpens baseline (§2.2, Fig. 2b).

Rows map to PEs via Eq. 1 (``row % total_pes``).  Within a PE the scheduler
walks the PE's rows in fixed *round-robin windows*: it takes the next
``distance`` rows assigned to the PE (10 on the U55c — "PE-aware non-zero
scheduling maps at least 10 rows per PE", §2.2) and emits one slot per row
per rotation, cycling until the longest row in the window drains.  A
rotation slot whose row has no non-zero left becomes an **explicit zero**
in the channel data list — the pseudo-stall that keeps the HLS pipeline at
II=1 (§2.2).

The window width equals the accumulator latency by construction, so the
same row recurs exactly ``distance`` cycles later and the RAW constraint
holds with no further checks — this is exactly the Fig. 2b interleave
(rows 0, 4, 8, …, 36 rotating through PE0, stalling on the empty rows
20–36).

Its weakness, and the paper's motivation: the scheduler can only fill a
rotation slot with non-zeros *from the same window of the same channel*,
so imbalanced row lengths turn directly into stalls (≈70 % of slots across
the 800-matrix corpus, Fig. 3).  Scheme name: ``"pe_aware"``.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from ..config import DEFAULT_SERPENS, AcceleratorConfig
from ..errors import SchedulingError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .. import telemetry
from .base import ChannelGrid, Schedule, TiledSchedule, pe_for_row
from .passes import PassManager, register_builder, resolve_passes
from .registry import register_scheme
from .window import Tile, tile_matrix

#: Algorithm revision (cache fingerprint component); "2" is the
#: whole-tile vectorized builder that replaced the slot-at-a-time walk.
PE_AWARE_VERSION = "2"

Matrix = Union[COOMatrix, CSRMatrix]

#: A per-PE row group: (row id, element indices in column order).
RowGroup = Tuple[int, np.ndarray]


def group_rows_by_pe(
    tile: Tile, config: AcceleratorConfig
) -> List[List[List[RowGroup]]]:
    """Partition a tile's non-zeros into ``groups[channel][pe]`` row lists.

    Element indices refer to the tile's ``rows``/``cols``/``values`` arrays;
    each row's indices are sorted by column, matching the CSR streaming
    order of the preprocessing step.  Rows without non-zeros do not appear;
    schedulers that need them (the round-robin window) re-insert them from
    the row id gaps.
    """
    groups: List[List[List[RowGroup]]] = [
        [[] for _ in range(config.pes_per_channel)]
        for _ in range(config.sparse_channels)
    ]
    if tile.nnz == 0:
        return groups
    order = np.lexsort((tile.cols, tile.rows))
    rows_sorted = tile.rows[order]
    boundaries = np.flatnonzero(np.diff(rows_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [rows_sorted.size]])
    for start, end in zip(starts, ends):
        row = int(rows_sorted[start])
        channel, pe = pe_for_row(row, config)
        groups[channel][pe].append((row, order[start:end]))
    return groups


def round_robin_arrays(
    rows: List[RowGroup], distance: int, total_pes: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Vectorized windowed round-robin schedule of one PE's rows.

    Same contract as :func:`schedule_single_pe_round_robin` but returning
    NumPy index arrays — the cycle assignment is pure arithmetic over the
    row groups (window base + rotation × distance + lane), so the whole
    lane schedules without a per-element Python loop.
    """
    if distance < 1:
        raise SchedulingError("dependency distance must be >= 1")
    if not rows:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            0,
        )
    row_ids = np.fromiter(
        (row for row, _ in rows), dtype=np.int64, count=len(rows)
    )
    lengths = np.fromiter(
        (len(indices) for _, indices in rows),
        dtype=np.int64,
        count=len(rows),
    )
    positions = row_ids // total_pes
    windows = positions // distance
    lanes = positions % distance

    # Windows flush on change of window id (consecutive runs), exactly as
    # the incremental builder did.
    run_starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(windows)) + 1]
    )
    rotations = np.maximum.reduceat(lengths, run_starts)
    spans = rotations * distance
    bases = np.concatenate([[0], np.cumsum(spans)[:-1]])
    run_lengths = np.diff(np.concatenate([run_starts, [len(rows)]]))
    row_bases = np.repeat(bases, run_lengths)

    starts = row_bases + lanes
    total = int(lengths.sum())
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    rotation_index = np.arange(total, dtype=np.int64) - np.repeat(
        offsets, lengths
    )
    out_cycles = np.repeat(starts, lengths) + distance * rotation_index
    out_elements = np.concatenate(
        [np.asarray(indices, dtype=np.int64) for _, indices in rows]
    )
    return out_cycles, out_elements, int(bases[-1] + spans[-1])


def schedule_single_pe_round_robin(
    rows: List[RowGroup], distance: int, total_pes: int
) -> Tuple[List[int], List[int], int]:
    """Windowed round-robin schedule of one PE's rows.

    The window walks the PE's assigned rows *in row-id order, including
    empty rows* — Fig. 2b shows the empty rows 20–36 stalling PE0's
    rotation.  A row's position within its PE is ``row // total_pes``
    (Eq. 1 strides rows across PEs), its window is ``position //
    distance`` and its lane within the window ``position % distance``.
    Each window rotates until its longest row drains, emitting one slot
    per lane per rotation; lanes whose row has run out (or never had
    non-zeros) are the explicit zeros of §2.2.  Windows that contain no
    non-zeros at all contribute no rotations — the preprocessing simply
    skips them.

    Returns ``(cycles, element_indices, length)``.
    """
    cycles, elements, length = round_robin_arrays(rows, distance, total_pes)
    return cycles.tolist(), elements.tolist(), length


def pe_aware_grids(tile: Tile, config: AcceleratorConfig) -> List[ChannelGrid]:
    """Unequalised per-channel grids for one tile.

    This is the intermediate CrHCS starts from: each channel is as long as
    its own slowest PE, before the global resize of §3.1.

    The whole tile is scheduled in one vectorized pass: a single lexsort
    puts elements in (global PE, row, column) order, segmented reductions
    compute each round-robin window's rotation count and base cycle, and
    every element's slot follows from ``base + rotation × distance +
    lane`` — no per-element (or per-lane) Python loop.
    """
    channels_n = config.sparse_channels
    ppc = config.pes_per_channel
    total_pes = config.total_pes
    distance = config.accumulator_latency
    if distance < 1:
        raise SchedulingError("dependency distance must be >= 1")
    grids = [
        ChannelGrid(channel_id=c, pes=ppc) for c in range(channels_n)
    ]
    nnz = tile.nnz
    if nnz == 0:
        return grids

    rows = np.asarray(tile.rows, dtype=np.int64)
    cols = np.asarray(tile.cols, dtype=np.int64)
    values = np.asarray(tile.values, dtype=np.float64)
    gpe = rows % total_pes
    # (global PE, row, column) order: each PE's rows ascend, matching the
    # flush-on-window-change walk of schedule_single_pe_round_robin, and
    # each row streams in CSR column order.
    order = np.lexsort((cols, rows, gpe))
    elem_row = rows[order]
    elem_gpe = gpe[order]

    # Row groups (contiguous runs — a row maps to exactly one PE).
    first_of_row = np.empty(nnz, dtype=bool)
    first_of_row[0] = True
    np.not_equal(elem_row[1:], elem_row[:-1], out=first_of_row[1:])
    row_starts = np.flatnonzero(first_of_row)
    row_lens = np.diff(np.append(row_starts, nnz))
    row_ids = elem_row[row_starts]
    row_gpe = elem_gpe[row_starts]

    positions = row_ids // total_pes
    windows = positions // distance
    lanes = positions % distance

    # Window groups: runs of equal (PE, window id) among the row groups.
    n_rows = row_ids.size
    first_of_window = np.empty(n_rows, dtype=bool)
    first_of_window[0] = True
    first_of_window[1:] = (row_gpe[1:] != row_gpe[:-1]) | (
        windows[1:] != windows[:-1]
    )
    window_starts = np.flatnonzero(first_of_window)
    rotations = np.maximum.reduceat(row_lens, window_starts)
    spans = rotations * distance

    # Base cycle of each window = cumulative span of the PREVIOUS windows
    # of the same PE lane (a segmented exclusive cumsum over PE runs).
    cumulative = np.concatenate([[0], np.cumsum(spans)])
    window_gpe = row_gpe[window_starts]
    first_of_lane = np.empty(window_starts.size, dtype=bool)
    first_of_lane[0] = True
    first_of_lane[1:] = window_gpe[1:] != window_gpe[:-1]
    lane_of_window = np.cumsum(first_of_lane) - 1
    lane_offsets = cumulative[np.flatnonzero(first_of_lane)]
    window_bases = cumulative[:-1] - lane_offsets[lane_of_window]

    window_rows = np.diff(np.append(window_starts, n_rows))
    row_base = np.repeat(window_bases, window_rows) + lanes
    rotation_index = np.arange(nnz, dtype=np.int64) - np.repeat(
        row_starts, row_lens
    )
    elem_cycle = np.repeat(row_base, row_lens) + distance * rotation_index
    elem_pe = elem_gpe % ppc
    elem_channel = elem_gpe // ppc
    elem_col = cols[order]
    elem_value = values[order]

    # Elements arrive channel-sorted (gpe-major), so each channel is one
    # contiguous slice — one bulk fill per grid.
    bounds = np.searchsorted(elem_channel, np.arange(channels_n + 1))
    for channel_id, grid in enumerate(grids):
        start, end = int(bounds[channel_id]), int(bounds[channel_id + 1])
        if start < end:
            grid.fill_slots(
                elem_cycle[start:end],
                elem_pe[start:end],
                elem_row[start:end],
                elem_col[start:end],
                elem_value[start:end],
                channel_id,
                elem_pe[start:end],
            )
        # A data list ends at its last non-zero; the trailing rotation
        # stalls of the final window carry no information.
        grid.trim_trailing_stalls()
    return grids


def _pe_aware_builder(tile, config, options, report):
    """Kernel adapter for the pass pipeline (``build:pe_aware``)."""
    return pe_aware_grids(tile, config)


register_builder("pe_aware", _pe_aware_builder, version=PE_AWARE_VERSION)

#: The scheme's pass composition (declared on the registry spec).
PE_AWARE_PASSES = ("build:pe_aware", "compact", "trim", "verify")


def _pe_aware_plan(config: AcceleratorConfig, kwargs: dict):
    return resolve_passes(PE_AWARE_PASSES)


def schedule_pe_aware_tile(tile: Tile, config: AcceleratorConfig) -> Schedule:
    """Schedule one tile with PE-aware OoO scheduling and equalise lists."""
    schedule = Schedule(
        config=config,
        grids=pe_aware_grids(tile, config),
        scheme="pe_aware",
        row_base=tile.row_base,
        col_base=tile.col_base,
    )
    schedule.equalise()
    return schedule


@register_scheme(
    name="pe_aware",
    version=PE_AWARE_VERSION,
    default_config=DEFAULT_SERPENS,
    power_key="serpens",
    accelerator_name="serpens",
    description="intra-channel PE-aware OoO (Serpens/Sextans, Fig. 2b)",
    passes=PE_AWARE_PASSES,
    plan=_pe_aware_plan,
)
def schedule_pe_aware(
    matrix: Matrix,
    config: AcceleratorConfig,
    max_rows_per_pass: int = 0,
    _pass_cache=None,
) -> TiledSchedule:
    """Schedule a whole matrix with the PE-aware (Serpens) scheme."""
    t = telemetry.get()
    manager = PassManager(_pe_aware_plan(config, {}), scheme="pe_aware")
    with t.span("schedule.pe_aware", nnz=matrix.nnz) as span:
        schedule = manager.run(
            matrix, config,
            max_rows_per_pass=max_rows_per_pass, cache=_pass_cache,
        )
        span.annotate(tiles=len(schedule.tiles))
    if t.enabled:
        t.counter("scheduler.pe_aware.matrices", 1)
        t.counter("scheduler.pe_aware.tiles", len(schedule.tiles))
        t.counter("scheduler.pe_aware.nnz", matrix.nnz)
    return schedule
