"""PE-aware non-zero OoO scheduling — the Serpens baseline (§2.2, Fig. 2b).

Rows map to PEs via Eq. 1 (``row % total_pes``).  Within a PE the scheduler
walks the PE's rows in fixed *round-robin windows*: it takes the next
``distance`` rows assigned to the PE (10 on the U55c — "PE-aware non-zero
scheduling maps at least 10 rows per PE", §2.2) and emits one slot per row
per rotation, cycling until the longest row in the window drains.  A
rotation slot whose row has no non-zero left becomes an **explicit zero**
in the channel data list — the pseudo-stall that keeps the HLS pipeline at
II=1 (§2.2).

The window width equals the accumulator latency by construction, so the
same row recurs exactly ``distance`` cycles later and the RAW constraint
holds with no further checks — this is exactly the Fig. 2b interleave
(rows 0, 4, 8, …, 36 rotating through PE0, stalling on the empty rows
20–36).

Its weakness, and the paper's motivation: the scheduler can only fill a
rotation slot with non-zeros *from the same window of the same channel*,
so imbalanced row lengths turn directly into stalls (≈70 % of slots across
the 800-matrix corpus, Fig. 3).  Scheme name: ``"pe_aware"``.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from ..config import AcceleratorConfig
from ..errors import SchedulingError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .base import ChannelGrid, Schedule, ScheduledElement, TiledSchedule, pe_for_row
from .window import Tile, tile_matrix

Matrix = Union[COOMatrix, CSRMatrix]

#: A per-PE row group: (row id, element indices in column order).
RowGroup = Tuple[int, np.ndarray]


def group_rows_by_pe(
    tile: Tile, config: AcceleratorConfig
) -> List[List[List[RowGroup]]]:
    """Partition a tile's non-zeros into ``groups[channel][pe]`` row lists.

    Element indices refer to the tile's ``rows``/``cols``/``values`` arrays;
    each row's indices are sorted by column, matching the CSR streaming
    order of the preprocessing step.  Rows without non-zeros do not appear;
    schedulers that need them (the round-robin window) re-insert them from
    the row id gaps.
    """
    groups: List[List[List[RowGroup]]] = [
        [[] for _ in range(config.pes_per_channel)]
        for _ in range(config.sparse_channels)
    ]
    if tile.nnz == 0:
        return groups
    order = np.lexsort((tile.cols, tile.rows))
    rows_sorted = tile.rows[order]
    boundaries = np.flatnonzero(np.diff(rows_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [rows_sorted.size]])
    for start, end in zip(starts, ends):
        row = int(rows_sorted[start])
        channel, pe = pe_for_row(row, config)
        groups[channel][pe].append((row, order[start:end]))
    return groups


def schedule_single_pe_round_robin(
    rows: List[RowGroup], distance: int, total_pes: int
) -> Tuple[List[int], List[int], int]:
    """Windowed round-robin schedule of one PE's rows.

    The window walks the PE's assigned rows *in row-id order, including
    empty rows* — Fig. 2b shows the empty rows 20–36 stalling PE0's
    rotation.  A row's position within its PE is ``row // total_pes``
    (Eq. 1 strides rows across PEs), its window is ``position //
    distance`` and its lane within the window ``position % distance``.
    Each window rotates until its longest row drains, emitting one slot
    per lane per rotation; lanes whose row has run out (or never had
    non-zeros) are the explicit zeros of §2.2.  Windows that contain no
    non-zeros at all contribute no rotations — the preprocessing simply
    skips them.

    Returns ``(cycles, element_indices, length)``.
    """
    if distance < 1:
        raise SchedulingError("dependency distance must be >= 1")
    out_cycles: List[int] = []
    out_elements: List[int] = []
    base = 0
    window_rows: List[Tuple[int, np.ndarray]] = []  # (lane, indices)

    def _flush() -> int:
        rotations = max(len(indices) for _, indices in window_rows)
        for lane, indices in window_rows:
            for rotation in range(len(indices)):
                out_cycles.append(base + rotation * distance + lane)
                out_elements.append(int(indices[rotation]))
        return base + rotations * distance

    current_window = None
    for row_id, indices in rows:
        position = row_id // total_pes
        window_index, lane = divmod(position, distance)
        if window_index != current_window:
            if window_rows:
                base = _flush()
                window_rows.clear()
            current_window = window_index
        window_rows.append((lane, indices))
    if window_rows:
        base = _flush()
    return out_cycles, out_elements, base


def pe_aware_grids(tile: Tile, config: AcceleratorConfig) -> List[ChannelGrid]:
    """Unequalised per-channel grids for one tile.

    This is the intermediate CrHCS starts from: each channel is as long as
    its own slowest PE, before the global resize of §3.1.
    """
    groups = group_rows_by_pe(tile, config)
    distance = config.accumulator_latency
    # Plain-list views make the per-element hot loop cheap.
    rows_list = tile.rows.tolist()
    cols_list = tile.cols.tolist()
    values_list = tile.values.tolist()
    grids: List[ChannelGrid] = []
    for channel_id in range(config.sparse_channels):
        grid = ChannelGrid(channel_id=channel_id, pes=config.pes_per_channel)
        occupied = grid.occupied
        for pe in range(config.pes_per_channel):
            cycles, elements, pe_length = schedule_single_pe_round_robin(
                groups[channel_id][pe], distance, config.total_pes
            )
            grid.ensure_length(pe_length)
            for cycle, element_index in zip(cycles, elements):
                occupied[(cycle, pe)] = ScheduledElement(
                    rows_list[element_index],
                    cols_list[element_index],
                    values_list[element_index],
                    channel_id,
                    pe,
                )
        # A data list ends at its last non-zero; the trailing rotation
        # stalls of the final window carry no information.
        grid.trim_trailing_stalls()
        grids.append(grid)
    return grids


def schedule_pe_aware_tile(tile: Tile, config: AcceleratorConfig) -> Schedule:
    """Schedule one tile with PE-aware OoO scheduling and equalise lists."""
    schedule = Schedule(
        config=config,
        grids=pe_aware_grids(tile, config),
        scheme="pe_aware",
        row_base=tile.row_base,
        col_base=tile.col_base,
    )
    schedule.equalise()
    return schedule


def schedule_pe_aware(
    matrix: Matrix,
    config: AcceleratorConfig,
    max_rows_per_pass: int = 0,
) -> TiledSchedule:
    """Schedule a whole matrix with the PE-aware (Serpens) scheme."""
    tiles = tile_matrix(matrix, config, max_rows_per_pass)
    return TiledSchedule(
        config=config,
        tiles=[schedule_pe_aware_tile(tile, config) for tile in tiles],
        scheme="pe_aware",
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
    )
