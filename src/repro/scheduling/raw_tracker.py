"""Read-after-write dependency tracking (§2.2, §3.3).

The floating-point accumulator of the PE takes ``distance`` cycles
(10 on the Alveo U55c); two accumulations into the same partial sum — i.e.
two non-zeros of the same row processed by the same PE — must issue at
least ``distance`` cycles apart, because HLS pipelines cannot forward
intermediate adder stages (§2.2).

The tracker is keyed by ``(pe, row)``: the same row migrated into two
*different* destination PEs accumulates into two different URAM banks
(URAM_pvt vs the per-source-PE URAM_sh of each ScUG), which the Reduction
Unit later merges, so cross-PE repeats carry no hazard (§3.3, §4.2).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import RawHazardError


class RawTracker:
    """Tracks the earliest legal issue cycle per ``(pe, row)``."""

    def __init__(self, distance: int):
        if distance < 1:
            raise RawHazardError("dependency distance must be >= 1")
        self.distance = distance
        self._next_free: Dict[Tuple[int, int], int] = {}

    def earliest(self, pe: int, row: int) -> int:
        """First cycle at which ``row`` may issue again in ``pe``."""
        return self._next_free.get((pe, row), 0)

    def eligible(self, pe: int, row: int, cycle: int) -> bool:
        """Can ``row`` issue in ``pe`` at ``cycle`` without a RAW hazard?"""
        return cycle >= self.earliest(pe, row)

    def commit(self, pe: int, row: int, cycle: int) -> None:
        """Record an issue; raises if it would violate the distance."""
        if not self.eligible(pe, row, cycle):
            raise RawHazardError(
                f"row {row} issued in PE {pe} at cycle {cycle}, "
                f"earliest legal cycle is {self.earliest(pe, row)}"
            )
        self._next_free[(pe, row)] = cycle + self.distance

    def __len__(self) -> int:
        return len(self._next_free)
