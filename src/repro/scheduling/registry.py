"""The scheme registry — the one scheme→scheduler dispatch table.

Every flow that turns a scheme *name* into a scheduler used to carry its
own ``{"crhcs": ...}`` literal; those tables drifted independently (the
CLI knew five schemes, the accelerators two, the SpMM extension one).
This module replaces them all: a scheduler registers itself once, with a
declarative :class:`SchedulerSpec`, and the CLI, the accelerator façades,
the pipeline and the experiment runners all resolve names here.

Registering a new scheduler takes ten lines in its own module::

    from .registry import register_scheme
    from ..config import DEFAULT_SERPENS

    @register_scheme(
        name="my_scheme",
        version="1",
        default_config=DEFAULT_SERPENS,
        power_key="serpens",
        description="what the scheme does",
    )
    def schedule_my_scheme(matrix, config, **kwargs):
        ...

``version`` is the scheduler's *algorithm revision* and is part of every
cache fingerprint (:mod:`repro.pipeline.fingerprint`): bump it when the
scheme's output changes so stale cached schedules cannot be served.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..config import AcceleratorConfig
from ..errors import ConfigError
from .passes import validate_pass_name

#: name → spec; the *only* scheme dispatch table in the code base.
_REGISTRY: Dict[str, "SchedulerSpec"] = {}

#: Modules whose import registers the built-in schemes.
_BUILTIN_MODULES = (
    "row_based",
    "pe_aware",
    "greedy",
    "row_split",
    "crhcs",
)


@dataclass(frozen=True)
class SchedulerSpec:
    """Everything the rest of the system needs to know about a scheme."""

    #: Registry key (also the ``--scheme`` CLI value).
    name: str
    #: ``scheduler(matrix, config, **kwargs) -> TiledSchedule``.
    scheduler: Callable[..., "object"]
    #: Algorithm revision; part of every schedule cache fingerprint.
    version: str
    #: Configuration used when the caller does not supply one (carries
    #: the clock of the placed design the scheme models).
    default_config: AcceleratorConfig
    #: Key into :func:`repro.power.devices.measured_power` for the power
    #: model of the datapath this scheme runs on.
    power_key: str
    #: Accelerator name stamped into :class:`SpMVReport` rows.
    accelerator_name: str = ""
    #: Whether ``scheduler`` accepts a ``report=MigrationReport()``
    #: keyword for migration bookkeeping (CrHCS-family schemes).
    report_kwarg: bool = False
    description: str = ""
    #: The scheme's pass-pipeline composition, as registry spellings
    #: (``"build:pe_aware"``, ``"migrate:crhcs"``, ``"compact"``, …).
    #: Validated at registration; empty for non-pass-based schemes.
    passes: Tuple[str, ...] = ()
    #: ``plan(config, scheduler_kwargs) -> List[SchedulePass]`` — the
    #: instantiated pass list with kwargs resolved (spans defaulted,
    #: thresholds computed).  Present iff ``passes`` is declared; it is
    #: what the pipeline fingerprints and what ``reschedule`` runs.
    plan: Optional[Callable[..., list]] = None
    extra: Tuple[Tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("a scheduler spec needs a name")
        if not self.version:
            raise ConfigError(f"scheme {self.name!r} needs a version tag")
        if not self.accelerator_name:
            object.__setattr__(self, "accelerator_name", self.name)
        for pass_name in self.passes:
            validate_pass_name(pass_name)
        if self.passes and self.plan is None:
            raise ConfigError(
                f"scheme {self.name!r} declares passes but no plan"
            )

    def pass_plan(self, config: AcceleratorConfig, scheduler_kwargs: dict):
        """The instantiated pass list for one (config, kwargs) pair.

        ``report`` and private (``_``-prefixed) keyword arguments are
        side channels, not scheduling parameters — they are stripped
        before the plan sees the kwargs.
        """
        if self.plan is None:
            return None
        clean = {
            k: v
            for k, v in scheduler_kwargs.items()
            if k != "report" and not k.startswith("_")
        }
        return self.plan(config, clean)

    def pass_signature(
        self, config: AcceleratorConfig, scheduler_kwargs: dict
    ) -> Tuple[Tuple[object, ...], ...]:
        """Per-pass digest signatures — folded into schedule cache keys."""
        plan = self.pass_plan(config, scheduler_kwargs)
        if plan is None:
            return ()
        return tuple(p.signature() for p in plan)

    @property
    def clock_mhz(self) -> float:
        """The placed-design clock the scheme's reports are charged at."""
        return self.default_config.frequency_mhz

    def power_watts(self) -> float:
        """Measured runtime power of the modelled platform (§5.3)."""
        from ..power.devices import measured_power

        return measured_power(self.power_key)


def register(spec: SchedulerSpec) -> SchedulerSpec:
    """Register a spec, rejecting duplicate names."""
    if spec.name in _REGISTRY:
        raise ConfigError(f"scheme {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def register_scheme(
    name: str,
    version: str,
    default_config: AcceleratorConfig,
    power_key: str,
    accelerator_name: str = "",
    report_kwarg: bool = False,
    description: str = "",
    passes: Tuple[str, ...] = (),
    plan: Optional[Callable[..., list]] = None,
):
    """Decorator form of :func:`register` for scheduler functions."""

    def decorate(fn: Callable[..., "object"]) -> Callable[..., "object"]:
        register(
            SchedulerSpec(
                name=name,
                scheduler=fn,
                version=version,
                default_config=default_config,
                power_key=power_key,
                accelerator_name=accelerator_name,
                report_kwarg=report_kwarg,
                description=description,
                passes=tuple(passes),
                plan=plan,
            )
        )
        return fn

    return decorate


def _ensure_builtins() -> None:
    """Import the scheduler modules so their decorators have run."""
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(f".{module}", package=__package__)


def get_scheme(name: str) -> SchedulerSpec:
    """Resolve a scheme name, with a did-you-mean on typos."""
    _ensure_builtins()
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    known = sorted(_REGISTRY)
    message = f"unknown scheme {name!r}; registered: {', '.join(known)}"
    close = difflib.get_close_matches(name, known, n=1)
    if close:
        message += f" — did you mean {close[0]!r}?"
    raise ConfigError(message)


def registered_schemes() -> Tuple[str, ...]:
    """All registered scheme names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def iter_schemes() -> Tuple[SchedulerSpec, ...]:
    """All registered specs in name order."""
    _ensure_builtins()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def unregister(name: str) -> Optional[SchedulerSpec]:
    """Remove a scheme (test helper); returns the removed spec."""
    return _REGISTRY.pop(name, None)
