"""Row-reordering preprocessing (a §7.1-style software optimization).

Eq. 1 maps row *i* to PE ``i mod total_pes``, so whichever rows happen to
share a residue class share a PE — and a run of heavy rows with the same
residue starves everyone else.  Related work (e.g. the reordering study
the paper cites in §7.1) permutes rows before scheduling to balance load.

This module implements the classic LPT (longest-processing-time-first)
balancing permutation: sort rows by descending non-zero count, deal them
to PEs like cards — always to the currently lightest PE — and lay rows
out so that each PE's rows occupy its Eq. 1 residue class.  The inverse
permutation restores the original row order of the output vector.

Reordering composes with any scheduler; the ablation benchmark measures
how much of CrHCS's benefit a software-only reorder can (and cannot)
recover: balancing helps the *inter-channel* imbalance but cannot fill
the *intra-window* stalls that migration fills.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ShapeError
from ..formats.convert import to_coo
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix

Matrix = Union[COOMatrix, CSRMatrix]


@dataclass(frozen=True)
class RowPermutation:
    """A row permutation and its inverse.

    ``forward[new_row] = old_row``: row ``old_row`` of the original matrix
    becomes row ``new_row`` of the permuted one.
    """

    forward: np.ndarray

    def __post_init__(self) -> None:
        forward = np.ascontiguousarray(self.forward, dtype=np.int64)
        if forward.ndim != 1:
            raise ShapeError("permutation must be one-dimensional")
        if not np.array_equal(np.sort(forward), np.arange(forward.size)):
            raise ShapeError("not a permutation of 0..n-1")
        object.__setattr__(self, "forward", forward)

    @property
    def n_rows(self) -> int:
        return int(self.forward.size)

    @property
    def inverse(self) -> np.ndarray:
        """``inverse[old_row] = new_row``."""
        inverse = np.empty_like(self.forward)
        inverse[self.forward] = np.arange(self.forward.size)
        return inverse

    def apply(self, matrix: Matrix) -> COOMatrix:
        """Permute the rows of ``matrix``."""
        coo = to_coo(matrix)
        if coo.n_rows != self.n_rows:
            raise ShapeError(
                f"permutation of {self.n_rows} rows applied to "
                f"{coo.n_rows}-row matrix"
            )
        return COOMatrix(
            coo.shape, self.inverse[coo.rows], coo.cols, coo.values
        )

    def restore_vector(self, y_permuted: np.ndarray) -> np.ndarray:
        """Map an output vector back to the original row order."""
        y_permuted = np.asarray(y_permuted)
        if y_permuted.shape != (self.n_rows,):
            raise ShapeError("vector length does not match permutation")
        return y_permuted[self.inverse]


def balancing_permutation(
    matrix: Matrix, config: AcceleratorConfig
) -> RowPermutation:
    """LPT row balancing across the ``total_pes`` Eq. 1 residue classes."""
    coo = to_coo(matrix)
    total_pes = config.total_pes
    lengths = coo.row_lengths()
    order = np.argsort(-lengths, kind="stable")

    # Deal rows to PEs, heaviest first, always to the lightest PE that
    # still has free slots in its residue class (class p owns indices
    # p, p+P, p+2P, … below n, i.e. ceil((n-p)/P) slots).
    pe_rows = [[] for _ in range(total_pes)]
    capacity = [
        (coo.n_rows - pe + total_pes - 1) // total_pes
        for pe in range(total_pes)
    ]
    heap = [(0, pe) for pe in range(total_pes) if capacity[pe] > 0]
    heapq.heapify(heap)
    for row in order:
        load, pe = heapq.heappop(heap)
        pe_rows[pe].append(int(row))
        if len(pe_rows[pe]) < capacity[pe]:
            heapq.heappush(heap, (load + int(lengths[row]), pe))

    # Lay PE p's k-th row at new index k*total_pes + p (its residue class).
    forward = np.empty(coo.n_rows, dtype=np.int64)
    for pe, rows in enumerate(pe_rows):
        for position, old_row in enumerate(rows):
            new_row = position * total_pes + pe
            forward[new_row] = old_row
    return RowPermutation(forward=forward)


def reorder_rows(
    matrix: Matrix, config: AcceleratorConfig
):
    """Convenience: ``(permuted_matrix, permutation)``."""
    permutation = balancing_permutation(matrix, config)
    return permutation.apply(matrix), permutation
