"""Row-based non-zero scheduling — the naive baseline (§2.2, Fig. 1/2a).

All non-zeros of a row go to the same PE *in row order*: the PE finishes
row r before starting the next row assigned to it.  Consecutive non-zeros
of the same row form a RAW chain, so each issues a full dependency
distance after its predecessor; the first non-zero of the *next* row has
no dependency and issues on the following cycle.

The result is the 0.10 non-zeros/cycle throughput of Fig. 2a — roughly one
element per ``distance`` cycles whenever rows have more than one non-zero.
This scheduler exists as the motivational baseline and for the scheduling
ablation; Serpens-class accelerators already improve on it with PE-aware
scheduling.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from ..config import DEFAULT_SERPENS, AcceleratorConfig
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .base import ChannelGrid, Schedule, ScheduledElement, TiledSchedule
from .passes import PassManager, register_builder, resolve_passes
from .pe_aware import group_rows_by_pe
from .registry import register_scheme
from .window import Tile, tile_matrix

#: Algorithm revision (cache fingerprint component).
ROW_BASED_VERSION = "1"

Matrix = Union[COOMatrix, CSRMatrix]


def _schedule_pe_in_order(rows, distance: int) -> Tuple[List[int], List[int], int]:
    """In-order schedule of one PE's rows (no OoO interleaving)."""
    out_cycles: List[int] = []
    out_elements: List[int] = []
    cycle = 0
    for row, element_indices in rows:
        for position, element_index in enumerate(element_indices):
            out_cycles.append(cycle)
            out_elements.append(int(element_index))
            is_last = position == len(element_indices) - 1
            # Next element of the same row waits the full RAW distance;
            # the first element of the next row only waits one cycle.
            cycle += 1 if is_last else distance
    return out_cycles, out_elements, cycle


def row_based_grids(tile: Tile, config: AcceleratorConfig) -> List[ChannelGrid]:
    """Unequalised per-channel grids under in-order row-based scheduling."""
    groups = group_rows_by_pe(tile, config)
    distance = config.accumulator_latency
    grids: List[ChannelGrid] = []
    for channel_id in range(config.sparse_channels):
        grid = ChannelGrid(channel_id=channel_id, pes=config.pes_per_channel)
        for pe in range(config.pes_per_channel):
            cycles, elements, pe_length = _schedule_pe_in_order(
                groups[channel_id][pe], distance
            )
            grid.ensure_length(pe_length)
            for cycle, element_index in zip(cycles, elements):
                grid.place(
                    cycle,
                    pe,
                    ScheduledElement(
                        row=int(tile.rows[element_index]),
                        col=int(tile.cols[element_index]),
                        value=float(tile.values[element_index]),
                        origin_channel=channel_id,
                        origin_pe=pe,
                    ),
                )
        grids.append(grid)
    return grids


def _row_based_builder(tile, config, options, report):
    """Kernel adapter for the pass pipeline (``build:row_based``)."""
    return row_based_grids(tile, config)


register_builder("row_based", _row_based_builder, version=ROW_BASED_VERSION)

#: The scheme's pass composition (declared on the registry spec).
ROW_BASED_PASSES = ("build:row_based", "compact", "trim", "verify")


def _row_based_plan(config: AcceleratorConfig, kwargs: dict):
    return resolve_passes(ROW_BASED_PASSES)


def schedule_row_based_tile(tile: Tile, config: AcceleratorConfig) -> Schedule:
    """Row-based schedule of one tile."""
    schedule = Schedule(
        config=config,
        grids=row_based_grids(tile, config),
        scheme="row_based",
        row_base=tile.row_base,
        col_base=tile.col_base,
    )
    schedule.equalise()
    return schedule


@register_scheme(
    name="row_based",
    version=ROW_BASED_VERSION,
    default_config=DEFAULT_SERPENS,
    power_key="serpens",
    description="naive row-based parallelization (Fig. 2a)",
    passes=ROW_BASED_PASSES,
    plan=_row_based_plan,
)
def schedule_row_based(
    matrix: Matrix,
    config: AcceleratorConfig,
    max_rows_per_pass: int = 0,
    _pass_cache=None,
) -> TiledSchedule:
    """Schedule a whole matrix with naive row-based scheduling."""
    manager = PassManager(_row_based_plan(config, {}), scheme="row_based")
    return manager.run(
        matrix, config,
        max_rows_per_pass=max_rows_per_pass, cache=_pass_cache,
    )
