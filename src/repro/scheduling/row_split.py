"""Row-splitting scheduling — the HiSpMV-style alternative (§2.1).

The paper's related work (§2.1) describes accelerators that attack the
RAW chain of long rows by *splitting* them: HiSpMV's "hybrid row
distribution" lets one row's non-zeros spread across several PEs of its
own channel, each accumulating a private partial sum that an intra-
channel reduction later merges — more BRAM/URAM, better behaviour on
imbalanced matrices, but still strictly intra-channel.

This scheduler reproduces that idea on the Serpens datapath geometry so
the ablation suite can separate the two orthogonal remedies for stalls:

* **row splitting** breaks the *RAW chain of a single hub row* (HiSpMV);
* **cross-channel migration** fills the *starved channels* (CrHCS).

Rows longer than ``split_threshold`` are cut into one shard per PE of
the home channel; every shard schedules independently under the greedy
cooldown policy.  Shards of a row in different PEs accumulate into
different partial-sum banks, merged by an intra-channel reduction —
architecturally the same trick as Chasoň's ScUG, spent on the home
channel instead of a neighbour.  Scheme name: ``"row_split"``.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from ..config import DEFAULT_SERPENS, AcceleratorConfig
from ..errors import SchedulingError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .base import ChannelGrid, Schedule, ScheduledElement, TiledSchedule, pe_for_row
from .greedy import schedule_single_pe_greedy
from .passes import PassManager, register_builder, resolve_passes
from .registry import register_scheme
from .window import Tile, tile_matrix

#: Algorithm revision (cache fingerprint component).
ROW_SPLIT_VERSION = "1"

Matrix = Union[COOMatrix, CSRMatrix]

#: Rows longer than ``threshold_factor x accumulator_latency`` are split:
#: below that, the greedy scheduler can hide the chain by interleaving.
DEFAULT_THRESHOLD_FACTOR = 2


def _split_groups(tile: Tile, config: AcceleratorConfig, threshold: int):
    """Like ``group_rows_by_pe`` but sharding long rows across the PEG.

    Returns ``groups[channel][pe] = [(row, element_indices), ...]`` where
    a long row contributes one shard per PE of its home channel.
    """
    pes = config.pes_per_channel
    groups: List[List[List]] = [
        [[] for _ in range(pes)] for _ in range(config.sparse_channels)
    ]
    if tile.nnz == 0:
        return groups
    order = np.lexsort((tile.cols, tile.rows))
    rows_sorted = tile.rows[order]
    boundaries = np.flatnonzero(np.diff(rows_sorted)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [rows_sorted.size]])
    for start, end in zip(starts, ends):
        row = int(rows_sorted[start])
        channel, home_pe = pe_for_row(row, config)
        indices = order[start:end]
        if indices.size <= threshold:
            groups[channel][home_pe].append((row, indices))
            continue
        shards = np.array_split(indices, pes)
        for offset, shard in enumerate(shards):
            if shard.size == 0:
                continue
            pe = (home_pe + offset) % pes
            groups[channel][pe].append((row, shard))
    return groups


def resolve_split_threshold(
    config: AcceleratorConfig, split_threshold: int = 0
) -> int:
    """Resolve the caller's threshold (0 means the §2.1 default)."""
    if split_threshold < 0:
        raise SchedulingError("split threshold must be positive")
    if split_threshold == 0:
        return DEFAULT_THRESHOLD_FACTOR * config.accumulator_latency
    return split_threshold


def row_split_grids(
    tile: Tile, config: AcceleratorConfig, split_threshold: int
) -> List[ChannelGrid]:
    """Unequalised per-channel grids under row splitting + greedy cooldown."""
    split_threshold = resolve_split_threshold(config, split_threshold)
    groups = _split_groups(tile, config, split_threshold)
    distance = config.accumulator_latency
    rows_list = tile.rows.tolist()
    cols_list = tile.cols.tolist()
    values_list = tile.values.tolist()
    grids: List[ChannelGrid] = []
    for channel_id in range(config.sparse_channels):
        grid = ChannelGrid(channel_id=channel_id, pes=config.pes_per_channel)
        occupied = grid.occupied
        for pe in range(config.pes_per_channel):
            cycles, elements, pe_length = schedule_single_pe_greedy(
                groups[channel_id][pe], distance
            )
            grid.ensure_length(pe_length)
            for cycle, element_index in zip(cycles, elements):
                occupied[(cycle, pe)] = ScheduledElement(
                    rows_list[element_index],
                    cols_list[element_index],
                    values_list[element_index],
                    channel_id,
                    pe,
                )
        grids.append(grid)
    return grids


def _row_split_builder(tile, config, options, report):
    """Kernel adapter for the pass pipeline (``build:row_split``)."""
    return row_split_grids(tile, config, options["split_threshold"])


register_builder(
    "row_split",
    _row_split_builder,
    option_keys=("split_threshold",),
    version=ROW_SPLIT_VERSION,
)

#: The scheme's pass composition (declared on the registry spec).
ROW_SPLIT_PASSES = ("build:row_split", "compact", "trim", "verify")


def _row_split_plan(config: AcceleratorConfig, kwargs: dict):
    threshold = resolve_split_threshold(
        config, kwargs.get("split_threshold", 0)
    )
    return resolve_passes(
        ROW_SPLIT_PASSES, options={"split_threshold": threshold}
    )


def schedule_row_split_tile(
    tile: Tile,
    config: AcceleratorConfig,
    split_threshold: int = 0,
) -> Schedule:
    """Schedule one tile with row splitting + greedy cooldown."""
    schedule = Schedule(
        config=config,
        grids=row_split_grids(tile, config, split_threshold),
        scheme="row_split",
        row_base=tile.row_base,
        col_base=tile.col_base,
    )
    schedule.equalise()
    return schedule


@register_scheme(
    name="row_split",
    version=ROW_SPLIT_VERSION,
    default_config=DEFAULT_SERPENS,
    power_key="serpens",
    description="HiSpMV-style long-row splitting (stall analysis only)",
    passes=ROW_SPLIT_PASSES,
    plan=_row_split_plan,
)
def schedule_row_split(
    matrix: Matrix,
    config: AcceleratorConfig,
    split_threshold: int = 0,
    max_rows_per_pass: int = 0,
    _pass_cache=None,
) -> TiledSchedule:
    """Schedule a whole matrix with HiSpMV-style row splitting.

    Note the relaxed lane invariant: shards of a long row legally sit in
    PEs other than the row's Eq. 1 lane, so neither ``Schedule.validate()``
    nor the Chasoň execution engine (both of which assume the
    Serpens/Chasoň lane rule) applies to this scheme — it models the
    *scheduler* of a HiSpMV-class design for stall/cycle analysis, not a
    datapath this simulator can execute.  The dedicated tests check the
    row-split invariants (completeness, per-(PE, row) RAW spacing)
    directly.
    """
    plan = _row_split_plan(config, {"split_threshold": split_threshold})
    manager = PassManager(plan, scheme="row_split")
    return manager.run(
        matrix, config,
        max_rows_per_pass=max_rows_per_pass, cache=_pass_cache,
    )
