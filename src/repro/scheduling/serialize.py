"""Schedule serialization in the §3.2 wire format.

The offline preprocessing step of a real deployment produces binary HBM
channel images: for every tile and channel, one 64-bit packed element per
slot in stream order, with stalls encoded as all-zero words (the explicit
zeros of §2.2 — the hardware skips a slot whose value is 0.0, which is
why the generators never emit exactly-zero non-zeros).

The container format is::

    header:  magic 'CHSN' | version u16 | channels u16 | pes u16 |
             span u16 | n_rows u64 | n_cols u64 | n_tiles u32 |
             scheme (16 bytes, NUL padded)
    tile:    row_base u64 | col_base u64 | length u32 |
             channels x length x pes x u64 packed elements

Because the wire format carries only the 1-bit ``pvt`` flag, the donor
channel of a migrated element is implicit: it is the next channel in the
ring.  Schedules built with ``migration_span > 1`` therefore cannot be
serialized losslessly and are rejected — the same constraint the §3.2
encoding imposes on the hardware.
"""

from __future__ import annotations

import struct
from typing import List

from ..config import AcceleratorConfig
from ..errors import FormatError, SchedulingError
from ..formats.element import PackedElement, pack_element, unpack_element
from .base import ChannelGrid, Schedule, ScheduledElement, TiledSchedule

MAGIC = b"CHSN"
VERSION = 1
_HEADER = struct.Struct("<4sHHHHQQI16s")
_TILE_HEADER = struct.Struct("<QQI")
_STALL_WORD = 0


def _element_to_word(
    element: ScheduledElement, channel_id: int, channels: int
) -> int:
    pvt = element.origin_channel == channel_id
    if not pvt:
        offset = (element.origin_channel - channel_id) % channels
        if offset != 1:
            raise SchedulingError(
                "the §3.2 wire format encodes only immediate-next-channel "
                f"migration; found an element from {offset} channels away"
            )
    packed = PackedElement(
        value=element.value,
        row=element.row,
        col=element.col,
        pvt=pvt,
        pe_src=element.origin_pe,
    )
    word = pack_element(packed)
    if word == _STALL_WORD and element.value == 0.0:
        raise SchedulingError(
            "cannot serialize a zero-valued non-zero: it is "
            "indistinguishable from a stall word (§2.2)"
        )
    return word


def serialize_schedule(schedule: TiledSchedule) -> bytes:
    """Encode a schedule as binary HBM channel images."""
    config = schedule.config
    channels = config.sparse_channels
    pes = config.pes_per_channel
    span = getattr(config, "migration_span", 0)
    chunks: List[bytes] = [
        _HEADER.pack(
            MAGIC,
            VERSION,
            channels,
            pes,
            span,
            schedule.n_rows,
            schedule.n_cols,
            len(schedule.tiles),
            schedule.scheme.encode()[:16],
        )
    ]
    for tile in schedule.tiles:
        length = tile.stream_cycles
        chunks.append(_TILE_HEADER.pack(tile.row_base, tile.col_base,
                                        length))
        words = []
        for grid in tile.grids:
            for cycle in range(length):
                for pe in range(pes):
                    element = grid.slot(cycle, pe)
                    if element is None:
                        words.append(_STALL_WORD)
                    else:
                        words.append(
                            _element_to_word(element, grid.channel_id,
                                             channels)
                        )
        chunks.append(struct.pack(f"<{len(words)}Q", *words))
    return b"".join(chunks)


def deserialize_schedule(
    data: bytes, config: AcceleratorConfig
) -> TiledSchedule:
    """Decode binary channel images back into a schedule."""
    if len(data) < _HEADER.size:
        raise FormatError("truncated schedule image: missing header")
    (magic, version, channels, pes, span, n_rows, n_cols, n_tiles,
     scheme_raw) = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise FormatError("not a Chasoň schedule image")
    if version != VERSION:
        raise FormatError(f"unsupported schedule image version {version}")
    if channels != config.sparse_channels or pes != config.pes_per_channel:
        raise FormatError(
            f"image built for {channels} channels x {pes} PEs, "
            f"configuration has {config.sparse_channels} x "
            f"{config.pes_per_channel}"
        )
    scheme = scheme_raw.rstrip(b"\x00").decode()

    offset = _HEADER.size
    tiles: List[Schedule] = []
    for _ in range(n_tiles):
        if len(data) < offset + _TILE_HEADER.size:
            raise FormatError("truncated schedule image: missing tile")
        row_base, col_base, length = _TILE_HEADER.unpack_from(data, offset)
        offset += _TILE_HEADER.size
        word_count = channels * length * pes
        end = offset + 8 * word_count
        if len(data) < end:
            raise FormatError("truncated schedule image: missing words")
        words = struct.unpack_from(f"<{word_count}Q", data, offset)
        offset = end

        grids = []
        migrated = 0
        index = 0
        for channel_id in range(channels):
            grid = ChannelGrid(channel_id=channel_id, pes=pes)
            grid.ensure_length(length)
            for cycle in range(length):
                for pe in range(pes):
                    word = words[index]
                    index += 1
                    if word == _STALL_WORD:
                        continue
                    packed = unpack_element(word)
                    if packed.pvt:
                        origin_channel, origin_pe = channel_id, pe
                    else:
                        origin_channel = (channel_id + 1) % channels
                        origin_pe = packed.pe_src
                        migrated += 1
                    grid.place(
                        cycle,
                        pe,
                        ScheduledElement(
                            row=packed.row,
                            col=packed.col,
                            value=packed.value,
                            origin_channel=origin_channel,
                            origin_pe=origin_pe,
                        ),
                    )
            grids.append(grid)
        tiles.append(
            Schedule(
                config=config,
                grids=grids,
                scheme=scheme,
                row_base=row_base,
                col_base=col_base,
                migrated_count=migrated,
                migration_span=span,
            )
        )
    if offset != len(data):
        raise FormatError("trailing bytes after the last tile")
    return TiledSchedule(
        config=config,
        tiles=tiles,
        scheme=scheme,
        n_rows=n_rows,
        n_cols=n_cols,
    )
