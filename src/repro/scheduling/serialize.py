"""Schedule serialization in the §3.2 wire format.

The offline preprocessing step of a real deployment produces binary HBM
channel images: for every tile and channel, one 64-bit packed element per
slot in stream order, with stalls encoded as all-zero words (the explicit
zeros of §2.2 — the hardware skips a slot whose value is 0.0, which is
why the generators never emit exactly-zero non-zeros).

The container format is::

    header:  magic 'CHSN' | version u16 | channels u16 | pes u16 |
             span u16 | n_rows u64 | n_cols u64 | n_tiles u32 |
             scheme (16 bytes, NUL padded)
    tile:    row_base u64 | col_base u64 | length u32 |
             channels x length x pes x u64 packed elements

Because the wire format carries only the 1-bit ``pvt`` flag, the donor
channel of a migrated element is implicit: it is the next channel in the
ring.  Schedules built with ``migration_span > 1`` therefore cannot be
serialized losslessly and are rejected — the same constraint the §3.2
encoding imposes on the hardware.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from ..config import AcceleratorConfig
from ..errors import FormatError, SchedulingError
from ..formats.element import (
    COL_BITS,
    PE_SRC_BITS,
    ROW_BITS,
    PackedElement,
    pack_element,
    unpack_element,
)
from .base import ChannelGrid, Schedule, ScheduledElement, TiledSchedule

MAGIC = b"CHSN"
VERSION = 1
_HEADER = struct.Struct("<4sHHHHQQI16s")
_TILE_HEADER = struct.Struct("<QQI")
_STALL_WORD = 0

_COL_SHIFT = 0
_PE_SRC_SHIFT = COL_BITS
_PVT_SHIFT = _PE_SRC_SHIFT + PE_SRC_BITS
_ROW_SHIFT = _PVT_SHIFT + 1
_VALUE_SHIFT = _ROW_SHIFT + ROW_BITS
_ROW_MAX = (1 << ROW_BITS) - 1
_PE_SRC_MAX = (1 << PE_SRC_BITS) - 1
_COL_MAX = (1 << COL_BITS) - 1


def _element_to_word(
    element: ScheduledElement, channel_id: int, channels: int
) -> int:
    pvt = element.origin_channel == channel_id
    if not pvt:
        offset = (element.origin_channel - channel_id) % channels
        if offset != 1:
            raise SchedulingError(
                "the §3.2 wire format encodes only immediate-next-channel "
                f"migration; found an element from {offset} channels away"
            )
    packed = PackedElement(
        value=element.value,
        row=element.row,
        col=element.col,
        pvt=pvt,
        pe_src=element.origin_pe,
    )
    word = pack_element(packed)
    if word == _STALL_WORD and element.value == 0.0:
        raise SchedulingError(
            "cannot serialize a zero-valued non-zero: it is "
            "indistinguishable from a stall word (§2.2)"
        )
    return word


def _grid_words(grid: ChannelGrid, length: int, channels: int) -> np.ndarray:
    """Pack one channel grid into its ``(length, pes)`` word image.

    The whole channel packs in one pass of NumPy bit arithmetic —
    ``value_bits << 32 | row << 17 | pvt << 16 | pe_src << 13 | col`` —
    with stalls left as the all-zero word.
    """
    cycles, pes, rows, cols, values, origin_channels, origin_pes = (
        grid.element_arrays()
    )
    in_range = cycles < length
    if not in_range.all():
        cycles = cycles[in_range]
        pes = pes[in_range]
        rows = rows[in_range]
        cols = cols[in_range]
        values = values[in_range]
        origin_channels = origin_channels[in_range]
        origin_pes = origin_pes[in_range]

    pvt = origin_channels == grid.channel_id
    if not pvt.all():
        offsets = (origin_channels[~pvt] - grid.channel_id) % channels
        bad = offsets != 1
        if bad.any():
            raise SchedulingError(
                "the §3.2 wire format encodes only immediate-next-channel "
                f"migration; found an element from {int(offsets[bad][0])} "
                "channels away"
            )
    if rows.size:
        if int(rows.max()) > _ROW_MAX or int(rows.min()) < 0:
            bad_row = rows[(rows > _ROW_MAX) | (rows < 0)][0]
            raise FormatError(
                f"row index {int(bad_row)} does not fit in {ROW_BITS} bits"
            )
        if int(cols.max()) > _COL_MAX or int(cols.min()) < 0:
            bad_col = cols[(cols > _COL_MAX) | (cols < 0)][0]
            raise FormatError(
                f"column index {int(bad_col)} does not fit in "
                f"{COL_BITS} bits"
            )
        if int(origin_pes.max()) > _PE_SRC_MAX or int(origin_pes.min()) < 0:
            bad_pe = origin_pes[
                (origin_pes > _PE_SRC_MAX) | (origin_pes < 0)
            ][0]
            raise FormatError(
                f"PE_src {int(bad_pe)} does not fit in {PE_SRC_BITS} bits"
            )

    value_bits = values.astype(np.float32).view(np.uint32).astype(np.uint64)
    words = (
        (value_bits << np.uint64(_VALUE_SHIFT))
        | (rows.astype(np.uint64) << np.uint64(_ROW_SHIFT))
        | (pvt.astype(np.uint64) << np.uint64(_PVT_SHIFT))
        | (origin_pes.astype(np.uint64) << np.uint64(_PE_SRC_SHIFT))
        | cols.astype(np.uint64)
    )
    zero_words = words == _STALL_WORD
    if zero_words.any() and (values[zero_words] == 0.0).any():
        raise SchedulingError(
            "cannot serialize a zero-valued non-zero: it is "
            "indistinguishable from a stall word (§2.2)"
        )
    image = np.zeros((length, grid.pes), dtype=np.uint64)
    image[cycles, pes] = words
    return image


def serialize_schedule(schedule: TiledSchedule) -> bytes:
    """Encode a schedule as binary HBM channel images."""
    config = schedule.config
    channels = config.sparse_channels
    pes = config.pes_per_channel
    span = getattr(config, "migration_span", 0)
    chunks: List[bytes] = [
        _HEADER.pack(
            MAGIC,
            VERSION,
            channels,
            pes,
            span,
            schedule.n_rows,
            schedule.n_cols,
            len(schedule.tiles),
            schedule.scheme.encode()[:16],
        )
    ]
    for tile in schedule.tiles:
        length = tile.stream_cycles
        chunks.append(_TILE_HEADER.pack(tile.row_base, tile.col_base,
                                        length))
        for grid in tile.grids:
            chunks.append(
                _grid_words(grid, length, channels)
                .astype("<u8")
                .tobytes()
            )
    return b"".join(chunks)


def deserialize_schedule(
    data: bytes, config: AcceleratorConfig
) -> TiledSchedule:
    """Decode binary channel images back into a schedule."""
    if len(data) < _HEADER.size:
        raise FormatError("truncated schedule image: missing header")
    (magic, version, channels, pes, span, n_rows, n_cols, n_tiles,
     scheme_raw) = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise FormatError("not a Chasoň schedule image")
    if version != VERSION:
        raise FormatError(f"unsupported schedule image version {version}")
    if channels != config.sparse_channels or pes != config.pes_per_channel:
        raise FormatError(
            f"image built for {channels} channels x {pes} PEs, "
            f"configuration has {config.sparse_channels} x "
            f"{config.pes_per_channel}"
        )
    scheme = scheme_raw.rstrip(b"\x00").decode()

    offset = _HEADER.size
    tiles: List[Schedule] = []
    for _ in range(n_tiles):
        if len(data) < offset + _TILE_HEADER.size:
            raise FormatError("truncated schedule image: missing tile")
        row_base, col_base, length = _TILE_HEADER.unpack_from(data, offset)
        offset += _TILE_HEADER.size
        word_count = channels * length * pes
        end = offset + 8 * word_count
        if len(data) < end:
            raise FormatError("truncated schedule image: missing words")
        words = np.frombuffer(
            data, dtype="<u8", count=word_count, offset=offset
        ).reshape(channels, length, pes)
        offset = end

        grids = []
        migrated = 0
        for channel_id in range(channels):
            grid = ChannelGrid(channel_id=channel_id, pes=pes)
            grid.ensure_length(length)
            image = words[channel_id]
            flat = np.flatnonzero(image.ravel() != _STALL_WORD)
            if flat.size:
                cycles = (flat // pes).astype(np.int64)
                pe_ids = (flat % pes).astype(np.int64)
                slot_words = image.ravel()[flat]
                values = (
                    (slot_words >> np.uint64(_VALUE_SHIFT))
                    .astype(np.uint32)
                    .view(np.float32)
                    .astype(np.float64)
                )
                rows = (
                    (slot_words >> np.uint64(_ROW_SHIFT))
                    & np.uint64(_ROW_MAX)
                ).astype(np.int64)
                pvt = (
                    (slot_words >> np.uint64(_PVT_SHIFT)) & np.uint64(1)
                ).astype(bool)
                pe_src = (
                    (slot_words >> np.uint64(_PE_SRC_SHIFT))
                    & np.uint64(_PE_SRC_MAX)
                ).astype(np.int64)
                cols = (slot_words & np.uint64(_COL_MAX)).astype(np.int64)
                origin_channels = np.where(
                    pvt, channel_id, (channel_id + 1) % channels
                )
                origin_pes = np.where(pvt, pe_ids, pe_src)
                migrated += int((~pvt).sum())
                grid.fill_slots(
                    cycles, pe_ids, rows, cols, values,
                    origin_channels, origin_pes,
                )
            grids.append(grid)
        tiles.append(
            Schedule(
                config=config,
                grids=grids,
                scheme=scheme,
                row_base=row_base,
                col_base=col_base,
                migrated_count=migrated,
                migration_span=span,
            )
        )
    if offset != len(data):
        raise FormatError("trailing bytes after the last tile")
    return TiledSchedule(
        config=config,
        tiles=tiles,
        scheme=scheme,
        n_rows=n_rows,
        n_cols=n_cols,
    )
