"""Schedule-level statistics (Eq. 4 and the Fig. 11–13 quantities).

Also home of :class:`MigrationReport`, the CrHCS bookkeeping record: it
sits here (below the scheme modules and the pass pipeline) so the
migrate/build passes can fill one per tile without importing the scheme
modules; :mod:`repro.scheduling.crhcs` re-exports it at its historical
location.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Union

from .base import Schedule, TiledSchedule

AnySchedule = Union[Schedule, TiledSchedule]


@dataclass
class MigrationReport:
    """Bookkeeping of one CrHCS run (aggregated over tiles)."""

    migrated: int = 0
    own_issues: int = 0
    raw_skips: int = 0
    #: migrated counts keyed by (destination, donor) channel pair.
    pair_counts: Counter = field(default_factory=Counter)

    def record_migration(self, dest: int, donor: int) -> None:
        self.migrated += 1
        self.pair_counts[(dest, donor)] += 1

    def merge(self, other: "MigrationReport") -> None:
        self.migrated += other.migrated
        self.own_issues += other.own_issues
        self.raw_skips += other.raw_skips
        # Counter.update adds counts, so overlapping pairs accumulate.
        self.pair_counts.update(other.pair_counts)

    def copy(self) -> "MigrationReport":
        """An independent snapshot (the pass-artifact cache stores one)."""
        return MigrationReport(
            migrated=self.migrated,
            own_issues=self.own_issues,
            raw_skips=self.raw_skips,
            pair_counts=Counter(self.pair_counts),
        )

    @property
    def migration_fraction(self) -> float:
        total = self.migrated + self.own_issues
        return self.migrated / total if total else 0.0


@dataclass(frozen=True)
class ScheduleStats:
    """Everything the evaluation reads off one schedule."""

    scheme: str
    nnz: int
    stalls: int
    stream_cycles: int
    words_per_channel: int
    traffic_bytes: int
    underutilization_pct: float
    migrated: int
    per_channel_underutilization_pct: List[float]

    @property
    def utilization_pct(self) -> float:
        return 100.0 - self.underutilization_pct


def underutilization_percent(schedule: AnySchedule) -> float:
    """Eq. 4: ``stalls / (NNZ + stalls) × 100`` over all channels."""
    return 100.0 * schedule.underutilization


def channel_underutilization(schedule: AnySchedule) -> List[float]:
    """Eq. 4 evaluated per channel data list (the Fig. 12 per-PEG view)."""
    stalls = schedule.channel_stalls()
    elements = schedule.channel_elements()
    result = []
    for stall_count, element_count in zip(stalls, elements):
        denominator = stall_count + element_count
        result.append(
            100.0 * stall_count / denominator if denominator else 0.0
        )
    return result


def peg_underutilization(schedule: AnySchedule) -> List[float]:
    """Alias of :func:`channel_underutilization`: one PEG per channel."""
    return channel_underutilization(schedule)


def schedule_stats(schedule: AnySchedule) -> ScheduleStats:
    """Collect :class:`ScheduleStats` from any schedule object."""
    return ScheduleStats(
        scheme=schedule.scheme,
        nnz=schedule.nnz,
        stalls=schedule.total_stalls,
        stream_cycles=schedule.stream_cycles,
        words_per_channel=schedule.words_per_channel,
        traffic_bytes=schedule.traffic_bytes,
        underutilization_pct=underutilization_percent(schedule),
        migrated=getattr(schedule, "migrated_count", 0),
        per_channel_underutilization_pct=channel_underutilization(schedule),
    )
