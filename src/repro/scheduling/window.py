"""Matrix tiling into (row window × column window) passes (§4.1, §4.5).

The packed element's 13-bit column index limits one pass to W = 8192
columns of the dense vector x, and the 15-bit row index (plus URAM
capacity, §4.5) limits the rows whose partial sums fit on chip.  Larger
matrices are partitioned and fed to the accelerator tile by tile; tiles
stream back-to-back.

Tiles are ordered column-window-major within a row window: the partial
sums of a row window stay resident in URAM while every column window of x
streams past, which is the processing order of Serpens that Chasoň keeps
(§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ShapeError
from ..formats.convert import to_coo
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix

Matrix = Union[COOMatrix, CSRMatrix]


@dataclass(frozen=True)
class Tile:
    """Non-zeros of one (row window, column window) block, local coords."""

    row_base: int
    col_base: int
    n_rows: int
    n_cols: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.rows.size)


def tile_matrix(
    matrix: Matrix,
    config: AcceleratorConfig,
    max_rows_per_pass: int = 0,
) -> List[Tile]:
    """Split ``matrix`` into schedule-sized tiles.

    ``max_rows_per_pass`` overrides the row window (used to model the URAM
    capacity limit of §4.5); 0 means use ``config.row_window``.
    """
    coo = to_coo(matrix)
    row_window = max_rows_per_pass or config.row_window
    col_window = config.column_window
    if row_window <= 0 or col_window <= 0:
        raise ShapeError("window sizes must be positive")

    n_row_tiles = -(-coo.n_rows // row_window)
    n_col_tiles = -(-coo.n_cols // col_window)

    row_tile = coo.rows // row_window
    col_tile = coo.cols // col_window
    tile_key = row_tile * n_col_tiles + col_tile
    order = np.argsort(tile_key, kind="stable")
    sorted_key = tile_key[order]
    boundaries = np.searchsorted(
        sorted_key, np.arange(n_row_tiles * n_col_tiles + 1)
    )

    tiles: List[Tile] = []
    for rt in range(n_row_tiles):
        row_base = rt * row_window
        tile_rows = min(row_window, coo.n_rows - row_base)
        for ct in range(n_col_tiles):
            col_base = ct * col_window
            tile_cols = min(col_window, coo.n_cols - col_base)
            key = rt * n_col_tiles + ct
            lo, hi = boundaries[key], boundaries[key + 1]
            if lo == hi and (n_row_tiles * n_col_tiles) > 1:
                # Empty tiles stream nothing; skip them entirely unless the
                # whole matrix is empty (keep one tile so downstream code
                # has a well-defined shape).
                continue
            idx = order[lo:hi]
            tiles.append(
                Tile(
                    row_base=row_base,
                    col_base=col_base,
                    n_rows=tile_rows,
                    n_cols=tile_cols,
                    rows=coo.rows[idx] - row_base,
                    cols=coo.cols[idx] - col_base,
                    values=coo.values[idx],
                )
            )
    if not tiles:
        tiles.append(
            Tile(
                row_base=0,
                col_base=0,
                n_rows=min(row_window, coo.n_rows),
                n_cols=min(col_window, coo.n_cols),
                rows=np.empty(0, dtype=np.int64),
                cols=np.empty(0, dtype=np.int64),
                values=np.empty(0, dtype=np.float32),
            )
        )
    return tiles
