"""The serving layer: a batched, coalescing SpMV request service.

Everything below this package treats one matrix as one batch call; this
package is where the reproduction meets the ROADMAP's "heavy traffic"
north star — concurrent :class:`SpMVRequest` s flow through a bounded
admission queue (priority + deadlines + explicit load shedding), a
micro-batcher groups compatible work, identical in-flight work coalesces
onto one execution, and a thread-pool worker engine drives the shared
:class:`~repro.pipeline.runner.PipelineRunner`.

See ``docs/serving.md`` for the request lifecycle, the coalescing rules,
the shedding policy and the SLO metrics.
"""

from .client import ServingClient, load_request_file, serve_request_file
from .engine import (
    BATCH_ENV,
    QUEUE_ENV,
    WORKERS_ENV,
    ServingEngine,
    Ticket,
    serve_max_batch,
    serve_queue_capacity,
    serve_worker_count,
)
from .queue import AdmissionQueue
from .resident import (
    STATE_BUDGET_ENV,
    ResidentStateStore,
    session_state_budget,
)
from .request import (
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    SpMVRequest,
    SpMVResponse,
    request_from_json,
)
from .slo import LatencyRecorder, latency_percentiles, percentile

__all__ = [
    "AdmissionQueue",
    "BATCH_ENV",
    "LatencyRecorder",
    "QUEUE_ENV",
    "STATUS_ERROR",
    "STATUS_EXPIRED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATE_BUDGET_ENV",
    "ResidentStateStore",
    "ServingClient",
    "ServingEngine",
    "SpMVRequest",
    "SpMVResponse",
    "Ticket",
    "WORKERS_ENV",
    "latency_percentiles",
    "load_request_file",
    "percentile",
    "request_from_json",
    "serve_max_batch",
    "serve_queue_capacity",
    "serve_request_file",
    "serve_worker_count",
    "session_state_budget",
]
