"""In-process client and the JSONL request-file driver.

:class:`ServingClient` is the call-site-friendly face of the engine:
build a request from keyword arguments, submit, wait, get a structured
:class:`~repro.serving.request.SpMVResponse` back.

:func:`serve_request_file` is what ``repro serve`` runs: read a JSONL
request file, submit everything (so coalescing and batching see the
whole workload), drain, and return the responses in request order plus
the engine's SLO summary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from ..config import AcceleratorConfig
from ..errors import ConfigError
from .engine import ServingEngine, Ticket
from .request import (
    STATUS_ERROR,
    SpMVRequest,
    SpMVResponse,
    request_from_json,
)


class ServingClient:
    """A thin, blocking wrapper over one :class:`ServingEngine`."""

    def __init__(self, engine: ServingEngine):
        self.engine = engine

    def request(
        self,
        source: Any,
        scheme: str = "crhcs",
        config: Optional[AcceleratorConfig] = None,
        config_overrides: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> SpMVResponse:
        """Submit one request and block for its response."""
        return self.engine.submit_wait(
            SpMVRequest(
                source=source,
                scheme=scheme,
                config=config,
                config_overrides=config_overrides,
                priority=priority,
                deadline_ms=deadline_ms,
                slo_class=slo_class,
            ),
            timeout=timeout,
        )

    def submit(self, request: SpMVRequest) -> Ticket:
        return self.engine.submit(request)


def load_request_file(path: str) -> List[SpMVRequest]:
    """Parse a JSONL request file (blank lines and ``#`` comments skip).

    Malformed lines are *skipped*, not raised: each bad line is counted,
    and one warning per file reports the count and the first failure —
    the same tolerant contract as the telemetry trace loader
    (:func:`repro.telemetry.schema.load_trace_tolerant`), so one typo in
    a workload file cannot take down the whole serve run.
    """
    requests: List[SpMVRequest] = []
    skipped = 0
    first_error = ""
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                requests.append(request_from_json(line))
            except ConfigError as error:
                skipped += 1
                if not first_error:
                    first_error = f"line {line_no}: {error}"
    if skipped:
        telemetry.warn_once(
            f"request_file_malformed:{path}",
            f"{path}: skipped {skipped} malformed request line(s) "
            f"(first: {first_error})",
        )
        t = telemetry.get()
        if t.enabled:
            t.counter("serving.request_file.skipped", skipped)
    return requests


def serve_request_file(
    path: str,
    engine: Optional[ServingEngine] = None,
    timeout: Optional[float] = None,
) -> Tuple[List[SpMVResponse], Dict[str, float], Dict[str, int]]:
    """Run a whole JSONL request file through an engine.

    Submits every request before waiting on any (duplicates coalesce,
    compatible neighbours batch), then drains the engine.  Returns
    ``(responses_in_request_order, latency_summary, stats)``.  The
    caller owns the engine's lifecycle only if it passed one in.
    """
    requests = load_request_file(path)
    owned = engine is None
    if owned:
        engine = ServingEngine()
        engine.start()
    try:
        tickets = [engine.submit(request) for request in requests]
        responses = []
        for ticket in tickets:
            try:
                responses.append(ticket.result(timeout))
            except Exception:  # ServingError timeout: degrade per-request
                responses.append(SpMVResponse(
                    request_id=ticket.request_id,
                    status=STATUS_ERROR,
                    detail=f"no response within {timeout}s",
                ))
    finally:
        if owned:
            engine.shutdown(drain=True)
    return responses, engine.latency_summary(), dict(engine.stats)
