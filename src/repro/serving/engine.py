"""The serving engine: admission, micro-batching, coalescing, workers.

Request lifecycle::

    submit ──▶ admission queue ──▶ dispatch ──▶ execute ──▶ response
       │            │                  │
       │            │ (full)           │ (deadline passed)
       │            ▼                  ▼
       │        Rejected            expired
       │
       │ (identical work already in flight)
       ▼
    coalesce: share the leader's execution

Three mechanisms turn N concurrent callers into less than N executions:

* **coalescing** — a submitted request whose *work fingerprint*
  (matrix source + scheme + version + config, the same digest chain the
  pipeline caches by) matches an in-flight request attaches to that
  leader and receives a copy of its response.  One execution, N answers.
* **micro-batching** — a worker that dequeues a request also collects up
  to ``REPRO_SERVE_BATCH - 1`` more queued requests from the same
  ``(scheme, config)`` group and executes them as one batch under one
  ``serving.execute`` span, amortising dispatch overhead and keeping the
  artifact store hot for the group.
* **whole-flow caching** — workers share one thread-safe
  :class:`~repro.pipeline.store.ArtifactStore`, so repeat work that is
  no longer in flight still skips recomputation stage by stage.

Overload degrades, it never raises: the bounded queue sheds (policy in
:mod:`repro.serving.queue`) with structured ``rejected`` responses, and
requests dequeued past their deadline answer ``expired``.  Shutdown is
graceful by default — ``shutdown()`` drains queued work while new
submissions are shed with ``engine is draining``.
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import ReproError, ServingError
from ..telemetry import tracing
from ..telemetry.tracing import TraceContext
from ..estimator.calibration import DEFAULT_CALIBRATION, CalibrationTable
from ..estimator.fidelity import (
    resolve_audit_rate,
    resolve_fidelity,
    should_audit,
)
from ..pipeline.fingerprint import fingerprint, fingerprint_config
from ..pipeline.runner import PipelineRunner
from ..pipeline.stages import LoadStage
from ..pipeline.store import ArtifactStore
from ..scheduling.registry import get_scheme
from ..tenancy import TenantPolicy, policy_from_env
from ..tenancy.fair_queue import FairAdmissionQueue
from ..tenancy.tenant import normalize_tenant
from .queue import DEFAULT_CAPACITY, AdmissionQueue  # noqa: F401 (re-export)
from .resident import ResidentStateStore
from .request import (
    STATUS_ERROR,
    STATUS_EXPIRED,
    STATUS_OK,
    STATUS_REJECTED,
    SpMVRequest,
    SpMVResponse,
)
from .slo import BurnRateMonitor, LatencyRecorder, latency_percentiles

WORKERS_ENV = "REPRO_SERVE_WORKERS"
QUEUE_ENV = "REPRO_SERVE_QUEUE"
BATCH_ENV = "REPRO_SERVE_BATCH"

DEFAULT_WORKERS = 4
DEFAULT_BATCH = 8

#: Worker poll interval while idle (also the drain-detection latency).
_POLL_S = 0.05

#: Response status → the per-tenant outcome counter it bumps.
_TENANT_OUTCOME = {
    STATUS_OK: "completed",
    STATUS_REJECTED: "shed",
    STATUS_EXPIRED: "expired",
    STATUS_ERROR: "errors",
}


class _SessionSpec:
    """Stand-in scheme spec for session-work entries.

    Session work carries its own scheme/config inside the work item (it
    was resolved when the session opened), so the engine's per-entry
    spec only feeds telemetry labels and batching groups.
    """

    __slots__ = ()
    name = "session"
    version = ""


_SESSION_SPEC = _SessionSpec()


def _int_env(env: str, default: int, warn_key: str, minimum: int) -> int:
    """Parse an integer knob, falling back (with a one-time warning) on
    garbage — the ``REPRO_CORPUS_WORKERS`` convention."""
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        telemetry.warn_once(
            warn_key,
            f"{env}={raw!r} is not an integer; "
            f"falling back to the default ({default})",
        )
        return default
    return max(value, minimum)


def serve_worker_count() -> int:
    """Configured worker-thread count (``REPRO_SERVE_WORKERS``)."""
    return _int_env(WORKERS_ENV, DEFAULT_WORKERS,
                    "invalid_serve_workers", 1)


def serve_queue_capacity() -> int:
    """Configured admission-queue capacity (``REPRO_SERVE_QUEUE``)."""
    return _int_env(QUEUE_ENV, DEFAULT_CAPACITY,
                    "invalid_serve_queue", 1)


def serve_max_batch() -> int:
    """Configured micro-batch limit (``REPRO_SERVE_BATCH``)."""
    return _int_env(BATCH_ENV, DEFAULT_BATCH, "invalid_serve_batch", 1)


class _Entry:
    """Engine-internal state of one admitted request."""

    __slots__ = (
        "request", "seq", "priority", "spec", "config", "group",
        "work_fp", "submitted_at", "deadline_at", "followers", "done",
        "event", "response", "trace", "owns_root", "tenant", "slo_class",
    )

    def __init__(self, request: SpMVRequest, seq: int, spec, config,
                 group: Tuple[str, str], work_fp: str, now: float,
                 trace: Optional[TraceContext] = None,
                 owns_root: bool = False):
        self.request = request
        #: Tenant and SLO class, resolved once — the fair queue orders
        #: and sheds by them without touching the request again.
        self.tenant = normalize_tenant(request.tenant)
        self.slo_class = request.effective_slo_class()
        #: The request's trace context, carried explicitly because
        #: worker threads do not inherit the submitter's contextvars.
        self.trace = trace
        #: Whether *this engine* created the trace (and therefore emits
        #: the root ``serving.request`` span at resolution).  False when
        #: the cluster attached the trace upstream — it owns the root.
        self.owns_root = owns_root
        self.seq = seq
        self.priority = request.priority
        self.spec = spec
        self.config = config
        self.group = group
        self.work_fp = work_fp
        self.submitted_at = now
        self.deadline_at = (
            now + request.deadline_ms * 1e-3
            if request.deadline_ms is not None
            else None
        )
        self.followers: List["_Entry"] = []
        self.done = False
        self.event = threading.Event()
        self.response: Optional[SpMVResponse] = None

    def expired_at(self, now: float) -> bool:
        return self.deadline_at is not None and now > self.deadline_at


class Ticket:
    """The submitter's handle on one request's eventual response."""

    def __init__(self, entry: Optional[_Entry] = None,
                 response: Optional[SpMVResponse] = None):
        self._entry = entry
        self._response = response

    @property
    def request_id(self) -> int:
        if self._response is not None:
            return self._response.request_id
        return self._entry.request.request_id

    def done(self) -> bool:
        return self._response is not None or self._entry.event.is_set()

    def result(self, timeout: Optional[float] = None) -> SpMVResponse:
        """Block until the response is available (or raise on timeout)."""
        if self._response is not None:
            return self._response
        if not self._entry.event.wait(timeout):
            raise ServingError(
                f"request {self._entry.request.request_id} did not "
                f"complete within {timeout}s"
            )
        return self._entry.response


class ServingEngine:
    """A batched, coalescing SpMV request service over the pipeline."""

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_capacity: Optional[int] = None,
        max_batch: Optional[int] = None,
        store: Optional[ArtifactStore] = None,
        fidelity: Optional[str] = None,
        audit_rate: Optional[float] = None,
        calibration: Optional[CalibrationTable] = None,
        tenancy: Optional[TenantPolicy] = None,
    ):
        self.workers = workers if workers is not None else serve_worker_count()
        self.max_batch = (
            max_batch if max_batch is not None else serve_max_batch()
        )
        # Serving defaults to the estimate tier — the order-of-magnitude
        # throughput lever — with a sampled exact-sim audit behind it;
        # ``REPRO_FIDELITY`` overrides the default, an explicit argument
        # overrides both.
        self.fidelity = resolve_fidelity(fidelity, default="estimate")
        self.audit_rate = resolve_audit_rate(audit_rate)
        self.calibration = (
            calibration if calibration is not None else DEFAULT_CALIBRATION
        )
        #: Schemes demoted to the exact tier by the audit gate.
        self._demoted: set = set()
        self.audit_stats: Dict[str, Any] = {
            "sampled": 0, "violations": 0, "max_rel_error": 0.0,
            "mean_rel_error": 0.0, "_error_sum": 0.0,
        }
        capacity = (
            queue_capacity if queue_capacity is not None
            else serve_queue_capacity()
        )
        self.tenancy = tenancy if tenancy is not None else policy_from_env()
        # The fair queue is a drop-in for AdmissionQueue and degenerates
        # to its exact policy with a single tenant at default weights —
        # the pre-tenancy behavior, pinned by differential tests.
        self.queue = FairAdmissionQueue(
            capacity, policy=self.tenancy, pressure=self._interactive_hot
        )
        # The engine's store deliberately skips the global ScheduleCache
        # tier: serving workers are threads, and an engine-private store
        # keeps cross-request reuse observable per engine.
        self.store = store if store is not None else ArtifactStore(
            capacity=max(4 * capacity, 64), schedule_cache=None
        )
        self.runner = PipelineRunner(self.store)
        #: Device-resident session state (schedules + iterate vectors).
        self.resident = ResidentStateStore()
        self.latencies = LatencyRecorder()
        self.slo = BurnRateMonitor()
        self._seq = itertools.count()
        self._lock = threading.RLock()  # submit bumps stats while held
        #: work fingerprint → leader entry (queued or executing).
        self._inflight: Dict[str, _Entry] = {}
        self._threads: List[threading.Thread] = []
        self._state = "new"  # new → running → draining/stopping → stopped
        self.stats: Dict[str, int] = {
            "accepted": 0, "coalesced": 0, "shed": 0,
            "expired": 0, "completed": 0, "errors": 0,
        }
        #: tenant → the same counter shape as :attr:`stats`.
        self.tenant_stats: Dict[str, Dict[str, int]] = {}
        #: tenant → latency recorder over its served requests.
        self.tenant_latencies: Dict[str, LatencyRecorder] = {}

    def _interactive_hot(self) -> bool:
        """Whether the interactive SLO class is burning its budget hot.

        The fair queue's shed-policy hook: while hot, batch-class
        entries become preferred shed victims.  Checked only on
        overload pushes, so the burn-rate scan stays off the fast path.
        """
        rates = self.slo.burn_rates().get("interactive")
        if not rates:
            return False
        fast = f"burn_{self.slo.windows_s[0]:g}s"
        return rates.get(fast, 0.0) > self.tenancy.burn_shed_threshold

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ServingEngine":
        if self._state != "new":
            raise ServingError(f"engine already {self._state}")
        self._state = "running"
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, args=(index,),
                name=f"repro-serve-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def drain(self) -> None:
        """Stop admitting; queued and in-flight work still completes."""
        if self._state in ("running", "new"):
            self._state = "draining"
        self.queue.wake_all()

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> None:
        """Stop the engine; graceful (drain queued work) by default.

        With ``drain=False`` queued entries are shed immediately with
        ``rejected`` responses; the in-flight batch still finishes.
        """
        if self._state == "stopped":
            return
        if drain:
            self.drain()
        else:
            self._state = "stopping"
            for entry in self.queue.drain():
                self._finish_shed(entry, "engine shutdown")
            self.queue.wake_all()
        for thread in self._threads:
            thread.join(timeout)
        self._state = "stopped"
        self._emit_slo_gauges()

    def __enter__(self) -> "ServingEngine":
        return self.start() if self._state == "new" else self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown(drain=True)

    # -- submission ------------------------------------------------------

    def _ensure_trace(
        self, request: SpMVRequest
    ) -> Tuple[SpMVRequest, Optional[TraceContext], bool]:
        """Attach a trace context to ``request`` if tracing wants one.

        A request arriving with a trace (the cluster attached it) keeps
        it and the upstream layer owns the root span; otherwise the
        engine starts one (sampling permitting) and owns the root.
        """
        if request.trace is not None:
            return request, request.trace, False
        trace = tracing.maybe_start_trace(request.request_id)
        if trace is None:
            return request, None, False
        return dataclasses.replace(request, trace=trace), trace, True

    def submit(self, request: SpMVRequest) -> Ticket:
        """Admit one request; always returns a ticket, never raises on
        overload (rejections are structured responses)."""
        t = telemetry.get()
        request, trace, owns_root = self._ensure_trace(request)
        with tracing.scope(trace), t.span(
            "serving.enqueue", scheme=request.scheme
        ):
            if self._state == "new":
                raise ServingError("engine not started (call start())")
            if self._state != "running":
                return self._reject_ticket(
                    request, "engine is draining",
                    trace=trace, owns_root=owns_root,
                )
            now = time.monotonic()
            if request.work is not None:
                return self._submit_session(request, now, trace,
                                            owns_root, t)
            try:
                spec = get_scheme(request.scheme)
                config = request.resolve_config(spec)
                _kind, _label, source_digest = LoadStage.describe(
                    request.source
                )
            except ReproError as error:
                # Malformed work (unknown scheme/matrix, bad override)
                # answers immediately — a structured error, not a crash.
                self._bump("errors")
                self._bump_tenant(normalize_tenant(request.tenant),
                                  "errors")
                if t.enabled:
                    t.counter("serving.errors", 1, phase="admission")
                if owns_root and trace is not None:
                    t.emit_span("serving.request", trace, 0.0,
                                status=STATUS_ERROR,
                                request_id=request.request_id)
                return Ticket(response=SpMVResponse(
                    request_id=request.request_id,
                    status=STATUS_ERROR,
                    detail=str(error),
                    trace_id=trace.trace_id if trace else "",
                ))
            config_fp = fingerprint_config(config)
            work_fp = fingerprint(
                "serve", source_digest, spec.name, spec.version, config_fp
            )
            entry = _Entry(
                request, next(self._seq), spec, config,
                group=(spec.name, config_fp), work_fp=work_fp, now=now,
                trace=trace, owns_root=owns_root,
            )
            with self._lock:
                leader = self._inflight.get(work_fp)
                if leader is not None and not leader.done:
                    leader.followers.append(entry)
                    self._bump("coalesced")
                    self._bump_tenant(entry.tenant, "coalesced")
                    if t.enabled:
                        t.counter("serving.coalesced", 1, scheme=spec.name)
                        # The causal edge between the follower's tree and
                        # the leader execution it will share.
                        if trace is not None:
                            t.event(
                                "trace.link",
                                kind="coalesce",
                                peer_trace_id=(
                                    leader.trace.trace_id
                                    if leader.trace else ""
                                ),
                                scheme=spec.name,
                            )
                    coalesced_onto = leader
                else:
                    self._inflight[work_fp] = entry
                    coalesced_onto = None
            if coalesced_onto is not None:
                # A hot follower drags its queued leader forward so the
                # shared execution honours the most urgent caller.
                self.queue.reprioritize(coalesced_onto, entry.priority)
                return Ticket(entry=entry)
            admitted, displaced, expired = self.queue.push(entry, now=now)
            for stale in expired:
                self._finish_expired(stale)
            if displaced is not None:
                self._finish_shed(
                    displaced,
                    "displaced by higher-priority request",
                    reason_key="displaced",
                )
            if not admitted:
                reason, reason_key = self._overload_reason(entry.tenant)
                self._finish_shed(entry, reason, reason_key=reason_key)
                return Ticket(entry=entry)
            self._bump("accepted")
            self._bump_tenant(entry.tenant, "accepted")
            if t.enabled:
                t.counter("serving.accepted", 1, scheme=spec.name)
                t.counter("serving.tenant.accepted", 1,
                          tenant=entry.tenant)
                t.gauge("serving.queue_depth", len(self.queue))
            return Ticket(entry=entry)

    def _submit_session(self, request: SpMVRequest, now: float,
                        trace, owns_root: bool, t) -> Ticket:
        """Admit one session work item.

        Session work rides the same admission queue (priority, deadline,
        displacement) as one-shot requests — that is the cross-session
        fairness mechanism — but never coalesces (each iteration slice
        is unique work) and only batches with work of its own session,
        which preserves per-session in-order execution.
        """
        work = request.work
        entry = _Entry(
            request, next(self._seq), _SESSION_SPEC, None,
            group=("session", work.session_id),
            work_fp=fingerprint(
                "session-work", work.session_id, str(request.request_id)
            ),
            now=now, trace=trace, owns_root=owns_root,
        )
        admitted, displaced, expired = self.queue.push(entry, now=now)
        for stale in expired:
            self._finish_expired(stale)
        if displaced is not None:
            self._finish_shed(
                displaced,
                "displaced by higher-priority request",
                reason_key="displaced",
            )
        if not admitted:
            reason, reason_key = self._overload_reason(entry.tenant)
            self._finish_shed(entry, reason, reason_key=reason_key)
            return Ticket(entry=entry)
        self._bump("accepted")
        self._bump_tenant(entry.tenant, "accepted")
        if t.enabled:
            t.counter("serving.accepted", 1, scheme="session")
            t.counter("serving.tenant.accepted", 1, tenant=entry.tenant)
            t.gauge("serving.queue_depth", len(self.queue))
        return Ticket(entry=entry)

    def _overload_reason(self, tenant: str) -> Tuple[str, str]:
        """Why an un-admitted push was shed (quota vs global overload)."""
        quota = self.queue.tenant_quota()
        if (quota < self.queue.capacity
                and self.queue.tenant_depth(tenant) >= quota):
            return (
                f"tenant {tenant!r} over quota "
                f"({quota} of {self.queue.capacity} slots)",
                "tenant_quota",
            )
        return f"queue full (capacity {self.queue.capacity})", "queue_full"

    def submit_wait(self, request: SpMVRequest,
                    timeout: Optional[float] = None) -> SpMVResponse:
        """Submit and block for the response (the in-process client path)."""
        return self.submit(request).result(timeout)

    # -- worker engine ---------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        t = telemetry.get()
        while True:
            entry, expired = self.queue.pop(timeout=_POLL_S)
            for stale in expired:
                self._finish_expired(stale)
            if entry is None:
                if self._state in ("draining", "stopping") and not len(
                    self.queue
                ):
                    return
                continue
            with tracing.scope(entry.trace), t.span(
                "serving.dispatch", worker=index
            ):
                now = time.monotonic()
                if entry.expired_at(now):
                    self._finish_expired(entry)
                    continue
                # Batch only within the leader's tenant: micro-batching
                # amortises dispatch, it must not let one tenant's
                # backlog ride along on another tenant's fair-share turn.
                batch = [entry] + self.queue.pop_group(
                    lambda other: (other.group == entry.group
                                   and other.tenant == entry.tenant),
                    self.max_batch - 1,
                )
                if t.enabled:
                    t.gauge("serving.queue_depth", len(self.queue))
                    t.gauge("serving.batch_size", len(batch),
                            scheme=entry.spec.name)
            # Each batch member executes under its *own* trace so the
            # pipeline spans nest into the right request tree; members
            # beyond the first link back to the batch leader's tree.
            for item in batch:
                with tracing.scope(item.trace):
                    if t.enabled and len(batch) > 1 and item is not entry \
                            and item.trace is not None:
                        t.event(
                            "trace.link",
                            kind="batch",
                            peer_trace_id=(
                                entry.trace.trace_id if entry.trace else ""
                            ),
                            scheme=entry.spec.name,
                        )
                    if item.expired_at(time.monotonic()):
                        self._finish_expired(item)
                    else:
                        with t.span(
                            "serving.execute",
                            scheme=entry.spec.name,
                            batch=len(batch),
                            worker=index,
                        ):
                            self._execute(item)

    def _tier_for(self, scheme: str) -> str:
        """The fidelity tier this scheme executes at right now."""
        if self.fidelity == "exact":
            return "exact"
        with self._lock:
            if scheme in self._demoted:
                return "exact"
        return self.fidelity

    def _execute(self, entry: _Entry) -> None:
        if entry.request.work is not None:
            self._execute_session(entry)
            return
        t = telemetry.get()
        started = time.monotonic()
        queue_s = max(started - entry.submitted_at, 0.0)
        result = None
        try:
            result = self.runner.analyze(
                entry.request.source, entry.spec, entry.config,
                fidelity=self._tier_for(entry.spec.name),
                calibration=self.calibration,
            )
            service_s = max(time.monotonic() - started, 0.0)
            response = SpMVResponse(
                request_id=entry.request.request_id,
                status=STATUS_OK,
                report=result.report,
                cache_status="fresh",
                queue_s=queue_s,
                service_s=service_s,
                fidelity=result.fidelity,
            )
            self._bump("completed")
            if t.enabled:
                t.counter("serving.completed", 1, scheme=entry.spec.name)
        except ReproError as error:
            service_s = max(time.monotonic() - started, 0.0)
            response = SpMVResponse(
                request_id=entry.request.request_id,
                status=STATUS_ERROR,
                detail=str(error),
                queue_s=queue_s,
                service_s=service_s,
            )
            self._bump("errors")
            if t.enabled:
                t.counter("serving.errors", 1, phase="execute")
        self._fulfill(entry, response, exec_started=started)
        # The audit runs *after* fulfilment so the sampled exact re-run
        # never delays the response the caller is waiting on.
        if result is not None and result.fidelity == "estimate":
            if should_audit(entry.work_fp, self.audit_rate):
                self._audit(entry, result)

    def _execute_session(self, entry: _Entry) -> None:
        """Run one session work item against the resident-state store."""
        t = telemetry.get()
        started = time.monotonic()
        queue_s = max(started - entry.submitted_at, 0.0)
        work = entry.request.work
        try:
            payload = work.execute(self.runner, self.resident)
            response = SpMVResponse(
                request_id=entry.request.request_id,
                status=STATUS_OK,
                cache_status="resident",
                queue_s=queue_s,
                service_s=max(time.monotonic() - started, 0.0),
                payload=payload,
            )
            self._bump("completed")
            if t.enabled:
                t.counter("serving.completed", 1, scheme="session")
        except ReproError as error:
            response = SpMVResponse(
                request_id=entry.request.request_id,
                status=STATUS_ERROR,
                detail=str(error),
                queue_s=queue_s,
                service_s=max(time.monotonic() - started, 0.0),
            )
            self._bump("errors")
            if t.enabled:
                t.counter("serving.errors", 1, phase="session")
        self._fulfill(entry, response, exec_started=started)

    def _audit(self, entry: _Entry, estimate) -> None:
        """Differential gate: re-run one estimate-tier response through
        the exact simulator, record the relative total-cycle error, and
        demote the scheme to ``exact`` when the calibrated bound is
        exceeded."""
        t = telemetry.get()
        scheme = entry.spec.name
        with t.span("serving.audit", scheme=scheme):
            try:
                exact = self.runner.analyze(
                    entry.request.source, entry.spec, entry.config,
                    fidelity="exact",
                )
            except ReproError as error:
                self._bump("errors")
                if t.enabled:
                    t.counter("serving.errors", 1, phase="audit")
                return
        estimated_total = estimate.report.total_cycles
        exact_total = exact.report.total_cycles
        rel_error = abs(estimated_total - exact_total) / max(exact_total, 1)
        tolerance = estimate.estimate_artifact.tolerance
        violated = rel_error > tolerance
        with self._lock:
            stats = self.audit_stats
            stats["sampled"] += 1
            stats["_error_sum"] += rel_error
            stats["max_rel_error"] = max(stats["max_rel_error"], rel_error)
            stats["mean_rel_error"] = stats["_error_sum"] / stats["sampled"]
            if violated:
                stats["violations"] += 1
                self._demoted.add(scheme)
        if t.enabled:
            t.counter("serving.audit.sampled", 1, scheme=scheme)
            t.gauge("serving.audit.rel_error", rel_error, scheme=scheme)
            if violated:
                t.counter("serving.audit.violations", 1, scheme=scheme)
        if violated:
            telemetry.warn_once(
                f"audit_demoted_{scheme}",
                f"estimate-tier audit for scheme {scheme!r} measured "
                f"relative cycle error {rel_error:.4f} above the "
                f"calibrated tolerance {tolerance:.4f}; scheme demoted "
                f"to the exact tier for this engine",
            )

    # -- fulfillment -----------------------------------------------------

    def _claim(self, entry: _Entry) -> List[_Entry]:
        """Mark the leader done and detach its followers, atomically
        against new followers attaching in :meth:`submit`."""
        with self._lock:
            entry.done = True
            if self._inflight.get(entry.work_fp) is entry:
                del self._inflight[entry.work_fp]
            followers, entry.followers = entry.followers, []
            return followers

    def _resolve(self, entry: _Entry, response: SpMVResponse,
                 record_latency: bool = False) -> SpMVResponse:
        if entry.trace is not None and not response.trace_id:
            response = dataclasses.replace(
                response, trace_id=entry.trace.trace_id
            )
        entry.response = response
        if record_latency and response.ok:
            self.latencies.record(response.total_s)
            self._tenant_latency(entry.tenant).record(response.total_s)
        slo_class = entry.request.effective_slo_class()
        self.slo.record(slo_class, response.total_s * 1e3, response.ok)
        self._bump_tenant(entry.tenant, _TENANT_OUTCOME[response.status])
        t = telemetry.get()
        if t.enabled:
            t.histogram("serving.latency_ms", response.total_s * 1e3,
                        slo_class=slo_class)
            t.counter(
                f"serving.tenant.{_TENANT_OUTCOME[response.status]}",
                1, tenant=entry.tenant,
            )
            if response.ok:
                t.histogram("serving.tenant.latency_ms",
                            response.total_s * 1e3, tenant=entry.tenant)
            if response.queue_s:
                t.histogram("serving.queue_ms", response.queue_s * 1e3)
            # The root of the request's causal tree: emitted exactly once
            # per trace, by the layer that created it.
            if entry.owns_root and entry.trace is not None:
                t.emit_span(
                    "serving.request",
                    entry.trace,
                    max(time.monotonic() - entry.submitted_at, 0.0),
                    status=response.status,
                    scheme=entry.request.scheme,
                    request_id=entry.request.request_id,
                    slo_class=slo_class,
                    coalesced=response.coalesced,
                )
        entry.event.set()
        return response

    def _fulfill(self, entry: _Entry, response: SpMVResponse,
                 exec_started: Optional[float] = None) -> None:
        followers = self._claim(entry)
        self._resolve(entry, response, record_latency=True)
        t = telemetry.get()
        for follower in followers:
            if t.enabled and response.ok:
                t.counter("serving.coalesced_served", 1,
                          scheme=entry.spec.name)
            share_point = (
                exec_started if exec_started is not None
                else follower.submitted_at
            )
            self._resolve(follower, SpMVResponse(
                request_id=follower.request.request_id,
                status=response.status,
                report=response.report,
                detail=response.detail,
                coalesced=True,
                cache_status=(
                    "coalesced" if response.ok else response.cache_status
                ),
                queue_s=max(share_point - follower.submitted_at, 0.0),
                service_s=response.service_s,
                fidelity=response.fidelity,
            ), record_latency=True)

    def _finish_expired(self, entry: _Entry) -> None:
        self._bump("expired")
        t = telemetry.get()
        if t.enabled:
            t.counter("serving.expired", 1, scheme=entry.spec.name)
        followers = self._claim(entry)
        waited = max(time.monotonic() - entry.submitted_at, 0.0)
        for item in [entry] + followers:
            self._resolve(item, SpMVResponse(
                request_id=item.request.request_id,
                status=STATUS_EXPIRED,
                detail=(
                    f"deadline of {entry.request.deadline_ms:g} ms "
                    f"passed after {waited * 1e3:.1f} ms in queue"
                ),
                coalesced=item is not entry,
                queue_s=waited,
            ))

    def _finish_shed(self, entry: _Entry, reason: str,
                     reason_key: str = "shutdown") -> None:
        self._bump("shed")
        t = telemetry.get()
        if t.enabled:
            t.counter("serving.shed", 1, reason=reason_key)
        followers = self._claim(entry)
        for item in [entry] + followers:
            self._resolve(item, SpMVResponse(
                request_id=item.request.request_id,
                status=STATUS_REJECTED,
                detail=reason,
                coalesced=item is not entry,
                queue_s=max(time.monotonic() - item.submitted_at, 0.0),
            ))

    def _reject_ticket(
        self, request: SpMVRequest, reason: str,
        trace: Optional[TraceContext] = None, owns_root: bool = False,
    ) -> Ticket:
        self._bump("shed")
        tenant = normalize_tenant(request.tenant)
        self._bump_tenant(tenant, "shed")
        t = telemetry.get()
        if t.enabled:
            t.counter("serving.shed", 1, reason="draining")
            t.counter("serving.tenant.shed", 1, tenant=tenant)
            if owns_root and trace is not None:
                t.emit_span("serving.request", trace, 0.0,
                            status=STATUS_REJECTED,
                            request_id=request.request_id)
        return Ticket(response=SpMVResponse(
            request_id=request.request_id,
            status=STATUS_REJECTED,
            detail=reason,
            trace_id=trace.trace_id if trace else "",
        ))

    # -- accounting ------------------------------------------------------

    def _bump(self, key: str) -> None:
        with self._lock:
            self.stats[key] += 1

    def _bump_tenant(self, tenant: str, key: str) -> None:
        with self._lock:
            stats = self.tenant_stats.get(tenant)
            if stats is None:
                stats = self.tenant_stats[tenant] = {
                    "accepted": 0, "coalesced": 0, "shed": 0,
                    "expired": 0, "completed": 0, "errors": 0,
                }
            stats[key] += 1

    def _tenant_latency(self, tenant: str) -> LatencyRecorder:
        with self._lock:
            recorder = self.tenant_latencies.get(tenant)
            if recorder is None:
                recorder = self.tenant_latencies[tenant] = LatencyRecorder()
            return recorder

    def tenant_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant outcome counters plus served-latency percentiles.

        Also folds in the fair queue's dispatch/shed ledgers — the view
        the bench gates and ``repro serve`` summaries read.
        """
        with self._lock:
            tenants = {
                tenant: dict(stats)
                for tenant, stats in self.tenant_stats.items()
            }
            recorders = dict(self.tenant_latencies)
        dispatched = self.queue.served_counts()
        for tenant, summary in tenants.items():
            summary["dispatched"] = dispatched.get(tenant, 0)
            recorder = recorders.get(tenant)
            summary["latency"] = (
                recorder.summary() if recorder is not None
                else latency_percentiles([])
            )
        return tenants

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/p99/mean/max of served request latency (ms)."""
        return self.latencies.summary()

    def slo_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-class error-budget burn (see
        :meth:`repro.serving.slo.BurnRateMonitor.burn_rates`)."""
        return self.slo.burn_rates()

    def demoted_schemes(self) -> Tuple[str, ...]:
        """Schemes the audit gate has demoted to the exact tier."""
        with self._lock:
            return tuple(sorted(self._demoted))

    def audit_summary(self) -> Dict[str, Any]:
        """Sampled-audit bookkeeping: counts, error stats, demotions."""
        with self._lock:
            return {
                "fidelity": self.fidelity,
                "audit_rate": self.audit_rate,
                "sampled": self.audit_stats["sampled"],
                "violations": self.audit_stats["violations"],
                "max_rel_error": self.audit_stats["max_rel_error"],
                "mean_rel_error": self.audit_stats["mean_rel_error"],
                "demoted": sorted(self._demoted),
            }

    def _emit_slo_gauges(self) -> None:
        t = telemetry.get()
        if not t.enabled:
            return
        summary = self.latency_summary()
        for key, value in summary.items():
            t.gauge(f"serving.latency.{key}", value)
        for slo_class, burn in self.slo_summary().items():
            if not (burn["good"] or burn["bad"]):
                continue
            for key, value in burn.items():
                if key.startswith("burn_"):
                    t.gauge("serving.slo.burn_rate", value,
                            slo_class=slo_class,
                            window_s=float(key[5:-1]))
                else:
                    t.gauge(f"serving.slo.{key}", value,
                            slo_class=slo_class)
        for key, value in self.stats.items():
            if value:
                t.counter(f"serving.final.{key}", value)
        for tenant, stats in sorted(self.tenant_stats.items()):
            for key, value in stats.items():
                if value:
                    t.counter(f"serving.tenant.final.{key}", value,
                              tenant=tenant)
        for tenant, recorder in sorted(self.tenant_latencies.items()):
            summary = recorder.summary()
            if summary["count"]:
                t.gauge("serving.tenant.p99_ms", summary["p99_ms"],
                        tenant=tenant)
        resident = self.resident.snapshot()
        if resident["hits"] or resident["misses"]:
            t.counter("serving.resident.final.hits", resident["hits"])
            t.counter("serving.resident.final.misses",
                      resident["misses"])
            if resident["evictions"]:
                t.counter("serving.resident.final.evictions",
                          resident["evictions"])
        audit = self.audit_summary()
        if audit["sampled"]:
            t.counter("serving.audit.final.sampled", audit["sampled"])
            t.gauge("serving.audit.max_rel_error", audit["max_rel_error"])
            t.gauge("serving.audit.mean_rel_error", audit["mean_rel_error"])
            if audit["violations"]:
                t.counter(
                    "serving.audit.final.violations", audit["violations"]
                )
            t.gauge("serving.audit.demoted_schemes", len(audit["demoted"]))
