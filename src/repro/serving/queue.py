"""The bounded admission queue of the serving engine.

Ordering and shedding are both *explicit policy*, stated here once:

* **ordering** — strict priority, ties broken by submission order
  (FIFO within a priority level);
* **expiry** — entries whose deadline has already passed are purged
  lazily (on push, when the queue needs room, and on pop) and answered
  ``expired`` rather than executed;
* **shedding** — a push to a full queue first purges expired entries;
  if the queue is still full, the *lowest-priority* entry loses: the
  incoming request is rejected unless it outranks the lowest queued
  entry, in which case that entry is displaced and rejected instead.
  Either way the loser gets a structured ``Rejected`` response — the
  queue never raises on overload and never blocks the submitter.

The queue is item-agnostic: it orders anything carrying ``priority``,
``seq`` and ``expired_at(now)`` (the engine's internal entries).
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

#: Default capacity (overridden by ``REPRO_SERVE_QUEUE`` via the engine).
DEFAULT_CAPACITY = 256


class AdmissionQueue:
    """A bounded, priority-ordered queue with deadline purging."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            capacity = 1
        self.capacity = capacity
        #: Sorted ascending by ``(-priority, seq)`` — index 0 dispatches
        #: next, the tail is the first to shed.
        self._items: List[Tuple[Tuple[int, int], Any]] = []
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @staticmethod
    def _key(entry: Any) -> Tuple[int, int]:
        return (-entry.priority, entry.seq)

    def _purge_expired(self, now: float) -> List[Any]:
        expired = [e for _k, e in self._items if e.expired_at(now)]
        if expired:
            self._items = [
                (k, e) for k, e in self._items if not e.expired_at(now)
            ]
        return expired

    def push(
        self, entry: Any, now: Optional[float] = None
    ) -> Tuple[bool, Optional[Any], List[Any]]:
        """Admit ``entry`` under the shedding policy.

        Returns ``(admitted, displaced, expired)``: whether ``entry``
        was admitted, the lower-priority entry it displaced (if any),
        and the expired entries purged while making room.  The caller
        owns responding to displaced/expired entries.
        """
        if now is None:
            now = time.monotonic()
        with self._cond:
            expired = (
                self._purge_expired(now)
                if len(self._items) >= self.capacity
                else []
            )
            displaced = None
            if len(self._items) >= self.capacity:
                tail_key, tail_entry = self._items[-1]
                if self._key(entry) < tail_key:
                    self._items.pop()
                    displaced = tail_entry
                else:
                    return False, None, expired
            bisect.insort(self._items, (self._key(entry), entry))
            self._cond.notify()
            return True, displaced, expired

    def reprioritize(self, entry: Any, priority: int) -> bool:
        """Raise a queued entry's priority (coalescing bumps leaders).

        Returns ``False`` when the entry is no longer queued (already
        dispatched) — the caller's follower simply waits for the
        in-flight execution.
        """
        with self._cond:
            if priority <= entry.priority:
                return True
            old = (self._key(entry), entry)
            index = bisect.bisect_left(self._items, old)
            if index >= len(self._items) or self._items[index][1] is not entry:
                return False
            self._items.pop(index)
            entry.priority = priority
            bisect.insort(self._items, (self._key(entry), entry))
            return True

    def pop(
        self, timeout: Optional[float] = None
    ) -> Tuple[Optional[Any], List[Any]]:
        """The highest-priority entry, blocking up to ``timeout``.

        Returns ``(entry, expired)``; ``entry`` is ``None`` on timeout.
        Expired entries encountered at the head are purged and returned
        for the caller to answer, never dispatched.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                expired = self._purge_expired(now) if self._items else []
                if self._items:
                    _key, entry = self._items.pop(0)
                    return entry, expired
                if expired:
                    return None, expired
                remaining = None if deadline is None else deadline - now
                if remaining is not None and remaining <= 0:
                    return None, []
                if not self._cond.wait(remaining):
                    return None, []

    def pop_group(
        self, matches: Callable[[Any], bool], limit: int
    ) -> List[Any]:
        """Up to ``limit`` more queued entries satisfying ``matches``.

        Used by the micro-batcher: after popping a leader, the worker
        collects compatible (same scheme/config group) entries in
        priority order to execute as one batch.
        """
        if limit <= 0:
            return []
        taken: List[Any] = []
        with self._cond:
            kept: List[Tuple[Tuple[int, int], Any]] = []
            for key, entry in self._items:
                if len(taken) < limit and matches(entry):
                    taken.append(entry)
                else:
                    kept.append((key, entry))
            self._items = kept
        return taken

    def drain(self) -> List[Any]:
        """Remove and return every queued entry (non-graceful shutdown)."""
        with self._cond:
            items = [entry for _key, entry in self._items]
            self._items = []
            self._cond.notify_all()
            return items

    def wake_all(self) -> None:
        """Wake blocked poppers (used when the engine starts draining)."""
        with self._cond:
            self._cond.notify_all()
