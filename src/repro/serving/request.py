"""Typed requests and responses of the SpMV serving layer.

A :class:`SpMVRequest` names the work — a matrix source, a registered
scheme, optional config overrides — plus the service parameters the
engine schedules by: **priority** (higher runs first) and an optional
relative **deadline**.  A :class:`SpMVResponse` always comes back, for
every submitted request, with a structured ``status``:

========== ==========================================================
status     meaning
========== ==========================================================
ok         executed (or coalesced onto an identical in-flight
           execution); ``report`` is the :class:`SpMVReport`
rejected   shed by admission control (queue full, displaced by a
           higher-priority request, or the engine was draining);
           never executed
expired    dequeued after its deadline had already passed; never
           executed
error      execution failed with a library error; ``detail`` carries
           the message
========== ==========================================================

Rejection and expiry are *responses*, not exceptions — under overload
the serving layer degrades by answering quickly, not by raising.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..config import AcceleratorConfig
from ..errors import ConfigError
from ..pipeline.artifacts import SpMVReport
from ..pipeline.fingerprint import fingerprint, fingerprint_config
from ..pipeline.stages import LoadStage
from ..scheduling.registry import SchedulerSpec, get_scheme
from ..telemetry.tracing import TraceContext
from ..tenancy import DEFAULT_TENANT, normalize_tenant
from .slo import DEFAULT_SLOS, classify_request

#: Process-wide request id source (monotonic, thread-safe by the GIL).
_REQUEST_IDS = itertools.count(1)

#: Response statuses, in the order of the table above.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_EXPIRED = "expired"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class SpMVRequest:
    """One unit of serving work.

    ``source`` is anything :meth:`repro.pipeline.runner.PipelineRunner.load`
    accepts: a named-matrix string, a ``MatrixSpec``/``CorpusSpec``, or
    an in-memory matrix.  ``config`` overrides the scheme's default
    configuration wholesale; ``config_overrides`` patches individual
    fields of it (applied with :func:`dataclasses.replace`).
    """

    source: Any
    scheme: str = "crhcs"
    config: Optional[AcceleratorConfig] = None
    #: Field-level patches applied to the effective config.
    config_overrides: Optional[Dict[str, Any]] = None
    #: Higher priorities dispatch first; ties run in submission order.
    priority: int = 0
    #: Relative deadline in milliseconds from submission; ``None`` waits
    #: forever.  A request dequeued past its deadline answers ``expired``.
    deadline_ms: Optional[float] = None
    #: SLO class (``interactive``/``batch``); ``None`` classifies by
    #: priority and deadline (see :func:`repro.serving.slo.classify_request`).
    slo_class: Optional[str] = None
    #: Tenant this request is scheduled and accounted under.  Requests
    #: that never mention a tenant share :data:`~repro.tenancy.tenant
    #: .DEFAULT_TENANT` — the single-tenant path, where the fair queue
    #: degenerates to the original global policy.  Like priority and
    #: deadline, the tenant affects *when* work runs, never *what* it
    #: computes, so it stays out of the work fingerprint (identical work
    #: from different tenants still coalesces and caches together).
    tenant: str = DEFAULT_TENANT
    #: Trace context of this request's causal tree.  ``None`` until the
    #: first tracing-aware layer (cluster or engine) attaches one; the
    #: explicit field is what carries the trace across thread boundaries.
    trace: Optional[TraceContext] = None
    #: Session work item, or ``None`` for a plain one-shot SpMV.  When
    #: set, the engine dispatches through the item's
    #: ``execute(runner, resident)`` instead of the analyze flow — the
    #: duck-typed contract is: attributes ``session_id`` (str) and
    #: ``kind`` (str), and ``execute`` returning a JSON-ish payload
    #: dict.  Priority/deadline/SLO class on *this* request still govern
    #: admission — a session inherits them onto every iteration.
    work: Optional[Any] = None
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))

    def effective_slo_class(self) -> str:
        """The SLO class this request is accounted under."""
        if self.slo_class and self.slo_class in DEFAULT_SLOS:
            return self.slo_class
        return classify_request(self.priority, self.deadline_ms)

    def resolve_config(self, spec: SchedulerSpec) -> AcceleratorConfig:
        """The effective configuration for this request under ``spec``."""
        config = self.config if self.config is not None else spec.default_config
        if self.config_overrides:
            try:
                config = dataclasses.replace(config, **self.config_overrides)
            except TypeError as error:
                raise ConfigError(
                    f"invalid config override for scheme "
                    f"{spec.name!r}: {error}"
                ) from error
        return config

    def work_fingerprint(self) -> str:
        """Content fingerprint of the *work* (not the service params).

        Two requests with equal work fingerprints produce byte-identical
        reports, which is the coalescing rule: priority and deadline
        affect *when* work runs, never *what* it computes, so they stay
        out of the digest.  Matches the fingerprint chain the pipeline
        itself uses, so a coalesced hit is exactly a whole-flow cache
        hit.
        """
        spec = get_scheme(self.scheme)
        config = self.resolve_config(spec)
        _kind, _label, source_digest = LoadStage.describe(self.source)
        return fingerprint(
            "serve",
            source_digest,
            spec.name,
            spec.version,
            fingerprint_config(config),
        )


@dataclass(frozen=True)
class SpMVResponse:
    """The structured answer to one :class:`SpMVRequest`."""

    request_id: int
    status: str
    report: Optional[SpMVReport] = None
    #: Human-readable reason for non-``ok`` statuses.
    detail: str = ""
    #: ``True`` when this response shared another request's execution.
    coalesced: bool = False
    #: ``fresh`` (executed), ``coalesced`` (shared an in-flight
    #: execution), or ``none`` (no report produced).
    cache_status: str = "none"
    #: Seconds spent queued before dispatch.
    queue_s: float = 0.0
    #: Seconds spent executing (0 for shed/expired requests).
    service_s: float = 0.0
    #: Which tier produced the report: ``exact`` (cycle simulator),
    #: ``estimate`` (calibrated analytical model), or ``""`` when no
    #: report was produced.
    fidelity: str = ""
    #: The request's trace id (``""`` for untraced requests) — the key
    #: into the exported causal tree for this request.
    trace_id: str = ""
    #: Session-work result payload (iteration counts, residuals, and for
    #: fetches the solution itself); ``None`` for one-shot responses.
    payload: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def total_s(self) -> float:
        return self.queue_s + self.service_s

    def to_json(self) -> str:
        """One compact JSON object (the ``repro serve`` output line)."""
        payload: Dict[str, Any] = {
            "request_id": self.request_id,
            "status": self.status,
            "coalesced": self.coalesced,
            "cache_status": self.cache_status,
            "queue_ms": round(self.queue_s * 1e3, 3),
            "service_ms": round(self.service_s * 1e3, 3),
        }
        if self.detail:
            payload["detail"] = self.detail
        if self.fidelity:
            payload["fidelity"] = self.fidelity
        if self.trace_id:
            payload["trace_id"] = self.trace_id
        if self.report is not None:
            payload["report"] = dataclasses.asdict(self.report)
        if self.payload is not None:
            payload["payload"] = {
                key: (value.tolist() if hasattr(value, "tolist")
                      else value)
                for key, value in self.payload.items()
            }
        return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def request_from_json(line: str) -> SpMVRequest:
    """Parse one ``repro serve`` JSONL request line.

    Recognised keys: ``matrix`` (a named-matrix string, required),
    ``scheme``, ``priority``, ``deadline_ms``, ``slo_class``,
    ``tenant``, ``config`` (a dict of field overrides).  Unknown keys
    raise :class:`ConfigError` so a typo (``priorty``) cannot silently
    lose its intent.  A line without ``tenant`` belongs to the default
    tenant — existing request files behave exactly as before.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ConfigError(f"request line is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ConfigError("request line must be a JSON object")
    known = {"matrix", "scheme", "priority", "deadline_ms", "slo_class",
             "tenant", "config"}
    unknown = set(payload) - known
    if unknown:
        raise ConfigError(
            f"unknown request fields {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )
    if "matrix" not in payload:
        raise ConfigError("request line needs a 'matrix' field")
    overrides = payload.get("config")
    if overrides is not None and not isinstance(overrides, dict):
        raise ConfigError("'config' must be an object of field overrides")
    slo_class = payload.get("slo_class")
    if slo_class is not None and slo_class not in DEFAULT_SLOS:
        raise ConfigError(
            f"unknown slo_class {slo_class!r}; "
            f"known: {sorted(DEFAULT_SLOS)}"
        )
    tenant = payload.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        raise ConfigError("'tenant' must be a string")
    return SpMVRequest(
        source=payload["matrix"],
        scheme=payload.get("scheme", "crhcs"),
        config_overrides=overrides,
        priority=int(payload.get("priority", 0)),
        deadline_ms=(
            float(payload["deadline_ms"])
            if payload.get("deadline_ms") is not None
            else None
        ),
        slo_class=slo_class,
        tenant=normalize_tenant(tenant),
    )
