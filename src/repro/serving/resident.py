"""The device-resident session-state store.

One per :class:`~repro.serving.engine.ServingEngine` (one per simulated
device): it pins each open session's prepared schedule handle and
iterate vector between iterations, so a session ``step()`` touches
neither the load stage nor the schedule stage — GraphLily's
matrix-resident model, one level up.

The store is a byte-budgeted LRU (``REPRO_SESSION_STATE_BUDGET``).
Eviction is safe by construction: resident state is a pure
deterministic function of (matrix, scheme, config, solver params,
iterations completed), so an evicted — or crashed-away — session is
re-materialized by replaying its completed iterations, byte-identical
to an uninterrupted run.  The store therefore behaves as a cache, never
as the system of record.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from .. import telemetry

STATE_BUDGET_ENV = "REPRO_SESSION_STATE_BUDGET"

#: 64 MiB of iterate vectors ≈ tens of thousands of small sessions.
DEFAULT_STATE_BUDGET = 64 * 1024 * 1024


def session_state_budget() -> int:
    """Configured resident-state byte budget
    (``REPRO_SESSION_STATE_BUDGET``), warn-once fallback on garbage."""
    raw = os.environ.get(STATE_BUDGET_ENV, "").strip()
    if not raw:
        return DEFAULT_STATE_BUDGET
    try:
        value = int(raw)
    except ValueError:
        telemetry.warn_once(
            "invalid_session_state_budget",
            f"{STATE_BUDGET_ENV}={raw!r} is not an integer; "
            f"falling back to the default ({DEFAULT_STATE_BUDGET})",
        )
        return DEFAULT_STATE_BUDGET
    return max(value, 0)


class ResidentStateStore:
    """Byte-budgeted LRU of opaque per-session resident state.

    Values are opaque to the serving layer (the session subsystem stores
    its ``(prepared schedule, solver state)`` bundles here); sizes are
    declared by the caller at :meth:`put` time.  The most recently used
    entry is never evicted by its own insertion, so one oversized
    session still makes progress — the budget bounds *cross*-session
    residency.
    """

    def __init__(self, budget_bytes: Optional[int] = None):
        self.budget_bytes = (
            budget_bytes if budget_bytes is not None
            else session_state_budget()
        )
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "evictions": 0, "discards": 0,
        }

    def get(self, key: str) -> Optional[Any]:
        """The resident value for ``key`` (bumps its LRU recency)."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats["misses"] += 1
                return None
            self._entries.move_to_end(key)
            self.stats["hits"] += 1
            return value

    def put(self, key: str, value: Any, nbytes: int) -> None:
        """Insert or refresh ``key``; evicts LRU peers past the budget."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._sizes[key] = max(int(nbytes), 0)
            while (len(self._entries) > 1
                   and self._total_locked() > self.budget_bytes):
                victim, _value = self._entries.popitem(last=False)
                del self._sizes[victim]
                self.stats["evictions"] += 1
                evicted += 1
            total = self._total_locked()
        t = telemetry.get()
        if t.enabled:
            t.gauge("serving.resident.bytes", total)
            t.gauge("serving.resident.sessions", len(self))
            if evicted:
                t.counter("serving.resident.evictions", evicted)

    def discard(self, key: str) -> None:
        """Drop ``key`` (session close / failover re-route)."""
        with self._lock:
            if self._entries.pop(key, None) is not None:
                del self._sizes[key]
                self.stats["discards"] += 1

    def _total_locked(self) -> int:
        return sum(self._sizes.values())

    @property
    def bytes(self) -> int:
        with self._lock:
            return self._total_locked()

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[str, int]:
        """Stats plus current occupancy, for status surfaces."""
        with self._lock:
            return dict(
                self.stats, sessions=len(self._entries),
                bytes=self._total_locked(),
            )
