"""Latency SLO accounting: percentiles, SLO classes, and burn rates.

The serving layer's service-level objectives are expressed three ways:

* **percentiles** — p50/p95/p99 of request total latency.  The
  percentile definition is
  :func:`repro.telemetry.summarize.percentile` (linear interpolation,
  numpy's default method), shared with the trace summariser so an
  engine's ``latency_summary()`` and a trace's "latency percentiles"
  section can never disagree on the math.
* **SLO classes** — named policies (:data:`DEFAULT_SLOS`): an
  *interactive* request promises a tight latency threshold with a small
  error budget; a *batch* request promises a loose one with a larger
  budget.  A request picks its class explicitly
  (``SpMVRequest.slo_class``) or defaults by priority.
* **burn rates** — per class, the fraction of requests violating the
  promise in a rolling window, divided by the error budget
  (:class:`BurnRateMonitor`).  Burn 1.0 means the budget is being spent
  exactly as fast as it accrues; the standard multi-window alerting
  reading is "page when both the fast and slow windows burn hot".

The recorder keeps both the exact sample list (the audit-grade view)
and a log-bucketed :class:`~repro.telemetry.hist.Histogram` (the
mergeable, bounded-memory view) — the tests pin that the two agree to
within one bucket width.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..telemetry.hist import Histogram
from ..telemetry.summarize import percentile

#: The percentiles every SLO summary reports.
SLO_PERCENTILES = (50.0, 95.0, 99.0)

#: Rolling burn-rate windows (seconds): a fast window that reacts to
#: incidents and a slow window that tracks sustained budget spend.
BURN_WINDOWS_S: Tuple[float, ...] = (60.0, 3600.0)


@dataclass(frozen=True)
class SLOPolicy:
    """One SLO class: a latency promise and the tolerated failure rate."""

    #: Class name (``interactive`` / ``batch``).
    name: str
    #: A request is *good* iff it succeeds within this many milliseconds.
    latency_ms: float
    #: Tolerated bad fraction (0.01 = 99% of requests must be good).
    error_budget: float


#: The built-in SLO classes.  Interactive traffic (priority > 0 or an
#: explicit deadline) promises sub-50 ms at a 1% budget; batch traffic
#: tolerates a second at 5%.
DEFAULT_SLOS: Dict[str, SLOPolicy] = {
    "interactive": SLOPolicy("interactive", latency_ms=50.0,
                             error_budget=0.01),
    "batch": SLOPolicy("batch", latency_ms=1000.0, error_budget=0.05),
}


def classify_request(priority: int, deadline_ms: Optional[float]) -> str:
    """Default SLO class for a request that did not state one.

    Deadline-carrying or elevated-priority requests are treated as
    interactive; everything else is batch.
    """
    if deadline_ms is not None or priority > 0:
        return "interactive"
    return "batch"


class BurnRateMonitor:
    """Rolling multi-window error-budget burn per SLO class.

    Each resolution is recorded as good or bad against its class's
    policy: a request is *bad* when it failed (shed/expired/error) or
    exceeded the promised latency.  :meth:`burn_rates` reports, per
    class and window, ``bad_fraction / error_budget`` over the events
    inside the window — the standard burn-rate reading where 1.0 means
    spending the budget exactly as fast as it accrues.

    Events are kept in bounded per-class deques and pruned lazily; the
    monitor is thread-safe (resolutions arrive from worker threads).
    """

    def __init__(
        self,
        policies: Optional[Dict[str, SLOPolicy]] = None,
        windows_s: Sequence[float] = BURN_WINDOWS_S,
        max_events: int = 100_000,
        clock: Any = time.monotonic,
    ) -> None:
        self.policies = dict(policies or DEFAULT_SLOS)
        self.windows_s = tuple(windows_s)
        self._clock = clock
        self._lock = threading.Lock()
        # per class: deque of (timestamp, is_bad)
        self._events: Dict[str, Deque[Tuple[float, bool]]] = {
            name: deque(maxlen=max_events) for name in self.policies
        }
        self._good: Dict[str, int] = {name: 0 for name in self.policies}
        self._bad: Dict[str, int] = {name: 0 for name in self.policies}

    def policy_for(self, slo_class: str) -> SLOPolicy:
        return self.policies.get(slo_class) or self.policies["batch"]

    def record(self, slo_class: str, latency_ms: float, ok: bool) -> bool:
        """Record one resolution; returns whether it was *good*."""
        policy = self.policy_for(slo_class)
        good = ok and latency_ms <= policy.latency_ms
        now = self._clock()
        with self._lock:
            events = self._events.setdefault(
                policy.name, deque(maxlen=100_000)
            )
            events.append((now, not good))
            if good:
                self._good[policy.name] = self._good.get(policy.name, 0) + 1
            else:
                self._bad[policy.name] = self._bad.get(policy.name, 0) + 1
        return good

    def burn_rates(self) -> Dict[str, Dict[str, float]]:
        """Per-class burn per window plus lifetime good/bad totals.

        Shape: ``{class: {"good": n, "bad": n, "error_budget": b,
        "burn_<window>s": rate, ...}}``.  A window with no events burns
        0.0 (no traffic spends no budget).
        """
        now = self._clock()
        with self._lock:
            snapshot = {
                name: list(events) for name, events in self._events.items()
            }
            good = dict(self._good)
            bad = dict(self._bad)
        out: Dict[str, Dict[str, float]] = {}
        for name, events in snapshot.items():
            policy = self.policy_for(name)
            entry: Dict[str, float] = {
                "good": float(good.get(name, 0)),
                "bad": float(bad.get(name, 0)),
                "error_budget": policy.error_budget,
            }
            for window in self.windows_s:
                cutoff = now - window
                total = bad_count = 0
                for ts, is_bad in reversed(events):
                    if ts < cutoff:
                        break
                    total += 1
                    bad_count += is_bad
                fraction = (bad_count / total) if total else 0.0
                entry[f"burn_{window:g}s"] = round(
                    fraction / policy.error_budget, 6
                ) if policy.error_budget else 0.0
            out[name] = entry
        return out


def latency_percentiles(values_ms: Sequence[float]) -> Dict[str, float]:
    """The standard SLO summary over a set of latency samples (ms).

    Always well-formed: with no samples every key is still present
    (zeroed), so consumers can read ``summary["p99_ms"]`` without
    guarding — an idle engine has a summary, not a shape change.
    """
    if not values_ms:
        empty: Dict[str, float] = {
            "count": 0, "mean_ms": 0.0, "max_ms": 0.0,
        }
        for q in SLO_PERCENTILES:
            empty[f"p{q:g}_ms"] = 0.0
        return empty
    summary: Dict[str, float] = {
        "count": len(values_ms),
        "mean_ms": round(sum(values_ms) / len(values_ms), 6),
        "max_ms": round(max(values_ms), 6),
    }
    for q in SLO_PERCENTILES:
        summary[f"p{q:g}_ms"] = round(percentile(values_ms, q), 6)
    return summary


class LatencyRecorder:
    """Thread-safe accumulator of per-request latencies (milliseconds).

    Keeps the exact sample list (audit-grade percentiles via
    :meth:`summary`) alongside a log-bucketed histogram
    (:meth:`histogram_summary`, :meth:`histogram_snapshot`) — the
    bounded, mergeable form the telemetry and burn-rate layers consume.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples_ms: List[float] = []
        self._hist = Histogram()

    def record(self, latency_s: float) -> None:
        latency_ms = latency_s * 1e3
        with self._lock:
            self._samples_ms.append(latency_ms)
        self._hist.record(latency_ms)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples_ms)

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99/mean/max over every recorded sample (exact)."""
        with self._lock:
            samples = list(self._samples_ms)
        return latency_percentiles(samples)

    def histogram_summary(self) -> Dict[str, float]:
        """The same shape as :meth:`summary`, from the histogram.

        Within one bucket width (~19 %) of the exact percentiles by
        construction — pinned by the tests.
        """
        hist = self._hist.summary()
        out = {
            "count": hist["count"],
            "mean_ms": round(hist["mean"], 6),
            "max_ms": round(hist["max"], 6),
        }
        for q in SLO_PERCENTILES:
            out[f"p{q:g}_ms"] = round(
                self._hist.quantile(q) if hist["count"] else 0.0, 6
            )
        return out

    def histogram_snapshot(self) -> Dict[str, Any]:
        """The mergeable snapshot of the latency distribution."""
        return self._hist.snapshot()
