"""Latency SLO accounting: percentile math and the per-engine recorder.

The serving layer's service-level objectives are expressed as latency
percentiles (p50/p95/p99 of request total latency).  The percentile
definition is :func:`repro.telemetry.summarize.percentile` (linear
interpolation, numpy's default method), shared with the trace
summariser so an engine's ``latency_summary()`` and a trace's "latency
percentiles" section can never disagree on the math.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence

from ..telemetry.summarize import percentile

#: The percentiles every SLO summary reports.
SLO_PERCENTILES = (50.0, 95.0, 99.0)


def latency_percentiles(values_ms: Sequence[float]) -> Dict[str, float]:
    """The standard SLO summary over a set of latency samples (ms).

    Always well-formed: with no samples every key is still present
    (zeroed), so consumers can read ``summary["p99_ms"]`` without
    guarding — an idle engine has a summary, not a shape change.
    """
    if not values_ms:
        empty: Dict[str, float] = {
            "count": 0, "mean_ms": 0.0, "max_ms": 0.0,
        }
        for q in SLO_PERCENTILES:
            empty[f"p{q:g}_ms"] = 0.0
        return empty
    summary: Dict[str, float] = {
        "count": len(values_ms),
        "mean_ms": round(sum(values_ms) / len(values_ms), 6),
        "max_ms": round(max(values_ms), 6),
    }
    for q in SLO_PERCENTILES:
        summary[f"p{q:g}_ms"] = round(percentile(values_ms, q), 6)
    return summary


class LatencyRecorder:
    """Thread-safe accumulator of per-request latencies (milliseconds)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._samples_ms: List[float] = []

    def record(self, latency_s: float) -> None:
        with self._lock:
            self._samples_ms.append(latency_s * 1e3)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples_ms)

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99/mean/max over every recorded sample."""
        with self._lock:
            samples = list(self._samples_ms)
        return latency_percentiles(samples)
