"""Iterative-solver sessions with device-resident state.

The serving and cluster layers treat every SpMV as a one-shot request:
load, schedule, execute, answer.  Iterative solvers break that model —
power iteration, CG and Jacobi run the *same* (matrix, scheme, config)
work hundreds of times with only the iterate vector changing, so a
one-shot-per-iteration client pays the load + schedule + fingerprint
round trip on every step.

A :class:`SolverSession` fixes the amortization: the client opens a
session against a matrix, the cluster routes it **once** (same
consistent-hash affinity as one-shot traffic), the device builds — or
cache-hits — the schedule **once**, and the iterate stays
device-resident in the engine's
:class:`~repro.serving.resident.ResidentStateStore`.  Each ``step``
re-executes only the simulate/estimate stage.  Sessions inherit
priority/deadline/SLO class onto every iteration, interleave fairly
with one-shot traffic on the shared admission queue, and survive device
loss by deterministic re-materialization — replaying the completed
iterations on the new device reproduces the lost state byte for byte.

See ``docs/sessions.md`` for the lifecycle, the failover story and the
``REPRO_SESSION_*`` knobs.
"""

from .manager import SessionManager
from .programs import (
    SolverProgram,
    get_program,
    register_program,
    solver_programs,
)
from .session import SolverSession
from .spec import (
    DEFAULT_ITER_BATCH,
    DEFAULT_SESSION_MAX,
    ITER_BATCH_ENV,
    SESSION_MAX_ENV,
    SessionSpec,
    session_iter_batch,
    session_max,
)
from .work import FetchWork, ResidentEntry, StepWork

__all__ = [
    "DEFAULT_ITER_BATCH",
    "DEFAULT_SESSION_MAX",
    "FetchWork",
    "ITER_BATCH_ENV",
    "ResidentEntry",
    "SESSION_MAX_ENV",
    "SessionManager",
    "SessionSpec",
    "SolverProgram",
    "SolverSession",
    "StepWork",
    "get_program",
    "register_program",
    "session_iter_batch",
    "session_max",
    "solver_programs",
]
