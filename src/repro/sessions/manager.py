"""The session manager: admission, routing, retry and failover.

:class:`SessionManager` fronts either a single
:class:`~repro.serving.engine.ServingEngine` or a whole
:class:`~repro.cluster.cluster.Cluster`:

* ``open`` admits a session (bounded by ``REPRO_SESSION_MAX``), starts
  its trace, and — in cluster mode — *leases* a device once via the
  router's consistent-hash affinity.  Every subsequent iteration of the
  session goes straight to the leased device; the per-request routing
  work is paid exactly once per session.
* ``submit`` drives one work item through the leased device's admission
  queue and blocks for the acknowledgement.  A device fault or a shed
  answer triggers the same failover policy as one-shot cluster traffic:
  charge the device's health ledger, re-lease among the survivors, and
  resubmit — the work item re-materializes the session state on the new
  device deterministically, so the retried iteration picks up exactly
  where the crashed device stopped.
* ``close`` releases the device-resident state and emits the session's
  ``session.request`` root span, the single root that parents every
  per-step and per-iteration span of the session's tree.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional

from .. import telemetry
from ..cluster.faults import FAULT_DETAIL_PREFIX
from ..config import AcceleratorConfig
from ..errors import ConfigError, SessionError
from ..serving.request import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    SpMVRequest,
    SpMVResponse,
)
from ..telemetry import tracing
from ..tenancy import normalize_tenant
from .programs import get_program
from .session import SolverSession
from .spec import SessionSpec, session_max

#: Engine-mode retry budget for shed work (cluster mode uses the
#: cluster's own ``max_attempts``).
_ENGINE_ATTEMPTS = 3

#: Process-wide session id source (also the trace-sampling draw key).
_SESSION_IDS = itertools.count(1)


def _retryable(response: SpMVResponse) -> bool:
    """Same policy as the one-shot cluster router: shed work and
    injected device faults retry; real library errors do not."""
    if response.status == STATUS_REJECTED:
        return True
    return (
        response.status == STATUS_ERROR
        and response.detail.startswith(FAULT_DETAIL_PREFIX)
    )


class SessionManager:
    """Opens, drives and closes solver sessions over an engine/cluster."""

    def __init__(
        self,
        engine: Any = None,
        cluster: Any = None,
        max_sessions: Optional[int] = None,
        timeout: float = 60.0,
    ):
        if (engine is None) == (cluster is None):
            raise ConfigError(
                "SessionManager needs exactly one of engine= or cluster="
            )
        self.engine = engine
        self.cluster = cluster
        self.max_sessions = (
            max_sessions if max_sessions is not None else session_max()
        )
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sessions: Dict[str, SolverSession] = {}
        self.stats: Dict[str, int] = {
            "opened": 0,
            "closed": 0,
            "steps": 0,
            "iterations": 0,
            "failovers": 0,
            "rematerializations": 0,
        }

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close_all()

    def open(
        self,
        source: Any,
        solver: str = "power_iteration",
        scheme: str = "crhcs",
        config: Optional[AcceleratorConfig] = None,
        config_overrides: Optional[Dict[str, Any]] = None,
        tolerance: float = 1e-8,
        max_iterations: int = 200,
        params: Optional[Dict[str, Any]] = None,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
        slo_class: Optional[str] = None,
        tenant: Optional[str] = None,
        spec: Optional[SessionSpec] = None,
    ) -> SolverSession:
        """Admit one session; raises :class:`SessionError` at capacity.

        An explicit ``spec`` wins over the keyword form.  Opening is
        cheap and device-side lazy — the load + schedule work happens on
        the session's first step (and is a schedule-cache hit when the
        leased device already serves that matrix).
        """
        if spec is None:
            spec = SessionSpec(
                source=source,
                solver=solver,
                scheme=scheme,
                config=config,
                config_overrides=config_overrides,
                tolerance=tolerance,
                max_iterations=max_iterations,
                params=dict(params or {}),
                priority=priority,
                deadline_ms=deadline_ms,
                slo_class=slo_class,
                tenant=normalize_tenant(tenant),
            )
        get_program(spec.solver)  # fail fast on unknown solvers
        number = next(_SESSION_IDS)
        session = SolverSession(
            manager=self,
            session_id=f"s{number:06d}",
            spec=spec,
            trace=tracing.maybe_start_trace(number),
        )
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise SessionError(
                    f"session limit reached "
                    f"({self.max_sessions} concurrent sessions)"
                )
            self._sessions[session.session_id] = session
            active = len(self._sessions)
            self.stats["opened"] += 1
        if self.cluster is not None:
            session.device = self._lease(spec, tried=())
        session.opened_at = time.monotonic()
        t = telemetry.get()
        if t.enabled:
            t.counter("sessions.opened", 1, solver=spec.solver)
            t.gauge("sessions.active", active)
        return session

    def close(self, session: SolverSession) -> None:
        """Release a session's device-resident state (idempotent)."""
        if session.status == "closed":
            return
        outcome = session.status  # "open" (abandoned) or "finished"
        session.status = "closed"
        with self._lock:
            self._sessions.pop(session.session_id, None)
            active = len(self._sessions)
            self.stats["closed"] += 1
        resident = None
        if self.engine is not None:
            resident = self.engine.resident
        elif session.device is not None:
            resident = session.device.engine.resident
        if resident is not None:
            resident.discard(session.session_id)
        t = telemetry.get()
        if t.enabled:
            t.counter("sessions.closed", 1)
            t.gauge("sessions.active", active)
            if session.trace is not None:
                t.emit_span(
                    "session.request",
                    session.trace,
                    max(time.monotonic() - session.opened_at, 0.0),
                    session=session.session_id,
                    solver=session.spec.solver,
                    scheme=session.spec.scheme,
                    status=outcome,
                    iterations=session.completed,
                    converged=session.converged,
                    failovers=session.failovers,
                    rematerializations=session.rematerializations,
                )

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            self.close(session)

    @property
    def active(self) -> int:
        with self._lock:
            return len(self._sessions)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            stats = dict(self.stats)
            stats["active"] = len(self._sessions)
        return stats

    # -- the submit/retry/failover loop ----------------------------------

    def _lease(self, spec: SessionSpec, tried) -> Any:
        device = self.cluster.lease(spec.work_fingerprint(), tried)
        if device is None and tried:
            # Every device tried once this submit: revisit survivors.
            device = self.cluster.lease(spec.work_fingerprint(), ())
        if device is None:
            raise SessionError("no alive device to lease")
        return device

    def submit(self, session: SolverSession, work: Any,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Drive one work item to an acknowledged payload.

        Raises :class:`SessionError` when the session is closed, when
        retries are exhausted, or when the work fails with a real
        (non-fault) library error.
        """
        if session.status == "closed":
            raise SessionError(
                f"session {session.session_id} is closed"
            )
        timeout = timeout if timeout is not None else self.timeout
        spec = session.spec
        max_attempts = (
            self.cluster.max_attempts if self.cluster is not None
            else _ENGINE_ATTEMPTS
        )
        t = telemetry.get()
        tried: List[str] = []
        last_detail = ""
        with tracing.scope(session.trace):
            for attempt in range(1, max_attempts + 1):
                if attempt > 1:
                    time.sleep(min(0.005 * (2 ** (attempt - 2)), 0.05))
                with t.span(
                    f"session.{work.kind}",
                    session=session.session_id,
                    attempt=attempt,
                ):
                    request = SpMVRequest(
                        source=spec.source,
                        scheme=spec.scheme,
                        priority=spec.priority,
                        deadline_ms=spec.deadline_ms,
                        slo_class=spec.slo_class,
                        tenant=spec.tenant,
                        trace=tracing.current(),
                        work=work,
                    )
                    target = (
                        session.device if self.cluster is not None
                        else self.engine
                    )
                    started = time.monotonic()
                    response = target.submit(request).result(timeout)
                    elapsed = max(time.monotonic() - started, 0.0)
                if response.status == STATUS_OK:
                    if self.cluster is not None:
                        self.cluster.report_success(
                            target.device_id, elapsed
                        )
                    payload = response.payload or {}
                    with self._lock:
                        self.stats["steps"] += 1
                        self.stats["iterations"] += int(
                            payload.get("iterations", 0)
                        )
                        if payload.get("rematerialized"):
                            self.stats["rematerializations"] += 1
                    if t.enabled:
                        t.counter("sessions.iterations",
                                  int(payload.get("iterations", 0)))
                    return payload
                last_detail = response.detail or response.status
                if not _retryable(response):
                    raise SessionError(
                        f"session {session.session_id} {work.kind} "
                        f"failed: {last_detail}"
                    )
                if self.cluster is not None:
                    # Fault or shed: charge the device, fail the session
                    # over to the next healthy replica.
                    device_id = target.device_id
                    fault = response.detail.startswith(
                        FAULT_DETAIL_PREFIX
                    )
                    if fault:
                        self.cluster.report_failure(
                            device_id,
                            crashed="crash" in response.detail,
                        )
                    tried.append(device_id)
                    session.device = self._lease(spec, tuple(tried))
                    session.failovers += 1
                    with self._lock:
                        self.stats["failovers"] += 1
                    if t.enabled:
                        t.counter("sessions.failover", 1,
                                  from_device=device_id)
        raise SessionError(
            f"session {session.session_id} {work.kind} failed after "
            f"{max_attempts} attempt(s): {last_detail}"
        )
