"""Solver programs: how each registered solver opens and steps a session.

A *program* adapts one offline solver to the session lifecycle:

* :meth:`~SolverProgram.open` builds the device-resident half of the
  session — a :class:`~repro.pipeline.runner.PreparedSpMV` (the
  load + schedule stages run once, here) plus the solver's initial
  iterate state from :mod:`repro.solvers.steps`.
* :meth:`~SolverProgram.step` advances the state by exactly one
  iteration, calling the *same* step function the offline loop calls.

Because ``open`` is a pure function of the :class:`SessionSpec` (seeded
randomness, deterministic scheduling) and ``step`` is the shared math,
re-running ``open`` + ``step``×k on any device reproduces the state a
crashed device held after k iterations, byte for byte.  That is the
whole failover story.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigError, ShapeError
from ..formats.convert import to_coo
from ..pipeline.runner import PipelineRunner, PreparedSpMV
from ..solvers.steps import (
    cg_init,
    cg_step,
    jacobi_init,
    jacobi_split,
    jacobi_step,
    power_init,
    power_step,
)
from .spec import SessionSpec

#: ``vector -> SpMVExecution`` — a prepared handle's ``execute``.
SpMVFn = Callable[[np.ndarray], Any]


def _vector(params: Dict[str, Any], key: str) -> Optional[np.ndarray]:
    value = params.get(key)
    if value is None:
        return None
    return np.asarray(value, dtype=np.float64)


class SolverProgram:
    """One solver's session adapter.  Subclasses define ``open``/``step``."""

    name = ""

    def open(self, runner: PipelineRunner,
             spec: SessionSpec) -> Tuple[PreparedSpMV, Any]:
        raise NotImplementedError

    def step(self, spmv: SpMVFn, state: Any, iteration: int) -> None:
        raise NotImplementedError


class PowerIterationProgram(SolverProgram):
    name = "power_iteration"

    def open(self, runner, spec):
        loaded = runner.load(spec.source)
        matrix = loaded.matrix
        if matrix.n_rows != matrix.n_cols:
            raise ShapeError("power iteration needs a square matrix")
        prepared = runner.prepare(
            loaded, spec.scheme, spec.resolve_config()
        )
        state = power_init(
            matrix.n_cols,
            seed=int(spec.params.get("seed", 0)),
            x0=_vector(spec.params, "x0"),
        )
        return prepared, state

    def step(self, spmv, state, iteration):
        power_step(spmv, state, iteration)


class CGProgram(SolverProgram):
    name = "cg"

    def open(self, runner, spec):
        loaded = runner.load(spec.source)
        matrix = loaded.matrix
        if matrix.n_rows != matrix.n_cols:
            raise ShapeError("CG needs a square (SPD) system")
        b = _vector(spec.params, "b")
        if b is None:
            raise ConfigError(
                "cg sessions need params={'b': <right-hand side>}"
            )
        if b.shape != (matrix.n_rows,):
            raise ShapeError(
                f"b of shape {b.shape} incompatible with {matrix.shape}"
            )
        prepared = runner.prepare(
            loaded, spec.scheme, spec.resolve_config()
        )
        state = cg_init(prepared.execute, b,
                        x0=_vector(spec.params, "x0"))
        return prepared, state

    def step(self, spmv, state, iteration):
        cg_step(spmv, state, iteration)


class JacobiProgram(SolverProgram):
    name = "jacobi"

    def open(self, runner, spec):
        loaded = runner.load(spec.source)
        coo = to_coo(loaded.matrix)
        if coo.n_rows != coo.n_cols:
            raise ShapeError("Jacobi needs a square system")
        b = _vector(spec.params, "b")
        if b is None:
            raise ConfigError(
                "jacobi sessions need params={'b': <right-hand side>}"
            )
        if b.shape != (coo.n_rows,):
            raise ShapeError(
                f"b of shape {b.shape} incompatible with {coo.shape}"
            )
        diagonal, remainder = jacobi_split(coo)
        # The device-resident schedule streams the off-diagonal
        # remainder, exactly like the offline loop.
        prepared = runner.prepare(
            remainder, spec.scheme, spec.resolve_config()
        )
        state = jacobi_init(
            coo, b,
            omega=float(spec.params.get("omega", 1.0)),
            diagonal=diagonal,
            x0=_vector(spec.params, "x0"),
        )
        return prepared, state

    def step(self, spmv, state, iteration):
        jacobi_step(spmv, state, iteration)


_PROGRAMS: Dict[str, SolverProgram] = {}


def register_program(program: SolverProgram,
                     *aliases: str) -> SolverProgram:
    for name in (program.name, *aliases):
        _PROGRAMS[name] = program
    return program


register_program(PowerIterationProgram(), "power")
register_program(CGProgram(), "conjugate_gradient")
register_program(JacobiProgram())


def solver_programs() -> Tuple[str, ...]:
    """The registered canonical program names."""
    return tuple(sorted({p.name for p in _PROGRAMS.values()}))


def get_program(name: str) -> SolverProgram:
    try:
        return _PROGRAMS[name]
    except KeyError:
        known = ", ".join(sorted(_PROGRAMS))
        raise ConfigError(
            f"unknown solver program {name!r} (known: {known})"
        ) from None
