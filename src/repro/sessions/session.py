"""The client-side session handle.

A :class:`SolverSession` is what ``SessionManager.open`` hands back: a
small bookkeeping object that knows how many iterations the device has
acknowledged and submits :class:`~repro.sessions.work.StepWork` /
:class:`~repro.sessions.work.FetchWork` items through its manager.  The
iterate itself never lives here — it stays device-resident; the handle
only ever sees the per-step summary payloads and, on :meth:`result`,
the final solution vector.

Handles are context managers; closing releases the device-resident
state and emits the session's ``session.request`` root span.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..errors import SessionError
from ..solvers.result import SolverResult
from ..telemetry.tracing import TraceContext
from .spec import SessionSpec, session_iter_batch
from .work import FetchWork, StepWork


class SolverSession:
    """One open iterative solve with device-resident state."""

    def __init__(self, manager: Any, session_id: str, spec: SessionSpec,
                 trace: Optional[TraceContext] = None):
        self.manager = manager
        self.session_id = session_id
        self.spec = spec
        self.trace = trace
        #: The leased device handle (cluster mode; ``None`` over a bare
        #: engine).  The manager re-points this on failover.
        self.device: Any = None
        self.status = "open"
        #: Iterations the device has acknowledged completing.
        self.completed = 0
        self.residual = float("inf")
        self.converged = False
        self.accelerator_seconds = 0.0
        self.failovers = 0
        self.rematerializations = 0
        self.steps = 0
        self.opened_at = 0.0
        self._finished = False
        self._result: Optional[SolverResult] = None

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "SolverSession":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def close(self) -> None:
        """Release the device-resident state (idempotent)."""
        self.manager.close(self)

    @property
    def finished(self) -> bool:
        """Converged, halted, or out of iterations."""
        return self._finished

    # -- iteration -------------------------------------------------------

    def step(self, iterations: Optional[int] = None,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Advance up to ``iterations`` (default: the batch knob).

        Blocks for the device's acknowledgement; returns the step
        payload (iterations made, new residual, finished flag).  The
        one-in-flight-at-a-time discipline here is what keeps a
        session's iterations in order while thousands of sessions
        interleave on the shared admission queue.
        """
        if self.status == "closed":
            raise SessionError(
                f"session {self.session_id} is closed"
            )
        batch = int(iterations) if iterations else session_iter_batch()
        if batch < 1:
            raise SessionError("iterations must be >= 1")
        work = StepWork(self.session_id, self.spec, self.completed, batch)
        payload = self.manager.submit(self, work, timeout=timeout)
        self.steps += 1
        self.completed = int(payload["completed"])
        self.residual = float(payload["residual"])
        self.converged = bool(payload["converged"])
        self.accelerator_seconds = float(payload["accelerator_seconds"])
        if payload.get("rematerialized"):
            self.rematerializations += 1
        if payload["finished"] or not payload["iterations"]:
            self._finished = True
            if self.status == "open":
                self.status = "finished"
        return payload

    def run(self, timeout: Optional[float] = None) -> SolverResult:
        """Iterate to convergence (or the iteration cap) and fetch.

        Byte-identical to the offline solver loop for the same spec:
        the device executes the same step math against the same
        schedule, in the same order.
        """
        while not self._finished:
            self.step(timeout=timeout)
        return self.result(timeout=timeout)

    def result(self, timeout: Optional[float] = None) -> SolverResult:
        """Fetch the current solution as a :class:`SolverResult`."""
        if self.status == "closed" and self._result is not None:
            return self._result
        work = FetchWork(self.session_id, self.spec, self.completed)
        payload = self.manager.submit(self, work, timeout=timeout)
        if payload.get("rematerialized"):
            self.rematerializations += 1
        result = SolverResult(
            solution=np.asarray(payload["solution"]),
            iterations=int(payload["completed"]),
            converged=bool(payload["converged"]),
            residual=float(payload["residual"]),
            accelerator_seconds=float(payload["accelerator_seconds"]),
            history=list(payload["history"]),
        )
        self._result = result
        return result
