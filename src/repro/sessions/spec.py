"""Session specifications and the ``REPRO_SESSION_*`` knobs.

A :class:`SessionSpec` is everything that determines a session's result:
the matrix source, the solver, the scheme + config, and the solver
parameters.  Because a session's resident state is a pure function of
its spec and the number of completed iterations, the spec is also the
re-materialization recipe after a device crash or an eviction — replay
the completed iterations on the new device and the state is
byte-identical to an uninterrupted run.

Service parameters (priority, deadline, SLO class) ride on the spec too
and are inherited by every iteration the session submits.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .. import telemetry
from ..config import AcceleratorConfig
from ..errors import ConfigError
from ..pipeline.fingerprint import fingerprint, fingerprint_config
from ..pipeline.stages import LoadStage
from ..scheduling.registry import get_scheme
from ..tenancy import DEFAULT_TENANT

SESSION_MAX_ENV = "REPRO_SESSION_MAX"
ITER_BATCH_ENV = "REPRO_SESSION_ITER_BATCH"

DEFAULT_SESSION_MAX = 4096
DEFAULT_ITER_BATCH = 8


def _int_env(env: str, default: int, warn_key: str, minimum: int) -> int:
    """Integer knob with the warn-once fallback convention."""
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        telemetry.warn_once(
            warn_key,
            f"{env}={raw!r} is not an integer; "
            f"falling back to the default ({default})",
        )
        return default
    return max(value, minimum)


def session_max() -> int:
    """Configured concurrent-session limit (``REPRO_SESSION_MAX``)."""
    return _int_env(SESSION_MAX_ENV, DEFAULT_SESSION_MAX,
                    "invalid_session_max", 1)


def session_iter_batch() -> int:
    """Configured iterations per admitted work item
    (``REPRO_SESSION_ITER_BATCH``)."""
    return _int_env(ITER_BATCH_ENV, DEFAULT_ITER_BATCH,
                    "invalid_session_iter_batch", 1)


@dataclass(frozen=True)
class SessionSpec:
    """Everything that determines one solver session's result."""

    source: Any
    #: A registered solver program: ``power_iteration``, ``cg`` or
    #: ``jacobi`` (see :mod:`repro.sessions.programs`).
    solver: str = "power_iteration"
    scheme: str = "crhcs"
    config: Optional[AcceleratorConfig] = None
    config_overrides: Optional[Dict[str, Any]] = None
    tolerance: float = 1e-8
    max_iterations: int = 200
    #: Solver parameters: ``seed``/``x0`` (power), ``b``/``x0`` (cg),
    #: ``b``/``omega``/``x0`` (jacobi).
    params: Dict[str, Any] = field(default_factory=dict)
    #: Service parameters, inherited by every iteration's request.
    priority: int = 0
    deadline_ms: Optional[float] = None
    slo_class: Optional[str] = None
    #: Tenant the session belongs to — inherited by every iteration's
    #: request, so a session is scheduled under its owner's fair share
    #: exactly like the owner's one-shot traffic.
    tenant: str = DEFAULT_TENANT

    def resolve_config(self) -> AcceleratorConfig:
        """The effective accelerator config for this session."""
        spec = get_scheme(self.scheme)
        config = self.config if self.config is not None \
            else spec.default_config
        if self.config_overrides:
            try:
                config = dataclasses.replace(
                    config, **self.config_overrides
                )
            except TypeError as error:
                raise ConfigError(
                    f"invalid config override for scheme "
                    f"{spec.name!r}: {error}"
                ) from error
        return config

    def work_fingerprint(self) -> str:
        """Routing fingerprint — the *same* digest chain as a one-shot
        :meth:`~repro.serving.request.SpMVRequest.work_fingerprint` for
        this (matrix, scheme, config), so a session lands on the device
        whose caches the one-shot traffic for the same matrix already
        warmed."""
        spec = get_scheme(self.scheme)
        config = self.resolve_config()
        _kind, _label, source_digest = LoadStage.describe(self.source)
        return fingerprint(
            "serve",
            source_digest,
            spec.name,
            spec.version,
            fingerprint_config(config),
        )
