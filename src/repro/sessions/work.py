"""The session work items a device executes, and their resident state.

A session never ships its iterate over the wire after opening: the
engine keeps a :class:`ResidentEntry` — the prepared schedule handle
plus the solver state — in its
:class:`~repro.serving.resident.ResidentStateStore`, and the client
submits small :class:`StepWork` / :class:`FetchWork` items that operate
on it in place.

Both work items *re-materialize* on a resident miss: if the entry is
gone (new device after a failover, or evicted under the state budget)
or its iteration count disagrees with the client's, the item re-opens
the program from the spec and replays the completed iterations.  The
replay is byte-identical to the lost state — ``open`` is deterministic
and the step math is shared — so a crash mid-run is invisible in the
final result.

Resume safety: injected device faults raise inside the SpMV *before*
any state mutation in a step, so a resident entry always holds an
exactly-``completed``-iterations state; a retried work item either
resumes it directly or replays from scratch, never from a torn state.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Tuple

import numpy as np

from .. import telemetry
from ..formats.coo import COOMatrix
from ..pipeline.runner import PipelineRunner, PreparedSpMV
from ..serving.resident import ResidentStateStore
from .programs import get_program
from .spec import SessionSpec

#: Fixed per-entry accounting overhead (schedule handle, dataclass
#: scaffolding) charged against the resident-state budget.
_ENTRY_OVERHEAD = 1024


class ResidentEntry:
    """One session's device-resident half: schedule handle + iterate."""

    __slots__ = ("prepared", "state", "completed")

    def __init__(self, prepared: PreparedSpMV, state: Any,
                 completed: int = 0):
        self.prepared = prepared
        self.state = state
        self.completed = completed


def _state_nbytes(state: Any) -> int:
    """Approximate footprint of a solver state for the budget."""
    total = _ENTRY_OVERHEAD
    for field in dataclasses.fields(state):
        value = getattr(state, field.name)
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, COOMatrix):
            total += (value.rows.nbytes + value.cols.nbytes
                      + value.values.nbytes)
        elif isinstance(value, list):
            total += 8 * len(value)
    return total


def _materialize(runner: PipelineRunner, spec: SessionSpec,
                 session_id: str, completed: int) -> ResidentEntry:
    """Re-open the program and replay ``completed`` iterations.

    Pure function of (spec, completed): the replayed state is byte-
    identical to the state an uninterrupted device would hold.
    """
    program = get_program(spec.solver)
    t = telemetry.get()
    name = "session.rematerialize" if completed else "session.open"
    with t.span(
        name,
        session=session_id,
        solver=spec.solver,
        replay=completed,
    ):
        prepared, state = program.open(runner, spec)
        for iteration in range(1, completed + 1):
            program.step(prepared.execute, state, iteration)
    if completed and t.enabled:
        t.counter("sessions.rematerialized", 1)
    return ResidentEntry(prepared, state, completed)


def _resident(
    runner: PipelineRunner,
    resident: ResidentStateStore,
    spec: SessionSpec,
    session_id: str,
    completed: int,
) -> Tuple[ResidentEntry, bool]:
    """The session's entry, re-materialized on miss or divergence."""
    entry = resident.get(session_id)
    if entry is not None and entry.completed == completed:
        # Re-point the resident handle at the engine's *current* runner:
        # a fault injector (or a crash) may have wrapped it since the
        # schedule was prepared, and injected faults must reach the
        # per-iteration path of already-resident sessions too.
        entry.prepared.runner = runner
        return entry, False
    if entry is not None:
        resident.discard(session_id)
    entry = _materialize(runner, spec, session_id, completed)
    # The very first materialization is the session *opening*, not a
    # recovery — only replays count as re-materializations.
    return entry, completed > 0


class StepWork:
    """Advance a session by up to ``iterations`` solver iterations."""

    kind = "step"

    __slots__ = ("session_id", "spec", "completed", "iterations")

    def __init__(self, session_id: str, spec: SessionSpec,
                 completed: int, iterations: int):
        self.session_id = session_id
        self.spec = spec
        self.completed = completed
        self.iterations = iterations

    def execute(self, runner: PipelineRunner,
                resident: ResidentStateStore) -> Dict[str, Any]:
        spec = self.spec
        entry, rematerialized = _resident(
            runner, resident, spec, self.session_id, self.completed
        )
        program = get_program(spec.solver)
        state = entry.state
        made = 0
        while (
            made < self.iterations
            and entry.completed < spec.max_iterations
            and not state.finished(spec.tolerance)
        ):
            program.step(entry.prepared.execute, state,
                         entry.completed + 1)
            entry.completed += 1
            made += 1
        resident.put(self.session_id, entry,
                     _state_nbytes(state))
        finished = (
            state.finished(spec.tolerance)
            or entry.completed >= spec.max_iterations
        )
        return {
            "session": self.session_id,
            "kind": self.kind,
            "iterations": made,
            "completed": entry.completed,
            "residual": float(state.residual),
            "finished": finished,
            "converged": state.converged(spec.tolerance),
            "accelerator_seconds": state.accelerator_seconds,
            "rematerialized": rematerialized,
        }


class FetchWork:
    """Pull a session's current solution off the device."""

    kind = "fetch"

    __slots__ = ("session_id", "spec", "completed")

    def __init__(self, session_id: str, spec: SessionSpec,
                 completed: int):
        self.session_id = session_id
        self.spec = spec
        self.completed = completed

    def execute(self, runner: PipelineRunner,
                resident: ResidentStateStore) -> Dict[str, Any]:
        spec = self.spec
        entry, rematerialized = _resident(
            runner, resident, spec, self.session_id, self.completed
        )
        resident.put(self.session_id, entry,
                     _state_nbytes(entry.state))
        state = entry.state
        return {
            "session": self.session_id,
            "kind": self.kind,
            "completed": entry.completed,
            "solution": state.x.copy(),
            "history": list(state.history),
            "residual": float(state.residual),
            "converged": state.converged(spec.tolerance),
            "accelerator_seconds": state.accelerator_seconds,
            "rematerialized": rematerialized,
        }
