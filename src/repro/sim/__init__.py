"""Cycle-level model of the Chasoň / Serpens datapath (§4)."""

from .fifo import FifoStream
from .memory import BramXBuffer, ScugBankGroup, UramBank
from .pe import ProcessingElement
from .peg import ProcessingElementGroup
from .reduction import ReductionUnit
from .rearrange import RearrangeUnit
from .trace import PETimeline, ScheduleTrace, trace_grid, trace_schedule
from .engine import (
    CycleBreakdown,
    SpMVExecution,
    estimate_cycles,
    execute_schedule,
)

__all__ = [
    "FifoStream",
    "BramXBuffer",
    "ScugBankGroup",
    "UramBank",
    "ProcessingElement",
    "ProcessingElementGroup",
    "ReductionUnit",
    "RearrangeUnit",
    "CycleBreakdown",
    "SpMVExecution",
    "estimate_cycles",
    "execute_schedule",
    "PETimeline",
    "ScheduleTrace",
    "trace_grid",
    "trace_schedule",
]
