"""End-to-end execution of a schedule on the modelled datapath.

The engine plays a :class:`~repro.scheduling.base.TiledSchedule` through
PEGs, Reduction Units and the Rearrange Unit, producing both the output
vector y (functional correctness, verified against a float64 reference —
the §5.1 end-to-end check) and a cycle breakdown (the latency model):

======================  ====================================================
component               cycles
======================  ====================================================
x window load           ``ceil(window_cols / 16)`` per tile — one 512-bit
                        beat carries 16 FP32 x values
streaming               the tile's equalised data-list length (channels
                        stream in lockstep, one word per cycle at II=1)
pipeline drain          multiplier + accumulator latency per tile
Reduction-Unit sweep    ``rows_per_pe + tree levels + accumulator latency``
                        per row window (Chasoň only; §6.2.2 explains how
                        deeper URAMs grow this term for tall windows)
output merge            ``ceil(window_rows / 16)`` per row window — the
                        merged ``stream_Ax`` carries 16 FP32 per cycle
======================  ====================================================

Streaming dominates for every matrix in the evaluation; the fixed terms
keep small matrices honest and reproduce the paper's C5-vs-MY observation
that reduction latency can offset transfer savings (§6.2.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..config import AcceleratorConfig
from ..errors import ShapeError, SimulationError
from ..scheduling.base import TiledSchedule
from .. import telemetry
from .peg import ProcessingElementGroup
from .rearrange import RearrangeUnit
from .reduction import ReductionUnit

#: FP32 lanes of one 512-bit beat (x loading and y output).
DENSE_LANES = 16

#: Cycle-model revision (pipeline cache fingerprint component): bump when
#: the accounting in this module changes so cached CycleResults cannot be
#: served across model revisions.
ENGINE_VERSION = "1"


@dataclass
class CycleBreakdown:
    """Cycle counts of one SpMV iteration."""

    stream: int = 0
    x_load: int = 0
    drain: int = 0
    reduction: int = 0
    output: int = 0
    #: Fixed per-invocation cost (instruction fetch, kernel start, flush).
    overhead: int = 0

    @property
    def total(self) -> int:
        return (
            self.stream + self.x_load + self.drain + self.reduction
            + self.output + self.overhead
        )

    def merge(self, other: "CycleBreakdown") -> None:
        self.stream += other.stream
        self.x_load += other.x_load
        self.drain += other.drain
        self.reduction += other.reduction
        self.output += other.output
        self.overhead += other.overhead


@dataclass
class SpMVExecution:
    """Result of executing one schedule."""

    y: np.ndarray
    cycles: CycleBreakdown
    config: AcceleratorConfig
    scheme: str
    nnz: int
    total_macs: int = 0
    shared_macs: int = 0
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def latency_seconds(self) -> float:
        return self.cycles.total / self.config.frequency_hz

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1e3

    def verify(self, reference: np.ndarray, rtol: float = 1e-4) -> bool:
        """End-to-end functional check against a reference y (§5.1)."""
        reference = np.asarray(reference, dtype=np.float64)
        if reference.shape != self.y.shape:
            raise ShapeError(
                f"reference of shape {reference.shape} vs y {self.y.shape}"
            )
        scale = np.maximum(np.abs(reference), 1.0)
        return bool(np.all(np.abs(self.y - reference) <= rtol * scale))


def _has_reduction_unit(config: AcceleratorConfig) -> bool:
    return getattr(config, "reduction_tree_levels", 0) > 0


def estimate_cycles(
    schedule: TiledSchedule,
    config: Optional[AcceleratorConfig] = None,
) -> CycleBreakdown:
    """The engine's cycle accounting without executing the datapath.

    Produces exactly the :class:`CycleBreakdown` that
    :func:`execute_schedule` reports, from schedule shape alone — used by
    the benchmark harness where only latency (not the output vector) is
    needed.
    """
    config = config or schedule.config
    cycles = CycleBreakdown(
        overhead=getattr(config, "invocation_overhead_cycles", 0)
    )
    windows: Dict[int, List] = {}
    for tile in schedule.tiles:
        windows.setdefault(tile.row_base, []).append(tile)
    for row_base, tiles in windows.items():
        window_rows = min(
            config.row_window, max(schedule.n_rows - row_base, 1)
        )
        any_shared = False
        for tile in tiles:
            tile_cols = min(
                config.column_window, max(schedule.n_cols - tile.col_base, 1)
            )
            cycles.x_load += math.ceil(tile_cols / DENSE_LANES)
            cycles.stream += tile.stream_cycles
            cycles.drain += (
                config.multiplier_latency + config.accumulator_latency
            )
            if tile.migrated_count:
                any_shared = True
        if _has_reduction_unit(config) and any_shared:
            rows_per_pe = math.ceil(window_rows / config.total_pes)
            cycles.reduction += (
                rows_per_pe
                + getattr(config, "reduction_tree_levels", 3)
                + config.accumulator_latency
            )
        cycles.output += math.ceil(window_rows / DENSE_LANES)
    return cycles


def execute_schedule(
    schedule: TiledSchedule,
    x: np.ndarray,
    config: Optional[AcceleratorConfig] = None,
) -> SpMVExecution:
    """Run one SpMV iteration of ``schedule`` over input vector ``x``."""
    t = telemetry.get()
    with t.span(
        "sim.execute", scheme=schedule.scheme, nnz=schedule.nnz
    ):
        execution = _execute_schedule(schedule, x, config, t)
    return execution


def _execute_schedule(
    schedule: TiledSchedule,
    x: np.ndarray,
    config: Optional[AcceleratorConfig],
    t: "telemetry.Telemetry",
) -> SpMVExecution:
    config = config or schedule.config
    x = np.asarray(x, dtype=np.float32)
    if schedule.n_cols and x.shape != (schedule.n_cols,):
        raise ShapeError(
            f"x of length {x.shape} incompatible with "
            f"{schedule.n_rows}x{schedule.n_cols} schedule"
        )

    y = np.zeros(schedule.n_rows, dtype=np.float64)
    cycles = CycleBreakdown(
        overhead=getattr(config, "invocation_overhead_cycles", 0)
    )
    rearrange = RearrangeUnit(config)
    total_macs = 0
    shared_macs = 0
    # Per-channel busy (MAC) and stall (idle) cycle totals across all
    # row windows — the per-PEG occupancy Figs. 12/13 report, surfaced
    # through telemetry counters.
    channel_busy = [0] * config.sparse_channels
    channel_idle = [0] * config.sparse_channels

    # Group tiles by row window, preserving column order within each.
    windows: Dict[int, List] = {}
    for tile in schedule.tiles:
        windows.setdefault(tile.row_base, []).append(tile)

    for row_base in sorted(windows):
        tiles = sorted(windows[row_base], key=lambda t: t.col_base)
        pegs = [
            ProcessingElementGroup(channel, config)
            for channel in range(config.sparse_channels)
        ]
        window_rows = 0
        for tile in tiles:
            n_cols = min(config.column_window, x.size - tile.col_base)
            if n_cols < 0:
                raise SimulationError(
                    f"tile at column base {tile.col_base} beyond x"
                )
            window = x[tile.col_base : tile.col_base + n_cols]
            for peg in pegs:
                peg.load_x_window(window)
            cycles.x_load += math.ceil(max(n_cols, 1) / DENSE_LANES)
            for channel, grid in enumerate(tile.grids):
                pegs[channel].consume_grid(grid)
            cycles.stream += tile.stream_cycles
            cycles.drain += (
                config.multiplier_latency + config.accumulator_latency
            )
            window_rows = max(
                window_rows,
                min(config.row_window, schedule.n_rows - row_base),
            )

        reductions = {}
        if _has_reduction_unit(config):
            rows_per_pe = math.ceil(max(window_rows, 1) / config.total_pes)
            any_shared = False
            for channel, peg in enumerate(pegs):
                reduced = ReductionUnit(peg).reduce()
                if reduced.sums:
                    any_shared = True
                reductions[channel] = reduced
            if any_shared:
                cycles.reduction += (
                    rows_per_pe
                    + getattr(config, "reduction_tree_levels", 3)
                    + config.accumulator_latency
                )

        rearrange.merge(pegs, reductions, row_base, window_rows, y)
        cycles.output += math.ceil(max(window_rows, 1) / DENSE_LANES)

        for channel, peg in enumerate(pegs):
            total_macs += peg.total_macs
            shared_macs += sum(
                pe.stats.shared_accumulations for pe in peg.pes
            )
            channel_busy[channel] += peg.total_macs
            channel_idle[channel] += peg.total_idle

    if total_macs != schedule.nnz:
        raise SimulationError(
            f"executed {total_macs} MACs for a schedule of "
            f"{schedule.nnz} non-zeros"
        )

    if t.enabled:
        for channel in range(config.sparse_channels):
            t.counter(
                "sim.peg.busy_cycles", channel_busy[channel],
                channel=channel,
            )
            t.counter(
                "sim.peg.stall_cycles", channel_idle[channel],
                channel=channel,
            )
        t.gauge(
            "sim.fifo.high_water", rearrange.stream_ax.high_water,
            fifo=rearrange.stream_ax.name,
        )

    return SpMVExecution(
        y=y,
        cycles=cycles,
        config=config,
        scheme=schedule.scheme,
        nnz=schedule.nnz,
        total_macs=total_macs,
        shared_macs=shared_macs,
        stats={
            "shared_fraction": shared_macs / total_macs if total_macs else 0.0,
            "private_values": rearrange.stats.private_values,
            "shared_values": rearrange.stats.shared_values,
        },
    )
