"""Bounded FIFO streams between architectural units (Fig. 6).

TAPA/HLS designs connect kernels with FIFO channels; the simulator uses the
same abstraction so unit boundaries match the hardware block diagram.  The
depth bound exists to surface design errors (a unit that would deadlock in
hardware overflows here).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterable, Iterator, Optional, TypeVar

from ..errors import CapacityError, SimulationError

T = TypeVar("T")


class FifoStream(Generic[T]):
    """A bounded first-in-first-out stream."""

    def __init__(self, name: str, depth: int = 0):
        if depth < 0:
            raise CapacityError("FIFO depth must be non-negative (0 = ∞)")
        self.name = name
        self.depth = depth
        self._queue: Deque[T] = deque()
        self.total_pushed = 0
        #: Deepest occupancy ever observed — the telemetry high-water mark
        #: a hardware designer would size the FIFO from.
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[T]:
        return iter(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def full(self) -> bool:
        return self.depth > 0 and len(self._queue) >= self.depth

    def push(self, item: T) -> None:
        if self.full:
            raise CapacityError(
                f"FIFO {self.name!r} overflow at depth {self.depth}"
            )
        self._queue.append(item)
        self.total_pushed += 1
        if len(self._queue) > self.high_water:
            self.high_water = len(self._queue)

    def push_all(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def pop(self) -> T:
        if not self._queue:
            raise SimulationError(f"FIFO {self.name!r} popped while empty")
        return self._queue.popleft()

    def try_pop(self) -> Optional[T]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def drain(self) -> Iterator[T]:
        while self._queue:
            yield self._queue.popleft()

    def clear(self) -> None:
        """Drop all buffered items; ``high_water`` persists."""
        self._queue.clear()
