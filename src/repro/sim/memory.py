"""On-chip memory models: URAM partial-sum banks and BRAM x-buffers (§4.2).

* ``UramBank`` — one 72-bit-wide UltraRAM holding two FP32 partial sums per
  slot (4096 slots → 8192 partial sums, 36 KB on the U55c, §4.5).  A PE's
  private partial sums live in one bank (``URAM_pvt``); partial sums it
  computes *for a neighbouring channel* live in the Shared-Channel URAM
  Group (``ScugBankGroup``), one bank per source PE (§4.2.1).
* ``BramXBuffer`` — the dual-port BRAM copy of the dense-vector window x
  (32 BRAM18K blocks per PEG, 8192 FP32 values, §4.5).

Banks index partial sums by *row position within the PE* so that capacity
accounting matches the hardware address space, and they count reads/writes
so benchmarks can report on-chip traffic.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from ..errors import CapacityError, SimulationError

#: FP32 partial sums one URAM holds: 4096 slots x two 32-bit halves (§4.2.1).
URAM_PARTIAL_SUMS = 8192

#: FP32 elements of x one PEG's BRAM group holds (§4.1, §4.5).
BRAM_X_CAPACITY = 8192


class UramBank:
    """One URAM of partial sums, addressed by row position."""

    def __init__(self, name: str, capacity: int = URAM_PARTIAL_SUMS):
        if capacity <= 0:
            raise CapacityError("URAM capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._sums: Dict[int, float] = {}
        self.reads = 0
        self.writes = 0

    def __len__(self) -> int:
        return len(self._sums)

    def accumulate(self, address: int, product: float) -> float:
        """Read-modify-write one partial sum (the PE's adder path)."""
        if address < 0:
            raise SimulationError(f"negative URAM address in {self.name}")
        if address >= self.capacity and address not in self._sums:
            raise CapacityError(
                f"URAM {self.name!r}: address {address} exceeds capacity "
                f"{self.capacity}"
            )
        self.reads += 1
        self.writes += 1
        updated = self._sums.get(address, 0.0) + product
        self._sums[address] = updated
        return updated

    def accumulate_block(
        self, addresses: np.ndarray, products: np.ndarray
    ) -> None:
        """Bulk read-modify-write in stream order.

        ``np.add.at`` is unbuffered and applies updates in array order, so
        each address sees the same left-associated float64 addition chain
        as element-at-a-time :meth:`accumulate`.
        """
        n = int(addresses.size)
        if n == 0:
            return
        if int(addresses.min()) < 0:
            raise SimulationError(f"negative URAM address in {self.name}")
        top = int(addresses.max())
        if top >= self.capacity:
            for address in np.unique(
                addresses[addresses >= self.capacity]
            ).tolist():
                if address not in self._sums:
                    raise CapacityError(
                        f"URAM {self.name!r}: address {address} exceeds "
                        f"capacity {self.capacity}"
                    )
        dense = np.zeros(top + 1, dtype=np.float64)
        touched = np.unique(addresses).tolist()
        sums = self._sums
        for address in touched:
            if address in sums:
                dense[address] = sums[address]
        np.add.at(dense, addresses, products)
        for address in touched:
            sums[address] = float(dense[address])
        self.reads += n
        self.writes += n

    def read(self, address: int) -> float:
        self.reads += 1
        return self._sums.get(address, 0.0)

    def items(self) -> Iterator[Tuple[int, float]]:
        return iter(sorted(self._sums.items()))

    def clear(self) -> None:
        self._sums.clear()


class ScugBankGroup:
    """The Shared-Channel URAM Group of one PE (§4.2.1).

    One bank per source PE of the donor channel; with ``scug_size`` smaller
    than the PEG width, pairs of source PEs share a physical URAM (the
    §4.5 down-sizing) — shared banks halve the per-source address space but
    keep sums segregated by an address offset, exactly like the hardware.
    """

    def __init__(self, name: str, source_pes: int, scug_size: int):
        if not 1 <= scug_size <= source_pes:
            raise CapacityError(
                f"ScUG size {scug_size} must be in 1..{source_pes}"
            )
        self.name = name
        self.source_pes = source_pes
        self.scug_size = scug_size
        #: How many source PEs share one physical URAM.
        self.sharing = -(-source_pes // scug_size)
        per_source_capacity = URAM_PARTIAL_SUMS // self.sharing
        self._banks = [
            UramBank(f"{name}.sh{k}", capacity=per_source_capacity)
            for k in range(source_pes)
        ]

    def bank(self, source_pe: int) -> UramBank:
        if not 0 <= source_pe < self.source_pes:
            raise SimulationError(
                f"source PE {source_pe} out of range in {self.name}"
            )
        return self._banks[source_pe]

    def accumulate(self, source_pe: int, address: int, product: float):
        return self.bank(source_pe).accumulate(address, product)

    @property
    def reads(self) -> int:
        return sum(bank.reads for bank in self._banks)

    @property
    def writes(self) -> int:
        return sum(bank.writes for bank in self._banks)

    def clear(self) -> None:
        for bank in self._banks:
            bank.clear()


class BramXBuffer:
    """The PEG-local BRAM copy of one dense-vector window (§4.2.1)."""

    def __init__(self, name: str, capacity: int = BRAM_X_CAPACITY):
        if capacity <= 0:
            raise CapacityError("BRAM capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._window = np.zeros(0, dtype=np.float32)
        self.reads = 0
        self.loads = 0

    def load_window(self, window: np.ndarray) -> None:
        """Copy one column window of x into the buffer."""
        window = np.asarray(window, dtype=np.float32)
        if window.size > self.capacity:
            raise CapacityError(
                f"x window of {window.size} exceeds BRAM capacity "
                f"{self.capacity} in {self.name}"
            )
        self._window = window.copy()
        self.loads += 1

    def read(self, local_col: int) -> float:
        if not 0 <= local_col < self._window.size:
            raise SimulationError(
                f"x[{local_col}] outside loaded window of "
                f"{self._window.size} in {self.name}"
            )
        self.reads += 1
        return float(self._window[local_col])

    def read_block(self, local_cols: np.ndarray) -> np.ndarray:
        """Bulk gather of x values, with the same bounds check as read()."""
        if local_cols.size:
            out_of_window = (local_cols < 0) | (
                local_cols >= self._window.size
            )
            if out_of_window.any():
                bad = int(local_cols[out_of_window][0])
                raise SimulationError(
                    f"x[{bad}] outside loaded window of "
                    f"{self._window.size} in {self.name}"
                )
        self.reads += int(local_cols.size)
        return self._window[local_cols].astype(np.float64)
