"""The Processing Element (§4.2.1).

A PE multiplies the streamed non-zero with the BRAM-resident x value and
accumulates the product into a partial sum.  The Router — a mux pair keyed
by the ``(pvt, PE_src)`` flags decoded from the stream element — steers the
read-modify-write to ``URAM_pvt`` (private channel) or to the matching
``URAM_sh`` bank of the ScUG (shared channel).  Routing is what keeps SpMV
functionally correct under CrHCS: without it, shared-channel products would
corrupt private partial sums (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AcceleratorConfig
from ..errors import SimulationError
from ..scheduling.base import ScheduledElement
from .memory import BramXBuffer, ScugBankGroup, UramBank


@dataclass
class PEStats:
    """Operation counters of one PE."""

    macs: int = 0
    private_accumulations: int = 0
    shared_accumulations: int = 0
    idle_cycles: int = 0


class ProcessingElement:
    """One multiplier + adder + Router + URAM_pvt + ScUG."""

    def __init__(
        self,
        channel_id: int,
        pe_id: int,
        config: AcceleratorConfig,
        x_buffer: BramXBuffer,
    ):
        self.channel_id = channel_id
        self.pe_id = pe_id
        self.config = config
        self.x_buffer = x_buffer
        self.uram_pvt = UramBank(f"ch{channel_id}.pe{pe_id}.pvt")
        self._scug_size = getattr(config, "scug_size", 0)
        self._max_shared_channels = getattr(config, "migration_span", 0)
        #: One ScUG per donor channel (the paper deploys one, §3.1; wider
        #: migration spans need proportionally more on-chip memory, §6.1).
        self.scugs: dict = {}
        self.stats = PEStats()

    def _address_for_row(self, row: int) -> int:
        """URAM address = the row's position within its home PE (Eq. 1)."""
        return row // self.config.total_pes

    def process(self, element: ScheduledElement) -> None:
        """Execute one MAC: multiply, route, accumulate (§4.2.1)."""
        x_value = self.x_buffer.read(element.col)
        product = element.value * x_value
        self.stats.macs += 1
        address = self._address_for_row(element.row)
        if element.origin_channel == self.channel_id:
            if element.origin_pe != self.pe_id:
                raise SimulationError(
                    f"private element of PE {element.origin_pe} routed to "
                    f"PE {self.pe_id} of channel {self.channel_id}"
                )
            self.uram_pvt.accumulate(address, product)
            self.stats.private_accumulations += 1
        else:
            scug = self.scug_for(element.origin_channel)
            scug.accumulate(element.origin_pe, address, product)
            self.stats.shared_accumulations += 1

    def process_block(
        self,
        rows,
        cols,
        values,
        origin_channels,
        origin_pes,
    ) -> None:
        """Execute a batch of MACs in stream order (vectorized §4.2.1).

        Equivalent to calling :meth:`process` per element: products are
        float64 ``value × x``, routed to ``URAM_pvt`` or the matching ScUG
        bank, and each bank accumulates in stream order.
        """
        n = int(rows.size)
        if n == 0:
            return
        x_values = self.x_buffer.read_block(cols)
        products = values * x_values
        self.stats.macs += n
        addresses = rows // self.config.total_pes
        private = origin_channels == self.channel_id
        if private.any():
            misrouted = private & (origin_pes != self.pe_id)
            if misrouted.any():
                raise SimulationError(
                    f"private element of PE {int(origin_pes[misrouted][0])} "
                    f"routed to PE {self.pe_id} of channel {self.channel_id}"
                )
            self.uram_pvt.accumulate_block(
                addresses[private], products[private]
            )
            self.stats.private_accumulations += int(private.sum())
        shared = ~private
        if shared.any():
            shared_channels = origin_channels[shared]
            shared_pes = origin_pes[shared]
            shared_addresses = addresses[shared]
            shared_products = products[shared]
            donors, first_seen = np.unique(
                shared_channels, return_index=True
            )
            for donor in donors[np.argsort(first_seen)].tolist():
                scug = self.scug_for(int(donor))
                from_donor = shared_channels == donor
                donor_pes = shared_pes[from_donor]
                donor_addresses = shared_addresses[from_donor]
                donor_products = shared_products[from_donor]
                for source_pe in np.unique(donor_pes).tolist():
                    lane = donor_pes == source_pe
                    scug.bank(int(source_pe)).accumulate_block(
                        donor_addresses[lane], donor_products[lane]
                    )
            self.stats.shared_accumulations += int(shared.sum())

    def scug_for(self, origin_channel: int) -> ScugBankGroup:
        """The ScUG holding partial sums for one donor channel."""
        scug = self.scugs.get(origin_channel)
        if scug is None:
            if self._scug_size == 0 or self._max_shared_channels == 0:
                raise SimulationError(
                    f"channel {self.channel_id} PE {self.pe_id} received a "
                    "migrated element but has no ScUG (Serpens datapath)"
                )
            if len(self.scugs) >= self._max_shared_channels:
                raise SimulationError(
                    f"channel {self.channel_id} PE {self.pe_id} would need "
                    f"{len(self.scugs) + 1} ScUGs but the configuration "
                    f"provisions {self._max_shared_channels} (§6.1)"
                )
            scug = ScugBankGroup(
                f"ch{self.channel_id}.pe{self.pe_id}.scug{origin_channel}",
                source_pes=self.config.pes_per_channel,
                scug_size=self._scug_size,
            )
            self.scugs[origin_channel] = scug
        return scug

    def idle(self) -> None:
        """A zero slot: the MAC is skipped entirely (§2.2)."""
        self.stats.idle_cycles += 1

    def reset(self) -> None:
        """Clear partial sums between row windows."""
        self.uram_pvt.clear()
        for scug in self.scugs.values():
            scug.clear()
