"""The Processing Element Group (§4.2, Fig. 7).

One PEG sits behind each sparse-matrix HBM channel: eight PEs fed by the
eight 64-bit lanes of the 512-bit channel word, a shared BRAM x-buffer,
and (in Chasoň) a Reduction Unit that folds the ScUG banks after streaming
completes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..config import AcceleratorConfig
from ..errors import SimulationError
from ..scheduling.base import ChannelGrid, ScheduledElement
from .memory import BramXBuffer
from .pe import ProcessingElement


class ProcessingElementGroup:
    """Eight PEs plus the PEG-local x buffer."""

    def __init__(self, channel_id: int, config: AcceleratorConfig):
        self.channel_id = channel_id
        self.config = config
        self.x_buffer = BramXBuffer(
            f"ch{channel_id}.xbuf", capacity=config.column_window
        )
        self.pes: List[ProcessingElement] = [
            ProcessingElement(channel_id, pe, config, self.x_buffer)
            for pe in range(config.pes_per_channel)
        ]
        self.cycles_consumed = 0

    def load_x_window(self, window: np.ndarray) -> None:
        self.x_buffer.load_window(window)

    def consume_word(
        self, slots: Sequence[Optional[ScheduledElement]]
    ) -> None:
        """Process one channel beat: slot k drives PE k (§3.2)."""
        if len(slots) != len(self.pes):
            raise SimulationError(
                f"channel word with {len(slots)} lanes for "
                f"{len(self.pes)} PEs"
            )
        for pe, element in zip(self.pes, slots):
            if element is None:
                pe.idle()
            else:
                pe.process(element)
        self.cycles_consumed += 1

    def consume_grid(self, grid: ChannelGrid) -> None:
        """Stream a whole channel data list through the PEG.

        Only occupied slots reach the MACs; idle counters advance from the
        grid's stall accounting so per-slot iteration stays cheap.
        """
        if grid.channel_id != self.channel_id:
            raise SimulationError(
                f"grid of channel {grid.channel_id} streamed into PEG "
                f"{self.channel_id}"
            )
        _, pe_ids, rows, cols, values, origin_channels, origin_pes = (
            grid.element_arrays()
        )
        counts = np.bincount(pe_ids, minlength=len(self.pes))
        for pe_id, pe in enumerate(self.pes):
            lane = pe_ids == pe_id
            if counts[pe_id]:
                # element_arrays is cycle-major, so each lane's slice keeps
                # the per-bank accumulation order of slot-at-a-time replay.
                pe.process_block(
                    rows[lane],
                    cols[lane],
                    values[lane],
                    origin_channels[lane],
                    origin_pes[lane],
                )
            pe.stats.idle_cycles += grid.length - int(counts[pe_id])
        self.cycles_consumed += grid.length

    def reset_partial_sums(self) -> None:
        for pe in self.pes:
            pe.reset()

    # -- aggregate statistics -------------------------------------------------

    @property
    def total_macs(self) -> int:
        return sum(pe.stats.macs for pe in self.pes)

    @property
    def total_idle(self) -> int:
        return sum(pe.stats.idle_cycles for pe in self.pes)

    @property
    def shared_fraction(self) -> float:
        shared = sum(pe.stats.shared_accumulations for pe in self.pes)
        total = self.total_macs
        return shared / total if total else 0.0
