"""The Rearrange Unit: Re-order + Arbiter + Merger (§4.3, Fig. 8).

Each PEG emits two streams after a row window completes:

* ``pvt_ch`` — its eight consolidated ``URAM_pvt`` banks (private partial
  sums, already in this channel's row order);
* ``sh_ch``  — the Reduction Unit's consolidated shared sums, which belong
  to a *different* channel (the donor the PEG migrated data from).

The Re-order Unit realigns the shared streams with the channel they belong
to; the Arbiter collects both stream kinds per channel; the Merger adds
the private and shared contributions so every output value of a channel is
complete, then packs the results into the single 16-FP32 ``stream_Ax``
(§4.3) that the dense-vector kernels consume.  Functionally this is
``y[row] = pvt[row] + Σ shared contributions``, which is what this model
computes while tracking the merge traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..config import AcceleratorConfig
from ..errors import SimulationError
from .fifo import FifoStream
from .peg import ProcessingElementGroup
from .reduction import ReducedSums


@dataclass
class RearrangeStats:
    """Traffic counters of the Rearrange Unit."""

    private_values: int = 0
    shared_values: int = 0
    merged_rows: int = 0


class RearrangeUnit:
    """Gathers all PEGs' streams into the output vector of one row window."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        self.stats = RearrangeStats()
        #: The merged output stream (§4.3); values buffer here within a
        #: row window before the 16-lane ``stream_Ax`` pack drains them.
        #: Its high-water mark is the arbiter queue depth telemetry
        #: reports per execution.
        self.stream_ax: FifoStream = FifoStream("stream_Ax")

    def merge(
        self,
        pegs: List[ProcessingElementGroup],
        reductions: Dict[int, ReducedSums],
        row_base: int,
        n_rows: int,
        y_out: np.ndarray,
    ) -> None:
        """Accumulate one row window's outputs into ``y_out``.

        ``reductions[c]`` is the Reduction output of channel ``c``'s PEG;
        its ``(origin_channel, origin_pe)`` sums are re-ordered onto the
        rows of the *origin* channel — the Fig. 8 realignment.
        """
        config = self.config
        total_pes = config.total_pes
        if len(pegs) != config.sparse_channels:
            raise SimulationError(
                f"expected {config.sparse_channels} PEGs, got {len(pegs)}"
            )

        # Private streams: URAM_pvt of PE p in channel c covers rows
        # row_base + (c*8 + p) + address*total_pes.
        for channel, peg in enumerate(pegs):
            for pe_id, pe in enumerate(peg.pes):
                lane = channel * config.pes_per_channel + pe_id
                for address, value in pe.uram_pvt.items():
                    row = row_base + lane + address * total_pes
                    if row - row_base >= n_rows:
                        raise SimulationError(
                            f"private sum for row {row} outside window"
                        )
                    y_out[row] += value
                    self.stream_ax.push(row)
                    self.stats.private_values += 1

        # Shared streams: re-ordered onto their origin channel's rows.
        for channel, reduced in reductions.items():
            for (origin_channel, origin_pe), sums in reduced.sums.items():
                lane = (
                    origin_channel * config.pes_per_channel + origin_pe
                )
                for address, value in sums.items():
                    row = row_base + lane + address * total_pes
                    if row - row_base >= n_rows:
                        raise SimulationError(
                            f"shared sum for row {row} outside window"
                        )
                    y_out[row] += value
                    self.stream_ax.push(row)
                    self.stats.shared_values += 1

        self.stats.merged_rows += n_rows
        # The pack drains the window's buffered values into stream_Ax
        # beats; occupancy resets per window, high_water persists.
        self.stream_ax.clear()
