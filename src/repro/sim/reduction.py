"""The Reduction Unit (§4.2.2, Fig. 7c).

After a PEG finishes streaming, each of its eight PEs holds — per donor
channel — a ScUG of partial sums for the donor's PEs.  The Reduction Unit
sweeps the k-th ``URAM_sh`` of all eight ScUGs address by address and folds
them through an adder tree, producing a single per-source-PE partial-sum
bank that the Rearrange Unit then routes back to the donor channel's
output stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .peg import ProcessingElementGroup


@dataclass
class ReducedSums:
    """Output of one Reduction-Unit sweep.

    ``sums[(origin_channel, origin_pe)][address]`` is the reduced partial
    sum destined for the donor channel's PE — the contents of the
    consolidated ``URAM_sh0`` of Fig. 7c.
    """

    sums: Dict[Tuple[int, int], Dict[int, float]] = field(default_factory=dict)
    addresses_swept: int = 0
    tree_additions: int = 0

    def contribution(self, origin_channel: int, origin_pe: int):
        return self.sums.get((origin_channel, origin_pe), {})


class ReductionUnit:
    """Adder-tree reduction across the eight ScUGs of one PEG."""

    def __init__(self, peg: ProcessingElementGroup):
        self.peg = peg

    def reduce(self) -> ReducedSums:
        """Fold all ScUG banks; returns per-(donor, source-PE) sums."""
        result = ReducedSums()
        donor_channels = set()
        for pe in self.peg.pes:
            donor_channels.update(pe.scugs.keys())
        for donor in sorted(donor_channels):
            for source_pe in range(self.peg.config.pes_per_channel):
                merged: Dict[int, float] = {}
                contributors = 0
                for pe in self.peg.pes:
                    scug = pe.scugs.get(donor)
                    if scug is None:
                        continue
                    bank = scug.bank(source_pe)
                    for address, value in bank.items():
                        if address in merged:
                            merged[address] += value
                            result.tree_additions += 1
                        else:
                            merged[address] = value
                        contributors += 1
                if merged:
                    result.sums[(donor, source_pe)] = merged
                    result.addresses_swept += len(merged)
        return result
