"""Pipeline tracing: the Fig. 2-style per-PE timeline.

For small schedules the trace renders what Figs. 1/2 of the paper draw by
hand — which instruction (row accumulation) occupies each PE at each
cycle, with stalls visible — and collects per-PE occupancy statistics.
Intended for debugging schedulers and for teaching examples; tracing a
million-element schedule would produce a million-line timeline, so the
renderer enforces a size limit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..scheduling.base import ChannelGrid, Schedule
from .. import telemetry

#: Render guard: timelines beyond this many cycles are refused by default.
MAX_RENDER_CYCLES = 512

#: Environment override for the render guard (an integer cycle count).
TRACE_MAX_ENV = "REPRO_TRACE_MAX_CYCLES"


def resolve_render_limit(max_cycles: Optional[int] = None) -> int:
    """The effective render guard: argument > env var > default.

    An unparsable ``REPRO_TRACE_MAX_CYCLES`` falls back to the default
    with a one-time warning through the telemetry/logging path.
    """
    if max_cycles is not None:
        return max_cycles
    raw = os.environ.get(TRACE_MAX_ENV, "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            telemetry.warn_once(
                "invalid_trace_max_cycles",
                f"{TRACE_MAX_ENV}={raw!r} is not an integer; using the "
                f"default render limit of {MAX_RENDER_CYCLES} cycles",
            )
    return MAX_RENDER_CYCLES


@dataclass
class PETimeline:
    """Occupancy of one PE, cycle by cycle."""

    channel_id: int
    pe_id: int
    #: ``slots[cycle]`` is ``None`` (stall) or (row, is_migrated).
    slots: List = field(default_factory=list)

    @property
    def busy_cycles(self) -> int:
        return sum(1 for slot in self.slots if slot is not None)

    @property
    def occupancy(self) -> float:
        return self.busy_cycles / len(self.slots) if self.slots else 0.0

    def render(self) -> str:
        cells = []
        for slot in self.slots:
            if slot is None:
                cells.append("....")
            else:
                row, migrated = slot
                marker = "*" if migrated else " "
                cells.append(f"r{row % 100:02d}{marker}")
        return (
            f"ch{self.channel_id}.pe{self.pe_id}: " + "|".join(cells)
        )


@dataclass
class ScheduleTrace:
    """Timelines of every PE of one tile schedule."""

    timelines: Dict[Tuple[int, int], PETimeline]
    cycles: int

    def timeline(self, channel: int, pe: int) -> PETimeline:
        key = (channel, pe)
        if key not in self.timelines:
            raise SimulationError(f"no timeline for channel {channel} "
                                  f"PE {pe}")
        return self.timelines[key]

    @property
    def mean_occupancy(self) -> float:
        values = [t.occupancy for t in self.timelines.values()]
        return sum(values) / len(values) if values else 0.0

    def busiest_pe(self) -> PETimeline:
        if not self.timelines:
            raise SimulationError("empty trace")
        return max(self.timelines.values(), key=lambda t: t.busy_cycles)

    def render(self, max_cycles: Optional[int] = None) -> str:
        limit = resolve_render_limit(max_cycles)
        if self.cycles > limit:
            raise SimulationError(
                f"timeline of {self.cycles} cycles exceeds the render "
                f"limit of {limit}; pass render(max_cycles=...) or set "
                f"{TRACE_MAX_ENV} to raise it"
            )
        return "\n".join(
            self.timelines[key].render()
            for key in sorted(self.timelines)
        )


def trace_grid(grid: ChannelGrid) -> Dict[Tuple[int, int], PETimeline]:
    """Timelines of one channel grid."""
    timelines = {
        (grid.channel_id, pe): PETimeline(
            channel_id=grid.channel_id,
            pe_id=pe,
            slots=[None] * grid.length,
        )
        for pe in range(grid.pes)
    }
    for (cycle, pe), element in grid.occupied.items():
        migrated = element.origin_channel != grid.channel_id
        timelines[(grid.channel_id, pe)].slots[cycle] = (
            element.row, migrated,
        )
    return timelines


def trace_schedule(schedule: Schedule) -> ScheduleTrace:
    """Trace every PE of a (single-tile) schedule."""
    timelines: Dict[Tuple[int, int], PETimeline] = {}
    for grid in schedule.grids:
        timelines.update(trace_grid(grid))
    return ScheduleTrace(
        timelines=timelines, cycles=schedule.stream_cycles
    )
