"""Iterative solvers driven by the modelled accelerators.

The paper motivates Chasoň with workloads — scientific computing,
optimization, graph problems — whose kernels are *iterated* SpMVs.  These
solvers run their SpMV on any :class:`~repro.core.StreamingAccelerator`
(scheduling once, streaming many times, exactly the paper's §5.2
measurement methodology) and account the modelled accelerator time.
"""

from .result import SolverResult
from .jacobi import jacobi
from .power_iteration import power_iteration
from .cg import conjugate_gradient
from .steps import (
    CGState,
    JacobiState,
    PowerState,
    cg_init,
    cg_step,
    jacobi_init,
    jacobi_split,
    jacobi_step,
    power_init,
    power_step,
)

__all__ = [
    "SolverResult",
    "jacobi",
    "power_iteration",
    "conjugate_gradient",
    "CGState",
    "JacobiState",
    "PowerState",
    "cg_init",
    "cg_step",
    "jacobi_init",
    "jacobi_split",
    "jacobi_step",
    "power_init",
    "power_step",
]
