"""Conjugate Gradient with accelerated SpMV.

CG is the canonical sparse-iterative workload of the paper's scientific
computing motivation: one SpMV per iteration on a symmetric positive
definite system, plus a handful of vector operations (which the host —
here: numpy — performs, as they would run on the dense-vector kernels of
Fig. 6).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.accelerator import StreamingAccelerator
from ..errors import ShapeError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .result import SolverResult
from .steps import cg_init, cg_step

Matrix = Union[COOMatrix, CSRMatrix]


def conjugate_gradient(
    accelerator: StreamingAccelerator,
    matrix: Matrix,
    b: np.ndarray,
    tolerance: float = 1e-8,
    max_iterations: int = 0,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Solve ``A x = b`` (A symmetric positive definite) by CG.

    ``max_iterations`` defaults to the system dimension.  The matrix is
    scheduled once; each iteration streams the same data lists.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ShapeError("CG needs a square system")
    n = matrix.n_rows
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b of shape {b.shape} incompatible with {matrix.shape}")
    max_iterations = max_iterations or n

    schedule = accelerator.schedule(matrix)

    def spmv(vector: np.ndarray):
        execution, _report = accelerator.run(
            matrix, vector, schedule=schedule
        )
        return execution

    state = cg_init(spmv, b, x0=x0)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        if state.residual < tolerance:
            iteration -= 1
            break
        cg_step(spmv, state, iteration)
        if state.halted:
            break
    return state.result(iteration, tolerance)
