"""Conjugate Gradient with accelerated SpMV.

CG is the canonical sparse-iterative workload of the paper's scientific
computing motivation: one SpMV per iteration on a symmetric positive
definite system, plus a handful of vector operations (which the host —
here: numpy — performs, as they would run on the dense-vector kernels of
Fig. 6).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.accelerator import StreamingAccelerator
from ..errors import ShapeError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .result import SolverResult

Matrix = Union[COOMatrix, CSRMatrix]


def conjugate_gradient(
    accelerator: StreamingAccelerator,
    matrix: Matrix,
    b: np.ndarray,
    tolerance: float = 1e-8,
    max_iterations: int = 0,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Solve ``A x = b`` (A symmetric positive definite) by CG.

    ``max_iterations`` defaults to the system dimension.  The matrix is
    scheduled once; each iteration streams the same data lists.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ShapeError("CG needs a square system")
    n = matrix.n_rows
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ShapeError(f"b of shape {b.shape} incompatible with {matrix.shape}")
    max_iterations = max_iterations or n

    schedule = accelerator.schedule(matrix)
    accelerator_seconds = 0.0

    def spmv(vector: np.ndarray) -> np.ndarray:
        nonlocal accelerator_seconds
        execution, report = accelerator.run(
            matrix, vector.astype(np.float32), schedule=schedule
        )
        accelerator_seconds += report.latency_seconds
        return execution.y

    x = (np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64))
    x = x.copy()
    r = b - (spmv(x) if np.any(x) else np.zeros(n))
    p = r.copy()
    rho = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0

    history = []
    residual = float(np.sqrt(rho)) / b_norm
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        if residual < tolerance:
            iteration -= 1
            break
        ap = spmv(p)
        denominator = float(p @ ap)
        if denominator <= 0.0:
            # Not SPD (or float32 streaming noise near convergence).
            break
        alpha = rho / denominator
        x += alpha * p
        r -= alpha * ap
        rho_next = float(r @ r)
        residual = float(np.sqrt(rho_next)) / b_norm
        history.append(residual)
        beta = rho_next / rho
        rho = rho_next
        p = r + beta * p

    return SolverResult(
        solution=x,
        iterations=iteration,
        converged=residual < tolerance,
        residual=residual,
        accelerator_seconds=accelerator_seconds,
        history=history,
    )
