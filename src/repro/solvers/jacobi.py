"""(Weighted) Jacobi iteration with accelerated SpMV."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.accelerator import StreamingAccelerator
from ..errors import ShapeError, SimulationError
from ..formats.convert import to_coo
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .result import SolverResult

Matrix = Union[COOMatrix, CSRMatrix]


def _split(matrix: COOMatrix):
    """A = D + R: the diagonal and the off-diagonal remainder."""
    on_diagonal = matrix.rows == matrix.cols
    diagonal = np.zeros(matrix.n_rows)
    np.add.at(diagonal, matrix.rows[on_diagonal],
              matrix.values[on_diagonal].astype(np.float64))
    off = ~on_diagonal
    remainder = COOMatrix(
        matrix.shape, matrix.rows[off], matrix.cols[off], matrix.values[off]
    )
    return diagonal, remainder


def jacobi(
    accelerator: StreamingAccelerator,
    matrix: Matrix,
    b: np.ndarray,
    omega: float = 1.0,
    tolerance: float = 1e-6,
    max_iterations: int = 500,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Solve ``A x = b`` by (weighted) Jacobi iteration.

    Each iteration's ``R @ x`` runs on the accelerator; the schedule of
    the off-diagonal remainder is computed once and streamed every
    iteration.  Requires a non-zero diagonal (the usual Jacobi
    prerequisite).
    """
    coo = to_coo(matrix)
    if coo.n_rows != coo.n_cols:
        raise ShapeError("Jacobi needs a square system")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (coo.n_rows,):
        raise ShapeError(f"b of shape {b.shape} incompatible with {coo.shape}")

    diagonal, remainder = _split(coo)
    if np.any(diagonal == 0.0):
        raise SimulationError("Jacobi requires a non-zero diagonal")

    schedule = accelerator.schedule(remainder)
    x = (np.zeros(coo.n_rows) if x0 is None
         else np.asarray(x0, dtype=np.float64)).copy()
    b_norm = float(np.linalg.norm(b)) or 1.0

    history = []
    accelerator_seconds = 0.0
    residual = float("inf")
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        execution, report = accelerator.run(
            remainder, x.astype(np.float32), schedule=schedule
        )
        accelerator_seconds += report.latency_seconds
        x_next = (b - execution.y) / diagonal
        x = (1.0 - omega) * x + omega * x_next
        residual = float(
            np.linalg.norm(coo.matvec(x) - b) / b_norm
        )
        history.append(residual)
        if residual < tolerance:
            break

    return SolverResult(
        solution=x,
        iterations=iteration,
        converged=residual < tolerance,
        residual=residual,
        accelerator_seconds=accelerator_seconds,
        history=history,
    )
