"""(Weighted) Jacobi iteration with accelerated SpMV."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.accelerator import StreamingAccelerator
from ..errors import ShapeError
from ..formats.convert import to_coo
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .result import SolverResult
from .steps import jacobi_init, jacobi_split, jacobi_step

Matrix = Union[COOMatrix, CSRMatrix]


def _split(matrix: COOMatrix):
    """A = D + R: the diagonal and the off-diagonal remainder."""
    return jacobi_split(matrix)


def jacobi(
    accelerator: StreamingAccelerator,
    matrix: Matrix,
    b: np.ndarray,
    omega: float = 1.0,
    tolerance: float = 1e-6,
    max_iterations: int = 500,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Solve ``A x = b`` by (weighted) Jacobi iteration.

    Each iteration's ``R @ x`` runs on the accelerator; the schedule of
    the off-diagonal remainder is computed once and streamed every
    iteration.  Requires a non-zero diagonal (the usual Jacobi
    prerequisite).
    """
    coo = to_coo(matrix)
    if coo.n_rows != coo.n_cols:
        raise ShapeError("Jacobi needs a square system")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (coo.n_rows,):
        raise ShapeError(f"b of shape {b.shape} incompatible with {coo.shape}")

    diagonal, remainder = jacobi_split(coo)
    state = jacobi_init(coo, b, omega, diagonal, x0=x0)
    schedule = accelerator.schedule(remainder)

    def spmv(vector: np.ndarray):
        execution, _report = accelerator.run(
            remainder, vector, schedule=schedule
        )
        return execution

    iteration = 0
    for iteration in range(1, max_iterations + 1):
        jacobi_step(spmv, state, iteration)
        if state.finished(tolerance):
            break
    return state.result(iteration, tolerance)
