"""Power iteration (dominant eigenpair / PageRank kernel)."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.accelerator import StreamingAccelerator
from ..errors import ShapeError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .result import SolverResult
from .steps import power_init, power_step

Matrix = Union[COOMatrix, CSRMatrix]


def power_iteration(
    accelerator: StreamingAccelerator,
    matrix: Matrix,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
    seed: int = 0,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Dominant eigenvector of a square matrix via accelerated SpMV.

    Returns the normalised eigenvector as ``solution``; the corresponding
    Rayleigh-quotient eigenvalue estimate is stored as the last entry of a
    ``history`` of per-iteration eigenvalue estimates, and ``residual`` is
    the final iterate change ``||x_k - x_{k-1}||``.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ShapeError("power iteration needs a square matrix")
    state = power_init(matrix.n_cols, seed=seed, x0=x0)
    schedule = accelerator.schedule(matrix)

    def spmv(vector: np.ndarray):
        execution, _report = accelerator.run(
            matrix, vector, schedule=schedule
        )
        return execution

    iteration = 0
    for iteration in range(1, max_iterations + 1):
        power_step(spmv, state, iteration)
        if state.finished(tolerance):
            break
    return state.result(iteration, tolerance)
