"""Power iteration (dominant eigenpair / PageRank kernel)."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.accelerator import StreamingAccelerator
from ..errors import ShapeError
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from .result import SolverResult

Matrix = Union[COOMatrix, CSRMatrix]


def power_iteration(
    accelerator: StreamingAccelerator,
    matrix: Matrix,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
    seed: int = 0,
    x0: Optional[np.ndarray] = None,
) -> SolverResult:
    """Dominant eigenvector of a square matrix via accelerated SpMV.

    Returns the normalised eigenvector as ``solution``; the corresponding
    Rayleigh-quotient eigenvalue estimate is stored as the last entry of a
    ``history`` of per-iteration eigenvalue estimates, and ``residual`` is
    the final iterate change ``||x_k - x_{k-1}||``.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ShapeError("power iteration needs a square matrix")
    if x0 is not None:
        x = np.asarray(x0, dtype=np.float64)
        if x.shape != (matrix.n_cols,):
            raise ShapeError("x0 has the wrong length")
    else:
        x = np.random.default_rng(seed).normal(size=matrix.n_cols)
    x = x / (np.linalg.norm(x) or 1.0)

    schedule = accelerator.schedule(matrix)
    accelerator_seconds = 0.0
    history = []
    delta = float("inf")
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        execution, report = accelerator.run(
            matrix, x.astype(np.float32), schedule=schedule
        )
        accelerator_seconds += report.latency_seconds
        y = execution.y
        eigenvalue = float(x @ y)
        norm = np.linalg.norm(y)
        if norm == 0.0:
            history.append(0.0)
            delta = 0.0
            break
        x_next = y / norm
        # Sign-align so convergence of the direction is measured.
        if x_next @ x < 0:
            x_next = -x_next
        delta = float(np.linalg.norm(x_next - x))
        history.append(eigenvalue)
        x = x_next
        if delta < tolerance:
            break

    return SolverResult(
        solution=x,
        iterations=iteration,
        converged=delta < tolerance,
        residual=delta,
        accelerator_seconds=accelerator_seconds,
        history=history,
    )
