"""Common solver result object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class SolverResult:
    """Outcome of an accelerator-driven iterative solve."""

    solution: np.ndarray
    iterations: int
    converged: bool
    residual: float
    #: Modelled accelerator time spent in SpMV across all iterations.
    accelerator_seconds: float
    #: Residual (or convergence metric) after every iteration.
    history: List[float] = field(default_factory=list)

    @property
    def accelerator_ms(self) -> float:
        return self.accelerator_seconds * 1e3

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        status = "converged" if self.converged else "NOT converged"
        return (
            f"SolverResult({status} in {self.iterations} iterations, "
            f"residual={self.residual:.3e}, "
            f"accelerator={self.accelerator_ms:.3f} ms)"
        )
