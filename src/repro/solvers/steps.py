"""Single-iteration step functions shared by the offline solvers and
the session subsystem.

Each solver's per-iteration math lives here exactly once, as a pure
``(spmv, state, iteration)`` step over a mutable state object.  The
offline loops in :mod:`repro.solvers` and the session-backed drivers in
:mod:`repro.sessions` both call these functions, which is what makes a
``SolverSession.run()`` byte-identical to the offline loop — there is
only one copy of the math to agree with.

``spmv`` is a callable ``vector -> SpMVExecution`` (the step converts
the iterate to float32 before calling, mirroring what the accelerator
façades do); the step accounts ``execution.latency_seconds`` into the
state.  Every step runs under a ``solver.iteration`` telemetry span
annotated with the iteration index and the post-step residual, so an
offline solve and a session-backed solve summarize identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from .. import telemetry
from ..errors import ShapeError, SimulationError
from ..formats.coo import COOMatrix
from .result import SolverResult

#: ``vector (float64) -> SpMVExecution`` — the accelerator round trip.
SpMVFn = Callable[[np.ndarray], Any]


def _as_f32(vector: np.ndarray) -> np.ndarray:
    return vector.astype(np.float32)


# -- power iteration -----------------------------------------------------


@dataclass
class PowerState:
    """Iterate of a power-iteration run (dominant eigenpair)."""

    x: np.ndarray
    eigenvalue: float = 0.0
    #: Iterate change ``||x_k - x_{k-1}||`` — the convergence metric.
    residual: float = float("inf")
    #: Degenerate termination (``A @ x`` vanished).
    halted: bool = False
    accelerator_seconds: float = 0.0
    history: List[float] = field(default_factory=list)

    def finished(self, tolerance: float) -> bool:
        return self.halted or self.residual < tolerance

    def converged(self, tolerance: float) -> bool:
        return self.residual < tolerance

    def result(self, iterations: int, tolerance: float) -> SolverResult:
        return SolverResult(
            solution=self.x,
            iterations=iterations,
            converged=self.converged(tolerance),
            residual=self.residual,
            accelerator_seconds=self.accelerator_seconds,
            history=list(self.history),
        )


def power_init(n: int, seed: int = 0,
               x0: Optional[np.ndarray] = None) -> PowerState:
    """The normalised starting iterate (seeded random unless given)."""
    if x0 is not None:
        x = np.asarray(x0, dtype=np.float64)
        if x.shape != (n,):
            raise ShapeError("x0 has the wrong length")
    else:
        x = np.random.default_rng(seed).normal(size=n)
    return PowerState(x=x / (np.linalg.norm(x) or 1.0))


def power_step(spmv: SpMVFn, state: PowerState, iteration: int) -> None:
    """One power iteration: ``y = A x``, normalise, sign-align."""
    t = telemetry.get()
    with t.span(
        "solver.iteration", solver="power_iteration", iteration=iteration
    ) as span:
        execution = spmv(_as_f32(state.x))
        state.accelerator_seconds += execution.latency_seconds
        y = execution.y
        state.eigenvalue = float(state.x @ y)
        norm = np.linalg.norm(y)
        if norm == 0.0:
            state.history.append(0.0)
            state.residual = 0.0
            state.halted = True
        else:
            x_next = y / norm
            # Sign-align so convergence of the direction is measured.
            if x_next @ state.x < 0:
                x_next = -x_next
            state.residual = float(np.linalg.norm(x_next - state.x))
            state.history.append(state.eigenvalue)
            state.x = x_next
        span.annotate(residual=state.residual)


# -- conjugate gradient --------------------------------------------------


@dataclass
class CGState:
    """Iterate of a CG solve (x, residual r, direction p)."""

    x: np.ndarray
    r: np.ndarray
    p: np.ndarray
    rho: float
    b_norm: float
    residual: float
    #: Non-SPD termination (``p @ A p <= 0``).
    halted: bool = False
    accelerator_seconds: float = 0.0
    history: List[float] = field(default_factory=list)

    def finished(self, tolerance: float) -> bool:
        return self.halted or self.residual < tolerance

    def converged(self, tolerance: float) -> bool:
        return self.residual < tolerance

    def result(self, iterations: int, tolerance: float) -> SolverResult:
        return SolverResult(
            solution=self.x,
            iterations=iterations,
            converged=self.converged(tolerance),
            residual=self.residual,
            accelerator_seconds=self.accelerator_seconds,
            history=list(self.history),
        )


def cg_init(spmv: SpMVFn, b: np.ndarray,
            x0: Optional[np.ndarray] = None) -> CGState:
    """Initial residual/direction; runs one SpMV when ``x0`` is warm."""
    n = b.shape[0]
    x = (np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64))
    x = x.copy()
    seconds = 0.0
    if np.any(x):
        execution = spmv(_as_f32(x))
        seconds += execution.latency_seconds
        r = b - execution.y
    else:
        r = b - np.zeros(n)
    rho = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    return CGState(
        x=x, r=r, p=r.copy(), rho=rho, b_norm=b_norm,
        residual=float(np.sqrt(rho)) / b_norm,
        accelerator_seconds=seconds,
    )


def cg_step(spmv: SpMVFn, state: CGState, iteration: int) -> None:
    """One CG iteration (halts without updating on a non-SPD pivot)."""
    t = telemetry.get()
    with t.span(
        "solver.iteration", solver="cg", iteration=iteration
    ) as span:
        execution = spmv(_as_f32(state.p))
        state.accelerator_seconds += execution.latency_seconds
        ap = execution.y
        denominator = float(state.p @ ap)
        if denominator <= 0.0:
            # Not SPD (or float32 streaming noise near convergence).
            state.halted = True
        else:
            alpha = state.rho / denominator
            state.x += alpha * state.p
            state.r -= alpha * ap
            rho_next = float(state.r @ state.r)
            state.residual = float(np.sqrt(rho_next)) / state.b_norm
            state.history.append(state.residual)
            beta = rho_next / state.rho
            state.rho = rho_next
            state.p = state.r + beta * state.p
        span.annotate(residual=state.residual)


# -- (weighted) Jacobi ---------------------------------------------------


@dataclass
class JacobiState:
    """Iterate of a weighted-Jacobi solve.

    ``spmv`` streams the off-diagonal remainder ``R``; the full ``coo``
    stays host-side for the true-residual check each iteration.
    """

    x: np.ndarray
    b: np.ndarray
    diagonal: np.ndarray
    coo: COOMatrix
    omega: float
    b_norm: float
    residual: float = float("inf")
    halted: bool = False
    accelerator_seconds: float = 0.0
    history: List[float] = field(default_factory=list)

    def finished(self, tolerance: float) -> bool:
        return self.residual < tolerance

    def converged(self, tolerance: float) -> bool:
        return self.residual < tolerance

    def result(self, iterations: int, tolerance: float) -> SolverResult:
        return SolverResult(
            solution=self.x,
            iterations=iterations,
            converged=self.converged(tolerance),
            residual=self.residual,
            accelerator_seconds=self.accelerator_seconds,
            history=list(self.history),
        )


def jacobi_split(coo: COOMatrix):
    """``A = D + R``: the diagonal and the off-diagonal remainder."""
    on_diagonal = coo.rows == coo.cols
    diagonal = np.zeros(coo.n_rows)
    np.add.at(diagonal, coo.rows[on_diagonal],
              coo.values[on_diagonal].astype(np.float64))
    off = ~on_diagonal
    remainder = COOMatrix(
        coo.shape, coo.rows[off], coo.cols[off], coo.values[off]
    )
    return diagonal, remainder


def jacobi_init(coo: COOMatrix, b: np.ndarray, omega: float,
                diagonal: np.ndarray,
                x0: Optional[np.ndarray] = None) -> JacobiState:
    """Initial Jacobi iterate over a pre-split system."""
    if np.any(diagonal == 0.0):
        raise SimulationError("Jacobi requires a non-zero diagonal")
    x = (np.zeros(coo.n_rows) if x0 is None
         else np.asarray(x0, dtype=np.float64)).copy()
    return JacobiState(
        x=x, b=b, diagonal=diagonal, coo=coo, omega=omega,
        b_norm=float(np.linalg.norm(b)) or 1.0,
    )


def jacobi_step(spmv: SpMVFn, state: JacobiState, iteration: int) -> None:
    """One weighted-Jacobi sweep: ``x ← (1-ω)x + ω D⁻¹ (b - R x)``."""
    t = telemetry.get()
    with t.span(
        "solver.iteration", solver="jacobi", iteration=iteration
    ) as span:
        execution = spmv(_as_f32(state.x))
        state.accelerator_seconds += execution.latency_seconds
        x_next = (state.b - execution.y) / state.diagonal
        state.x = (1.0 - state.omega) * state.x + state.omega * x_next
        state.residual = float(
            np.linalg.norm(state.coo.matvec(state.x) - state.b)
            / state.b_norm
        )
        state.history.append(state.residual)
        span.annotate(residual=state.residual)
