"""Observability for the reproduction: spans, traces, histograms, SLOs.

The subsystem answers "where did the time go, what did the cache do,
which channel migrated what — and what happened to *this* request"
without rerunning under a debugger:

* :func:`get` returns the active registry — the no-op :data:`NULL`
  singleton unless ``REPRO_TELEMETRY=<path|->`` (or :func:`configure`)
  enabled a JSONL sink.  Call sites guard bookkeeping with
  ``telemetry.get().enabled`` so the disabled path stays near-free.
* :class:`Telemetry` provides nested wall-clock **spans** (context
  managers), monotonic **counters**, last-value **gauges**, mergeable
  log-bucketed **histograms** (:mod:`repro.telemetry.hist`) and
  point-in-time **events**; every record is self-describing JSONL
  (validated by :mod:`repro.telemetry.schema`).
* :mod:`repro.telemetry.tracing` threads a :class:`TraceContext` through
  serving, cluster and pipeline so every record of one request stitches
  into a single causal tree (``trace_id``/``span_id``/
  ``parent_span_id``), with ``trace.link`` events for coalesced
  followers, hedged duplicates, and micro-batch members.
* :mod:`repro.telemetry.export` renders a trace as a Chrome/Perfetto
  timeline (``repro telemetry export --format chrome``) or Prometheus
  text; :mod:`repro.telemetry.summarize` renders span trees, counter
  tables, latency histograms and SLO burn rates (``repro telemetry
  summarize``, ``repro top``); :mod:`repro.telemetry.manifest` writes
  the provenance record accompanying every ``BENCH_*.json``.

See ``docs/observability.md`` for the record schema, span naming
conventions, the trace model, and the instrumented counter inventory.
"""

from .core import (
    NULL,
    NullTelemetry,
    Span,
    Telemetry,
    TELEMETRY_ENV,
    capture,
    configure,
    disable,
    get,
    reset,
    reset_warnings,
    swap,
    warn_once,
)
from .export import (
    PROM_FILE_ENV,
    TRACE_CHROME_ENV,
    to_chrome_trace,
    to_prometheus,
    validate_chrome_file,
    write_chrome,
    write_prometheus,
)
from .hist import Histogram
from .hist import merge as merge_histograms
from .hist import merge_all as merge_all_histograms
from .hist import quantile as histogram_quantile
from .manifest import build_manifest, config_hash, write_manifest
from .schema import (
    EVENT_SCHEMA,
    load_trace,
    load_trace_tolerant,
    validate_file,
    validate_record,
    validate_records,
)
from .sinks import JsonlSink, MemorySink, Sink
from .summarize import (
    percentile,
    summarize_fidelity,
    summarize_file,
    summarize_latencies,
    summarize_records,
    summarize_tenants,
)
from .tracing import (
    TRACE_SAMPLE_ENV,
    TraceContext,
    current_trace,
    maybe_start_trace,
    resolve_trace_sample,
    scope,
    start_trace,
)

__all__ = [
    "NULL",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "TELEMETRY_ENV",
    "capture",
    "configure",
    "disable",
    "get",
    "reset",
    "reset_warnings",
    "swap",
    "warn_once",
    "PROM_FILE_ENV",
    "TRACE_CHROME_ENV",
    "to_chrome_trace",
    "to_prometheus",
    "validate_chrome_file",
    "write_chrome",
    "write_prometheus",
    "Histogram",
    "merge_histograms",
    "merge_all_histograms",
    "histogram_quantile",
    "build_manifest",
    "config_hash",
    "write_manifest",
    "EVENT_SCHEMA",
    "load_trace",
    "load_trace_tolerant",
    "validate_file",
    "validate_record",
    "validate_records",
    "JsonlSink",
    "MemorySink",
    "Sink",
    "percentile",
    "summarize_fidelity",
    "summarize_file",
    "summarize_latencies",
    "summarize_records",
    "summarize_tenants",
    "TRACE_SAMPLE_ENV",
    "TraceContext",
    "current_trace",
    "maybe_start_trace",
    "resolve_trace_sample",
    "scope",
    "start_trace",
]
