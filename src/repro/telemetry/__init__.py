"""Observability for the reproduction: spans, counters, JSONL event traces.

The subsystem answers "where did the time go, what did the cache do,
which channel migrated what" without rerunning under a debugger:

* :func:`get` returns the active registry — the no-op :data:`NULL`
  singleton unless ``REPRO_TELEMETRY=<path|->`` (or :func:`configure`)
  enabled a JSONL sink.  Call sites guard bookkeeping with
  ``telemetry.get().enabled`` so the disabled path stays near-free.
* :class:`Telemetry` provides nested wall-clock **spans** (context
  managers), monotonic **counters** and last-value **gauges**; every span
  close and counter flush emits one self-describing JSONL record
  (validated by :mod:`repro.telemetry.schema`).
* :mod:`repro.telemetry.summarize` renders a trace back into a span tree
  and counter tables (``repro telemetry summarize``), and
  :mod:`repro.telemetry.manifest` writes the provenance record that
  accompanies every ``BENCH_*.json``.

See ``docs/observability.md`` for the record schema, the span naming
conventions, and the instrumented counter inventory.
"""

from .core import (
    NULL,
    NullTelemetry,
    Span,
    Telemetry,
    TELEMETRY_ENV,
    capture,
    configure,
    disable,
    get,
    reset,
    reset_warnings,
    swap,
    warn_once,
)
from .manifest import build_manifest, config_hash, write_manifest
from .schema import (
    EVENT_SCHEMA,
    load_trace,
    validate_file,
    validate_record,
    validate_records,
)
from .sinks import JsonlSink, MemorySink, Sink
from .summarize import (
    percentile,
    summarize_fidelity,
    summarize_file,
    summarize_latencies,
    summarize_records,
)

__all__ = [
    "NULL",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "TELEMETRY_ENV",
    "capture",
    "configure",
    "disable",
    "get",
    "reset",
    "reset_warnings",
    "swap",
    "warn_once",
    "build_manifest",
    "config_hash",
    "write_manifest",
    "EVENT_SCHEMA",
    "load_trace",
    "validate_file",
    "validate_record",
    "validate_records",
    "JsonlSink",
    "MemorySink",
    "Sink",
    "percentile",
    "summarize_fidelity",
    "summarize_file",
    "summarize_latencies",
    "summarize_records",
]
